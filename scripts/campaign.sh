#!/usr/bin/env bash
# Campaign smoke run + statistical quality-regression gate.
#
# Executes a sharded scenario-sweep campaign (fixed seed 7; cell count from
# W4K_CAMPAIGN_CELLS, default 500, sharded across W4K_CAMPAIGN_WORKERS
# worker processes, default 4) and gates the merged per-cell metric
# distributions against the blessed baseline in
# tests/golden/data/campaign_smoke.json with the Mann-Whitney U gate
# (alpha 1e-4 + minimum-effect floor; see src/campaign/stats_gate.h).
#
# Unlike the golden gate this is a *population* comparison, so the blessed
# file only needs re-blessing when the distributions genuinely move — a
# changed cell count changes the sample, not the verdict, as long as the
# underlying behavior is the same. The summary itself is byte-stable for a
# fixed (seed, cells) across worker counts and W4K_THREADS; `w4k_campaign
# selftest` pins that separately.
#
# Usage:
#   scripts/campaign.sh [--binary PATH] [--bless]
#
#   --binary PATH  w4k_campaign executable
#                  (default: build/examples/w4k_campaign)
#   --bless        overwrite the blessed baseline with this run's summary.
#                  Do this only for an intentional behavior change, and
#                  explain the change in the same commit.
set -euo pipefail

cd "$(dirname "$0")/.."

binary=build/examples/w4k_campaign
bless=0
while [ $# -gt 0 ]; do
  case "$1" in
    --binary) binary="$2"; shift 2 ;;
    --bless)  bless=1; shift ;;
    *) echo "campaign.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

if [ ! -x "$binary" ]; then
  echo "campaign.sh: $binary not found (build the w4k_campaign target)" >&2
  exit 2
fi

cells="${W4K_CAMPAIGN_CELLS:-500}"
workers="${W4K_CAMPAIGN_WORKERS:-4}"
blessed=tests/golden/data/campaign_smoke.json
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$binary" run --seed 7 --cells "$cells" --workers "$workers" \
    --out "$workdir/run" --model-cache "$workdir/model.cache"

summary="$workdir/run/summary.json"
if [ "$bless" = 1 ]; then
  mkdir -p "$(dirname "$blessed")"
  cp "$summary" "$blessed"
  echo "campaign.sh: blessed $blessed ($cells cells)"
elif [ ! -f "$blessed" ]; then
  echo "campaign.sh: missing $blessed (run with --bless to create)" >&2
  exit 1
else
  "$binary" compare --current "$summary" --baseline "$blessed"
  echo "campaign.sh: gate ok ($cells cells vs $blessed)"
fi

#!/usr/bin/env bash
# Line-coverage report for the tier-1 suite.
#
# Builds into build-cov/ with coverage instrumentation, runs ctest, and
# prints a per-file line-coverage summary. Uses whichever toolchain is
# available — no dependencies beyond the compiler's own coverage tools:
#
#   clang + llvm-profdata/llvm-cov  -> source-based coverage (preferred
#                                      with CC=clang/CXX=clang++)
#   gcc + gcov                      -> gcov per-file summary
#
# Usage:
#   scripts/coverage.sh [-L LABEL]     # default label: tier1
#
# The instrumented build lives in build-cov/ (gitignored) and is
# incremental across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

label=tier1
while [ $# -gt 0 ]; do
  case "$1" in
    -L) label="$2"; shift 2 ;;
    *) echo "coverage.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

jobs="$(nproc)"
builddir=build-cov

cxx="${CXX:-c++}"
if "$cxx" --version 2>/dev/null | grep -qi clang; then
  mode=clang
  flags="-fprofile-instr-generate -fcoverage-mapping -O0 -g"
elif command -v gcov >/dev/null 2>&1; then
  mode=gcov
  flags="--coverage -O0 -g"
else
  echo "coverage.sh: need clang (llvm-cov) or gcc (gcov) on PATH" >&2
  exit 2
fi
echo "coverage.sh: using $mode instrumentation"

cmake -B "$builddir" -S . -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="$flags" -DCMAKE_EXE_LINKER_FLAGS="$flags"
cmake --build "$builddir" -j"$jobs"

if [ "$mode" = clang ]; then
  # One raw profile per test process, merged afterwards.
  LLVM_PROFILE_FILE="$PWD/$builddir/cov-%p.profraw" \
    ctest --test-dir "$builddir" -j"$jobs" -L "$label" --output-on-failure

  profdata="${LLVM_PROFDATA:-llvm-profdata}"
  llvmcov="${LLVM_COV:-llvm-cov}"
  if ! command -v "$profdata" >/dev/null 2>&1; then
    echo "coverage.sh: $profdata not found; raw profiles left in $builddir" >&2
    exit 2
  fi
  "$profdata" merge -sparse "$builddir"/cov-*.profraw \
              -o "$builddir/cov.profdata"
  # Report over every test binary that wrote a profile, sources only.
  binaries=""
  for b in "$builddir"/tests/tests_*; do
    [ -x "$b" ] && binaries="$binaries -object $b"
  done
  # shellcheck disable=SC2086
  "$llvmcov" report $binaries -instr-profile "$builddir/cov.profdata" \
             -ignore-filename-regex '(tests|bench|examples)/' \
             "$builddir"/tests/tests_foundation
else
  ctest --test-dir "$builddir" -j"$jobs" -L "$label" --output-on-failure
  # Aggregate gcov line coverage per source file under src/.
  find "$builddir" -name '*.gcda' | while read -r gcda; do
    gcov -n -s "$PWD" "$gcda" 2>/dev/null
  done | awk '
    /^File / { f=$2; gsub(/\x27/, "", f) }
    /^Lines executed/ {
      split($0, a, ":"); split(a[2], b, "% of ");
      if (f ~ /^src\//) { pct[f]=b[1]; lines[f]=b[2] }
    }
    END {
      total=0; covered=0;
      for (f in pct) {
        printf "%7.2f%%  %6d  %s\n", pct[f], lines[f], f;
        total+=lines[f]; covered+=lines[f]*pct[f]/100.0;
      }
      if (total) printf "%7.2f%%  %6d  TOTAL (src/)\n", 100.0*covered/total, total;
    }' | sort -k3
fi

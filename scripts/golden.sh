#!/usr/bin/env bash
# Golden-report regression gate.
#
# Runs the five pinned golden_report scenarios (static4, faulted, mobile,
# multiap, relay)
# under every combination of W4K_THREADS=1/4 and W4K_FORCE_SCALAR=0/1,
# asserts the canonical JSON is byte-identical across all combinations
# (threading and SIMD dispatch must not change the numbers), and diffs the
# result against the blessed files in tests/golden/data/.
#
# Usage:
#   scripts/golden.sh [--binary PATH] [--bless]
#
#   --binary PATH  golden_report executable (default: build/tests/golden_report)
#   --bless        overwrite the blessed files with the current output.
#                  Do this only for an intentional numbers change, and
#                  explain the change in the same commit.
set -euo pipefail

cd "$(dirname "$0")/.."

binary=build/tests/golden_report
bless=0
while [ $# -gt 0 ]; do
  case "$1" in
    --binary) binary="$2"; shift 2 ;;
    --bless)  bless=1; shift ;;
    *) echo "golden.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

if [ ! -x "$binary" ]; then
  echo "golden.sh: $binary not found (build the golden_report target first)" >&2
  exit 2
fi

blessed_dir=tests/golden/data
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Train the quality model once; every combination below loads this cache,
# so the gate exercises the streaming path, not repeated training.
cache="$workdir/golden_model.cache"
W4K_THREADS=1 W4K_FORCE_SCALAR=0 \
  "$binary" static4 --model-cache "$cache" --out "$workdir/warmup.json"

scenarios="static4 faulted mobile multiap relay"
status=0
for scenario in $scenarios; do
  ref=""
  for threads in 1 4; do
    for scalar in 0 1; do
      out="$workdir/$scenario.t$threads.s$scalar.json"
      W4K_THREADS=$threads W4K_FORCE_SCALAR=$scalar \
        "$binary" "$scenario" --model-cache "$cache" --out "$out"
      if [ -z "$ref" ]; then
        ref="$out"
      elif ! cmp -s "$ref" "$out"; then
        echo "golden.sh: $scenario NOT byte-stable:" \
             "W4K_THREADS=$threads W4K_FORCE_SCALAR=$scalar differs" >&2
        diff "$ref" "$out" | head -5 >&2 || true
        status=1
      fi
    done
  done

  blessed="$blessed_dir/$scenario.json"
  if [ "$bless" = 1 ]; then
    mkdir -p "$blessed_dir"
    cp "$ref" "$blessed"
    echo "golden.sh: blessed $blessed"
  elif [ ! -f "$blessed" ]; then
    echo "golden.sh: missing $blessed (run with --bless to create)" >&2
    status=1
  elif ! cmp -s "$blessed" "$ref"; then
    echo "golden.sh: $scenario diverges from blessed $blessed" >&2
    diff "$blessed" "$ref" | head -10 >&2 || true
    status=1
  else
    echo "golden.sh: $scenario ok"
  fi
done

exit $status

#!/usr/bin/env bash
# Tier-1 verification.
#
# Stage 1: fast (plain Release) build + the full tier-1 suite, then the
#          golden-report regression gate (byte-stable canonical JSON
#          across thread counts and SIMD dispatch; scripts/golden.sh),
#          the chaos-scale slice (20 random fault plans against a 32-user
#          session with the anytime decide deadline on), the
#          chaos-multiap slice (20 random multi-AP plans — AP outages,
#          handoff-beacon losses, relay churn — against 2-AP sessions
#          with handoff and peer relay on), and the campaign stage: the
#          sharded scenario-sweep engine's selftest (byte-stable merge
#          across worker counts, injected-regression detection) plus the
#          smoke campaign gated statistically against its blessed
#          baseline (scripts/campaign.sh; W4K_CAMPAIGN_CELLS scales it),
#          and the serve stage: the serving-daemon suite plus the
#          process-level w4kd/w4k_loadgen smoke (scripts/serve_smoke.sh).
# Stage 2: rebuild under ASan+UBSan (W4K_SANITIZE=ON) and rerun the
#          randomized suites there: the chaos fault-injection suite, the
#          property suites (raised iteration count), and the parser fuzz
#          smoke runs — so every injected fault path, every generated
#          property input, and every mutated parser input also executes
#          under sanitizers.
# Stage 3: rebuild with W4K_COUNT_ALLOCS=ON (counted operator new/delete)
#          and run the zero-allocation frame-path gate: after warmup the
#          pinned static4 and mobile scenarios (step_into) and a faulted
#          2-AP handoff+relay scenario (step_multi_into) must perform
#          zero heap allocations per frame (DESIGN.md Sec. 4g).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

cmake -B build -S .
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs" -L tier1
ctest --test-dir build --output-on-failure -L golden
ctest --test-dir build --output-on-failure -L chaos-scale
ctest --test-dir build --output-on-failure -L chaos-multiap
ctest --test-dir build --output-on-failure -L campaign
# Serving-daemon stage: the serve suite as one binary (wire/pool/worker/
# daemon/kill-half tests) plus the process-level serve_smoke run
# (w4kd + w4k_loadgen over loopback, /status, clean shutdown).
ctest --test-dir build --output-on-failure -L serve

cmake -B build-asan -S . -DW4K_SANITIZE=ON
cmake --build build-asan -j"$jobs" \
      --target tests_chaos tests_props chaos_scale chaos_multiap \
               fuzz_jsonlite fuzz_fault_plan fuzz_trace_io \
               tests_serve w4kd w4k_loadgen
# -L matches labels by regex, so "chaos" selects the chaos suite plus the
# chaos-scale and chaos-multiap slices — all rerun under the sanitizers.
ctest --test-dir build-asan --output-on-failure -j"$jobs" -L chaos
W4K_PROP_ITERS=200 \
  ctest --test-dir build-asan --output-on-failure -j"$jobs" -L props
ctest --test-dir build-asan --output-on-failure -j"$jobs" -L fuzz-smoke
# The serving daemon's epoll workers, refcounted pool, and UDP parsers
# rerun under the sanitizers too (threaded kill-half test included).
ctest --test-dir build-asan --output-on-failure -L serve

cmake -B build-alloc -S . -DW4K_COUNT_ALLOCS=ON
cmake --build build-alloc -j"$jobs" \
      --target tests_foundation tests_system tests_serve
# Run the gate suites directly (no ctest discovery pass for the side
# build): the arena contract plus the per-frame zero-allocation gate,
# which skip themselves everywhere except this counting build.
./build-alloc/tests/tests_foundation --gtest_filter='FrameArena.*'
./build-alloc/tests/tests_system \
    --gtest_filter='AllocCount.*:AllocGateTest.*'
# The daemon's steady-state fan-out (encode -> publish -> sendmmsg ->
# release) must also be allocation-free per frame (DESIGN.md Sec. 4j).
./build-alloc/tests/tests_serve --gtest_filter='ServeAllocGate.*'

#!/usr/bin/env bash
# Tier-1 verification.
#
# Stage 1: fast (plain Release) build + the full tier-1 suite.
# Stage 2: rebuild the chaos fault-injection suite under ASan+UBSan
#          (W4K_SANITIZE=ON) and run just `ctest -L chaos`, so every
#          injected fault path — blockage bursts, lost feedback, corrupt
#          CSI, churn — also executes under sanitizers.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

cmake -B build -S .
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs" -L tier1

cmake -B build-asan -S . -DW4K_SANITIZE=ON
cmake --build build-asan -j"$jobs" --target tests_chaos
ctest --test-dir build-asan --output-on-failure -j"$jobs" -L chaos

#!/usr/bin/env bash
# End-to-end smoke of the serving daemon as shipped: real w4kd process,
# real w4k_loadgen process, loopback UDP between them.
#
#   1. spawn w4kd (ephemeral ports), parse the ports it prints;
#   2. stream ~2 s at 60 fps to 32 subscribers over 4 sockets with the
#      fountain-decode probe on; require exit 0, delivered fraction
#      >= 0.90, zero parse errors, and at least one successful decode;
#   3. fetch /healthz and /status over raw TCP (bash /dev/tcp — the
#      container has no curl) and check the JSON shape;
#   4. SIGTERM the daemon and require a clean exit with >= 100 frames
#      published.
#
# Usage: serve_smoke.sh --w4kd PATH --loadgen PATH
set -euo pipefail

w4kd=""
loadgen=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --w4kd) w4kd="$2"; shift 2 ;;
    --loadgen) loadgen="$2"; shift 2 ;;
    *) echo "serve_smoke: unknown argument $1" >&2; exit 2 ;;
  esac
done
[[ -x "$w4kd" && -x "$loadgen" ]] || {
  echo "serve_smoke: need --w4kd and --loadgen executables" >&2; exit 2; }

tmp="$(mktemp -d)"
daemon_log="$tmp/w4kd.log"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$w4kd" --port 0 --status-port 0 --workers 2 --fps 60 --symbols 3 \
        > "$daemon_log" 2>&1 &
daemon_pid=$!

# The first stdout line carries the resolved ephemeral ports.
port=""
status_port=""
for _ in $(seq 1 50); do
  if line="$(grep -m1 '^w4kd: port=' "$daemon_log" 2>/dev/null)"; then
    port="$(sed -n 's/.*port=\([0-9]*\) .*/\1/p' <<<"$line")"
    status_port="$(sed -n 's/.*status=\([0-9]*\) .*/\1/p' <<<"$line")"
    [[ -n "$port" ]] && break
  fi
  kill -0 "$daemon_pid" 2>/dev/null || {
    echo "serve_smoke: w4kd died at startup:"; cat "$daemon_log"; exit 1; }
  sleep 0.1
done
[[ -n "$port" && -n "$status_port" ]] || {
  echo "serve_smoke: could not parse ports from w4kd output:";
  cat "$daemon_log"; exit 1; }
echo "serve_smoke: w4kd pid=$daemon_pid port=$port status=$status_port"

# Stage 2: 32 subscribers for ~2 s at 60 fps => >= 100 frames streamed.
loadgen_out="$("$loadgen" --port "$port" --subs 32 --sockets 4 \
               --duration-s 2 --decode)"
echo "$loadgen_out"
json="$(grep '^LOADGEN_JSON ' <<<"$loadgen_out" | sed 's/^LOADGEN_JSON //')"
read -r delivered parse_errors decodes <<<"$(
  sed -n 's/.*"delivered_fraction":\([0-9.]*\),.*"parse_errors":\([0-9]*\),.*"decodes":\([0-9]*\)}.*/\1 \2 \3/p' \
    <<<"$json")"
[[ -n "$delivered" ]] || {
  echo "serve_smoke: could not parse LOADGEN_JSON" >&2; exit 1; }
awk -v d="$delivered" 'BEGIN { exit !(d >= 0.90) }' || {
  echo "serve_smoke: delivered fraction $delivered < 0.90" >&2; exit 1; }
[[ "$parse_errors" == 0 ]] || {
  echo "serve_smoke: $parse_errors parse errors" >&2; exit 1; }
[[ "$decodes" -ge 1 ]] || {
  echo "serve_smoke: fountain decode probe never decoded" >&2; exit 1; }

# Stage 3: /healthz and /status over bash /dev/tcp.
http_get() {
  local path="$1"
  exec 3<>"/dev/tcp/127.0.0.1/$status_port"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
  cat <&3
  exec 3<&- 3>&-
}
health="$(http_get /healthz)"
grep -q '"ok":true' <<<"$health" || {
  echo "serve_smoke: /healthz unhealthy: $health" >&2; exit 1; }
status="$(http_get /status)"
grep -q '"daemon": *"w4kd"' <<<"$status" || {
  echo "serve_smoke: /status missing daemon field" >&2; exit 1; }
grep -q '"metrics"' <<<"$status" || {
  echo "serve_smoke: /status missing metrics snapshot" >&2; exit 1; }
grep -q '"serve.pub.frames"' <<<"$status" || {
  echo "serve_smoke: /status missing publisher counters" >&2; exit 1; }
echo "serve_smoke: /status OK"

# Stage 4: clean shutdown with enough frames published.
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
[[ "$rc" == 0 ]] || {
  echo "serve_smoke: w4kd exited $rc:"; cat "$daemon_log"; exit 1; }
published="$(sed -n 's/^w4kd: published=\([0-9]*\) .*/\1/p' "$daemon_log")"
[[ -n "$published" && "$published" -ge 100 ]] || {
  echo "serve_smoke: only ${published:-0} frames published (< 100)" >&2
  exit 1; }
echo "serve_smoke: PASS (published=$published delivered=$delivered decodes=$decodes)"

// w4kd: the event-driven multicast serving daemon.
//
// Serves fountain-coded sublayer symbols to loopback subscribers: epoll
// event loops sharded across SO_REUSEPORT workers, a refcounted shared
// buffer pool (each symbol written once per frame), batched sendmmsg
// fan-out, per-subscriber leaky-bucket pacing, and a /status HTTP
// endpoint exposing the MetricsRegistry. Pair with w4k_loadgen:
//
//   ./w4kd --port 9460 --status-port 9461 --workers 2 &
//   ./w4k_loadgen --port 9460 --subs 1000 --duration-s 5
//
// Run with --frames N to publish a fixed number of frames and exit
// (tests/scripts); the default streams until SIGINT/SIGTERM.
#include "common/args.h"
#include "obs/metrics.h"
#include "serve/daemon.h"

#include <csignal>
#include <cstdio>
#include <ctime>

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace w4k;
  Args args(argc, argv);
  serve::DaemonConfig cfg;
  cfg.port = static_cast<std::uint16_t>(args.get("port", 9460));
  cfg.status_port =
      static_cast<std::uint16_t>(args.get("status-port", 9461));
  cfg.workers = static_cast<std::size_t>(args.get("workers", 1));
  cfg.fps = args.get("fps", 30.0);
  cfg.pool_slots = static_cast<std::size_t>(args.get("pool-slots", 256));
  cfg.source.symbol_bytes =
      static_cast<std::size_t>(args.get("symbol-bytes", 1200));
  cfg.source.seed = static_cast<std::uint64_t>(args.get("seed", 1));
  // Layered source: a base layer plus one enhancement sublayer, the
  // paper's minimum interesting SVC shape. --symbols splits 2:1.
  const int symbols = args.get("symbols", 3);
  const auto base = static_cast<std::uint16_t>(symbols - symbols / 3);
  const auto enh = static_cast<std::uint16_t>(symbols / 3);
  cfg.source.layers.push_back({0, 0, 8, base});
  if (enh > 0) cfg.source.layers.push_back({1, 0, 4, enh});
  cfg.worker.max_subscribers =
      static_cast<std::size_t>(args.get("max-subs", 16384));
  cfg.worker.pace_mbps = args.get("pace-mbps", 0.0);
  cfg.worker.bucket_bytes =
      static_cast<std::size_t>(args.get("bucket-bytes", 15000));
  cfg.worker.heartbeat_timeout_s = args.get("heartbeat-timeout-s", 5.0);
  cfg.worker.batch_packets = static_cast<std::size_t>(args.get("batch", 128));
  const int frames = args.get("frames", 0);

  const auto unknown = args.unqueried();
  if (!unknown.empty()) {
    for (const auto& u : unknown)
      std::fprintf(stderr, "unknown argument: --%s\n", u.c_str());
    return 2;
  }

  obs::set_enabled(true);
  serve::Daemon daemon(cfg);
  daemon.start();
  std::printf("w4kd: port=%u status=%u workers=%zu symbols/frame=%d\n",
              daemon.port(), daemon.status_port(), daemon.n_workers(),
              symbols);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const double period = cfg.fps > 0.0 ? 1.0 / cfg.fps : 0.0;
  int published = 0;
  while (g_stop == 0 && (frames == 0 || published < frames)) {
    if (daemon.publish_one()) ++published;
    if (period > 0.0) {
      timespec ts;
      ts.tv_sec = static_cast<time_t>(period);
      ts.tv_nsec =
          static_cast<long>((period - static_cast<double>(ts.tv_sec)) * 1e9);
      nanosleep(&ts, nullptr);
    }
  }
  // Let workers drain their backlogs before tearing down.
  timespec drain{0, 200'000'000};
  nanosleep(&drain, nullptr);
  daemon.stop();
  std::printf("w4kd: published=%llu subscribers_at_exit=%zu\n",
              static_cast<unsigned long long>(daemon.frames_published()),
              daemon.subscribers());
  return 0;
}

// Trace-driven mobile replay — the paper's Sec. 2.8 methodology as a
// workflow: record a CSI trace once, persist it, then replay the same
// channel against different configurations for a fair comparison.
//
//   1. simulate a walking receiver and record its CSI at the 100 ms
//      beacon rate;
//   2. save the trace to disk and load it back (binary format, so real
//      measured traces can be swapped in);
//   3. replay it through Real-time Update and No Update sessions and
//      print a per-5-second quality timeline.
#include "channel/trace_io.h"
#include "common/stats.h"
#include "channel/array.h"
#include "core/experiment.h"
#include "core/pretrained.h"

#include <cstdio>

int main() {
  using namespace w4k;
  constexpr int kW = 256;
  constexpr int kH = 144;
  const char* kTracePath = "mobile_replay.csitrace";

  // --- 1. Record ----------------------------------------------------------
  channel::MovingReceiverConfig walk;
  walk.n_users = 1;
  walk.duration = 25.0;
  walk.min_distance = 3.0;
  walk.max_distance = 8.0;
  walk.seed = 99;
  const channel::CsiTrace recorded = channel::moving_receiver_trace(walk);
  std::printf("recorded %zu CSI snapshots (%.0f s walk, 10 Hz beacons)\n",
              recorded.steps(), walk.duration);

  // --- 2. Persist + reload -------------------------------------------------
  channel::save_trace(recorded, kTracePath);
  const channel::CsiTrace trace = channel::load_trace(kTracePath);
  std::printf("saved and reloaded %s (%zu steps, %zu user)\n", kTracePath,
              trace.steps(), trace.users());

  // --- 3. Replay -----------------------------------------------------------
  video::VideoSpec spec = video::standard_videos(kW, kH, 8)[0];
  const auto contexts = core::make_contexts(
      video::SyntheticVideo(spec), 4, core::scaled_symbol_size(kW, kH));
  model::QualityModel quality;
  core::ensure_trained(quality);
  auto codebook = beamforming::make_multilevel_codebook(
      channel::kDefaultApAntennas, {{32, 20}, {8, 8}, {4, 4}});

  core::Experiment exp(quality, contexts);
  exp.codebook(codebook);
  const auto replay = [&](bool adapt) {
    core::SessionConfig& cfg = exp.config();
    cfg.adapt = adapt;
    cfg.mcs_margin_db = 1.5;
    cfg.seed = 11;
    return exp.run_trace(trace);
  };
  const std::vector<double> rt = replay(true).all_ssim();
  const std::vector<double> frozen = replay(false).all_ssim();

  std::printf("\n%-10s %-18s %-18s\n", "window", "Real-time Update",
              "No Update");
  const std::size_t frames_per_bucket = 150;  // 5 s at 30 FPS
  for (std::size_t start = 0; start < rt.size();
       start += frames_per_bucket) {
    const std::size_t end = std::min(start + frames_per_bucket, rt.size());
    const std::span<const double> a(rt.data() + start, end - start);
    const std::span<const double> b(frozen.data() + start, end - start);
    std::printf("%3zu-%3zus  SSIM %-13.4f SSIM %-13.4f\n",
                start / 30, end / 30, mean(a), mean(b));
  }
  std::printf("\noverall: Real-time Update %.4f, No Update %.4f "
              "(adaptation gap %.4f)\n",
              mean(rt), mean(frozen), mean(rt) - mean(frozen));
  std::remove(kTracePath);
  return 0;
}

// w4k_loadgen: loopback load generator for w4kd.
//
// Emulates --subs virtual subscribers multiplexed over --sockets UDP
// sockets (the daemon keys subscriptions on 64-bit sub ids, not source
// addresses, so one socket carries thousands of subscribers — the
// container's fd limit never binds). Each socket connect()s so the
// kernel's SO_REUSEPORT hash spreads sockets across daemon workers.
//
// Sends heartbeats, drains data packets, optionally kills a fraction of
// the sockets mid-run (crash emulation: no unsubscribe — the daemon must
// reap them via heartbeat expiry), optionally fountain-decodes one
// subscriber's stream as an end-to-end correctness probe, and prints a
// summary plus a machine-readable `LOADGEN_JSON {...}` line consumed by
// scripts/serve_smoke.sh and the system tests.
#include "common/args.h"
#include "fec/fountain.h"
#include "serve/client.h"
#include "transport/packet.h"

#include <poll.h>

#include <cstdio>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

double mono_now() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

// Decode probe: one FountainDecoder per (layer, sublayer) unit of
// subscriber 0's stream. The source block is persistent and the ESI
// stream rateless across frames, so the decoder accumulates symbols
// until rank k, counts a decode, then re-arms — each subsequent decode
// consumes k fresh innovative symbols, a rolling end-to-end proof that
// sender coefficients and receiver reconstruction agree. Every field it
// needs (k, block_seed, symbol size) travels in-band.
struct DecodeProbe {
  std::map<std::uint32_t, w4k::fec::FountainDecoder> units;  // layer<<16|sub
  std::uint64_t unit_count = 0;
  std::uint64_t decodes = 0;

  void feed(const w4k::serve::wire::DataPacket& pkt) {
    const auto& h = pkt.header;
    const std::uint32_t key =
        (static_cast<std::uint32_t>(h.layer) << 16) | h.sublayer;
    const std::size_t source_size =
        static_cast<std::size_t>(h.k) * h.symbol_bytes;
    auto it = units.find(key);
    if (it == units.end()) {
      ++unit_count;
      it = units
               .emplace(key, w4k::fec::FountainDecoder(
                                 h.k, h.symbol_bytes, source_size,
                                 h.block_seed))
               .first;
    }
    w4k::fec::FountainDecoder& dec = it->second;
    w4k::fec::Symbol s;
    s.esi = h.esi;
    s.data.assign(pkt.payload, pkt.payload + pkt.payload_size);
    dec.add_symbol(s);
    if (dec.can_decode()) {
      ++decodes;
      dec.reset(h.k, h.symbol_bytes, source_size, h.block_seed);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace w4k;
  Args args(argc, argv);
  const int port = args.get("port", 9460);
  const std::string host = args.get("host", std::string("127.0.0.1"));
  const int subs = args.get("subs", 64);
  const int sockets = args.get("sockets", 4);
  const double duration_s = args.get("duration-s", 3.0);
  const double heartbeat_s = args.get("heartbeat-ms", 500.0) / 1e3;
  const double kill_fraction = args.get("kill-fraction", 0.0);
  const double kill_after_s = args.get("kill-after-s", 0.0);
  const bool decode = args.get("decode", false);
  const bool json_only = args.get("json", false);

  const auto unknown = args.unqueried();
  if (!unknown.empty()) {
    for (const auto& u : unknown)
      std::fprintf(stderr, "unknown argument: --%s\n", u.c_str());
    return 2;
  }
  if (subs <= 0 || sockets <= 0 || sockets > subs) {
    std::fprintf(stderr, "need 0 < sockets <= subs\n");
    return 2;
  }

  // Spread subs across sockets; contiguous id ranges per socket.
  std::vector<std::unique_ptr<serve::Client>> clients;
  std::uint64_t next_id = 1;
  for (int i = 0; i < sockets; ++i) {
    const std::size_t share = static_cast<std::size_t>(subs) / sockets +
                              (i < subs % sockets ? 1 : 0);
    serve::Client::Options o;
    o.host = host;
    o.port = static_cast<std::uint16_t>(port);
    o.n_subs = share;
    o.first_sub_id = next_id;
    next_id += share;
    clients.push_back(std::make_unique<serve::Client>(o));
  }

  DecodeProbe probe;
  if (decode) {
    const std::uint64_t probe_id = clients[0]->options().first_sub_id;
    clients[0]->on_packet = [&probe,
                             probe_id](const serve::wire::DataPacket& p) {
      if (p.sub_id == probe_id) probe.feed(p);
    };
  }

  for (auto& c : clients) c->subscribe_all();

  const double t0 = mono_now();
  double last_heartbeat = t0;
  const int to_kill = static_cast<int>(kill_fraction * sockets);
  bool killed = false;
  std::size_t killed_subs = 0;

  std::vector<pollfd> fds(clients.size());
  while (mono_now() - t0 < duration_s) {
    std::size_t nf = 0;
    for (auto& c : clients)
      if (c->alive()) fds[nf++] = pollfd{c->fd(), POLLIN, 0};
    poll(fds.data(), static_cast<nfds_t>(nf), 50);
    for (auto& c : clients)
      if (c->alive()) c->drain();
    const double now = mono_now();
    if (now - last_heartbeat >= heartbeat_s) {
      for (auto& c : clients)
        if (c->alive()) c->heartbeat_all();
      last_heartbeat = now;
    }
    if (!killed && kill_after_s > 0.0 && now - t0 >= kill_after_s) {
      for (int i = 0; i < to_kill; ++i) {
        killed_subs += clients[i]->options().n_subs;
        clients[i]->kill();
      }
      killed = true;
    }
  }
  for (auto& c : clients) {
    if (c->alive()) {
      c->drain();
      c->unsubscribe_all();
    }
  }

  // Delivered fraction over surviving subscribers: received packets
  // relative to the best-served subscriber (sent-counter view needs the
  // daemon side; the smoke script cross-checks /status).
  std::uint64_t total = 0, parse_errors = 0, best = 0;
  std::uint64_t alive_subs = 0;
  std::uint32_t last_frame = 0;
  bool saw = false;
  for (const auto& c : clients) {
    parse_errors += c->parse_errors();
    if (!c->alive()) continue;
    alive_subs += c->options().n_subs;
    total += c->total_packets();
    for (const auto& s : c->stats())
      if (s.packets > best) best = s.packets;
    if (c->saw_frame()) {
      if (!saw || transport::seq_less(last_frame, c->last_frame()))
        last_frame = c->last_frame();
      saw = true;
    }
  }
  const double mean = alive_subs > 0
                          ? static_cast<double>(total) /
                                static_cast<double>(alive_subs)
                          : 0.0;
  const double delivered =
      best > 0 ? mean / static_cast<double>(best) : 0.0;

  if (!json_only) {
    std::printf("loadgen: subs=%d sockets=%d alive=%llu killed=%zu\n", subs,
                sockets, static_cast<unsigned long long>(alive_subs),
                killed_subs);
    std::printf("loadgen: packets=%llu best/sub=%llu mean/sub=%.1f "
                "delivered=%.3f last_frame=%u parse_errors=%llu\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(best), mean, delivered,
                last_frame,
                static_cast<unsigned long long>(parse_errors));
    if (decode)
      std::printf("loadgen: decode units=%llu decodes=%llu\n",
                  static_cast<unsigned long long>(probe.unit_count),
                  static_cast<unsigned long long>(probe.decodes));
  }
  std::printf("LOADGEN_JSON {\"subs\":%d,\"alive_subs\":%llu,"
              "\"killed_subs\":%zu,\"packets\":%llu,\"best_per_sub\":%llu,"
              "\"mean_per_sub\":%.3f,\"delivered_fraction\":%.4f,"
              "\"last_frame\":%u,\"parse_errors\":%llu,"
              "\"decode_units\":%llu,\"decodes\":%llu}\n",
              subs, static_cast<unsigned long long>(alive_subs), killed_subs,
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(best), mean, delivered,
              last_frame, static_cast<unsigned long long>(parse_errors),
              static_cast<unsigned long long>(probe.unit_count),
              static_cast<unsigned long long>(probe.decodes));
  return total > 0 ? 0 : 1;
}

// w4k_sim — command-line front end to the whole system.
//
// Streams a clip (synthetic or Y4M) to N emulated WiGig receivers and
// reports quality; covers static placements and recorded/generated mobile
// CSI traces. The Swiss-army binary of the release.
//
//   w4k_sim                                 # 3 users at 3 m, defaults
//   w4k_sim --users 6 --min-dist 8 --max-dist 16 --mas-deg 120
//   w4k_sim --scheme pre-multicast --schedule roundrobin
//   w4k_sim --trace walk.csitrace --no-adapt
//   w4k_sim --record-trace walk.csitrace --duration 30 --mobile low
//   w4k_sim --y4m clip.y4m --frames 120 --csv out.csv
//
// Options (defaults in brackets):
//   --users N            receiver count [3]
//   --distance M         fixed distance placement [3.0; 0 = random annulus]
//   --min-dist/--max-dist  annulus when --distance 0 [8/16]
//   --mas-deg D          maximum angular spacing [60]
//   --scheme S           opt-multicast | pre-multicast | opt-unicast |
//                        pre-unicast [opt-multicast]
//   --schedule S         optimized | roundrobin [optimized]
//   --no-rate-control    disable the leaky bucket
//   --no-source-coding   disable the rateless code
//   --no-adapt           freeze the initial decision (No Update)
//   --estimated-csi      run ACO estimation instead of perfect CSI
//   --decide-deadline-ms B  anytime budget for the per-frame decision; 0
//                        keeps the pure deterministic path [0]
//   --mobile high|low|env  generate a mobile trace instead of static
//   --trace PATH         replay a recorded .csitrace file
//   --record-trace PATH  save the generated trace before streaming
//   --duration S         trace length in seconds [20]
//   --frames N           frames to stream in static mode [60]
//   --y4m PATH           stream a real Y4M clip instead of synthetic
//   --width/--height     synthetic resolution [256x144]
//   --fault-plan P       inject faults while streaming: a fault-plan file
//                        (see fault/plan.h for the format) or random:SEED
//                        for a seeded random plan covering the whole run
//   --csv PATH           write the per-frame report as CSV
//   --trace-out PATH     write a Chrome trace_event JSON of the per-stage
//                        spans (open in Perfetto / chrome://tracing)
//   --metrics-out PATH   write a flat JSON snapshot of all counters,
//                        gauges, histograms and stage timers
//   --seed N             master seed [1]
#include "channel/array.h"
#include "channel/trace_io.h"
#include "common/args.h"
#include "core/pretrained.h"
#include "core/report.h"
#include "core/runner.h"
#include "fault/plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "video/io.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace {

using namespace w4k;

beamforming::Scheme parse_scheme(const std::string& s) {
  if (s == "opt-multicast") return beamforming::Scheme::kOptimizedMulticast;
  if (s == "pre-multicast") return beamforming::Scheme::kPredefinedMulticast;
  if (s == "opt-unicast") return beamforming::Scheme::kOptimizedUnicast;
  if (s == "pre-unicast") return beamforming::Scheme::kPredefinedUnicast;
  throw std::invalid_argument("--scheme: unknown scheme '" + s + "'");
}

/// Resolves --fault-plan: a file path, or "random:SEED" for a seeded plan
/// sized to the run. Returns an empty plan when the flag is absent.
fault::FaultPlan resolve_fault_plan(const std::string& arg,
                                    std::uint32_t n_frames,
                                    std::size_t n_users) {
  if (arg.empty()) return {};
  if (arg.rfind("random:", 0) == 0) {
    std::uint64_t fseed = 0;
    std::size_t used = 0;
    const std::string seed_str = arg.substr(7);
    try {
      fseed = std::stoull(seed_str, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != seed_str.size())
      throw std::invalid_argument("--fault-plan: '" + seed_str +
                                  "' is not a valid seed (expected "
                                  "random:<unsigned integer>)");
    return fault::FaultPlan::random(fseed, n_frames, n_users);
  }
  return fault::load_fault_plan(arg);
}

std::vector<core::FrameContext> load_contexts(const Args& args, int width,
                                              int height) {
  const std::string y4m = args.get("y4m", std::string{});
  if (!y4m.empty()) {
    video::Y4mReader reader(y4m);
    const auto& hdr = reader.header();
    std::printf("content: %s (%dx%d)\n", y4m.c_str(), hdr.width, hdr.height);
    std::vector<core::FrameContext> ctxs;
    video::Frame prev;
    const std::size_t symbol =
        core::scaled_symbol_size(hdr.width, hdr.height);
    // A handful of contexts is enough — they are cycled during streaming.
    for (int i = 0; i < 8; ++i) {
      auto frame = reader.next();
      if (!frame) break;
      ctxs.push_back(core::make_frame_context(
          *frame, ctxs.empty() ? nullptr : &prev, symbol));
      prev = std::move(*frame);
    }
    if (ctxs.empty())
      throw std::runtime_error("y4m clip contains no frames");
    return ctxs;
  }
  video::VideoSpec spec = video::standard_videos(width, height, 10)[0];
  std::printf("content: synthetic %s (%dx%d)\n", spec.name.c_str(), width,
              height);
  return core::make_contexts(video::SyntheticVideo(spec), 8,
                             core::scaled_symbol_size(width, height));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);

    const int width = args.get("width", 256);
    const int height = args.get("height", 144);
    const auto n_users = static_cast<std::size_t>(args.get("users", 3));
    const auto seed = static_cast<std::uint64_t>(args.get("seed", 1));

    // --- Content -----------------------------------------------------------
    const auto contexts = load_contexts(args, width, height);
    const int ctx_w = contexts.front().original.width();
    const int ctx_h = contexts.front().original.height();

    // --- Quality model -----------------------------------------------------
    model::QualityModel quality;
    core::ensure_trained(quality);

    // --- Telemetry ---------------------------------------------------------
    const std::string trace_out = args.get("trace-out", std::string{});
    const std::string metrics_out = args.get("metrics-out", std::string{});
    if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
    if (!trace_out.empty()) {
      obs::set_trace_enabled(true);
      obs::reset_trace_epoch();
    }

    // --- Session config ----------------------------------------------------
    core::SessionConfig cfg = core::SessionConfig::scaled(ctx_w, ctx_h);
    cfg.scheme = parse_scheme(args.get("scheme", std::string("opt-multicast")));
    cfg.optimized_schedule =
        args.get("schedule", std::string("optimized")) != "roundrobin";
    cfg.engine.rate_control = !args.has("no-rate-control");
    cfg.engine.source_coding = !args.has("no-source-coding");
    cfg.adapt = !args.has("no-adapt");
    cfg.use_estimated_csi = args.has("estimated-csi");
    // Anytime decision budget (ms). 0 (default) keeps decide() a pure
    // function of its inputs; > 0 bounds the per-frame decision wall clock
    // (see SessionConfig::decide_deadline_ms).
    cfg.decide_deadline_ms = args.get("decide-deadline-ms", 0.0);
    cfg.seed = seed;

    // --- Channel: trace or static placement --------------------------------
    const std::string trace_path = args.get("trace", std::string{});
    const std::string mobile = args.get("mobile", std::string{});
    if (!trace_path.empty() || !mobile.empty())
      cfg.mcs_margin_db = 1.5;  // stale-CSI headroom under mobility

    auto codebook = beamforming::make_multilevel_codebook(
        channel::kDefaultApAntennas, {{32, 20}, {8, 8}, {4, 4}});
    beamforming::append_dual_lobe_beams(codebook,
                                        channel::kDefaultApAntennas, 14, 2,
                                        1.06);
    core::MulticastSession session(cfg, quality, codebook);

    const std::string fault_arg = args.get("fault-plan", std::string{});
    const auto stream_with_faults =
        [&](const fault::FaultPlan& plan, std::size_t run_users,
            std::uint32_t run_frames) {
          std::printf(
              "fault plan: %zu feedback, %zu csi, %zu blockage, %zu budget, "
              "%zu churn events over %u frames\n",
              plan.feedback.size(), plan.csi.size(), plan.blockage.size(),
              plan.budget.size(), plan.churn.size(), run_frames);
          return fault::FaultInjector(plan, run_users);
        };

    core::SessionReport report;
    if (!trace_path.empty() || !mobile.empty()) {
      channel::CsiTrace trace;
      if (!trace_path.empty()) {
        trace = channel::load_trace(trace_path);
        std::printf("trace: %s (%zu steps, %zu users)\n", trace_path.c_str(),
                    trace.steps(), trace.users());
      } else {
        const Seconds duration = args.get("duration", 20.0);
        if (mobile == "env") {
          channel::MovingEnvironmentConfig mcfg;
          Rng prng(seed);
          for (std::size_t u = 0; u < n_users; ++u)
            mcfg.users.push_back(channel::Position::from_polar(
                prng.uniform(4.0, 7.0), prng.uniform(-0.8, 0.8)));
          mcfg.duration = duration;
          mcfg.seed = seed;
          trace = channel::moving_environment_trace(mcfg);
        } else {
          channel::MovingReceiverConfig mcfg;
          mcfg.n_users = n_users;
          mcfg.duration = duration;
          mcfg.seed = seed;
          if (mobile == "low") {
            mcfg.min_distance = 14.0;
            mcfg.max_distance = 19.0;
          }
          trace = channel::moving_receiver_trace(mcfg);
        }
        std::printf("generated %s-mobility trace: %zu steps\n",
                    mobile.c_str(), trace.steps());
        const std::string record = args.get("record-trace", std::string{});
        if (!record.empty()) {
          channel::save_trace(trace, record);
          std::printf("saved trace to %s\n", record.c_str());
        }
      }
      if (!fault_arg.empty()) {
        const auto run_frames = static_cast<std::uint32_t>(trace.steps() * 3);
        const auto plan =
            resolve_fault_plan(fault_arg, run_frames, trace.users());
        report = core::run_trace(
            session, trace, contexts,
            stream_with_faults(plan, trace.users(), run_frames));
      } else {
        report = core::run_trace(session, trace, contexts);
      }
    } else {
      Rng prng(seed);
      channel::PropagationConfig prop;
      const double distance = args.get("distance", 3.0);
      const double mas = args.get("mas-deg", 60.0) * 0.0174533;
      const auto users =
          distance > 0.0
              ? core::place_users_fixed(n_users, distance, mas, prng)
              : core::place_users_random(n_users,
                                         args.get("min-dist", 8.0),
                                         args.get("max-dist", 16.0), mas,
                                         prng);
      std::printf("placement:");
      for (const auto& u : users)
        std::printf(" (%.1fm, %+.0fdeg)", u.distance(),
                    u.azimuth() * 57.2958);
      std::printf("\n");
      const int n_frames = args.get("frames", 60);
      const auto channels = core::channels_for(prop, users);
      if (!fault_arg.empty()) {
        const auto plan = resolve_fault_plan(
            fault_arg, static_cast<std::uint32_t>(n_frames), users.size());
        report = core::run_static(
            session, channels, contexts, n_frames,
            stream_with_faults(plan, users.size(),
                               static_cast<std::uint32_t>(n_frames)));
      } else {
        report = core::run_static(session, channels, contexts, n_frames);
      }
    }

    // --- Report --------------------------------------------------------------
    std::printf("\n%s", report.summary_text().c_str());

    const std::string csv = args.get("csv", std::string{});
    if (!csv.empty()) {
      report.write_csv_file(csv);
      std::printf("per-frame CSV written to %s\n", csv.c_str());
    }

    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      obs::write_chrome_trace(out);
      std::printf("Chrome trace written to %s (open in Perfetto)\n",
                  trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      obs::write_json_snapshot(out, obs::MetricsRegistry::global());
      std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
    }

    // Every option has been queried by now: anything left is a typo.
    for (const auto& unknown : args.unqueried())
      throw std::invalid_argument("unknown option --" + unknown +
                                  " (see the header of w4k_sim.cpp)");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "w4k_sim: %s\n", e.what());
    return 1;
  }
}

// w4k_sim — command-line front end to the whole system.
//
// Streams a clip (synthetic or Y4M) to N emulated WiGig receivers and
// reports quality; covers static placements and recorded/generated mobile
// CSI traces. The Swiss-army binary of the release.
//
//   w4k_sim                                 # 3 users at 3 m, defaults
//   w4k_sim --users 6 --min-dist 8 --max-dist 16 --mas-deg 120
//   w4k_sim --scheme pre-multicast --schedule roundrobin
//   w4k_sim --trace walk.csitrace --no-adapt
//   w4k_sim --record-trace walk.csitrace --duration 30 --mobile low
//   w4k_sim --y4m clip.y4m --frames 120 --csv out.csv
//
// Options (defaults in brackets):
//   --users N            receiver count [3]
//   --distance M         fixed distance placement [3.0; 0 = random annulus]
//   --min-dist/--max-dist  annulus when --distance 0 [8/16]
//   --mas-deg D          maximum angular spacing [60]
//   --scheme S           opt-multicast | pre-multicast | opt-unicast |
//                        pre-unicast [opt-multicast]
//   --schedule S         optimized | roundrobin [optimized]
//   --no-rate-control    disable the leaky bucket
//   --no-source-coding   disable the rateless code
//   --no-adapt           freeze the initial decision (No Update)
//   --estimated-csi      run ACO estimation instead of perfect CSI
//   --decide-deadline-ms B  anytime budget for the per-frame decision; 0
//                        keeps the pure deterministic path [0]
//   --mobile high|low|env  generate a mobile trace instead of static
//   --trace PATH         replay a recorded .csitrace file
//   --record-trace PATH  save the generated trace before streaming
//   --duration S         trace length in seconds [20]
//   --frames N           frames to stream in static mode [60]
//   --y4m PATH           stream a real Y4M clip instead of synthetic
//   --width/--height     synthetic resolution [256x144]
//   --fault-plan P       inject faults while streaming: a fault-plan file
//                        (see fault/plan.h for the format) or random:SEED
//                        for a seeded random plan covering the whole run
//                        (multi-AP runs draw AP outages, handoff-beacon
//                        losses, and relay churn too)
//   --aps N              access points serving the room [1]; N > 1 runs
//                        the multi-AP static path: per-user attachment,
//                        mid-session handoff, AP-partitioned groups
//   --geometry FILE      AP geometry file (see channel/multi_ap.h format);
//                        sets the AP count, which must match --aps when
//                        both are given. Without it, --aps N uses the
//                        deterministic default wall layout
//   --relay on|off       peer relay of base-layer symbols from LoS users
//                        to quarantined peers over a D2D side link [off]
//   --quarantine-after N frames of zero decodes before a user is
//                        quarantined; 0 disables quarantine [6]. --relay on
//                        with one AP and 0 here is rejected at validation
//   --manifest PATH      write a run-manifest JSON (config echo including
//                        aps/geometry/relay, environment, stage timings)
//   --csv PATH           write the per-frame report as CSV
//   --trace-out PATH     write a Chrome trace_event JSON of the per-stage
//                        spans (open in Perfetto / chrome://tracing)
//   --metrics-out PATH   write a flat JSON snapshot of all counters,
//                        gauges, histograms and stage timers
//   --seed N             master seed [1]
#include "channel/array.h"
#include "channel/multi_ap.h"
#include "channel/trace_io.h"
#include "common/args.h"
#include "common/thread_pool.h"
#include "core/pretrained.h"
#include "core/report.h"
#include "core/runner.h"
#include "fault/plan.h"
#include "obs/export.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "video/io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace {

using namespace w4k;

beamforming::Scheme parse_scheme(const std::string& s) {
  if (s == "opt-multicast") return beamforming::Scheme::kOptimizedMulticast;
  if (s == "pre-multicast") return beamforming::Scheme::kPredefinedMulticast;
  if (s == "opt-unicast") return beamforming::Scheme::kOptimizedUnicast;
  if (s == "pre-unicast") return beamforming::Scheme::kPredefinedUnicast;
  throw std::invalid_argument("--scheme: unknown scheme '" + s + "'");
}

/// Resolves --fault-plan: a file path, or "random:SEED" for a seeded plan
/// sized to the run. Returns an empty plan when the flag is absent. Multi-AP
/// runs (n_aps > 1) extend random plans with AP outages, handoff-beacon
/// losses, and (with relay on) relay churn; with one AP the generated plan
/// is bit-identical to the pre-multi-AP generator.
fault::FaultPlan resolve_fault_plan(const std::string& arg,
                                    std::uint32_t n_frames,
                                    std::size_t n_users, std::size_t n_aps,
                                    bool relay_on) {
  if (arg.empty()) return {};
  if (arg.rfind("random:", 0) == 0) {
    std::uint64_t fseed = 0;
    std::size_t used = 0;
    const std::string seed_str = arg.substr(7);
    try {
      fseed = std::stoull(seed_str, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != seed_str.size())
      throw std::invalid_argument("--fault-plan: '" + seed_str +
                                  "' is not a valid seed (expected "
                                  "random:<unsigned integer>)");
    fault::RandomPlanConfig rcfg;
    if (n_aps > 1) {
      rcfg.n_aps = n_aps;
      rcfg.ap_outages = 2;
      rcfg.handoff_beacon_losses = 2;
    }
    if (relay_on) rcfg.relay_churns = 2;
    return fault::FaultPlan::random(fseed, n_frames, n_users, rcfg);
  }
  fault::FaultPlan plan = fault::load_fault_plan(arg);
  // Range-check file plans against the actual run shape (user and AP
  // indices) instead of failing deep inside a frame.
  plan.validate(n_users, n_aps);
  return plan;
}

std::vector<core::FrameContext> load_contexts(const Args& args, int width,
                                              int height) {
  const std::string y4m = args.get("y4m", std::string{});
  if (!y4m.empty()) {
    video::Y4mReader reader(y4m);
    const auto& hdr = reader.header();
    std::printf("content: %s (%dx%d)\n", y4m.c_str(), hdr.width, hdr.height);
    std::vector<core::FrameContext> ctxs;
    video::Frame prev;
    const std::size_t symbol =
        core::scaled_symbol_size(hdr.width, hdr.height);
    // A handful of contexts is enough — they are cycled during streaming.
    for (int i = 0; i < 8; ++i) {
      auto frame = reader.next();
      if (!frame) break;
      ctxs.push_back(core::make_frame_context(
          *frame, ctxs.empty() ? nullptr : &prev, symbol));
      prev = std::move(*frame);
    }
    if (ctxs.empty())
      throw std::runtime_error("y4m clip contains no frames");
    return ctxs;
  }
  video::VideoSpec spec = video::standard_videos(width, height, 10)[0];
  std::printf("content: synthetic %s (%dx%d)\n", spec.name.c_str(), width,
              height);
  return core::make_contexts(video::SyntheticVideo(spec), 8,
                             core::scaled_symbol_size(width, height));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);

    const int width = args.get("width", 256);
    const int height = args.get("height", 144);
    const auto n_users = static_cast<std::size_t>(args.get("users", 3));
    const auto seed = static_cast<std::uint64_t>(args.get("seed", 1));

    // --- Multi-AP geometry and relay flags ---------------------------------
    const bool aps_given = args.has("aps");
    const auto aps_arg = static_cast<std::size_t>(args.get("aps", 1));
    const std::string geometry_path = args.get("geometry", std::string{});
    const std::string relay_arg = args.get("relay", std::string("off"));
    if (relay_arg != "on" && relay_arg != "off")
      throw std::invalid_argument("--relay: expected on|off, got '" +
                                  relay_arg + "'");
    const bool relay_on = relay_arg == "on";
    channel::MultiApGeometry geometry;
    if (!geometry_path.empty()) {
      geometry = channel::load_geometry(geometry_path);
      if (aps_given && aps_arg != geometry.n_aps())
        throw std::invalid_argument(
            "--aps " + std::to_string(aps_arg) + " contradicts --geometry " +
            geometry_path + " (" + std::to_string(geometry.n_aps()) + " APs)");
      std::printf("geometry: %s (%zu APs)\n", geometry_path.c_str(),
                  geometry.n_aps());
    } else {
      geometry.aps = channel::default_ap_layout(aps_arg, geometry.prop.room);
    }
    const std::size_t n_aps = geometry.n_aps();

    // --- Content -----------------------------------------------------------
    const auto contexts = load_contexts(args, width, height);
    const int ctx_w = contexts.front().original.width();
    const int ctx_h = contexts.front().original.height();

    // --- Quality model -----------------------------------------------------
    model::QualityModel quality;
    core::ensure_trained(quality);

    // --- Telemetry ---------------------------------------------------------
    const std::string trace_out = args.get("trace-out", std::string{});
    const std::string metrics_out = args.get("metrics-out", std::string{});
    if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
    if (!trace_out.empty()) {
      obs::set_trace_enabled(true);
      obs::reset_trace_epoch();
    }

    // --- Session config ----------------------------------------------------
    core::SessionConfig cfg = core::SessionConfig::scaled(ctx_w, ctx_h);
    cfg.scheme = parse_scheme(args.get("scheme", std::string("opt-multicast")));
    cfg.optimized_schedule =
        args.get("schedule", std::string("optimized")) != "roundrobin";
    cfg.engine.rate_control = !args.has("no-rate-control");
    cfg.engine.source_coding = !args.has("no-source-coding");
    cfg.adapt = !args.has("no-adapt");
    cfg.use_estimated_csi = args.has("estimated-csi");
    // Anytime decision budget (ms). 0 (default) keeps decide() a pure
    // function of its inputs; > 0 bounds the per-frame decision wall clock
    // (see SessionConfig::decide_deadline_ms).
    cfg.decide_deadline_ms = args.get("decide-deadline-ms", 0.0);
    cfg.seed = seed;
    cfg.quarantine_after = args.get("quarantine-after", cfg.quarantine_after);
    cfg.handoff.n_aps = n_aps;
    cfg.handoff.enabled = n_aps > 1;
    cfg.relay.enabled = relay_on;
    // --relay on with one AP and quarantine disabled fails right here, in
    // SessionConfig::validate (via the session constructor below): there
    // would never be a relay target.

    // --- Channel: trace or static placement --------------------------------
    const std::string trace_path = args.get("trace", std::string{});
    const std::string mobile = args.get("mobile", std::string{});
    if (!trace_path.empty() || !mobile.empty())
      cfg.mcs_margin_db = 1.5;  // stale-CSI headroom under mobility

    auto codebook = beamforming::make_multilevel_codebook(
        channel::kDefaultApAntennas, {{32, 20}, {8, 8}, {4, 4}});
    beamforming::append_dual_lobe_beams(codebook,
                                        channel::kDefaultApAntennas, 14, 2,
                                        1.06);
    core::MulticastSession session(cfg, quality, codebook);

    const std::string fault_arg = args.get("fault-plan", std::string{});
    const auto stream_with_faults =
        [&](const fault::FaultPlan& plan, std::size_t run_users,
            std::uint32_t run_frames) {
          std::printf(
              "fault plan: %zu feedback, %zu csi, %zu blockage, %zu budget, "
              "%zu churn, %zu ap-outage, %zu handoff-beacon, %zu relay-churn "
              "events over %u frames\n",
              plan.feedback.size(), plan.csi.size(), plan.blockage.size(),
              plan.budget.size(), plan.churn.size(), plan.ap_outage.size(),
              plan.handoff_beacon.size(), plan.relay_churn.size(), run_frames);
          return fault::FaultInjector(plan, run_users, n_aps);
        };

    core::SessionReport report;
    if (n_aps > 1 && (!trace_path.empty() || !mobile.empty()))
      throw std::invalid_argument(
          "--aps: multi-AP runs are static-only (drop --trace/--mobile)");
    if (!trace_path.empty() || !mobile.empty()) {
      channel::CsiTrace trace;
      if (!trace_path.empty()) {
        trace = channel::load_trace(trace_path);
        std::printf("trace: %s (%zu steps, %zu users)\n", trace_path.c_str(),
                    trace.steps(), trace.users());
      } else {
        const Seconds duration = args.get("duration", 20.0);
        if (mobile == "env") {
          channel::MovingEnvironmentConfig mcfg;
          Rng prng(seed);
          for (std::size_t u = 0; u < n_users; ++u)
            mcfg.users.push_back(channel::Position::from_polar(
                prng.uniform(4.0, 7.0), prng.uniform(-0.8, 0.8)));
          mcfg.duration = duration;
          mcfg.seed = seed;
          trace = channel::moving_environment_trace(mcfg);
        } else {
          channel::MovingReceiverConfig mcfg;
          mcfg.n_users = n_users;
          mcfg.duration = duration;
          mcfg.seed = seed;
          if (mobile == "low") {
            mcfg.min_distance = 14.0;
            mcfg.max_distance = 19.0;
          }
          trace = channel::moving_receiver_trace(mcfg);
        }
        std::printf("generated %s-mobility trace: %zu steps\n",
                    mobile.c_str(), trace.steps());
        const std::string record = args.get("record-trace", std::string{});
        if (!record.empty()) {
          channel::save_trace(trace, record);
          std::printf("saved trace to %s\n", record.c_str());
        }
      }
      if (!fault_arg.empty()) {
        const auto run_frames = static_cast<std::uint32_t>(trace.steps() * 3);
        const auto plan = resolve_fault_plan(fault_arg, run_frames,
                                             trace.users(), 1, relay_on);
        report = core::run_trace(
            session, trace, contexts,
            stream_with_faults(plan, trace.users(), run_frames));
      } else {
        report = core::run_trace(session, trace, contexts);
      }
    } else {
      Rng prng(seed);
      channel::PropagationConfig prop;
      const double distance = args.get("distance", 3.0);
      const double mas = args.get("mas-deg", 60.0) * 0.0174533;
      const auto users =
          distance > 0.0
              ? core::place_users_fixed(n_users, distance, mas, prng)
              : core::place_users_random(n_users,
                                         args.get("min-dist", 8.0),
                                         args.get("max-dist", 16.0), mas,
                                         prng);
      std::printf("placement:");
      for (const auto& u : users)
        std::printf(" (%.1fm, %+.0fdeg)", u.distance(),
                    u.azimuth() * 57.2958);
      std::printf("\n");
      const int n_frames = args.get("frames", 60);
      if (n_aps > 1) {
        // Multi-AP static path: per-AP channel stacks, AP-level faults,
        // attachment/handoff inside the session.
        geometry.prop = prop;
        const auto stacks = channel::ap_channel_stacks(geometry, users);
        const auto azimuths = channel::ap_user_azimuths(geometry, users);
        const auto plan = resolve_fault_plan(
            fault_arg, static_cast<std::uint32_t>(n_frames), users.size(),
            n_aps, relay_on);
        report = core::run_static_multi_ap(
            session, stacks, contexts, n_frames,
            stream_with_faults(plan, users.size(),
                               static_cast<std::uint32_t>(n_frames)),
            azimuths);
      } else if (!fault_arg.empty()) {
        const auto plan = resolve_fault_plan(
            fault_arg, static_cast<std::uint32_t>(n_frames), users.size(), 1,
            relay_on);
        report = core::run_static(
            session, core::channels_for(prop, users), contexts, n_frames,
            stream_with_faults(plan, users.size(),
                               static_cast<std::uint32_t>(n_frames)));
      } else {
        report = core::run_static(session, core::channels_for(prop, users),
                                  contexts, n_frames);
      }
    }

    // --- Report --------------------------------------------------------------
    std::printf("\n%s", report.summary_text().c_str());

    const std::string csv = args.get("csv", std::string{});
    if (!csv.empty()) {
      report.write_csv_file(csv);
      std::printf("per-frame CSV written to %s\n", csv.c_str());
    }

    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      obs::write_chrome_trace(out);
      std::printf("Chrome trace written to %s (open in Perfetto)\n",
                  trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      obs::write_json_snapshot(out, obs::MetricsRegistry::global());
      std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
    }

    const std::string manifest_out = args.get("manifest", std::string{});
    if (!manifest_out.empty()) {
      obs::Manifest manifest("w4k_sim");
      manifest.set("users", static_cast<int>(n_users));
      manifest.set("aps", static_cast<int>(n_aps));
      manifest.set("geometry", geometry_path.empty() ? "default-layout"
                                                     : geometry_path);
      manifest.set("relay", relay_on);
      manifest.set("scheme", args.get("scheme", std::string("opt-multicast")));
      manifest.set("schedule",
                   cfg.optimized_schedule ? "optimized" : "roundrobin");
      manifest.set("frames", static_cast<std::int64_t>(report.frames()));
      manifest.set("quarantine_after", cfg.quarantine_after);
      manifest.set("fault_plan", fault_arg.empty() ? "none" : fault_arg);
      manifest.set("seed", static_cast<std::int64_t>(seed));
      manifest.set_env("pool_threads",
                       static_cast<std::int64_t>(ThreadPool::shared().size()));
      const char* threads_env = std::getenv("W4K_THREADS");
      manifest.set_env("W4K_THREADS", threads_env ? threads_env : "");
      const char* scalar_env = std::getenv("W4K_FORCE_SCALAR");
      manifest.set_env("W4K_FORCE_SCALAR", scalar_env ? scalar_env : "");
      if (manifest.write_file(manifest_out))
        std::printf("run manifest written to %s\n", manifest_out.c_str());
    }

    // Every option has been queried by now: anything left is a typo.
    for (const auto& unknown : args.unqueried())
      throw std::invalid_argument("unknown option --" + unknown +
                                  " (see the header of w4k_sim.cpp)");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "w4k_sim: %s\n", e.what());
    return 1;
  }
}

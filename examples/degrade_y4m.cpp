// Offline codec tool: show what a receiver would see at a given link
// budget by pushing a Y4M clip through the layered codec and writing the
// partially-received reconstruction back out as Y4M.
//
//   degrade_y4m <in.y4m> <out.y4m> <megabits-per-second> [max-frames]
//
// With no arguments, generates a demo clip first and degrades that, so
// the example runs out of the box. Feed it a real Derf 4K clip to see the
// codec on real footage.
#include "common/stats.h"
#include "core/frame_context.h"
#include "video/io.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

/// Writes a short synthetic demo clip and returns its path.
std::string make_demo_clip() {
  using namespace w4k;
  const std::string path = "degrade_demo_in.y4m";
  video::VideoSpec spec;
  spec.width = 256;
  spec.height = 144;
  spec.frames = 30;
  spec.richness = video::Richness::kHigh;
  spec.seed = 5;
  const video::SyntheticVideo clip(spec);
  video::Y4mWriter writer(path, spec.width, spec.height);
  for (int t = 0; t < spec.frames; ++t) writer.write(clip.frame(t));
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace w4k;

  std::string in_path = argc > 1 ? argv[1] : make_demo_clip();
  const std::string out_path = argc > 2 ? argv[2] : "degrade_demo_out.y4m";
  // Default budget: enough for the lower layers plus a slice of layer 3.
  const double mbps = argc > 3 ? std::atof(argv[3]) : 8.0;
  const int max_frames = argc > 4 ? std::atoi(argv[4]) : 90;

  video::Y4mReader reader(in_path);
  const auto& hdr = reader.header();
  std::printf("input: %s (%dx%d @ %d/%d fps)\n", in_path.c_str(), hdr.width,
              hdr.height, hdr.fps_num, hdr.fps_den);
  video::Y4mWriter writer(out_path, hdr.width, hdr.height, hdr.fps_num,
                          hdr.fps_den);

  const double fps =
      static_cast<double>(hdr.fps_num) / std::max(1, hdr.fps_den);
  const double bytes_per_frame = mbps * 1e6 / 8.0 / fps;
  std::printf("link budget: %.1f Mbps -> %.0f bytes/frame\n", mbps,
              bytes_per_frame);

  std::vector<double> ssim_all;
  int frames = 0;
  while (auto frame = reader.next()) {
    if (frames >= max_frames) break;
    const video::EncodedFrame enc = video::encode(*frame);

    // Fill layers lowest-first with the per-frame byte budget — exactly
    // what the scheduler does when one user has the whole link.
    std::array<double, video::kNumLayers> fraction{};
    double remaining = bytes_per_frame;
    for (int l = 0; l < video::kNumLayers; ++l) {
      const double cap = static_cast<double>(
          video::layer_bytes(l, hdr.width, hdr.height));
      const double take = std::min(cap, remaining);
      fraction[static_cast<std::size_t>(l)] = cap > 0 ? take / cap : 0.0;
      remaining -= take;
    }
    const video::Frame rec = video::reconstruct(
        model::partial_from_fractions(enc, fraction));
    ssim_all.push_back(quality::ssim(*frame, rec));
    writer.write(rec);
    ++frames;
  }

  std::printf("wrote %d degraded frames to %s\n", frames, out_path.c_str());
  std::printf("quality at this budget: SSIM %s\n",
              to_string(summarize(ssim_all)).c_str());
  return 0;
}

// Sharded scenario-sweep campaign CLI (DESIGN.md Sec. 4i).
//
// Subcommands:
//   run       execute a campaign: spawn workers, merge shards, write
//             summary.json / cells.jsonl / timing.json / manifest.json;
//             with --baseline, gate the result statistically against a
//             blessed summary (exit 1 on gate failure)
//   worker    internal: stream cells [--begin, --end) into one shard
//   compare   gate one summary.json against another
//   describe  print the generated ScenarioSpec of one cell
//   selftest  end-to-end check: byte-stability across worker counts and
//             W4K_THREADS, gate pass on clean config, gate failure on an
//             injected stale-CSI-backoff regression
//
// Examples:
//   w4k_campaign run --seed 7 --cells 500 --workers 4 --out /tmp/camp
//       --model-cache build/campaign_model.cache
//       --baseline tests/golden/data/campaign_smoke.json
//   w4k_campaign describe --seed 7 --cell 42
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/shard.h"
#include "campaign/stats_gate.h"
#include "common/args.h"

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

using namespace w4k;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: w4k_campaign <run|worker|compare|describe|selftest> [options]\n"
      "  run      --seed N --cells N --workers N --out DIR\n"
      "           [--model-cache PATH] [--baseline SUMMARY.json]\n"
      "           [--stale-csi-backoff DB]\n"
      "  worker   --seed N --cells N --begin N --end N --out SHARD.jsonl\n"
      "           [--model-cache PATH] [--stale-csi-backoff DB]\n"
      "  compare  --current SUMMARY.json --baseline SUMMARY.json\n"
      "  describe --seed N --cell N\n"
      "  selftest --out DIR [--cells N] [--workers N] [--model-cache PATH]\n");
  return 2;
}

int reject_typos(const Args& args) {
  for (const std::string& name : args.unqueried()) {
    std::fprintf(stderr, "w4k_campaign: unknown option --%s\n", name.c_str());
    return 2;
  }
  return 0;
}

campaign::CampaignOptions common_options(const Args& args) {
  campaign::CampaignOptions opts;
  opts.campaign_seed =
      static_cast<std::uint64_t>(args.get("seed", 1));
  opts.n_cells = static_cast<std::uint64_t>(args.get("cells", 500));
  opts.n_workers = args.get("workers", 4);
  opts.out_dir = args.get("out", std::string{});
  opts.model_cache = args.get("model-cache", std::string{});
  opts.stale_csi_backoff_db = args.get("stale-csi-backoff", -1.0);
  return opts;
}

int cmd_run(const Args& args, const std::string& self_exe) {
  campaign::CampaignOptions opts = common_options(args);
  const std::string baseline = args.get("baseline", std::string{});
  if (const int rc = reject_typos(args)) return rc;
  if (opts.out_dir.empty()) {
    std::fprintf(stderr, "w4k_campaign run: --out is required\n");
    return 2;
  }
  const campaign::CampaignResult result =
      campaign::run_campaign(opts, self_exe);
  std::printf(
      "campaign: %llu cells, %llu ok, %llu failed "
      "(%d retried, %d crashed) in %.1f s -> %s\n",
      static_cast<unsigned long long>(result.summary.cells),
      static_cast<unsigned long long>(result.summary.ok),
      static_cast<unsigned long long>(result.summary.failed),
      result.cells_retried, result.cells_crashed, result.wall_ms / 1000.0,
      opts.out_dir.c_str());
  if (baseline.empty()) return 0;
  const campaign::GateReport gate =
      campaign::compare(result.summary, campaign::load_summary(baseline));
  campaign::print_gate_report(std::cout, gate);
  return gate.pass ? 0 : 1;
}

int cmd_worker(const Args& args) {
  campaign::CampaignOptions opts = common_options(args);
  const auto begin = static_cast<std::uint64_t>(args.get("begin", 0));
  const auto end = static_cast<std::uint64_t>(args.get("end", 0));
  if (const int rc = reject_typos(args)) return rc;
  if (opts.out_dir.empty() || end <= begin) {
    std::fprintf(stderr,
                 "w4k_campaign worker: need --out and --begin < --end\n");
    return 2;
  }
  return campaign::run_worker(opts, begin, end, opts.out_dir);
}

int cmd_compare(const Args& args) {
  const std::string current = args.get("current", std::string{});
  const std::string baseline = args.get("baseline", std::string{});
  if (const int rc = reject_typos(args)) return rc;
  if (current.empty() || baseline.empty()) {
    std::fprintf(stderr,
                 "w4k_campaign compare: need --current and --baseline\n");
    return 2;
  }
  const campaign::GateReport gate = campaign::compare(
      campaign::load_summary(current), campaign::load_summary(baseline));
  campaign::print_gate_report(std::cout, gate);
  return gate.pass ? 0 : 1;
}

int cmd_describe(const Args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1));
  const auto cell = static_cast<std::uint64_t>(args.get("cell", 0));
  if (const int rc = reject_typos(args)) return rc;
  std::fputs(campaign::ScenarioGen::cell(seed, cell).to_text().c_str(),
             stdout);
  return 0;
}

int cmd_selftest(const Args& args, const std::string& self_exe) {
  campaign::CampaignOptions opts = common_options(args);
  opts.n_cells = static_cast<std::uint64_t>(args.get("cells", 120));
  if (const int rc = reject_typos(args)) return rc;
  if (opts.out_dir.empty()) {
    std::fprintf(stderr, "w4k_campaign selftest: --out is required\n");
    return 2;
  }
  return campaign::run_selftest(opts, self_exe);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Args skips its argv[0]; handing it argv+1 makes the subcommand that
  // slot, so option parsing starts right after it.
  const Args args(argc - 1, argv + 1);
  try {
    if (cmd == "run") return cmd_run(args, campaign::self_executable(argv[0]));
    if (cmd == "worker") return cmd_worker(args);
    if (cmd == "compare") return cmd_compare(args);
    if (cmd == "describe") return cmd_describe(args);
    if (cmd == "selftest")
      return cmd_selftest(args, campaign::self_executable(argv[0]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "w4k_campaign %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}

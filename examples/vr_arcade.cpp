// VR arcade scenario — the paper's motivating use case: one WiGig AP
// streams live 4K content to several headsets in the same room.
//
// Six users sit 4-10 m from the AP across a 100-degree spread. The example
// compares all four beamforming schemes and the round-robin scheduler on
// identical placements, printing the per-user quality a player would see.
#include "common/stats.h"
#include "channel/array.h"
#include "core/experiment.h"
#include "core/pretrained.h"

#include <cstdio>

int main() {
  using namespace w4k;

  constexpr int kW = 256;
  constexpr int kH = 144;  // 1/240-scale stand-in for 4K (rates scaled too)

  // Content: a high-richness clip, the hard case for the codec.
  video::VideoSpec spec = video::standard_videos(kW, kH, 8)[0];
  const auto contexts = core::make_contexts(
      video::SyntheticVideo(spec), 6, core::scaled_symbol_size(kW, kH));

  model::QualityModel quality;
  core::ensure_trained(quality);

  // Headset placement: 6 seats, 4-10 m, 100-degree fan.
  Rng rng(2026);
  channel::PropagationConfig prop;
  const auto seats = core::place_users_random(6, 4.0, 10.0, 1.745, rng);
  const auto channels = core::channels_for(prop, seats);
  std::printf("seats:\n");
  for (std::size_t u = 0; u < seats.size(); ++u)
    std::printf("  headset %zu: %.1f m at %+.0f deg\n", u,
                seats[u].distance(), seats[u].azimuth() * 57.2958);

  // Commodity codebook for the pre-defined schemes.
  auto codebook = beamforming::make_multilevel_codebook(
      channel::kDefaultApAntennas, {{32, 20}, {8, 8}, {4, 4}});
  beamforming::append_dual_lobe_beams(codebook, channel::kDefaultApAntennas,
                                      14, 2, 1.06);

  std::printf("\n%-26s %-9s %-9s  per-headset SSIM\n", "configuration",
              "SSIM", "PSNR");
  core::Experiment exp(quality, contexts);
  exp.config() = core::SessionConfig::scaled(kW, kH);
  exp.codebook(codebook);
  exp.channels(channels);
  const auto run_one = [&](const char* label, beamforming::Scheme scheme,
                           bool optimized) {
    core::SessionConfig& cfg = exp.config();
    cfg.scheme = scheme;
    cfg.optimized_schedule = optimized;
    cfg.seed = 7;
    const core::SessionReport report = exp.run_static(10);
    std::printf("%-26s %-9.4f %-9.2f ", label,
                report.ssim_summary().mean, report.psnr_summary().mean);
    for (double s : report.per_user_mean_ssim())
      std::printf(" %.3f", s);
    std::printf("\n");
  };

  run_one("opt-multicast + opt-sched", beamforming::Scheme::kOptimizedMulticast,
          true);
  run_one("opt-multicast + roundrobin",
          beamforming::Scheme::kOptimizedMulticast, false);
  run_one("pre-defined multicast", beamforming::Scheme::kPredefinedMulticast,
          true);
  run_one("optimized unicast", beamforming::Scheme::kOptimizedUnicast, true);
  run_one("pre-defined unicast", beamforming::Scheme::kPredefinedUnicast,
          true);

  std::printf("\nthe full system (first row) should lead on both the mean\n"
              "and the worst headset - multicast beams serve shared layers\n"
              "to everyone at once, and the Eq. 1 optimizer spends airtime\n"
              "where the quality model says it buys the most SSIM.\n");
  return 0;
}

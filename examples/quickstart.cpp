// Quickstart: stream a synthetic 4K-scaled clip to two users over the
// emulated WiGig link and print per-user video quality.
//
// Walks the whole public API surface in ~80 lines:
//   1. generate a clip and build per-frame contexts (layered encode +
//      quality features + coding-unit layout),
//   2. train (or load) the DNN quality model,
//   3. place users, synthesize 60 GHz channels,
//   4. run the multicast session: beamforming -> Eq. 1 optimizer ->
//      Eq. 4 unit mapping -> leaky-bucket transmission -> SSIM/PSNR.
#include "common/stats.h"
#include "core/experiment.h"
#include "core/pretrained.h"

#include <cstdio>

int main() {
  using namespace w4k;

  // --- 1. Video -----------------------------------------------------------
  // 512x288 is a 1/60-scale stand-in for 4096x2160; link rates are scaled
  // by the same factor so the bandwidth-to-content regime matches 4K.
  video::VideoSpec spec;
  spec.name = "quickstart_hr";
  spec.width = 512;
  spec.height = 288;
  spec.frames = 30;
  spec.richness = video::Richness::kHigh;
  spec.seed = 7;
  const video::SyntheticVideo clip(spec);
  std::printf("clip: %s %dx%d, luma variance %.0f\n", spec.name.c_str(),
              spec.width, spec.height, video::luma_variance(clip.frame(0)));

  const auto contexts = core::make_contexts(
      clip, /*count=*/8, core::scaled_symbol_size(spec.width, spec.height));

  // --- 2. Quality model ---------------------------------------------------
  model::QualityModel quality;
  const double test_mse = core::ensure_trained(quality);
  std::printf("quality model ready (test MSE %.2e)\n", test_mse);

  // --- 3. Users & channels -------------------------------------------------
  Rng rng(42);
  channel::PropagationConfig prop;
  const auto users = core::place_users_fixed(/*n=*/2, /*distance=*/3.0,
                                             /*mas=*/1.0471976, rng);  // 60 deg
  const auto channels = core::channels_for(prop, users);
  for (std::size_t u = 0; u < users.size(); ++u)
    std::printf("user %zu: %.1f m, %.0f deg azimuth\n", u,
                users[u].distance(), users[u].azimuth() * 57.2958);

  // --- 4. Stream ------------------------------------------------------------
  core::Experiment exp(quality, contexts);
  exp.config() = core::SessionConfig::scaled(spec.width, spec.height);
  exp.channels(channels);

  const core::SessionReport report = exp.run_static(/*n_frames=*/30);

  const Summary ssim = report.ssim_summary();
  const Summary psnr = report.psnr_summary();
  std::printf("\nover 30 frames x %zu users:\n", users.size());
  std::printf("  SSIM %s\n", to_string(ssim).c_str());
  std::printf("  PSNR %s\n", to_string(psnr).c_str());
  const auto& last = report.frame(report.frames() - 1);
  std::printf("  decoded-unit fraction (last frame): %.2f / %.2f\n",
              last.decoded_fraction[0], last.decoded_fraction[1]);
  return 0;
}

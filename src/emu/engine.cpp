#include "emu/engine.h"

#include "common/thread_pool.h"
#include "obs/span.h"
#include "verify/invariants.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::emu {

TxEngine::TxEngine(const EngineConfig& cfg) : cfg_(cfg) {
  if (cfg.symbol_size == 0)
    throw std::invalid_argument("TxEngine: zero symbol size");
  if (cfg.queue_capacity_bytes == 0)
    throw std::invalid_argument("TxEngine: zero queue capacity");
}

FrameTxResult TxEngine::run_frame(
    const std::vector<sched::UnitSpec>& units,
    const std::vector<sched::UnitAssignment>& assignments,
    const std::vector<GroupTx>& groups, std::size_t n_users, Rng& rng,
    const FrameFaultState& faults) {
  FrameTxResult res;
  run_frame_into(units, assignments, groups, n_users, rng, faults, res);
  return res;
}

void TxEngine::run_frame_into(
    const std::vector<sched::UnitSpec>& units,
    const std::vector<sched::UnitAssignment>& assignments,
    const std::vector<GroupTx>& groups, std::size_t n_users, Rng& rng,
    const FrameFaultState& faults, FrameTxResult& res) {
  static const std::vector<RelayLink> kNoRelays;
  run_frame_into(units, assignments, groups, n_users, rng, faults, kNoRelays,
                 res);
}

void TxEngine::run_frame_into(
    const std::vector<sched::UnitSpec>& units,
    const std::vector<sched::UnitAssignment>& assignments,
    const std::vector<GroupTx>& groups, std::size_t n_users, Rng& rng,
    const FrameFaultState& faults, const std::vector<RelayLink>& relays,
    FrameTxResult& res) {
  const std::size_t wire = cfg_.header_bytes + cfg_.symbol_size;
  if (!(faults.budget_scale > 0.0 && faults.budget_scale <= 1.0))
    throw std::invalid_argument("run_frame: budget_scale outside (0, 1]");
  // A collapsed transmit budget shrinks the whole frame deadline: the
  // radio simply is not available past this point.
  const Seconds budget = cfg_.frame_budget * faults.budget_scale;
  const auto feedback_lost = [&](std::size_t u) {
    return u < faults.feedback_lost.size() && faults.feedback_lost[u] != 0;
  };

  // Row-by-row result reset so reused rows keep their capacity.
  res.blind_makeup_packets = 0;
  res.relayed_symbols = 0;
  res.stats = FrameTxStats{};
  if (res.user_symbols.size() != n_users) res.user_symbols.resize(n_users);
  if (res.user_decoded.size() != n_users) res.user_decoded.resize(n_users);
  for (auto& row : res.user_symbols) row.assign(units.size(), 0);
  for (auto& row : res.user_decoded) row.assign(units.size(), false);
  res.measured_rate.assign(groups.size(), Mbps{0.0});

  // Reception state: [user][unit]. Assigning an empty-prototype UnitRx over
  // the reused rows keeps each element's have_index capacity. Users are
  // independent, so systematic-mode bitmap setup fans out across the shared
  // pool (each chunk owns disjoint users).
  if (rx_.size() < n_users) rx_.resize(n_users);
  for (std::size_t u = 0; u < n_users; ++u)
    rx_[u].assign(units.size(), UnitRx{});
  if (!cfg_.source_coding) {
    ThreadPool::shared().parallel_for(
        0, n_users, /*grain=*/4, [&](std::size_t b, std::size_t e) {
          for (std::size_t u = b; u < e; ++u)
            for (std::size_t i = 0; i < units.size(); ++i)
              rx_[u][i].have_index.assign(units[i].k_symbols, false);
        });
  }

  // Per-(group,unit) sent counters, flat [group * n_units + unit]: ESI
  // sequencing and feedback deficits. A cell is nonzero iff that group
  // actually transmitted that unit (sends are the only increments).
  sent_.assign(groups.size() * units.size(), 0);
  relay_sent_.clear();  // refilled by the relay phase when links exist
  // Sender-global fresh-symbol counter per unit (source-coding mode).
  unit_next_esi_.assign(units.size(), 0);

  // --- Timeline state -----------------------------------------------------
  Seconds t = 0.0;  // sender-side enqueue clock
  // Drain stale backlog from previous frames first (rate control off):
  // those bytes occupy the radio before anything of this frame moves.
  Seconds drain_free = 0.0;
  if (backlog_bytes_ > 0.0 && backlog_rate_.value > 0.0) {
    const Seconds stale_air = backlog_rate_.seconds_for(backlog_bytes_);
    drain_free = std::min(budget, stale_air);
    backlog_bytes_ = std::max(
        0.0, backlog_bytes_ - backlog_rate_.bytes_in(budget));
  } else {
    backlog_bytes_ = 0.0;
  }

  // FIFO over a flat vector: queue_head_ is the pop cursor (entries behind
  // it are dead but keep the frame's capacity; both reset per frame).
  queue_.clear();
  queue_head_ = 0;
  double queue_bytes = backlog_bytes_;

  buckets_.clear();
  buckets_.reserve(groups.size());
  bucket_clock_.assign(groups.size(), 0.0);
  for (const auto& g : groups) {
    const Mbps fill = g.bucket_rate.value > 0.0 ? g.bucket_rate : g.drain_rate;
    buckets_.emplace_back(fill, std::max<std::size_t>(wire, cfg_.bucket_packets * wire));
  }

  double new_backlog = 0.0;
  double max_queue_bytes = queue_bytes;  // high-water mark for telemetry
  Mbps last_drain_rate{0.0};
  // Packet-conservation ledger (verify): every offered packet ends up in
  // exactly one of sent / dropped_queue / deferred-to-backlog /
  // abandoned-at-budget.
  std::size_t deferred_packets = 0;
  std::size_t abandoned_packets = 0;

  // Sends one symbol packet of `group` for unit `ui`. Returns false when
  // the frame budget is exhausted (packet deferred to backlog) and the
  // caller should stop offering packets.
  const auto send_packet = [&](std::size_t gi, std::size_t ui,
                               bool makeup) -> bool {
    ++res.stats.packets_offered;
    if (makeup) ++res.stats.makeup_packets;
    const GroupTx& g = groups[gi];
    if (g.drain_rate.value <= 0.0) {
      ++res.stats.packets_dropped_queue;
      return true;
    }

    if (cfg_.rate_control) {
      auto& bucket = buckets_[gi];
      if (t > bucket_clock_[gi]) {
        bucket.advance(t - bucket_clock_[gi]);
        bucket_clock_[gi] = t;
      }
      const Seconds wait = bucket.time_until(wire);
      if (wait > 0.0) {
        t += wait;
        bucket.advance(wait);
        bucket_clock_[gi] = t;
      }
      bucket.on_send(wire);
      if (t >= budget) {
        ++abandoned_packets;  // offered, but the frame deadline passed
        return false;
      }
    }

    // Kernel queue admission at enqueue time t (0 when rate control off).
    const Seconds enq = cfg_.rate_control ? t : 0.0;
    while (queue_head_ < queue_.size() &&
           queue_[queue_head_].drain_finish <= enq) {
      queue_bytes -= static_cast<double>(queue_[queue_head_].wire);
      ++queue_head_;
    }
    if (queue_bytes + static_cast<double>(wire) >
        static_cast<double>(cfg_.queue_capacity_bytes)) {
      ++res.stats.packets_dropped_queue;
      return true;
    }

    const Seconds air = g.drain_rate.seconds_for(static_cast<double>(wire));
    const Seconds start = std::max(drain_free, enq);
    const Seconds finish = start + air;
    last_drain_rate = g.drain_rate;

    if (finish > budget) {
      // Misses the frame deadline: rides in the queue into the next frame
      // as stale data (rate control keeps this path essentially unused).
      ++deferred_packets;
      new_backlog += static_cast<double>(wire);
      queue_.push_back(QueueEntry{finish, wire});
      queue_bytes += static_cast<double>(wire);
      max_queue_bytes = std::max(max_queue_bytes, queue_bytes);
      return !cfg_.rate_control;  // with RC, budget is up - stop offering
    }
    drain_free = finish;
    queue_.push_back(QueueEntry{finish, wire});
    queue_bytes += static_cast<double>(wire);
    max_queue_bytes = std::max(max_queue_bytes, queue_bytes);

    ++res.stats.packets_sent;
    res.stats.airtime += air;

    // Which symbol does this packet carry?
    const std::size_t seq = sent_[gi * units.size() + ui]++;
    std::size_t index = 0;
    bool innovative_symbol = true;
    if (cfg_.source_coding) {
      index = unit_next_esi_[ui]++;
    } else {
      // Systematic-only: each group cycles its unit's source symbols from
      // the beginning — overlapping groups duplicate prefixes.
      index = seq % units[ui].k_symbols;
      innovative_symbol = false;
    }

    for (std::size_t m = 0; m < g.members.size(); ++m) {
      const std::size_t u = g.members[m];
      const double loss = m < g.member_loss.size() ? g.member_loss[m] : 0.0;
      if (rng.chance(loss)) continue;
      UnitRx& state = rx_[u][ui];
      if (cfg_.source_coding) {
        (void)innovative_symbol;
        ++state.innovative;
        // Incremental decode attempt: succeeds for sure past k+1, and
        // with probability 255/256 at exactly k (dense GF(256) rank).
        // A failure at k is visible to the receiver, so its feedback
        // asks for one more symbol.
        if (!state.decoded && state.innovative >= units[ui].k_symbols) {
          const std::size_t h = state.innovative - units[ui].k_symbols;
          if (h == 0) {
            if (rng.chance(1.0 / 256.0)) state.needs_extra = true;
            else state.decoded = true;
          } else {
            state.decoded = true;
          }
        }
      } else if (!state.have_index[index]) {
        state.have_index[index] = true;
        ++state.innovative;
        state.decoded = state.innovative >= units[ui].k_symbols;
      }
    }
    return true;
  };

  // --- Initial pass: the optimizer's schedule ----------------------------
  bool budget_left = true;
  {
    static obs::Stage& st = obs::stage("emu.schedule");
    obs::StageSpan span(st);
    for (const auto& a : assignments) {
      if (a.group >= groups.size())
        throw std::invalid_argument("run_frame: assignment references "
                                    "unknown group");
      for (std::size_t s = 0; s < a.symbols && budget_left; ++s)
        budget_left = send_packet(a.group, a.unit_index, /*makeup=*/false);
      if (!budget_left) break;
    }
  }

  // --- Feedback + makeup rounds (Sec. 2.6) --------------------------------
  // Receivers whose feedback arrives file a ReceptionReport; the sender's
  // ReportCollector dedupes and tracks who is silent. A silent member costs
  // the group a blind worst-case budget (a fraction of each unit's k, with
  // the session's backoff already applied) in the first round only —
  // repeating the blanket every round would starve reporting users.
  std::size_t makeup_deficit = 0;  // total symbols the receivers asked for
  {
    static obs::Stage& st = obs::stage("emu.makeup");
    obs::StageSpan span(st);
    for (int round = 0; round < cfg_.feedback_rounds && budget_left;
         ++round) {
      t = std::max(t, drain_free) + cfg_.feedback_latency;
      if (t >= budget) break;
      if (!cfg_.rate_control) drain_free = std::max(drain_free, t);

      // Gather this round's reports from the live reception state. Both the
      // collector's slots and the staging report reuse their capacity.
      collector_.reset(faults.frame_id, n_users, units.size());
      for (std::size_t u = 0; u < n_users; ++u) {
        if (feedback_lost(u)) continue;
        report_.frame_id = faults.frame_id;
        report_.user = u;
        report_.symbols_received.resize(units.size());
        report_.unit_decoded.resize(units.size());
        for (std::size_t ui = 0; ui < units.size(); ++ui) {
          report_.symbols_received[ui] = rx_[u][ui].innovative;
          report_.unit_decoded[ui] = rx_[u][ui].decoded ? 1 : 0;
        }
        collector_.accept(report_);
      }

      bool any = false;
      for (std::size_t ui = 0; ui < units.size() && budget_left; ++ui) {
        for (std::size_t gi = 0; gi < groups.size() && budget_left; ++gi) {
          if (sent_[gi * units.size() + ui] == 0)
            continue;  // group doesn't own unit
          // Deficit P: worst member's shortfall toward decoding this unit
          // (a rank-deficient decode at exactly k asks for one extra).
          const std::size_t k = units[ui].k_symbols;
          std::size_t deficit = 0;
          std::size_t blind = 0;
          for (std::size_t u : groups[gi].members) {
            if (const auto need = collector_.deficit(u, ui, k)) {
              deficit = std::max(deficit, *need);
            } else if (round == 0) {
              // No report: conservative worst case, backed off per frame.
              const double frac = u < faults.blind_fraction.size()
                                      ? faults.blind_fraction[u]
                                      : 0.5;
              blind = std::max(
                  blind, std::max<std::size_t>(
                             1, static_cast<std::size_t>(std::ceil(
                                    static_cast<double>(k) * frac))));
            }
          }
          if (blind > deficit) {
            res.blind_makeup_packets += blind - deficit;
            deficit = blind;
          }
          makeup_deficit += deficit;
          for (std::size_t s = 0; s < deficit && budget_left; ++s) {
            any = true;
            budget_left = send_packet(gi, ui, /*makeup=*/true);
          }
        }
      }
      if (!any) break;
    }
  }

  // --- Peer-relay slots (base layer only) ---------------------------------
  // After the sender's own makeup rounds, each relay link forwards its
  // target's remaining base-layer deficit as freshly re-encoded fountain
  // symbols over the D2D side link. The slot occupies the same 60 GHz
  // medium, so every relay packet extends the shared airtime clock and the
  // loop stops the moment the Eq. 1 budget is exhausted — relayed + direct
  // can never exceed it. Skipped entirely in systematic mode: a relayer
  // can only generate fresh symbols by re-encoding a decoded unit.
  std::size_t relay_offered = 0;
  if (!relays.empty() && cfg_.source_coding) {
    static obs::Stage& st = obs::stage("emu.relay");
    obs::StageSpan span(st);
    relay_sent_.assign(n_users * units.size(), 0);
    for (const auto& rl : relays) {
      if (rl.relayer >= n_users || rl.target >= n_users ||
          rl.relayer == rl.target)
        throw std::invalid_argument("run_frame: bad relay link");
      if (rl.rate.value <= 0.0) continue;
      const Seconds air = rl.rate.seconds_for(static_cast<double>(wire));
      for (std::size_t ui = 0; ui < units.size(); ++ui) {
        if (units[ui].id.layer != 0) continue;        // base layer only
        if (!rx_[rl.relayer][ui].decoded) continue;   // nothing to re-encode
        UnitRx& tgt = rx_[rl.target][ui];
        if (tgt.decoded) continue;
        const std::size_t k = units[ui].k_symbols;
        const std::size_t need =
            tgt.innovative >= k ? 1 : k - tgt.innovative;
        for (std::size_t s = 0; s < need; ++s) {
          if (drain_free + air > budget) break;  // budget exhausted
          drain_free += air;
          ++relay_offered;
          ++res.stats.packets_offered;
          ++res.stats.packets_sent;
          ++res.stats.relay_packets;
          ++relay_sent_[rl.target * units.size() + ui];
          res.stats.airtime += air;
          res.stats.relay_airtime += air;
          if (rng.chance(rl.loss)) continue;  // lost on the side link
          ++tgt.innovative;
          ++res.relayed_symbols;
          if (!tgt.decoded && tgt.innovative >= k) {
            if (tgt.innovative == k) {
              if (rng.chance(1.0 / 256.0)) tgt.needs_extra = true;
              else tgt.decoded = true;
            } else {
              tgt.decoded = true;
            }
          }
        }
        if (drain_free + air > budget) break;
      }
    }
  }

  // --- Decode + measurement ----------------------------------------------
  // Per-user evaluation is embarrassingly parallel (reads only that user's
  // reception state, writes only that user's result rows).
  {
    static obs::Stage& st = obs::stage("emu.evaluate");
    obs::StageSpan span(st);
    ThreadPool::shared().parallel_for(
        0, n_users, /*grain=*/4, [&](std::size_t b, std::size_t e) {
          for (std::size_t u = b; u < e; ++u) {
            for (std::size_t ui = 0; ui < units.size(); ++ui) {
              res.user_symbols[u][ui] = rx_[u][ui].innovative;
              res.user_decoded[u][ui] = rx_[u][ui].decoded;
            }
          }
        });
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      // Probe packets arrive back-to-back at the drain rate; lost probes
      // stretch the measured spacing, so the estimate reflects the worst
      // member's goodput (which is what the bucket must not exceed), with
      // small measurement jitter.
      if (groups[gi].drain_rate.value > 0.0) {
        // Only members whose feedback arrived contribute a measurement; if
        // the whole group is silent the estimate stays 0 and next frame's
        // bucket falls back to the drain rate.
        double worst_loss = 0.0;
        bool any_report = false;
        for (std::size_t m = 0; m < groups[gi].members.size(); ++m) {
          if (feedback_lost(groups[gi].members[m])) continue;
          any_report = true;
          if (m < groups[gi].member_loss.size())
            worst_loss = std::max(worst_loss, groups[gi].member_loss[m]);
        }
        const double goodput =
            groups[gi].drain_rate.value * (1.0 - worst_loss);
        // The jitter draw stays unconditional to keep the rng stream
        // aligned whether or not reports arrived.
        const double jitter = rng.gaussian(0.0, 0.02);
        if (any_report)
          res.measured_rate[gi] =
              Mbps{std::max(0.0, goodput * (1.0 + jitter))};
      }
    }
  }

  // Whatever still sits in the queue past the deadline is next frame's
  // stale backlog.
  backlog_bytes_ = std::min(new_backlog,
                            static_cast<double>(cfg_.queue_capacity_bytes));
  backlog_rate_ = last_drain_rate;
  res.stats.backlog_packets_after =
      static_cast<std::size_t>(backlog_bytes_ / static_cast<double>(wire));

  // --- Conservation laws at the engine boundary (verify) ------------------
  if (verify::enabled()) {
    verify::check(
        res.stats.packets_offered ==
            res.stats.packets_sent + res.stats.packets_dropped_queue +
                deferred_packets + abandoned_packets,
        "emu.packet-conservation", [&] {
          return "offered " + std::to_string(res.stats.packets_offered) +
                 " != sent " + std::to_string(res.stats.packets_sent) +
                 " + dropped " +
                 std::to_string(res.stats.packets_dropped_queue) +
                 " + deferred " + std::to_string(deferred_packets) +
                 " + abandoned " + std::to_string(abandoned_packets);
        });
    verify::check(res.stats.airtime <= budget + 1e-9, "emu.airtime-budget",
                  [&] {
                    return "airtime " + std::to_string(res.stats.airtime) +
                           " s exceeds budget " + std::to_string(budget) +
                           " s";
                  });
    verify::check(backlog_bytes_ >= 0.0, "emu.backlog-nonnegative", [&] {
      return "backlog " + std::to_string(backlog_bytes_) + " bytes";
    });
    // A relay target is by contract quarantined out of this frame's
    // schedule: it must not also be a member of any transmitting group.
    for (const auto& rl : relays) {
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        bool member = false;
        for (std::size_t u : groups[gi].members)
          if (u == rl.target) member = true;
        verify::check(!member, "emu.relay-target-grouped", [&] {
          return "relay target " + std::to_string(rl.target) +
                 " is a member of scheduled group " + std::to_string(gi);
        });
      }
    }
    // Per-user reception never exceeds what was actually sent to any group
    // containing that user (received <= sent, per unit) — plus, for relay
    // targets, what their relayer forwarded.
    avail_.assign(n_users * units.size(), 0);
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      for (std::size_t ui = 0; ui < units.size(); ++ui) {
        const std::size_t count = sent_[gi * units.size() + ui];
        if (count == 0) continue;
        for (std::size_t u : groups[gi].members)
          avail_[u * units.size() + ui] += count;
      }
    for (std::size_t i = 0; i < relay_sent_.size(); ++i) avail_[i] += relay_sent_[i];
    for (std::size_t u = 0; u < n_users; ++u) {
      for (std::size_t ui = 0; ui < units.size(); ++ui) {
        verify::check(res.user_symbols[u][ui] <= avail_[u * units.size() + ui],
                      "emu.received-exceeds-sent", [&] {
                        return "user " + std::to_string(u) + " unit " +
                               std::to_string(ui) + ": received " +
                               std::to_string(res.user_symbols[u][ui]) +
                               " > sent " +
                               std::to_string(avail_[u * units.size() + ui]);
                      });
        verify::check(!res.user_decoded[u][ui] ||
                          res.user_symbols[u][ui] >= units[ui].k_symbols,
                      "emu.decode-below-k", [&] {
                        return "user " + std::to_string(u) + " unit " +
                               std::to_string(ui) + " decoded with " +
                               std::to_string(res.user_symbols[u][ui]) +
                               " < k " + std::to_string(units[ui].k_symbols);
                      });
      }
    }
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      verify::check(res.measured_rate[gi].value >= 0.0,
                    "emu.negative-measured-rate", [&] {
                      return "group " + std::to_string(gi) + ": " +
                             std::to_string(res.measured_rate[gi].value) +
                             " Mbps";
                    });
  }

  // One batched telemetry flush per frame (never per packet).
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_frames = reg.counter("emu.frames");
    static obs::Counter& c_offered = reg.counter("emu.packets_offered");
    static obs::Counter& c_sent = reg.counter("emu.packets_sent");
    static obs::Counter& c_dropped = reg.counter("emu.packets_dropped_queue");
    static obs::Counter& c_makeup = reg.counter("emu.makeup_packets");
    static obs::Counter& c_deficit = reg.counter("emu.makeup_deficit_symbols");
    static obs::Counter& c_blind = reg.counter("emu.blind_makeup_packets");
    static obs::Counter& c_relay = reg.counter("emu.relay_packets");
    static obs::Counter& c_relayed = reg.counter("emu.relayed_symbols");
    static obs::Counter& c_collapsed = reg.counter("emu.budget_collapsed_frames");
    static obs::Gauge& g_backlog = reg.gauge("emu.backlog_packets");
    static obs::Histogram& h_depth = reg.histogram(
        "emu.queue_depth_pkts", {0.0, 16.0, 64.0, 256.0, 1024.0, 4096.0});
    c_frames.add(1);
    c_offered.add(res.stats.packets_offered);
    c_sent.add(res.stats.packets_sent);
    c_dropped.add(res.stats.packets_dropped_queue);
    c_makeup.add(res.stats.makeup_packets);
    c_deficit.add(makeup_deficit);
    c_blind.add(res.blind_makeup_packets);
    c_relay.add(relay_offered);
    c_relayed.add(res.relayed_symbols);
    if (faults.budget_scale < 1.0) c_collapsed.add(1);
    g_backlog.set(static_cast<double>(res.stats.backlog_packets_after));
    h_depth.observe(max_queue_bytes / static_cast<double>(wire));
  }
}

}  // namespace w4k::emu

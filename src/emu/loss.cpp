#include "emu/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace w4k::emu {
namespace {

/// NaN-proof clamp: std::clamp(NaN, 0, 1) would return NaN, and a NaN loss
/// probability poisons every downstream Bernoulli draw. A link whose loss
/// cannot be computed is treated as dead, not as undefined.
double clamp01(double p) {
  if (!std::isfinite(p)) return 1.0;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace

void LossModel::validate() const {
  const auto bad = [](const char* field, double v) {
    throw std::invalid_argument(std::string("LossModel.") + field +
                                ": must be finite and >= 0 (got " +
                                std::to_string(v) + ")");
  };
  // `!(x >= 0)` style so NaN fails too.
  if (!(floor >= 0.0) || !std::isfinite(floor)) bad("floor", floor);
  if (!(at_zero_margin >= 0.0) || !std::isfinite(at_zero_margin))
    bad("at_zero_margin", at_zero_margin);
  if (!(decay_per_db >= 0.0) || !std::isfinite(decay_per_db))
    bad("decay_per_db", decay_per_db);
  if (!(growth_per_db >= 0.0) || !std::isfinite(growth_per_db))
    bad("growth_per_db", growth_per_db);
  if (!(mac_retries >= 0.0) || !std::isfinite(mac_retries))
    bad("mac_retries", mac_retries);
}

double monitor_loss(const LossModel& m, Dbm rss,
                    const channel::McsEntry& mcs) {
  const double margin = rss.value - mcs.sensitivity.value;
  if (!std::isfinite(margin)) return 1.0;  // corrupt CSI: link is dead
  double p;
  if (margin >= 0.0) {
    p = m.floor + m.at_zero_margin * std::exp(-m.decay_per_db * margin);
  } else {
    p = m.at_zero_margin * std::exp(-m.growth_per_db * margin);
  }
  return clamp01(p);
}

double associated_loss(const LossModel& m, Dbm rss,
                       const channel::McsEntry& mcs) {
  const double p = monitor_loss(m, rss, mcs);
  return clamp01(std::pow(p, m.mac_retries));
}

}  // namespace w4k::emu

#include "emu/loss.h"

#include <algorithm>
#include <cmath>

namespace w4k::emu {

double monitor_loss(const LossModel& m, Dbm rss,
                    const channel::McsEntry& mcs) {
  const double margin = rss.value - mcs.sensitivity.value;
  double p;
  if (margin >= 0.0) {
    p = m.floor + m.at_zero_margin * std::exp(-m.decay_per_db * margin);
  } else {
    p = m.at_zero_margin * std::exp(-m.growth_per_db * margin);
  }
  return std::clamp(p, 0.0, 1.0);
}

double associated_loss(const LossModel& m, Dbm rss,
                       const channel::McsEntry& mcs) {
  const double p = monitor_loss(m, rss, mcs);
  return std::clamp(std::pow(p, m.mac_retries), 0.0, 1.0);
}

}  // namespace w4k::emu

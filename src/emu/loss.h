// Packet-loss model for WiGig links under pseudo multicast (Sec. 3.2).
//
// The paper associates one STA normally (it enjoys MAC-layer ARQ and CSMA
// backoff) and puts the rest in monitor mode (they sniff the same frames
// with no link-layer recovery). Loss probability is driven by the margin
// between the instantaneous RSS and the sensitivity of the MCS in use:
// at the moment of MCS selection the margin is >= 0, but the channel moves
// between beacon updates, so margins can go negative mid-frame in mobile
// traces — exactly the regime where fountain-coded makeup packets matter.
#pragma once

#include "channel/mcs.h"
#include "common/units.h"

namespace w4k::emu {

struct LossModel {
  /// Residual loss floor even with ample margin (interference, CRC).
  double floor = 0.001;
  /// Loss at exactly 0 dB margin for a monitor-mode receiver.
  double at_zero_margin = 0.08;
  /// Exponential decay of loss per dB of positive margin.
  double decay_per_db = 1.2;
  /// Growth of loss per dB of negative margin.
  double growth_per_db = 1.0;
  /// MAC retry factor for the associated STA: its effective loss is the
  /// monitor-mode loss raised to this power (independent retries).
  double mac_retries = 2.0;

  /// Throws std::invalid_argument naming the offending field
  /// ("LossModel.floor: ...") on negative, NaN, or otherwise non-finite
  /// parameters. SessionConfig::validate() calls this for its loss member.
  void validate() const;
};

/// Per-packet loss probability for a monitor-mode receiver at the given
/// RSS under the given MCS. Always in [0, 1]: non-finite inputs (e.g. an
/// RSS computed from a corrupted CSI beacon) saturate to certain loss
/// instead of propagating NaN into the reception sampling.
double monitor_loss(const LossModel& m, Dbm rss, const channel::McsEntry& mcs);

/// Per-packet loss probability for the associated (MAC-ARQ) receiver.
/// Clamped to [0, 1] with the same non-finite saturation.
double associated_loss(const LossModel& m, Dbm rss,
                       const channel::McsEntry& mcs);

}  // namespace w4k::emu

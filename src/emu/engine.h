// Per-frame transmission engine.
//
// Simulates one video frame's air transmissions for the pseudo-multicast
// setup: the sender drains a kernel packet queue serialized over one radio,
// pacing either through per-group leaky buckets (rate control on) or by
// dumping the whole frame burst into the queue (rate control off — the
// Fig. 9 baseline, where queue overflow drops packets and leftovers bleed
// into the next frame). Each delivered packet reaches every group member
// independently per the loss model; reception is tracked per coding unit,
// either as innovative-symbol counts (source coding on) or as bitmaps of
// specific systematic symbol indices (source coding off — the Fig. 10/14
// baseline, where overlapping groups duplicate data and retransmissions
// help only receivers missing that exact index).
//
// Feedback rounds implement Sec. 2.6's makeup scheme: receivers report
// per-unit per-group reception counts, the sender computes the deficit
// P = sent - received and transmits P additional (fresh) symbols, all
// within the same 1/FR frame budget.
#pragma once

#include "common/rng.h"
#include "emu/loss.h"
#include "sched/unitmap.h"
#include "transport/feedback.h"
#include "transport/leaky_bucket.h"
#include "transport/packet.h"

#include <cstdint>
#include <vector>

namespace w4k::emu {

/// Transmission parameters of one multicast group for this frame.
struct GroupTx {
  std::vector<std::size_t> members;
  channel::McsEntry mcs;             ///< MCS forced by the sender
  /// Air rate the queue drains at for this group's packets. The caller may
  /// scale Table 2 rates (e.g. for reduced-resolution frames).
  Mbps drain_rate{0.0};
  /// Rate the leaky bucket fills at (receiver's bandwidth feedback from
  /// the previous frame; defaults to drain_rate when there is none).
  Mbps bucket_rate{0.0};
  /// Per-member packet loss probability at the current (true) channel.
  std::vector<double> member_loss;
};

struct EngineConfig {
  std::size_t symbol_size = fec::kDefaultSymbolSize;
  /// Per-packet header overhead on the air. Scaled emulations set this to
  /// 0: at 4K the real 16 B amounts to 0.27% and scaling the symbol size
  /// down would otherwise inflate it to a distorting ~15%.
  std::size_t header_bytes = transport::Packet::kHeaderBytes;
  Seconds frame_budget = kFrameBudget;
  bool rate_control = true;
  bool source_coding = true;
  std::size_t bucket_packets = 10;    ///< leaky bucket depth (Sec. 2.7)
  std::size_t queue_capacity_bytes = 6'000'000;  ///< kernel/driver queue
  int feedback_rounds = 2;
  Seconds feedback_latency = 0.8e-3;  ///< per round, deducted from budget
};

struct FrameTxStats {
  std::size_t packets_offered = 0;   ///< schedule + makeup packets
  std::size_t packets_sent = 0;      ///< actually transmitted over the air
  std::size_t packets_dropped_queue = 0;
  std::size_t makeup_packets = 0;
  std::size_t relay_packets = 0;     ///< D2D peer-relay transmissions
  Seconds airtime = 0.0;             ///< includes relay slots (shared medium)
  Seconds relay_airtime = 0.0;       ///< the relay share of `airtime`
  std::size_t backlog_packets_after = 0;
};

struct FrameTxResult {
  /// user_symbols[u][i]: innovative symbols user u holds for frame unit i.
  std::vector<std::vector<std::size_t>> user_symbols;
  /// user_decoded[u][i]: unit decodable (includes the rateless-code
  /// residual failure probability when exactly k symbols arrived).
  std::vector<std::vector<bool>> user_decoded;
  /// Per-group bandwidth the receivers measured this frame (probe packets
  /// arrive back-to-back at the drain rate); feeds next frame's buckets.
  std::vector<Mbps> measured_rate;
  /// Makeup symbols sent blind for users whose feedback never arrived.
  std::size_t blind_makeup_packets = 0;
  /// Innovative symbols that actually reached a relay target (<= the
  /// relay_packets that were transmitted; the side link loses the rest).
  std::size_t relayed_symbols = 0;
  FrameTxStats stats;
};

/// One peer-relay slot for this frame (Sec. "Quality-aware relaying"
/// lineage): a line-of-sight user that decoded a base-layer unit re-encodes
/// it and forwards fresh fountain symbols to one quarantined target over a
/// D2D side link. The slot shares the room's 60 GHz medium, so its airtime
/// is charged against the same Eq. 1 frame budget as the AP's own
/// transmissions. Only base-layer units are relayed, only in source-coding
/// mode (re-encoding needs the rateless code), and relayed symbols feed the
/// target's existing innovative-symbol decoder — no second decode path.
struct RelayLink {
  std::size_t relayer = 0;
  std::size_t target = 0;
  Mbps rate{0.0};     ///< D2D air rate the relay slot drains at
  double loss = 0.0;  ///< per-symbol delivery loss on the side link
};

/// Per-frame fault state handed to run_frame by the hardened session: a
/// collapsed transmit budget and the set of users whose feedback report
/// never reached the sender this frame. Default-constructed = no faults,
/// and run_frame with the defaults is bit-identical to the pre-fault
/// engine.
struct FrameFaultState {
  std::uint32_t frame_id = 0;
  /// Fraction of cfg.frame_budget actually available (NIC stall).
  double budget_scale = 1.0;
  /// feedback_lost[u] != 0: user u's report is missing; empty = all arrive.
  std::vector<std::uint8_t> feedback_lost;
  /// Blind worst-case makeup budget for a silent user, as a fraction of
  /// each unit's k (the session applies its capped exponential backoff
  /// here before calling). Empty = 0.5 for every user.
  std::vector<double> blind_fraction;
};

/// Stateful across frames only through the kernel-queue backlog (rate
/// control off) — everything else is per-frame.
class TxEngine {
 public:
  explicit TxEngine(const EngineConfig& cfg);

  const EngineConfig& config() const { return cfg_; }

  /// Simulates one frame. `units` and `assignments` come from
  /// sched::frame_units / sched::map_to_units; `groups` must cover every
  /// group index referenced by the assignments. `faults` (optional)
  /// collapses the budget and silences per-user feedback for this frame.
  FrameTxResult run_frame(const std::vector<sched::UnitSpec>& units,
                          const std::vector<sched::UnitAssignment>& assignments,
                          const std::vector<GroupTx>& groups,
                          std::size_t n_users, Rng& rng,
                          const FrameFaultState& faults = {});

  /// Same simulation writing into a caller-owned result. Both the result's
  /// per-user rows and the engine's internal scratch (reception state,
  /// packet queue, buckets, feedback collector) reuse their capacity
  /// across frames, so a steady-state frame performs zero heap
  /// allocations. Bit-identical to run_frame().
  void run_frame_into(const std::vector<sched::UnitSpec>& units,
                      const std::vector<sched::UnitAssignment>& assignments,
                      const std::vector<GroupTx>& groups, std::size_t n_users,
                      Rng& rng, const FrameFaultState& faults,
                      FrameTxResult& res);

  /// Relay-aware variant: after the makeup rounds, each RelayLink forwards
  /// the target's base-layer deficit (re-encoded by the relayer) within
  /// whatever frame budget remains. With `relays` empty this is
  /// bit-identical to the overload above — same RNG stream, same output.
  void run_frame_into(const std::vector<sched::UnitSpec>& units,
                      const std::vector<sched::UnitAssignment>& assignments,
                      const std::vector<GroupTx>& groups, std::size_t n_users,
                      Rng& rng, const FrameFaultState& faults,
                      const std::vector<RelayLink>& relays,
                      FrameTxResult& res);

  /// Stale bytes still queued from previous frames.
  double backlog_bytes() const { return backlog_bytes_; }
  void clear_backlog() { backlog_bytes_ = 0.0; backlog_rate_ = Mbps{0.0}; }

 private:
  /// Per-user reception state for one coding unit.
  struct UnitRx {
    std::size_t innovative = 0;          ///< source-coding mode
    bool decoded = false;
    /// Set when the decode attempt at exactly k symbols hit the residual
    /// 1/256 rank deficiency; one more symbol almost surely completes it.
    bool needs_extra = false;
    std::vector<bool> have_index;        ///< systematic mode (size k)
  };

  struct QueueEntry {
    Seconds drain_finish = 0.0;
    std::size_t wire = 0;
  };

  EngineConfig cfg_;
  double backlog_bytes_ = 0.0;
  Mbps backlog_rate_{0.0};  ///< drain rate of the stale backlog

  // --- Per-frame scratch (reset by run_frame_into, capacity reused) ------
  std::vector<std::vector<UnitRx>> rx_;      ///< [user][unit]
  std::vector<std::size_t> sent_;            ///< [group * n_units + unit]
  std::vector<std::size_t> unit_next_esi_;   ///< fresh-ESI counter per unit
  std::vector<QueueEntry> queue_;            ///< FIFO via queue_head_ cursor
  std::size_t queue_head_ = 0;
  std::vector<transport::LeakyBucket> buckets_;
  std::vector<Seconds> bucket_clock_;
  transport::ReportCollector collector_{0, 0, 0};
  transport::ReceptionReport report_;        ///< reused report scratch
  std::vector<std::size_t> avail_;           ///< verify replay, flat [u][i]
  std::vector<std::size_t> relay_sent_;      ///< verify ledger, flat [u][i]
};

}  // namespace w4k::emu

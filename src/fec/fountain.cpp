#include "fec/fountain.h"

#include "common/thread_pool.h"
#include "gf256/gf256.h"
#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace w4k::fec {
namespace {

// Telemetry (guarded by obs::enabled(); one relaxed add per symbol).
obs::Counter& symbols_encoded() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fec.symbols_encoded");
  return c;
}
obs::Counter& symbols_received() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fec.symbols_received");
  return c;
}
obs::Counter& symbols_innovative() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fec.symbols_innovative");
  return c;
}
obs::Counter& units_decoded() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fec.units_decoded");
  return c;
}

}  // namespace

void coefficient_row_into(std::uint64_t block_seed, Esi esi,
                          std::span<std::uint8_t> row) {
  const std::size_t k = row.size();
  if (esi < k) {
    std::fill(row.begin(), row.end(), 0);
    row[esi] = 1;
    return;
  }
  // Dense random row seeded by (block_seed, esi). Mixing the ESI through
  // the seed keeps rows independent across symbols of the same block.
  Rng rng(block_seed ^ (0x9E3779B97F4A7C15ULL * (esi + 1)));
  bool any = false;
  for (auto& c : row) {
    c = static_cast<std::uint8_t>(rng.below(256));
    any |= (c != 0);
  }
  if (!any) row[esi % k] = 1;  // astronomically rare; keep the row usable
}

std::vector<std::uint8_t> coefficient_row(std::uint64_t block_seed, Esi esi,
                                          std::size_t k) {
  std::vector<std::uint8_t> row(k);
  coefficient_row_into(block_seed, esi, row);
  return row;
}

FountainEncoder::FountainEncoder(std::span<const std::uint8_t> data,
                                 std::size_t symbol_size,
                                 std::uint64_t block_seed)
    : symbol_size_(symbol_size),
      block_seed_(block_seed),
      source_size_(data.size()) {
  if (symbol_size == 0)
    throw std::invalid_argument("FountainEncoder: symbol_size must be > 0");
  if (data.empty())
    throw std::invalid_argument("FountainEncoder: data must be non-empty");
  k_ = (data.size() + symbol_size - 1) / symbol_size;
  padded_.assign(k_ * symbol_size_, 0);
  std::copy(data.begin(), data.end(), padded_.begin());
}

void FountainEncoder::encode_into(Esi esi, Symbol& out) const {
  if (obs::enabled()) symbols_encoded().add(1);
  out.esi = esi;
  if (esi < k_) {
    // Systematic symbol: construct straight from the padded block (no
    // zero-fill-then-copy).
    const auto* src =
        padded_.data() + static_cast<std::size_t>(esi) * symbol_size_;
    out.data.assign(src, src + symbol_size_);
    return;
  }
  out.data.assign(symbol_size_, 0);
  // Per-thread scratch row: repair encoding is called k times per unit per
  // receiver deficit, and a fresh allocation per call showed up in the
  // Fig. 2 profile.
  thread_local std::vector<std::uint8_t> coeffs;
  coeffs.resize(k_);
  coefficient_row_into(block_seed_, esi, coeffs);
  for (std::size_t i = 0; i < k_; ++i) {
    if (coeffs[i] == 0) continue;
    gf256::mul_add_row(
        out.data,
        std::span<const std::uint8_t>(padded_.data() + i * symbol_size_,
                                      symbol_size_),
        coeffs[i]);
  }
}

Symbol FountainEncoder::encode(Esi esi) const {
  Symbol s;
  encode_into(esi, s);
  return s;
}

void FountainEncoder::encode_batch_into(Esi first, std::size_t count,
                                        std::span<Symbol> out) const {
  if (out.size() < count)
    throw std::invalid_argument("encode_batch_into: output span too small");
  // Each slot is written by exactly one chunk, and every symbol depends
  // only on (padded_, block_seed_, esi), so any pool size produces the
  // serial result bit for bit.
  ThreadPool::shared().parallel_for(
      0, count, /*grain=*/1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          encode_into(first + static_cast<Esi>(i), out[i]);
      });
}

std::vector<Symbol> FountainEncoder::encode_batch(Esi first,
                                                  std::size_t count) const {
  std::vector<Symbol> out(count);
  encode_batch_into(first, count, out);
  return out;
}

Symbol FountainEncoder::next() { return encode(next_esi_++); }

FountainDecoder::FountainDecoder(std::size_t k, std::size_t symbol_size,
                                 std::size_t source_size,
                                 std::uint64_t block_seed)
    : k_(k),
      symbol_size_(symbol_size),
      source_size_(source_size),
      block_seed_(block_seed),
      rows_(k) {
  if (k == 0 || symbol_size == 0)
    throw std::invalid_argument("FountainDecoder: k and symbol_size > 0");
  if (source_size > k * symbol_size)
    throw std::invalid_argument("FountainDecoder: source_size too large");
}

void FountainDecoder::reset(std::size_t k, std::size_t symbol_size,
                            std::size_t source_size,
                            std::uint64_t block_seed) {
  if (k == 0 || symbol_size == 0)
    throw std::invalid_argument("FountainDecoder: k and symbol_size > 0");
  if (source_size > k * symbol_size)
    throw std::invalid_argument("FountainDecoder: source_size too large");
  k_ = k;
  symbol_size_ = symbol_size;
  source_size_ = source_size;
  block_seed_ = block_seed;
  symbols_seen_ = 0;
  pivots_filled_ = 0;
  // resize keeps existing Row objects (and their buffer capacity); only
  // clear the occupancy flags.
  rows_.resize(k);
  for (Row& r : rows_) r.present = false;
}

bool FountainDecoder::add_symbol(const Symbol& s) {
  ++symbols_seen_;
  if (obs::enabled()) symbols_received().add(1);
  if (s.data.size() != symbol_size_) return false;
  if (can_decode()) return false;

  scratch_coeffs_.resize(k_);
  coefficient_row_into(block_seed_, s.esi, scratch_coeffs_);
  scratch_data_.assign(s.data.begin(), s.data.end());
  std::vector<std::uint8_t>& coeffs = scratch_coeffs_;
  std::vector<std::uint8_t>& data = scratch_data_;

  // Reduce against the existing echelon basis.
  for (std::size_t p = 0; p < k_; ++p) {
    if (coeffs[p] == 0 || !rows_[p].present) continue;
    const std::uint8_t f = coeffs[p];
    gf256::mul_add_row(coeffs, rows_[p].coeffs, f);
    gf256::mul_add_row(data, rows_[p].data, f);
  }
  // Find the leading nonzero; none -> redundant symbol.
  std::size_t lead = k_;
  for (std::size_t p = 0; p < k_; ++p) {
    if (coeffs[p] != 0) {
      lead = p;
      break;
    }
  }
  if (lead == k_) return false;

  // Normalize so the pivot is 1; the reduction loop above then only needs
  // a single mul_add per pivot.
  const std::uint8_t pivot_inv = gf256::inv(coeffs[lead]);
  gf256::scale_row(coeffs, pivot_inv);
  gf256::scale_row(data, pivot_inv);

  // Swap (not move) so the displaced buffers become the next call's
  // scratch: the buffer set circulates with zero steady-state allocation.
  rows_[lead].coeffs.swap(scratch_coeffs_);
  rows_[lead].data.swap(scratch_data_);
  rows_[lead].present = true;
  ++pivots_filled_;
  if (obs::enabled()) {
    symbols_innovative().add(1);
    if (can_decode()) units_decoded().add(1);
  }
  return true;
}

bool FountainDecoder::decode_into(std::vector<std::uint8_t>& out,
                                  DecodeWorkspace& ws) const {
  if (!can_decode()) return false;

  // Back substitution over a copy of the echelon rows (the decoder stays
  // usable afterwards); the copies live in the workspace and keep their
  // capacity across calls.
  ws.coeffs.resize(k_);
  ws.data.resize(k_);
  for (std::size_t p = 0; p < k_; ++p) {
    ws.coeffs[p] = rows_[p].coeffs;
    ws.data[p] = rows_[p].data;
  }
  for (std::size_t p = k_; p-- > 0;) {
    for (std::size_t r = 0; r < p; ++r) {
      const std::uint8_t f = ws.coeffs[r][p];
      if (f == 0) continue;
      gf256::mul_add_row(ws.coeffs[r], ws.coeffs[p], f);
      gf256::mul_add_row(ws.data[r], ws.data[p], f);
    }
  }
  out.assign(source_size_, 0);
  for (std::size_t p = 0; p < k_; ++p) {
    const std::size_t offset = p * symbol_size_;
    if (offset >= source_size_) break;
    const std::size_t n = std::min(symbol_size_, source_size_ - offset);
    std::copy(ws.data[p].begin(),
              ws.data[p].begin() + static_cast<std::ptrdiff_t>(n),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> FountainDecoder::decode() const {
  DecodeWorkspace ws;
  std::vector<std::uint8_t> out;
  if (!decode_into(out, ws)) return std::nullopt;
  return out;
}

}  // namespace w4k::fec

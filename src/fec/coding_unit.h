// Coding-unit framing (Sec. 2.6).
//
// The paper uses one Jigsaw *sublayer* as the rateless coding unit, with
// 20 symbols of 6000 B each. Packets within a coding unit are equivalent
// (any of them contributes the same amount toward decoding) while packets
// of different units carry disjoint information — this is what lets the
// scheduler track reception at sublayer granularity instead of per packet.
#pragma once

#include "fec/fountain.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace w4k::fec {

/// Paper defaults: symbol size 6000 B (Fig. 2 sweet spot), 20 symbols per
/// sublayer.
inline constexpr std::size_t kDefaultSymbolSize = 6000;
inline constexpr std::size_t kDefaultSymbolsPerUnit = 20;

/// Identifies a coding unit inside one video frame: (layer, sublayer).
struct UnitId {
  std::uint16_t layer = 0;
  std::uint16_t sublayer = 0;

  friend auto operator<=>(const UnitId&, const UnitId&) = default;
};

/// Sender-side state for one coding unit: a fountain encoder plus the count
/// of symbols already emitted, so retransmissions continue the ESI sequence
/// instead of repeating symbols (repeats would be redundant for receivers
/// that already hold them).
class UnitEncoder {
 public:
  UnitEncoder(UnitId id, std::vector<std::uint8_t> payload,
              std::size_t symbol_size, std::uint64_t frame_seed);

  const UnitId& id() const { return id_; }
  std::size_t k() const { return encoder_.k(); }
  std::size_t symbol_size() const { return encoder_.symbol_size(); }
  std::size_t source_size() const { return encoder_.source_size(); }
  std::uint64_t block_seed() const { return encoder_.block_seed(); }
  Esi symbols_emitted() const { return next_esi_; }

  /// Emits the next fresh symbol (never repeats an ESI).
  Symbol emit();

 private:
  UnitId id_;
  FountainEncoder encoder_;
  Esi next_esi_ = 0;
};

/// Receiver-side state for one coding unit.
class UnitDecoder {
 public:
  UnitDecoder(UnitId id, std::size_t k, std::size_t symbol_size,
              std::size_t source_size, std::uint64_t frame_seed);

  const UnitId& id() const { return id_; }
  bool add_symbol(const Symbol& s) { return decoder_.add_symbol(s); }
  bool complete() const { return decoder_.can_decode(); }
  std::size_t rank() const { return decoder_.rank(); }
  std::size_t k() const { return decoder_.k(); }
  std::size_t symbols_seen() const { return decoder_.symbols_seen(); }
  std::optional<std::vector<std::uint8_t>> decode() const {
    return decoder_.decode();
  }

 private:
  UnitId id_;
  FountainDecoder decoder_;
};

/// Derives the per-unit block seed from a frame seed, so every coding unit
/// of every frame uses an independent coefficient stream while sender and
/// receivers stay in sync without exchanging seeds.
std::uint64_t unit_seed(std::uint64_t frame_seed, UnitId id);

}  // namespace w4k::fec

// Systematic rateless (fountain) code over GF(256).
//
// Stands in for the paper's RaptorQ port (Sec. 2.6). A source block of K
// symbols is expanded into an unbounded stream: encoding symbol id (ESI)
// 0..K-1 are the source symbols verbatim (systematic part); ESI >= K are
// dense random linear combinations over GF(256) whose coefficients are
// derived deterministically from (block seed, ESI), so sender and receiver
// never exchange coefficient vectors.
//
// Properties this shares with RaptorQ, which are the ones the paper's
// design relies on:
//   * rateless: the sender can generate fresh symbols forever ("the sender
//     continuously generates data stream until the receivers can decode");
//   * any-K-ish decodability: receiving K + h symbols decodes with
//     probability ~ 1 - 1/256^(h+1) (dense random matrices over GF(q) are
//     full rank with probability prod_{i>h}(1 - q^-i));
//   * symbols are interchangeable within a block: two distinct coded
//     symbols always carry different information, so multicast groups can
//     be assigned disjoint ESI ranges with zero redundancy.
//
// The decoder performs incremental Gaussian elimination: each arriving
// symbol is reduced against the current echelon basis, so rank is tracked
// online and decode() is a back-substitution once rank == K.
#pragma once

#include "common/rng.h"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace w4k::fec {

/// Encoding symbol id. ESI < K: systematic; ESI >= K: repair.
using Esi = std::uint32_t;

/// Derives the GF(256) coefficient row for an encoding symbol.
/// Systematic ESIs produce unit rows; repair ESIs produce dense rows with
/// a guaranteed nonzero element. Deterministic in (block_seed, esi, k).
std::vector<std::uint8_t> coefficient_row(std::uint64_t block_seed, Esi esi,
                                          std::size_t k);

/// Allocation-free variant: writes the coefficient row into `row`, which
/// must have size k. Lets hot loops reuse a per-thread scratch buffer.
void coefficient_row_into(std::uint64_t block_seed, Esi esi,
                          std::span<std::uint8_t> row);

/// One coded symbol as it travels in a packet payload.
struct Symbol {
  Esi esi = 0;
  std::vector<std::uint8_t> data;
};

/// Encoder for one source block.
class FountainEncoder {
 public:
  /// Splits `data` into ceil(|data| / symbol_size) symbols, zero-padding
  /// the last. symbol_size must be > 0 and data must be non-empty
  /// (throws std::invalid_argument otherwise).
  FountainEncoder(std::span<const std::uint8_t> data, std::size_t symbol_size,
                  std::uint64_t block_seed);

  std::size_t k() const { return k_; }
  std::size_t symbol_size() const { return symbol_size_; }
  std::uint64_t block_seed() const { return block_seed_; }
  std::size_t source_size() const { return source_size_; }

  /// Produces the encoding symbol with the given ESI. O(K * symbol_size)
  /// for repair symbols, O(symbol_size) for systematic ones. Thread-safe:
  /// encoding only reads the padded source block (per-call scratch is
  /// thread-local), so batches may encode on the shared ThreadPool.
  Symbol encode(Esi esi) const;

  /// Allocation-free variant: writes the symbol into `out`, reusing
  /// out.data's capacity (steady-state zero heap traffic once the buffer
  /// has reached symbol_size). Bit-identical to encode().
  void encode_into(Esi esi, Symbol& out) const;

  /// Encodes `count` consecutive symbols starting at `first`, fanned out
  /// across the shared ThreadPool. Bit-identical to calling encode() in a
  /// loop (symbols are independent), for any pool size.
  std::vector<Symbol> encode_batch(Esi first, std::size_t count) const;

  /// Span-based batch encode: fills out[0..count) in place, reusing each
  /// slot's data capacity. out.size() must be >= count (throws
  /// std::invalid_argument). The vector-returning encode_batch is a thin
  /// wrapper over this.
  void encode_batch_into(Esi first, std::size_t count,
                         std::span<Symbol> out) const;

  /// Convenience: the next symbol in sequence (0, 1, 2, ...).
  Symbol next();

 private:
  std::size_t symbol_size_;
  std::uint64_t block_seed_;
  std::size_t source_size_;
  std::size_t k_;
  std::vector<std::uint8_t> padded_;  // k_ * symbol_size_ bytes
  Esi next_esi_ = 0;
};

/// Reusable Gaussian-elimination scratch for FountainDecoder::decode_into.
/// One workspace serves any number of decodes (across units and frames):
/// the nested row copies used by back substitution keep their capacity
/// between calls, so the steady state allocates nothing.
struct DecodeWorkspace {
  std::vector<std::vector<std::uint8_t>> coeffs;
  std::vector<std::vector<std::uint8_t>> data;
};

/// Decoder for one source block.
class FountainDecoder {
 public:
  /// `source_size` is the exact byte length of the original data (needed to
  /// strip padding); k and symbol_size must match the encoder's.
  FountainDecoder(std::size_t k, std::size_t symbol_size,
                  std::size_t source_size, std::uint64_t block_seed);

  /// Re-arms the decoder for a new source block without releasing the
  /// row-echelon storage: rows_ (and each row's coefficient/data buffers)
  /// keep their capacity, so a decoder cycled across a frame's coding
  /// units stops allocating once it has seen the largest unit. Same
  /// argument validation as the constructor.
  void reset(std::size_t k, std::size_t symbol_size, std::size_t source_size,
             std::uint64_t block_seed);

  /// Feeds one received symbol. Returns true if it increased the rank
  /// (i.e., was innovative), false if it was redundant or malformed.
  /// Reduction scratch is reused across calls (no steady-state heap
  /// traffic).
  bool add_symbol(const Symbol& s);

  /// Number of innovative symbols absorbed so far (== current rank).
  std::size_t rank() const { return pivots_filled_; }
  std::size_t k() const { return k_; }
  bool can_decode() const { return pivots_filled_ == k_; }

  /// Recovers the source block once can_decode(). Returns std::nullopt if
  /// the rank is still deficient.
  std::optional<std::vector<std::uint8_t>> decode() const;

  /// Allocation-free recovery: back-substitutes using the caller-provided
  /// workspace and writes the source block into `out` (capacity reused).
  /// Returns false (leaving `out` untouched) while the rank is deficient.
  /// decode() is a thin wrapper over this with a private workspace.
  bool decode_into(std::vector<std::uint8_t>& out,
                   DecodeWorkspace& ws) const;

  /// Symbols received (innovative or not); used for loss accounting.
  std::size_t symbols_seen() const { return symbols_seen_; }

 private:
  std::size_t k_;
  std::size_t symbol_size_;
  std::size_t source_size_;
  std::uint64_t block_seed_;
  std::size_t symbols_seen_ = 0;
  std::size_t pivots_filled_ = 0;
  // Row-echelon storage: rows_[p] has its leading nonzero at column p.
  struct Row {
    std::vector<std::uint8_t> coeffs;
    std::vector<std::uint8_t> data;
    bool present = false;
  };
  std::vector<Row> rows_;
  // add_symbol reduction scratch; swapped into rows_ on an innovative
  // symbol so the buffers circulate instead of being reallocated.
  std::vector<std::uint8_t> scratch_coeffs_;
  std::vector<std::uint8_t> scratch_data_;
};

}  // namespace w4k::fec

#include "fec/coding_unit.h"

namespace w4k::fec {

std::uint64_t unit_seed(std::uint64_t frame_seed, UnitId id) {
  // SplitMix-style mixing of the (layer, sublayer) pair into the seed.
  std::uint64_t x = frame_seed ^ (static_cast<std::uint64_t>(id.layer) << 32) ^
                    (static_cast<std::uint64_t>(id.sublayer) + 1);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

UnitEncoder::UnitEncoder(UnitId id, std::vector<std::uint8_t> payload,
                         std::size_t symbol_size, std::uint64_t frame_seed)
    : id_(id),
      encoder_(payload, symbol_size, unit_seed(frame_seed, id)) {}

Symbol UnitEncoder::emit() { return encoder_.encode(next_esi_++); }

UnitDecoder::UnitDecoder(UnitId id, std::size_t k, std::size_t symbol_size,
                         std::size_t source_size, std::uint64_t frame_seed)
    : id_(id), decoder_(k, symbol_size, source_size, unit_seed(frame_seed, id)) {}

}  // namespace w4k::fec

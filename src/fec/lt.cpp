#include "fec/lt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::fec {
namespace {

void xor_into(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

}  // namespace

RobustSoliton::RobustSoliton(std::size_t k, double c, double delta) : k_(k) {
  if (k == 0) throw std::invalid_argument("RobustSoliton: k must be > 0");
  if (c <= 0.0 || delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("RobustSoliton: bad (c, delta)");

  // Ideal soliton rho(d) + Luby's spike tau(d).
  const double kd = static_cast<double>(k);
  const double r = c * std::log(kd / delta) * std::sqrt(kd);
  const auto spike = static_cast<std::size_t>(
      std::clamp(kd / r, 1.0, kd));

  pmf_.assign(k, 0.0);
  pmf_[0] = 1.0 / kd;  // rho(1)
  for (std::size_t d = 2; d <= k; ++d)
    pmf_[d - 1] = 1.0 / (static_cast<double>(d) * (d - 1.0));
  for (std::size_t d = 1; d < spike; ++d)
    pmf_[d - 1] += r / (static_cast<double>(d) * kd);
  if (spike >= 1 && spike <= k)
    pmf_[spike - 1] += r * std::log(r / delta) / kd;

  double total = 0.0;
  for (double p : pmf_) total += p;
  cdf_.resize(k);
  double acc = 0.0;
  for (std::size_t d = 0; d < k; ++d) {
    pmf_[d] /= total;
    acc += pmf_[d];
    cdf_[d] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t RobustSoliton::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

std::vector<std::uint32_t> lt_neighbors(const RobustSoliton& dist,
                                        std::uint64_t block_seed,
                                        std::uint32_t esi) {
  Rng rng(block_seed ^ (0xD1B54A32D192ED03ULL * (esi + 1)));
  const std::size_t degree = dist.sample(rng);
  const std::size_t k = dist.k();
  // Floyd's algorithm: `degree` distinct values from [0, k) without
  // building the full permutation.
  std::vector<std::uint32_t> out;
  out.reserve(degree);
  for (std::size_t j = k - degree; j < k; ++j) {
    const auto t = static_cast<std::uint32_t>(rng.below(j + 1));
    if (std::find(out.begin(), out.end(), t) == out.end())
      out.push_back(t);
    else
      out.push_back(static_cast<std::uint32_t>(j));
  }
  std::sort(out.begin(), out.end());
  return out;
}

LtEncoder::LtEncoder(std::span<const std::uint8_t> data,
                     std::size_t symbol_size, std::uint64_t block_seed,
                     double c, double delta)
    : symbol_size_(symbol_size),
      block_seed_(block_seed),
      source_size_(data.size()),
      padded_(),
      dist_((data.size() + symbol_size - 1) / std::max<std::size_t>(1, symbol_size),
            c, delta) {
  if (symbol_size == 0)
    throw std::invalid_argument("LtEncoder: symbol_size must be > 0");
  if (data.empty()) throw std::invalid_argument("LtEncoder: empty data");
  padded_.assign(dist_.k() * symbol_size_, 0);
  std::copy(data.begin(), data.end(), padded_.begin());
}

std::vector<std::uint8_t> LtEncoder::encode(std::uint32_t esi) const {
  std::vector<std::uint8_t> out(symbol_size_, 0);
  for (const std::uint32_t n : lt_neighbors(dist_, block_seed_, esi))
    xor_into(out, std::span<const std::uint8_t>(
                      padded_.data() + static_cast<std::size_t>(n) * symbol_size_,
                      symbol_size_));
  return out;
}

LtDecoder::LtDecoder(std::size_t k, std::size_t symbol_size,
                     std::size_t source_size, std::uint64_t block_seed,
                     double c, double delta)
    : k_(k),
      symbol_size_(symbol_size),
      source_size_(source_size),
      block_seed_(block_seed),
      dist_(k, c, delta),
      source_(k) {
  if (k == 0 || symbol_size == 0)
    throw std::invalid_argument("LtDecoder: k and symbol_size > 0");
  if (source_size > k * symbol_size)
    throw std::invalid_argument("LtDecoder: source_size too large");
}

bool LtDecoder::add_symbol(std::uint32_t esi,
                           std::span<const std::uint8_t> data) {
  ++symbols_seen_;
  if (data.size() != symbol_size_ || can_decode()) return false;

  Pending p;
  p.data.assign(data.begin(), data.end());
  for (const std::uint32_t n : lt_neighbors(dist_, block_seed_, esi)) {
    if (!source_[n].empty())
      xor_into(p.data, source_[n]);  // already-recovered neighbor folds in
    else
      p.neighbors.push_back(n);
  }
  if (p.neighbors.empty()) return false;  // pure redundancy

  pending_.push_back(std::move(p));
  peel();
  return true;
}

void LtDecoder::peel() {
  // Belief propagation: a degree-1 pending symbol reveals its source;
  // substitute it everywhere and repeat until no degree-1 remains.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].neighbors.size() != 1) continue;
      const std::uint32_t n = pending_[i].neighbors.front();
      if (source_[n].empty()) {
        source_[n] = std::move(pending_[i].data);
        ++recovered_count_;
      }
      pending_[i] = std::move(pending_.back());
      pending_.pop_back();
      progressed = true;

      // Substitute the newly recovered source into every pending symbol.
      for (auto& p : pending_) {
        const auto it =
            std::find(p.neighbors.begin(), p.neighbors.end(), n);
        if (it == p.neighbors.end()) continue;
        p.neighbors.erase(it);
        xor_into(p.data, source_[n]);
      }
      break;  // restart the scan: indices shifted
    }
  }
  // Drop pending symbols that lost all neighbors (became redundant).
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [](const Pending& p) {
                                  return p.neighbors.empty();
                                }),
                 pending_.end());
}

std::optional<std::vector<std::uint8_t>> LtDecoder::decode() const {
  if (!can_decode()) return std::nullopt;
  std::vector<std::uint8_t> out(source_size_);
  for (std::size_t n = 0; n < k_; ++n) {
    const std::size_t offset = n * symbol_size_;
    if (offset >= source_size_) break;
    const std::size_t len = std::min(symbol_size_, source_size_ - offset);
    std::copy(source_[n].begin(),
              source_[n].begin() + static_cast<std::ptrdiff_t>(len),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  return out;
}

}  // namespace w4k::fec

// LT (Luby Transform) rateless code — the classic sparse fountain.
//
// An alternative coder to the dense GF(256) fountain in fountain.h, with
// the textbook trade-off: encoding a symbol costs O(avg degree) XORs
// instead of O(K) GF multiplications, but decoding needs a few percent
// symbol overhead (peeling + GE cleanup) rather than the dense code's
// ~1/256 failure at exactly K. Degrees are drawn from the robust soliton
// distribution (Luby '02) with parameters (c, delta).
//
// Useful when symbols are large and CPU-bound senders matter; the bench
// bench_ablation_fountain_comparison quantifies both sides.
#pragma once

#include "common/rng.h"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace w4k::fec {

/// Robust soliton distribution over degrees 1..k.
class RobustSoliton {
 public:
  /// c and delta per Luby: c trades overhead for variance, delta is the
  /// target failure probability. Throws std::invalid_argument for k == 0
  /// or parameters outside (0, inf) x (0, 1).
  RobustSoliton(std::size_t k, double c = 0.1, double delta = 0.05);

  std::size_t k() const { return k_; }

  /// Samples a degree in [1, k].
  std::size_t sample(Rng& rng) const;

  /// The distribution's PMF (exposed for statistical tests).
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  std::size_t k_;
  std::vector<double> pmf_;  // pmf_[d-1] = P(degree = d)
  std::vector<double> cdf_;
};

/// Deterministically derives an LT symbol's neighbor set from
/// (block_seed, esi): a degree from the robust soliton, then that many
/// distinct source indices. Sender and receiver derive identical sets.
std::vector<std::uint32_t> lt_neighbors(const RobustSoliton& dist,
                                        std::uint64_t block_seed,
                                        std::uint32_t esi);

/// Encoder for one source block (non-systematic: every symbol is a XOR of
/// its neighbor set).
class LtEncoder {
 public:
  LtEncoder(std::span<const std::uint8_t> data, std::size_t symbol_size,
            std::uint64_t block_seed, double c = 0.1, double delta = 0.05);

  std::size_t k() const { return dist_.k(); }
  std::size_t symbol_size() const { return symbol_size_; }

  /// Encodes the symbol with the given id.
  std::vector<std::uint8_t> encode(std::uint32_t esi) const;

 private:
  std::size_t symbol_size_;
  std::uint64_t block_seed_;
  std::size_t source_size_;
  std::vector<std::uint8_t> padded_;
  RobustSoliton dist_;
};

/// Decoder: belief-propagation peeling with a Gaussian-elimination
/// fallback once peeling stalls and enough symbols are buffered.
class LtDecoder {
 public:
  LtDecoder(std::size_t k, std::size_t symbol_size, std::size_t source_size,
            std::uint64_t block_seed, double c = 0.1, double delta = 0.05);

  /// Feeds one received symbol; returns true if it was new information.
  bool add_symbol(std::uint32_t esi, std::span<const std::uint8_t> data);

  bool can_decode() const { return recovered_count_ == k_; }
  std::size_t recovered() const { return recovered_count_; }
  std::size_t symbols_seen() const { return symbols_seen_; }

  std::optional<std::vector<std::uint8_t>> decode() const;

 private:
  void peel();

  std::size_t k_;
  std::size_t symbol_size_;
  std::size_t source_size_;
  std::uint64_t block_seed_;
  RobustSoliton dist_;
  std::size_t symbols_seen_ = 0;
  std::size_t recovered_count_ = 0;
  std::vector<std::vector<std::uint8_t>> source_;  // empty until recovered
  struct Pending {
    std::vector<std::uint32_t> neighbors;  // still-unresolved sources
    std::vector<std::uint8_t> data;        // running XOR
  };
  std::vector<Pending> pending_;
};

}  // namespace w4k::fec

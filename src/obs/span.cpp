#include "obs/span.h"

#include "obs/metrics.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace w4k::obs {
namespace {

std::chrono::steady_clock::time_point& epoch() {
  static std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

struct TraceEvent {
  const Stage* stage;  // registry-owned, never freed
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

// One buffer per thread that ever records an event. The shared_ptr is held
// both by the thread_local handle and the global list, so events survive
// thread exit (pool resizes) until the next clear_trace().
struct ThreadBuffer {
  int tid;
  std::vector<TraceEvent> events;
};

struct TraceStore {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

TraceStore& store() {
  static TraceStore* s = new TraceStore();  // leaked: thread-exit safe
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceStore& s = store();
    std::lock_guard<std::mutex> lk(s.mu);
    b->tid = static_cast<int>(s.buffers.size());
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

void reset_trace_epoch() { epoch() = std::chrono::steady_clock::now(); }

void StageSpan::finish() {
  const std::uint64_t dur = now_ns() - start_ns_;
  stage_->record_ns(dur);
  if (trace_enabled()) {
    ThreadBuffer& b = local_buffer();
    if (b.events.size() < kMaxTraceEventsPerThread)
      b.events.push_back({stage_, start_ns_, dur});
  }
}

void clear_trace() {
  TraceStore& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  for (auto& b : s.buffers) b->events.clear();
}

std::size_t trace_event_count() {
  TraceStore& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  std::size_t n = 0;
  for (const auto& b : s.buffers) n += b->events.size();
  return n;
}

void write_chrome_trace(std::ostream& os) {
  TraceStore& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  os << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t last_ns = 0;
  for (const auto& b : s.buffers) {
    for (const TraceEvent& e : b->events) {
      if (!first) os << ",";
      first = false;
      // Complete ("X") events; ts/dur in microseconds as Chrome expects.
      os << "{\"name\":\"" << e.stage->name()
         << "\",\"cat\":\"w4k\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(e.start_ns) / 1e3
         << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3
         << ",\"pid\":1,\"tid\":" << b->tid << "}";
      if (e.start_ns + e.dur_ns > last_ns) last_ns = e.start_ns + e.dur_ns;
    }
  }
  // Final values of every registry counter as Chrome counter ("C") events
  // at the end of the timeline, so sched.anytime.*, cache hit/miss and
  // friends show up alongside the spans in Perfetto.
  for (const auto& [name, v] : MetricsRegistry::global().counter_values()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << name << "\",\"cat\":\"w4k\",\"ph\":\"C\",\"ts\":"
       << static_cast<double>(last_ns) / 1e3
       << ",\"pid\":1,\"args\":{\"value\":" << v << "}}";
  }
  os << "]}\n";
}

}  // namespace w4k::obs

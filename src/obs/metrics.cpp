#include "obs/metrics.h"

#include <map>
#include <memory>
#include <mutex>

namespace w4k::obs {

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS loop: doubles have no fetch_add pre-C++20 on all targets.
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + v, std::memory_order_relaxed))
    ;
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Stage

void Stage::record_ns(std::uint64_t dur_ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(dur_ns, std::memory_order_relaxed);
  std::uint64_t prev = max_ns_.load(std::memory_order_relaxed);
  while (prev < dur_ns &&
         !max_ns_.compare_exchange_weak(prev, dur_ns,
                                        std::memory_order_relaxed))
    ;
}

void Stage::reset() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Shard {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<Stage>, std::less<>> stages;
};

MetricsRegistry::MetricsRegistry() : shards_(new Shard[kShards]) {}
MetricsRegistry::~MetricsRegistry() = default;  // never runs (leaked global)

MetricsRegistry& MetricsRegistry::global() {
  // Leaked so instrumented code in static destructors stays safe.
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

MetricsRegistry::Shard* MetricsRegistry::shard_for(
    std::string_view name) const {
  return &shards_[std::hash<std::string_view>{}(name) % kShards];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard* s = shard_for(name);
  std::lock_guard<std::mutex> lk(s->mu);
  auto it = s->counters.find(name);
  if (it == s->counters.end())
    it = s->counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard* s = shard_for(name);
  std::lock_guard<std::mutex> lk(s->mu);
  auto it = s->gauges.find(name);
  if (it == s->gauges.end())
    it = s->gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  Shard* s = shard_for(name);
  std::lock_guard<std::mutex> lk(s->mu);
  auto it = s->histograms.find(name);
  if (it == s->histograms.end())
    it = s->histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  return *it->second;
}

Stage& MetricsRegistry::stage(std::string_view name) {
  Shard* s = shard_for(name);
  std::lock_guard<std::mutex> lk(s->mu);
  auto it = s->stages.find(name);
  if (it == s->stages.end())
    it = s->stages
             .emplace(std::string(name),
                      std::make_unique<Stage>(std::string(name)))
             .first;
  return *it->second;
}

void MetricsRegistry::reset_values() {
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    for (auto& [_, c] : s.counters) c->reset();
    for (auto& [_, g] : s.gauges) g->reset();
    for (auto& [_, h] : s.histograms) h->reset();
    for (auto& [_, st] : s.stages) st->reset();
  }
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  std::map<std::string, std::uint64_t> merged;
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [name, c] : s.counters) merged[name] = c->value();
  }
  return {merged.begin(), merged.end()};
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  std::map<std::string, double> merged;
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [name, g] : s.gauges) merged[name] = g->value();
  }
  return {merged.begin(), merged.end()};
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  std::map<std::string, const Histogram*> merged;
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [name, h] : s.histograms) merged[name] = h.get();
  }
  return {merged.begin(), merged.end()};
}

std::vector<StageSummary> MetricsRegistry::stage_summaries() const {
  std::map<std::string, StageSummary> merged;
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [name, st] : s.stages) {
      StageSummary sum;
      sum.name = name;
      sum.count = st->count();
      sum.total_ns = st->total_ns();
      sum.max_ns = st->max_ns();
      merged[name] = std::move(sum);
    }
  }
  std::vector<StageSummary> out;
  out.reserve(merged.size());
  for (auto& [_, v] : merged) out.push_back(std::move(v));
  return out;
}

}  // namespace w4k::obs

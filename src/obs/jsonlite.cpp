#include "obs/jsonlite.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace w4k::obs::json {
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool peek(char& c) {
    if (pos >= text.size()) return false;
    c = text[pos];
    return true;
  }

  bool consume(char expect) {
    if (pos < text.size() && text[pos] == expect) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + expect + "'");
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    char c;
    if (!peek(c)) return fail("unexpected end of input");
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.str);
      case 't':
        if (text.substr(pos, 4) == "true") {
          pos += 4;
          out.type = Value::Type::kBool;
          out.boolean = true;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text.substr(pos, 5) == "false") {
          pos += 5;
          out.type = Value::Type::kBool;
          out.boolean = false;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text.substr(pos, 4) == "null") {
          pos += 4;
          out.type = Value::Type::kNull;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.type = Value::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    char c;
    if (peek(c) && c == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (!peek(c)) return fail("unterminated object");
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.type = Value::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    char c;
    if (peek(c) && c == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (!peek(c)) return fail("unterminated array");
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  // Validates and copies one raw UTF-8 sequence starting at text[pos]
  // (lead byte >= 0x80). Enforces the shortest-form encoding and rejects
  // surrogate code points and truncated sequences.
  bool consume_utf8(std::string& out) {
    const auto lead = static_cast<unsigned char>(text[pos]);
    std::size_t n_cont;
    unsigned char lo = 0x80, hi = 0xBF;  // bounds for the first continuation
    if (lead >= 0xC2 && lead <= 0xDF) {
      n_cont = 1;
    } else if (lead >= 0xE0 && lead <= 0xEF) {
      n_cont = 2;
      if (lead == 0xE0) lo = 0xA0;        // overlong
      if (lead == 0xED) hi = 0x9F;        // surrogates
    } else if (lead >= 0xF0 && lead <= 0xF4) {
      n_cont = 3;
      if (lead == 0xF0) lo = 0x90;        // overlong
      if (lead == 0xF4) hi = 0x8F;        // > U+10FFFF
    } else {
      return fail("invalid UTF-8 byte in string");
    }
    if (pos + 1 + n_cont > text.size())
      return fail("truncated UTF-8 sequence in string");
    for (std::size_t i = 1; i <= n_cont; ++i) {
      const auto b = static_cast<unsigned char>(text[pos + i]);
      const unsigned char min = i == 1 ? lo : 0x80;
      const unsigned char max = i == 1 ? hi : 0xBF;
      if (b < min || b > max)
        return fail("malformed UTF-8 sequence in string");
    }
    out.append(text.substr(pos, 1 + n_cont));
    pos += 1 + n_cont;
    return true;
  }

  // Reads the four hex digits of a \uXXXX escape into `code`.
  bool read_hex4(unsigned& code) {
    if (pos + 4 > text.size()) return fail("bad \\u escape");
    code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text[pos++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code |= static_cast<unsigned>(h - 'A' + 10);
      else
        return fail("bad \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (static_cast<unsigned char>(c) >= 0x80) {
        // Raw multi-byte UTF-8: validate the sequence instead of passing
        // arbitrary bytes through. A /status response truncated inside a
        // multi-byte character (or any stray 0x80..0xFF byte) must be
        // rejected, not silently embedded in the DOM.
        --pos;  // back onto the lead byte
        if (!consume_utf8(out)) return false;
        continue;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("bad escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!read_hex4(code)) return false;
          // Surrogates must come as a high/low \u pair encoding one astral
          // code point; anything unpaired is rejected (they used to
          // collapse silently to '?', which let a /status consumer read
          // corrupted text as if it were valid).
          if (code >= 0xDC00 && code <= 0xDFFF)
            return fail("unpaired low surrogate");
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos + 2 > text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u')
              return fail("unpaired high surrogate");
            pos += 2;
            unsigned low = 0;
            if (!read_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF)
              return fail("unpaired high surrogate");
            const unsigned cp =
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
            break;
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos < text.size() && std::isdigit(
                 static_cast<unsigned char>(text[pos]))) {
        ++pos;
        ++n;
      }
      return n;
    };
    if (digits() == 0) return fail("bad number");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (digits() == 0) return fail("bad number");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (digits() == 0) return fail("bad number");
    }
    out.type = Value::Type::kNumber;
    errno = 0;
    out.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                             nullptr);
    // Grammar-valid numbers can still overflow the double range (e.g.
    // "1e999999" from a corrupt /status response). JSON has no infinity
    // and the exporters never emit one, so a strict validator rejects the
    // overflow instead of materializing inf in the DOM. Underflow to
    // zero/denormal (ERANGE with a tiny result) stays accepted.
    if (errno == ERANGE && std::isinf(out.number))
      return fail("number out of range");
    return true;
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

std::optional<Value> parse(std::string_view text, std::string* err) {
  Parser p;
  p.text = text;
  Value root;
  if (!p.parse_value(root, 0)) {
    if (err) *err = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err)
      *err = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return root;
}

}  // namespace w4k::obs::json

#include "obs/jsonlite.h"

#include <cctype>
#include <cstdlib>

namespace w4k::obs::json {
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool peek(char& c) {
    if (pos >= text.size()) return false;
    c = text[pos];
    return true;
  }

  bool consume(char expect) {
    if (pos < text.size() && text[pos] == expect) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + expect + "'");
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    char c;
    if (!peek(c)) return fail("unexpected end of input");
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.str);
      case 't':
        if (text.substr(pos, 4) == "true") {
          pos += 4;
          out.type = Value::Type::kBool;
          out.boolean = true;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text.substr(pos, 5) == "false") {
          pos += 5;
          out.type = Value::Type::kBool;
          out.boolean = false;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text.substr(pos, 4) == "null") {
          pos += 4;
          out.type = Value::Type::kNull;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.type = Value::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    char c;
    if (peek(c) && c == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (!peek(c)) return fail("unterminated object");
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.type = Value::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    char c;
    if (peek(c) && c == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (!peek(c)) return fail("unterminated array");
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("bad escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs collapse to
          // '?'; telemetry output is ASCII so this never triggers there).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            out += '?';
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos < text.size() && std::isdigit(
                 static_cast<unsigned char>(text[pos]))) {
        ++pos;
        ++n;
      }
      return n;
    };
    if (digits() == 0) return fail("bad number");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (digits() == 0) return fail("bad number");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (digits() == 0) return fail("bad number");
    }
    out.type = Value::Type::kNumber;
    out.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                             nullptr);
    return true;
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

std::optional<Value> parse(std::string_view text, std::string* err) {
  Parser p;
  p.text = text;
  Value root;
  if (!p.parse_value(root, 0)) {
    if (err) *err = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err)
      *err = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return root;
}

}  // namespace w4k::obs::json

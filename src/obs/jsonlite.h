// Minimal validating JSON parser with a small DOM. Exists so the repo's
// own tests and tools can check that the telemetry exporters (snapshot,
// Chrome trace, bench manifests) emit real JSON without pulling in a
// third-party library. Strict: rejects trailing garbage, bad escapes,
// unterminated structures. Not a performance path.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace w4k::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;  // insertion order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  // Object member lookup (first match); nullptr when absent or not object.
  const Value* find(std::string_view key) const;
};

// Parses a complete JSON document. On failure returns nullopt and, when
// `err` is non-null, a message with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* err = nullptr);

}  // namespace w4k::obs::json

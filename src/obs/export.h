// Flat JSON snapshot of the registry: counters, gauges, histograms, and
// stage aggregates, sorted by name. Pairs with write_chrome_trace (span.h)
// which dumps the per-event timeline.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace w4k::obs {

class MetricsRegistry;

void write_json_snapshot(std::ostream& os, const MetricsRegistry& reg);

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included). Shared by the exporters and the bench manifest writer.
void append_json_escaped(std::string& out, std::string_view s);

}  // namespace w4k::obs

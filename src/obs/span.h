// Scoped stage timers. A StageSpan measures one interval of a named
// pipeline stage: on destruction it folds the duration into the Stage's
// aggregate (count/total/max) and — when trace capture is on — appends a
// Chrome `trace_event` "complete" event to a per-thread buffer.
//
// Cost model: when obs::enabled() is false the constructor is a relaxed
// atomic load plus a branch and the destructor a null check; no clock is
// read. Call sites cache the Stage with a function-local static:
//
//   obs::StageSpan span(obs::stage("session.frame"));   // simplest
//
//   static obs::Stage& s = obs::stage("session.frame"); // zero lookups
//   obs::StageSpan span(s);
#pragma once

#include "obs/metrics.h"

#include <cstdint>
#include <iosfwd>

namespace w4k::obs {

// Nanoseconds on the steady clock since the process-wide trace epoch (set
// on first use; reset_trace_epoch() rebases it, e.g. per bench run).
std::uint64_t now_ns();
void reset_trace_epoch();

class StageSpan {
 public:
  explicit StageSpan(Stage& s) {
    if (enabled()) {
      stage_ = &s;
      start_ns_ = now_ns();
    }
  }
  ~StageSpan() { if (stage_ != nullptr) finish(); }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  void finish();
  Stage* stage_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

// ---------------------------------------------------------------------------
// Trace buffer (filled only while enabled() && trace_enabled()).

// Drops accumulated events from every thread's buffer.
void clear_trace();
// Total buffered events across all threads.
std::size_t trace_event_count();
// Chrome trace_event JSON ({"traceEvents":[...]}); load via Perfetto /
// chrome://tracing. Small integer tids (registration order), ts/dur in µs.
void write_chrome_trace(std::ostream& os);

// Per-thread buffers stop growing past this many events (guards unbounded
// memory on long traced runs).
inline constexpr std::size_t kMaxTraceEventsPerThread = 1u << 20;

}  // namespace w4k::obs

#include "obs/export.h"

#include "obs/metrics.h"

#include <cstdio>
#include <ostream>

namespace w4k::obs {
namespace {

// Shortest round-trip double formatting good enough for telemetry dumps.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // JSON has no inf/nan; clamp to null-free sentinels.
  std::string s(buf);
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos)
    return "0";
  return s;
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void write_json_snapshot(std::ostream& os, const MetricsRegistry& reg) {
  std::string out;
  auto key = [&out](std::string_view name) {
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
  };

  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : reg.counter_values()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    key(name);
    out += std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : reg.gauge_values()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    key(name);
    out += num(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    key(name);
    out += "{\"bounds\":[";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) out += ",";
      out += num(h->bounds()[i]);
    }
    out += "],\"counts\":[";
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(counts[i]);
    }
    out += "],\"count\":" + std::to_string(h->count());
    out += ",\"sum\":" + num(h->sum()) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"stages\": {";
  first = true;
  for (const StageSummary& s : reg.stage_summaries()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    key(s.name);
    out += "{\"count\":" + std::to_string(s.count);
    out += ",\"total_us\":" + num(static_cast<double>(s.total_ns) / 1e3);
    out += ",\"max_us\":" + num(static_cast<double>(s.max_ns) / 1e3) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  os << out;
}

}  // namespace w4k::obs

// Zero-dependency telemetry: a process-wide MetricsRegistry holding
// counters, gauges, fixed-bucket histograms, and per-stage timing
// aggregates. All value updates are relaxed atomics; only first-use
// registration takes a (sharded) mutex, so instrumented hot paths on the
// shared ThreadPool never serialize against each other.
//
// The whole subsystem is gated on a single process-wide flag
// (`obs::enabled()`): when off, every instrumentation site reduces to one
// relaxed atomic load and a predictable branch, which is the "null sink"
// path the benches rely on staying free.
//
// Naming scheme: `subsystem.metric` (e.g. `session.frame`, `emu.drops`,
// `fec.symbols_encoded`, `pool.chunks`). Stages use the same convention;
// nested stages are expressed by the span tree in the Chrome trace, not by
// the name.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace w4k::obs {

// ---------------------------------------------------------------------------
// Global on/off switch (aggregation) and trace capture switch (per-event
// Chrome trace buffering; only meaningful while enabled() is also true).

namespace detail {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on);

// ---------------------------------------------------------------------------
// Instruments. All are registry-owned (stable addresses for the lifetime of
// the process); call sites cache the reference in a function-local static.

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
// and a running sum/count for the mean. Bounds are fixed at registration;
// re-registering the same name keeps the original bounds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  // counts().size() == bounds().size() + 1 (last bucket = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Aggregated timing for one named pipeline stage. Individual intervals are
// additionally captured as Chrome trace events when trace_enabled().
class Stage {
 public:
  explicit Stage(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void record_ns(std::uint64_t dur_ns);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

// ---------------------------------------------------------------------------
// Registry: name -> instrument, sharded by name hash so concurrent
// first-use registration from pool workers does not serialize.

struct StageSummary {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);
  Stage& stage(std::string_view name);

  // Zeroes every instrument's value (registrations and bucket bounds are
  // kept). Used by tests and by BenchMain between runs.
  void reset_values();

  // Sorted-by-name snapshots for the exporters.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  std::vector<StageSummary> stage_summaries() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();
  ~MetricsRegistry();
  struct Shard;
  static constexpr std::size_t kShards = 16;
  Shard* shard_for(std::string_view name) const;
  Shard* shards_;  // array of kShards; intentionally leaked (process-wide)
};

// Convenience: the registry-owned stage for `name`, suitable for caching in
// a function-local static at the instrumentation site.
inline Stage& stage(std::string_view name) {
  return MetricsRegistry::global().stage(name);
}

}  // namespace w4k::obs

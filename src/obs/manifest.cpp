#include "obs/manifest.h"

#include "obs/export.h"
#include "obs/metrics.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace w4k::obs {
namespace {

std::string quoted(std::string_view s) {
  std::string out = "\"";
  append_json_escaped(out, s);
  out += '"';
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s(buf);
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos)
    return "0";
  return s;
}

void write_kv(std::ostream& os,
              const std::vector<std::pair<std::string, std::string>>& kv) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    os << (first ? "\n    " : ",\n    ") << quoted(k) << ": " << v;
    first = false;
  }
  os << (first ? "}" : "\n  }");
}

}  // namespace

void Manifest::set(std::string_view key, std::string_view value) {
  config_.emplace_back(std::string(key), quoted(value));
}
void Manifest::set(std::string_view key, const char* value) {
  set(key, std::string_view(value));
}
void Manifest::set(std::string_view key, double value) {
  config_.emplace_back(std::string(key), num(value));
}
void Manifest::set(std::string_view key, std::int64_t value) {
  config_.emplace_back(std::string(key), std::to_string(value));
}
void Manifest::set(std::string_view key, bool value) {
  config_.emplace_back(std::string(key), value ? "true" : "false");
}
void Manifest::set_env(std::string_view key, std::string_view value) {
  env_.emplace_back(std::string(key), quoted(value));
}
void Manifest::set_env(std::string_view key, std::int64_t value) {
  env_.emplace_back(std::string(key), std::to_string(value));
}

void Manifest::write(std::ostream& os) const {
  os << "{\n  \"name\": " << quoted(name_) << ",\n  \"config\": ";
  write_kv(os, config_);
  os << ",\n  \"environment\": ";
  write_kv(os, env_);
  os << ",\n  \"stages\": {";
  bool first = true;
  for (const StageSummary& s : MetricsRegistry::global().stage_summaries()) {
    os << (first ? "\n    " : ",\n    ") << quoted(s.name)
       << ": {\"count\": " << s.count
       << ", \"total_us\": " << num(static_cast<double>(s.total_ns) / 1e3)
       << ", \"mean_us\": "
       << num(s.count ? static_cast<double>(s.total_ns) / 1e3 /
                            static_cast<double>(s.count)
                      : 0.0)
       << ", \"max_us\": " << num(static_cast<double>(s.max_ns) / 1e3)
       << "}";
    first = false;
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

bool Manifest::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return os.good();
}

}  // namespace w4k::obs

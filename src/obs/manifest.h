// Run manifest: the JSON sidecar every bench binary drops next to its
// output so BENCH_*.json numbers stay comparable across commits — it
// records what was actually run (config echo), on what (CPU dispatch tier,
// thread pool size, relevant env vars), and where the time went (per-stage
// span summary pulled from the global MetricsRegistry at write time).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace w4k::obs {

class Manifest {
 public:
  explicit Manifest(std::string run_name) : name_(std::move(run_name)) {}

  // Config echo (insertion order preserved).
  void set(std::string_view key, std::string_view value);
  void set(std::string_view key, const char* value);
  void set(std::string_view key, double value);
  void set(std::string_view key, std::int64_t value);
  void set(std::string_view key, int value) {
    set(key, static_cast<std::int64_t>(value));
  }
  void set(std::string_view key, bool value);

  // Environment section (dispatch tier, pool size, env vars...).
  void set_env(std::string_view key, std::string_view value);
  void set_env(std::string_view key, std::int64_t value);

  const std::string& name() const { return name_; }

  // Serializes {name, config, environment, stages:{...from global
  // registry...}}.
  void write(std::ostream& os) const;
  // Writes to `path`; returns false (and stays silent) if the file cannot
  // be opened — manifests must never fail a bench run.
  bool write_file(const std::string& path) const;

 private:
  std::string name_;
  // Values are pre-rendered JSON (quoted/escaped strings, raw numbers).
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::string>> env_;
};

}  // namespace w4k::obs

#include "verify/invariants.h"

#include "obs/metrics.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace w4k::verify {
namespace {

Mode mode_from_env() {
  const char* env = std::getenv("W4K_CHECK_INVARIANTS");
  if (env == nullptr || *env == '\0') return Mode::kThrow;
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
    return Mode::kOff;
  if (std::strcmp(env, "report") == 0) return Mode::kReport;
  return Mode::kThrow;  // "1", "throw", anything else: fail loudly
}

std::atomic<Mode>& mode_flag() {
  static std::atomic<Mode> m{mode_from_env()};
  return m;
}

std::atomic<std::uint64_t> g_violations{0};
std::mutex g_last_mutex;
std::string& last_message() {
  static std::string msg;  // guarded by g_last_mutex
  return msg;
}

}  // namespace

Mode mode() { return mode_flag().load(std::memory_order_relaxed); }

void set_mode(Mode m) { mode_flag().store(m, std::memory_order_relaxed); }

std::uint64_t violation_count() {
  return g_violations.load(std::memory_order_relaxed);
}

std::string last_violation() {
  std::lock_guard<std::mutex> lock(g_last_mutex);
  return last_message();
}

void reset_violations() {
  g_violations.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_last_mutex);
  last_message().clear();
}

void fail(const char* check, const std::string& detail) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  const std::string msg =
      std::string("invariant violated [") + check + "]: " + detail;
  {
    std::lock_guard<std::mutex> lock(g_last_mutex);
    last_message() = msg;
  }
  // Always visible in the metrics snapshot, whatever the mode: a chaos run
  // in report mode surfaces violations without dying mid-seed.
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("verify.violations").add(1);
  reg.counter(std::string("verify.") + check).add(1);
  if (mode() == Mode::kThrow) throw InvariantViolation(msg);
}

}  // namespace w4k::verify

// Runtime invariant checking compiled into the streaming pipeline.
//
// The paper's headline numbers rest on a long accounting chain — fountain
// symbols -> schedule -> leaky bucket -> air -> per-user reception — and a
// silent bookkeeping bug anywhere in it invalidates every figure the bench
// harnesses reproduce. The InvariantChecker asserts the conservation laws
// at stage boundaries while the real pipeline runs (chaos seeds included),
// instead of only in unit tests against hand-built inputs:
//
//   * engine:   packets offered == sent + queue-dropped + deferred-to-
//               backlog + abandoned-at-budget, per-user received symbols
//               never exceed symbols sent to any group containing them,
//               airtime never exceeds the (possibly collapsed) budget;
//   * bucket:   the leaky-bucket credit level never goes negative and
//               never exceeds its capacity;
//   * sched:    the optimizer's time allocation stays inside the frame
//               budget, and the unit map only assigns symbols to groups it
//               was given;
//   * session:  excluded (quarantined / departed) users are never members
//               of a scheduled group, and shed symbols are conserved
//               (scheduled == kept + shed);
//   * report:   frame ids stay monotonic and every quality sample stays in
//               range.
//
// Checks are always compiled in (they are O(users x units) per frame —
// noise next to an SSIM pass) and controlled at runtime by the
// W4K_CHECK_INVARIANTS environment variable:
//
//   unset / "1" / "throw"  check and throw InvariantViolation (default —
//                          every test build fails loudly at the stage
//                          boundary where the accounting first broke)
//   "report"               check, count, and continue (chaos/production
//                          style: violations surface through the obs
//                          MetricsRegistry as verify.violations)
//   "0" / "off"            disabled
//
// Every violation — thrown or not — increments the `verify.violations`
// counter plus a per-check `verify.<name>` counter in the global
// MetricsRegistry, so a chaos run's metrics snapshot shows exactly which
// law broke and how often.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace w4k::verify {

enum class Mode {
  kOff,     ///< checks skipped entirely
  kReport,  ///< count violations, keep running
  kThrow,   ///< count and throw InvariantViolation (default)
};

/// Thrown on a failed invariant in kThrow mode. The message names the
/// check and the values that broke it.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& msg)
      : std::logic_error(msg) {}
};

/// Current mode. First call reads W4K_CHECK_INVARIANTS; subsequent calls
/// return the cached (or set_mode-overridden) value.
Mode mode();

/// Overrides the mode (tests; not thread-safe against in-flight checks).
void set_mode(Mode m);

/// True when checks should run (mode() != kOff).
inline bool enabled() { return mode() != Mode::kOff; }

/// Total violations recorded since process start (or the last reset).
/// Counted in every mode except kOff, including violations that threw.
std::uint64_t violation_count();

/// Message of the most recent violation ("" if none).
std::string last_violation();

/// Zeroes the violation count and last-violation message (tests).
void reset_violations();

/// Records a violation of `check` (a short kebab/dot name, e.g.
/// "emu.packet-conservation") with a human-readable detail string, bumps
/// the MetricsRegistry counters, and throws in kThrow mode.
void fail(const char* check, const std::string& detail);

/// The workhorse: no-op when the condition holds or checks are off;
/// otherwise builds the detail message lazily and reports through fail().
/// `detail` is a callable returning std::string so the failure path never
/// taxes the hot loop.
template <typename DetailFn>
inline void check(bool condition, const char* name, DetailFn&& detail) {
  if (condition || !enabled()) return;
  fail(name, detail());
}

}  // namespace w4k::verify

// DASH adaptive-bitrate baselines: Robust MPC and Fast MPC (Yin et al.,
// SIGCOMM'15), the two strongest live-ABR algorithms per the paper's
// Sec. 4.3.4 comparison.
//
// Model: the video is a ladder of discrete bitrates; one chunk = one GoP
// (coarse adaptation granularity — MPC cannot change rate inside a GoP).
// Every chunk the controller predicts throughput from past samples
// (FastMPC: harmonic mean of the last 5; RobustMPC: harmonic mean
// discounted by the recent maximum prediction error) and picks the ladder
// rate maximizing QoE = quality - rebuffer penalty - switch penalty over a
// 5-chunk horizon. Transmission is unicast (users time-share the link).
// When a chunk misses its live deadline the decoder loses the rest of the
// GoP: frames after the cut freeze at the previous decoded frame, whose
// quality decays with the freeze gap — the standard-codec failure mode the
// paper contrasts with layered coding.
//
// Quality mapping: a DASH encode at bitrate R is mapped onto the layered
// codec's measured rate-quality curve (cumulative layer bytes -> SSIM,
// piecewise linear) with a codec-efficiency factor, since H.264 spends
// bytes ~3x more efficiently than the uncompressed pixel-domain layers.
#pragma once

#include "channel/mobility.h"
#include "core/frame_context.h"

#include <cstdint>
#include <vector>

namespace w4k::abr {

enum class Predictor { kRobustMpc, kFastMpc };

std::string to_string(Predictor p);

struct AbrConfig {
  /// Bitrate ladder at 4K scale, ascending (Mbps); scaled by rate_scale.
  /// Deliberately coarse — the paper's point about DASH is that its
  /// "coarse-grained bitrate options" cannot adapt within a GoP.
  std::vector<double> ladder_mbps = {200, 400, 800, 1200, 1600, 2000};
  int horizon = 5;                 ///< MPC lookahead (paper: n = 5)
  Seconds chunk_duration = 1.0;    ///< one GoP per chunk
  double fps = 30.0;
  double rebuffer_penalty = 4.3;   ///< MPC QoE weights (Yin et al.)
  double switch_penalty = 1.0;
  /// H.264-vs-layered byte efficiency when mapping bitrate to quality.
  /// Calibrated so the top DASH rung lands at roughly the quality the
  /// layered system reaches with the full channel — the regime the
  /// paper's testbed exhibits (its MPC baselines trail Real-time Update
  /// by only ~0.02 SSIM under static high RSS).
  double codec_efficiency = 1.5;
  /// SSIM ceiling of a real encoder: lossy DASH rungs never reach the
  /// uncompressed-layered codec's 1.0 top anchor.
  double encoder_ceiling = 0.98;
  /// Same resolution rate-scale the multicast system uses.
  double rate_scale = 1.0;
  /// Residual loss for the unicast MAC-ARQ link.
  double residual_loss = 0.01;
  /// Quality decay per frozen frame after a GoP loss.
  double freeze_decay = 0.02;
  /// Live-edge semantics: a chunk that cannot finish before its deadline
  /// is worthless — the player has moved on, the whole GoP freezes (the
  /// failure mode [20] reports for live streaming under mobile links).
  /// false = VoD-style partial credit for the delivered prefix.
  bool live_edge = true;
  std::uint64_t seed = 3;
};

/// SSIM a DASH encode at `bitrate_mbps` (4K scale) achieves on the frame
/// described by `ctx`: interpolated on the layered rate-quality curve.
double dash_quality(const AbrConfig& cfg, const core::FrameContext& ctx,
                    double bitrate_mbps);

struct AbrRunResult {
  std::vector<double> ssim;        ///< per (frame, user), row-major frames
  std::vector<double> chosen_mbps; ///< per (chunk, user)
  double deadline_miss_fraction = 0.0;
};

/// Replays a CSI trace through the MPC controller for `n_users` unicast
/// sessions sharing the link (each gets 1/n of the airtime).
AbrRunResult run_abr_trace(const AbrConfig& cfg, Predictor predictor,
                           const channel::CsiTrace& trace,
                           const std::vector<core::FrameContext>& contexts,
                           std::size_t n_users);

}  // namespace w4k::abr

#include "abr/mpc.h"

#include "beamforming/codebook.h"
#include "channel/array.h"
#include "channel/mcs.h"
#include "emu/loss.h"
#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace w4k::abr {

std::string to_string(Predictor p) {
  return p == Predictor::kRobustMpc ? "RobustMPC" : "FastMPC";
}

double dash_quality(const AbrConfig& cfg, const core::FrameContext& ctx,
                    double bitrate_mbps) {
  // Effective position on the layered rate-quality curve. The bitrate is
  // at 4K scale; the context's layer sizes are at the (possibly reduced)
  // emulation resolution, so apply the same rate_scale the multicast
  // system uses.
  const double bytes_per_frame = bitrate_mbps * cfg.rate_scale * 1e6 / 8.0 /
                                 cfg.fps * cfg.codec_efficiency;

  // Piecewise-linear curve through (0, blank) and the cumulative-layer
  // checkpoints (sum bytes of layers 0..i, SSIM with layers 0..i full).
  double prev_x = 0.0;
  double prev_y = ctx.content.blank_ssim;
  double cum = 0.0;
  for (int l = 0; l < video::kNumLayers; ++l) {
    const auto ls = static_cast<std::size_t>(l);
    cum += ctx.content.layer_bytes[ls];
    const double y = ctx.content.up_to_layer_ssim[ls];
    if (bytes_per_frame <= cum) {
      const double span = cum - prev_x;
      const double frac = span > 0.0 ? (bytes_per_frame - prev_x) / span : 1.0;
      return std::min(cfg.encoder_ceiling, prev_y + (y - prev_y) * frac);
    }
    prev_x = cum;
    prev_y = y;
  }
  return std::min(cfg.encoder_ceiling, prev_y);
}

namespace {

/// Per-user controller state.
struct UserState {
  std::deque<double> samples;       ///< past chunk goodputs (Mbps)
  std::deque<double> errors;        ///< past relative prediction errors
  double last_prediction = 0.0;
  double last_quality = 0.0;
  int last_rate_index = 0;
};

double predict(const AbrConfig& cfg, Predictor p, const UserState& s) {
  if (s.samples.empty()) return 0.0;
  std::vector<double> v(s.samples.begin(), s.samples.end());
  const double hm = w4k::harmonic_mean(v);
  if (p == Predictor::kFastMpc) return hm;
  // RobustMPC: discount by the max recent relative error.
  double max_err = 0.0;
  for (double e : s.errors) max_err = std::max(max_err, e);
  return hm / (1.0 + max_err);
}

/// Stock-firmware sector codebook the DASH clients beamform with: a plain
/// DASH receiver runs standard SLS on pre-defined sectors, not the
/// multicast system's CSI-optimized beams.
const beamforming::Codebook& stock_codebook() {
  static const beamforming::Codebook cb = [] {
    beamforming::CodebookConfig cfg;
    cfg.n_beams = 24;
    return beamforming::make_sector_codebook(cfg);
  }();
  return cb;
}

/// Unicast goodput (Mbps, already rate-scaled and airtime-shared) for one
/// user at one CSI snapshot. The DASH receiver rides the same physics as
/// the multicast system: the sector beam and MCS come from the *previous*
/// beacon's CSI (`h_stale`), and losses depend on how the current channel
/// (`h_now`) holds up under those choices — ARQ recovers them at the cost
/// of goodput.
double snapshot_goodput(const AbrConfig& cfg, const linalg::CVector& h_stale,
                        const linalg::CVector& h_now, std::size_t n_users) {
  const auto& cb = stock_codebook();
  std::size_t best = 0;
  double best_rss = -1e300;
  for (std::size_t k = 0; k < cb.size(); ++k) {
    const double rss = channel::beam_rss(h_stale, cb[k]).value;
    if (rss > best_rss) {
      best_rss = rss;
      best = k;
    }
  }
  const auto mcs = channel::select_mcs(Dbm{best_rss});
  if (!mcs) return 0.0;
  emu::LossModel loss_model;
  const double loss =
      emu::associated_loss(loss_model, channel::beam_rss(h_now, cb[best]), *mcs);
  const double p = std::max(cfg.residual_loss, loss);
  return mcs->udp_throughput.value * cfg.rate_scale * (1.0 - p) /
         static_cast<double>(n_users);
}

}  // namespace

AbrRunResult run_abr_trace(const AbrConfig& cfg, Predictor predictor,
                           const channel::CsiTrace& trace,
                           const std::vector<core::FrameContext>& contexts,
                           std::size_t n_users) {
  if (contexts.empty())
    throw std::invalid_argument("run_abr_trace: no frame contexts");
  if (trace.steps() == 0 || trace.users() < n_users)
    throw std::invalid_argument("run_abr_trace: trace too small");
  if (cfg.ladder_mbps.empty())
    throw std::invalid_argument("run_abr_trace: empty ladder");

  const auto snaps_per_chunk = static_cast<std::size_t>(
      std::max(1.0, cfg.chunk_duration / trace.interval));
  const auto frames_per_chunk =
      static_cast<std::size_t>(cfg.fps * cfg.chunk_duration);
  const std::size_t n_chunks = trace.steps() / snaps_per_chunk;

  AbrRunResult res;
  std::vector<UserState> users(n_users);
  // Bootstrap each user's first prediction from the first snapshot.
  for (std::size_t u = 0; u < n_users; ++u) {
    users[u].samples.push_back(std::max(
        1e-3, snapshot_goodput(cfg, trace.snapshots[0][u],
                               trace.snapshots[0][u], n_users)));
  }

  std::size_t misses = 0;
  std::size_t chunk_count = 0;
  std::size_t frame_index = 0;
  res.ssim.resize(n_chunks * frames_per_chunk * n_users);

  for (std::size_t c = 0; c < n_chunks; ++c, ++chunk_count) {
    for (std::size_t u = 0; u < n_users; ++u) {
      UserState& s = users[u];
      const double pred = std::max(1e-3, predict(cfg, predictor, s));
      s.last_prediction = pred;

      // MPC: evaluate each ladder option held constant over the horizon.
      const core::FrameContext& rep_ctx =
          contexts[frame_index % contexts.size()];
      double best_qoe = -1e300;
      int best_idx = 0;
      for (std::size_t r = 0; r < cfg.ladder_mbps.size(); ++r) {
        const double rate = cfg.ladder_mbps[r] * cfg.rate_scale;
        const double q = dash_quality(cfg, rep_ctx, cfg.ladder_mbps[r]);
        const double download = rate / pred * cfg.chunk_duration;
        const double rebuffer =
            std::max(0.0, download - cfg.chunk_duration);
        const double qoe =
            static_cast<double>(cfg.horizon) *
                (q - cfg.rebuffer_penalty * rebuffer) -
            cfg.switch_penalty * std::abs(q - s.last_quality);
        if (qoe > best_qoe) {
          best_qoe = qoe;
          best_idx = static_cast<int>(r);
        }
      }
      s.last_rate_index = best_idx;
      const double chosen = cfg.ladder_mbps[static_cast<std::size_t>(best_idx)];
      res.chosen_mbps.push_back(chosen);

      // Actual delivery over the chunk's snapshots.
      double goodput_sum = 0.0;
      for (std::size_t k = 0; k < snaps_per_chunk; ++k) {
        const std::size_t t = c * snaps_per_chunk + k;
        const std::size_t t_prev = t > 0 ? t - 1 : 0;
        goodput_sum += snapshot_goodput(cfg, trace.snapshots[t_prev][u],
                                        trace.snapshots[t][u], n_users);
      }
      const double goodput = goodput_sum / static_cast<double>(snaps_per_chunk);
      const double need_mbps = chosen * cfg.rate_scale;
      const double fraction =
          need_mbps <= 0.0 ? 1.0 : std::min(1.0, goodput / need_mbps);
      std::size_t ok_frames;
      if (fraction >= 1.0) {
        ok_frames = frames_per_chunk;
      } else if (cfg.live_edge) {
        ok_frames = 0;  // missed the live deadline: the whole GoP is lost
      } else {
        ok_frames = static_cast<std::size_t>(
            fraction * static_cast<double>(frames_per_chunk));
      }
      if (ok_frames < frames_per_chunk) ++misses;

      double last_q = 0.0;
      for (std::size_t i = 0; i < frames_per_chunk; ++i) {
        const std::size_t fi = frame_index + i;
        const core::FrameContext& ctx = contexts[fi % contexts.size()];
        double ssim;
        if (i < ok_frames) {
          ssim = dash_quality(cfg, ctx, chosen);
          last_q = ssim;
        } else {
          // GoP loss: the display freezes on the last decoded frame; its
          // similarity to the advancing original decays with the gap.
          const double gap = static_cast<double>(i - ok_frames + 1);
          const double frozen =
              std::min(last_q, ctx.prev_frame_ssim) - cfg.freeze_decay * gap;
          ssim = std::max(ctx.content.blank_ssim, frozen);
        }
        res.ssim[fi * n_users + u] = ssim;
      }
      s.last_quality = dash_quality(cfg, rep_ctx, chosen);

      // Record the measured sample + prediction error.
      s.samples.push_back(std::max(1e-3, goodput));
      if (s.samples.size() > 5) s.samples.pop_front();
      s.errors.push_back(std::abs(pred - goodput) / std::max(1e-3, goodput));
      if (s.errors.size() > 5) s.errors.pop_front();
    }
    frame_index += frames_per_chunk;
  }
  res.deadline_miss_fraction =
      chunk_count == 0 ? 0.0
                       : static_cast<double>(misses) /
                             static_cast<double>(chunk_count * n_users);
  return res;
}

}  // namespace w4k::abr

// Wire format for the w4kd serving daemon (DESIGN.md Sec. 4j).
//
// Two message families cross the loopback UDP socket:
//
//   * control (client -> worker): SUBSCRIBE / HEARTBEAT / UNSUBSCRIBE,
//     16 bytes, identified by a 64-bit subscriber id. One client socket
//     can carry many virtual subscribers, so the id — not the source
//     address — names the subscription.
//   * data (worker -> client): a 16-byte per-subscriber prefix followed
//     by the shared symbol record. The record (symbol header + fountain
//     symbol payload) is written exactly once per frame into a BufferPool
//     slot and fanned out to every subscriber via scatter/gather I/O; only
//     the prefix differs per packet, which is what makes the steady-state
//     send path allocation- and copy-free.
//
// All integers are serialized little-endian with explicit shifts (the
// format is loopback-local today, but the encoding must not depend on
// host endianness). Sequence fields wrap: receivers order frame ids with
// transport::seq_less, never operator<.
#pragma once

#include "fec/fountain.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace w4k::serve::wire {

inline constexpr std::uint32_t kCtrlMagic = 0x43344b57u;  // "W4KC" on the wire
inline constexpr std::uint32_t kDataMagic = 0x44344b57u;  // "W4KD" on the wire
inline constexpr std::uint8_t kVersion = 1;

// --- Control messages (client -> worker) -----------------------------------

enum class CtrlType : std::uint8_t {
  kSubscribe = 1,
  kHeartbeat = 2,
  kUnsubscribe = 3,
};

struct CtrlMsg {
  CtrlType type = CtrlType::kSubscribe;
  std::uint64_t sub_id = 0;
};

/// magic u32 | version u8 | type u8 | reserved u16 | sub_id u64.
inline constexpr std::size_t kCtrlBytes = 16;

/// Writes the 16-byte control message; `out` must hold kCtrlBytes.
void serialize_ctrl(const CtrlMsg& m, std::span<std::uint8_t> out);

/// Strict parse: exact size, magic, version, known type. nullopt rejects.
std::optional<CtrlMsg> parse_ctrl(const std::uint8_t* data, std::size_t size);

// --- Data packets (worker -> client) ---------------------------------------

/// Per-subscriber prefix: magic u32 | version u8 | reserved u8 | reserved
/// u16 | sub_id u64. The only part of a data packet that differs between
/// subscribers of the same symbol.
inline constexpr std::size_t kPrefixBytes = 16;

void serialize_prefix(std::uint64_t sub_id, std::span<std::uint8_t> out);

/// Shared symbol record header, written once per symbol into the pool
/// slot: frame_id u32 | layer u16 | sublayer u16 | esi u32 | k u16 |
/// n_frame_symbols u16 | symbol_bytes u32 | block_seed u64. block_seed
/// travels in-band so a receiver can reconstruct coefficient rows (and
/// decode) without any out-of-band exchange.
struct SymbolHeader {
  std::uint32_t frame_id = 0;    ///< wraps; order with transport::seq_less
  std::uint16_t layer = 0;
  std::uint16_t sublayer = 0;
  fec::Esi esi = 0;
  std::uint16_t k = 0;
  std::uint16_t n_frame_symbols = 0;  ///< total symbols in this frame
  std::uint32_t symbol_bytes = 0;     ///< payload length after the header
  std::uint64_t block_seed = 0;
};

inline constexpr std::size_t kSymbolHeaderBytes = 28;

/// Writes the 28-byte header; `out` must hold kSymbolHeaderBytes.
void serialize_symbol_header(const SymbolHeader& h,
                             std::span<std::uint8_t> out);

/// One fully parsed data packet (views into the receive buffer).
struct DataPacket {
  std::uint64_t sub_id = 0;
  SymbolHeader header;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

/// Strict parse of prefix + header + payload. Rejects short buffers, bad
/// magic/version, and any length disagreement between the buffer and
/// header.symbol_bytes (a truncated datagram must not yield a short
/// symbol that would poison the decoder).
std::optional<DataPacket> parse_data(const std::uint8_t* data,
                                     std::size_t size);

}  // namespace w4k::serve::wire

#include "serve/buffer_pool.h"

#include "verify/invariants.h"

#include <stdexcept>
#include <string>

namespace w4k::serve {

BufferPool::BufferPool(std::size_t slot_bytes, std::size_t n_slots)
    : slot_bytes_(slot_bytes),
      data_(slot_bytes * n_slots),
      refs_(n_slots) {
  if (slot_bytes == 0 || n_slots == 0)
    throw std::invalid_argument("BufferPool: zero slot_bytes or n_slots");
  if (n_slots >= kNoSlot)
    throw std::invalid_argument("BufferPool: too many slots");
  free_.reserve(n_slots);
  // LIFO freelist: the most recently released slot is the warmest.
  for (std::size_t i = n_slots; i > 0; --i)
    free_.push_back(static_cast<std::uint32_t>(i - 1));
}

std::uint32_t BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) return kNoSlot;
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  refs_[idx].store(1, std::memory_order_release);
  return idx;
}

void BufferPool::add_refs(std::uint32_t slot, std::uint32_t n) {
  const std::uint32_t prev =
      refs_[slot].fetch_add(n, std::memory_order_acq_rel);
  verify::check(prev != 0, "serve.pool-revive", [&] {
    return "add_refs on free slot " + std::to_string(slot);
  });
}

void BufferPool::release(std::uint32_t slot) {
  const std::uint32_t prev =
      refs_[slot].fetch_sub(1, std::memory_order_acq_rel);
  verify::check(prev != 0, "serve.pool-double-release", [&] {
    return "release of free slot " + std::to_string(slot);
  });
  if (prev == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slot);
  }
}

std::size_t BufferPool::free_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace w4k::serve

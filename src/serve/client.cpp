#include "serve/client.h"

#include "transport/packet.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

namespace w4k::serve {

Client::Client(const Options& opts)
    : opts_(opts), stats_(opts.n_subs), rxbuf_(64 * 1024) {
  fd_ = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("Client: socket failed");
  if (opts_.rcvbuf_bytes > 0) {
    const int val = static_cast<int>(opts_.rcvbuf_bytes);
    setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &val, sizeof val);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd_);
    fd_ = -1;
    throw std::runtime_error("Client: bad host " + opts_.host);
  }
  // connect() fixes the 4-tuple: the kernel's SO_REUSEPORT hash pins this
  // socket (and all its virtual subscribers) to one daemon worker.
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd_);
    fd_ = -1;
    throw std::runtime_error("Client: connect failed");
  }
  const int flags = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

Client::~Client() { kill(); }

void Client::send_ctrl(wire::CtrlType type, std::uint64_t sub_id) {
  if (fd_ < 0) return;
  std::uint8_t buf[wire::kCtrlBytes];
  wire::CtrlMsg m;
  m.type = type;
  m.sub_id = sub_id;
  wire::serialize_ctrl(m, buf);
  [[maybe_unused]] ssize_t r = send(fd_, buf, sizeof buf, 0);
}

void Client::subscribe_all() {
  for (std::size_t i = 0; i < opts_.n_subs; ++i)
    send_ctrl(wire::CtrlType::kSubscribe, opts_.first_sub_id + i);
}

void Client::heartbeat_all() {
  for (std::size_t i = 0; i < opts_.n_subs; ++i)
    send_ctrl(wire::CtrlType::kHeartbeat, opts_.first_sub_id + i);
}

void Client::unsubscribe_all() {
  for (std::size_t i = 0; i < opts_.n_subs; ++i)
    send_ctrl(wire::CtrlType::kUnsubscribe, opts_.first_sub_id + i);
}

std::size_t Client::drain() {
  if (fd_ < 0) return 0;
  std::size_t n = 0;
  while (true) {
    const ssize_t r = recv(fd_, rxbuf_.data(), rxbuf_.size(), MSG_DONTWAIT);
    if (r < 0) break;  // EAGAIN: drained
    const auto pkt = wire::parse_data(rxbuf_.data(),
                                      static_cast<std::size_t>(r));
    if (!pkt) {
      ++parse_errors_;
      continue;
    }
    const std::uint64_t rel = pkt->sub_id - opts_.first_sub_id;
    if (rel >= stats_.size()) {
      ++parse_errors_;  // someone else's subscriber id
      continue;
    }
    stats_[rel].packets += 1;
    stats_[rel].bytes += static_cast<std::uint64_t>(r);
    ++total_packets_;
    if (!saw_frame_ ||
        transport::seq_less(last_frame_, pkt->header.frame_id))
      last_frame_ = pkt->header.frame_id;
    saw_frame_ = true;
    if (on_packet) on_packet(*pkt);
    ++n;
  }
  return n;
}

void Client::kill() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace w4k::serve

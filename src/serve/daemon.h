// w4kd: the event-driven multicast serving daemon (DESIGN.md Sec. 4j).
//
// Composition root for src/serve: one FountainSource feeding a shared
// BufferPool, N sharded Workers (each an epoll loop on its own
// SO_REUSEPORT UDP socket), and an optional /status HTTP endpoint.
//
// Publish path per frame:
//   1. the source encodes each symbol once into a pool slot (refcount 1,
//      publisher-owned);
//   2. the publisher takes one extra reference per worker and pushes the
//      FrameDesc into each worker's SPSC inbox (eventfd kick); a full
//      inbox refuses the frame for that worker — references returned,
//      drop counted — so a stuck shard never blocks the source;
//   3. workers fan the slots out to their subscribers and release their
//      references; the last release frees the slot.
//
// After warmup the whole cycle — encode, publish, fan-out, release — runs
// without heap allocation (ServeAllocGate pins this under
// W4K_COUNT_ALLOCS).
#pragma once

#include "obs/metrics.h"
#include "serve/buffer_pool.h"
#include "serve/http_status.h"
#include "serve/source.h"
#include "serve/worker.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace w4k::serve {

struct DaemonConfig {
  std::uint16_t port = 0;         ///< UDP data/ctrl port; 0 = ephemeral
  std::uint16_t status_port = 0;  ///< TCP /status port; 0 = ephemeral
  bool status = true;             ///< serve /status at all
  std::size_t workers = 1;
  double fps = 30.0;              ///< source thread frame cadence
  std::size_t pool_slots = 256;
  std::size_t sndbuf_bytes = 4 << 20;  ///< per-worker SO_SNDBUF request
  SourceConfig source;
  WorkerConfig worker;  ///< per-shard template; index is set per worker
};

class Daemon {
 public:
  explicit Daemon(const DaemonConfig& cfg);
  ~Daemon();

  /// Binds nothing new (sockets are bound in the constructor); starts the
  /// worker threads and the status thread.
  void start();

  /// Starts the internal source thread publishing at cfg.fps until stop().
  void start_source();

  /// Publishes one frame now (bench/tests drive the cadence themselves).
  /// False when the publish ring entry is still in flight or the pool is
  /// exhausted (counted, frame skipped).
  bool publish_one();

  void stop();

  std::uint16_t port() const { return port_; }
  std::uint16_t status_port() const {
    return status_ ? status_->port() : 0;
  }
  std::size_t n_workers() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_[i]; }
  std::size_t subscribers() const;
  std::uint64_t frames_published() const { return pub_frames_.value(); }
  const DaemonConfig& config() const { return cfg_; }
  BufferPool& pool() { return pool_; }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

 private:
  void source_loop();

  DaemonConfig cfg_;
  BufferPool pool_;
  FountainSource source_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<StatusServer> status_;
  std::uint16_t port_ = 0;

  static constexpr std::size_t kPubRing = 16;
  std::unique_ptr<FrameDesc[]> ring_;
  std::size_t ring_pos_ = 0;

  std::thread source_thread_;
  std::atomic<bool> stop_{false};

  obs::Counter& pub_frames_;
  obs::Counter& pub_symbols_;
  obs::Counter& pub_ring_stalls_;
  obs::Counter& pub_pool_exhausted_;
  obs::Counter& pub_worker_drops_;
  obs::Gauge& g_pool_free_;
};

}  // namespace w4k::serve

#include "serve/daemon.h"

#include "serve/wire.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>

namespace w4k::serve {
namespace {

// Opens one member of the SO_REUSEPORT group on 127.0.0.1:`port`,
// non-blocking, with a generous send buffer. `port` 0 on the first socket
// picks the ephemeral port the rest of the group must reuse.
int open_group_socket(std::uint16_t port, std::size_t sndbuf,
                      std::uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("Daemon: socket failed");
  const int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    close(fd);
    throw std::runtime_error("Daemon: SO_REUSEPORT failed");
  }
  if (sndbuf > 0) {
    const int val = static_cast<int>(sndbuf);
    setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &val, sizeof val);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    throw std::runtime_error("Daemon: bind failed (port " +
                             std::to_string(port) + ")");
  }
  socklen_t alen = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  *bound_port = ntohs(addr.sin_port);
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

obs::Counter& ctr(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

}  // namespace

Daemon::Daemon(const DaemonConfig& cfg)
    : cfg_(cfg),
      pool_(wire::kSymbolHeaderBytes + cfg.source.symbol_bytes,
            cfg.pool_slots),
      source_(cfg.source),
      ring_(std::make_unique<FrameDesc[]>(kPubRing)),
      pub_frames_(ctr("serve.pub.frames")),
      pub_symbols_(ctr("serve.pub.symbols")),
      pub_ring_stalls_(ctr("serve.pub.ring_stalls")),
      pub_pool_exhausted_(ctr("serve.pub.pool_exhausted")),
      pub_worker_drops_(ctr("serve.pub.worker_drops")),
      g_pool_free_(obs::MetricsRegistry::global().gauge("serve.pool.free")) {
  if (cfg_.workers == 0) throw std::invalid_argument("Daemon: zero workers");
  // Pool must at least hold one frame per publish-ring entry; shallower
  // pools just publish fewer frames ahead, but a pool smaller than one
  // frame can never publish at all.
  if (cfg_.pool_slots < source_.symbols_per_frame())
    throw std::invalid_argument("Daemon: pool smaller than one frame");
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    // First bind resolves an ephemeral port; the rest join its group.
    const int fd = open_group_socket(i == 0 ? cfg_.port : port_,
                                     cfg_.sndbuf_bytes, &port_);
    WorkerConfig wc = cfg_.worker;
    wc.index = static_cast<int>(i);
    workers_.push_back(std::make_unique<Worker>(wc, pool_, fd));
  }
  if (cfg_.status) {
    status_ = std::make_unique<StatusServer>(
        cfg_.status_port, [this](std::string& body) {
          body += "\"workers\":" + std::to_string(workers_.size()) + ",";
          body += "\"subscribers\":" + std::to_string(subscribers()) + ",";
          body += "\"frames_published\":" +
                  std::to_string(frames_published()) + ",";
          body += "\"port\":" + std::to_string(port_) + ",";
        });
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  for (auto& w : workers_) w->start();
  if (status_) status_->start();
}

void Daemon::start_source() {
  stop_.store(false, std::memory_order_relaxed);
  source_thread_ = std::thread([this] { source_loop(); });
}

void Daemon::source_loop() {
  const double period = cfg_.fps > 0.0 ? 1.0 / cfg_.fps : 0.0;
  while (!stop_.load(std::memory_order_relaxed)) {
    publish_one();
    if (period > 0.0) {
      timespec ts;
      ts.tv_sec = static_cast<time_t>(period);
      ts.tv_nsec = static_cast<long>((period - static_cast<double>(ts.tv_sec)) * 1e9);
      nanosleep(&ts, nullptr);
    }
  }
}

bool Daemon::publish_one() {
  FrameDesc& d = ring_[ring_pos_];
  if (d.workers_pending.load(std::memory_order_acquire) != 0) {
    // Every worker inbox holding this ring entry is still draining it;
    // skipping keeps the source real-time instead of head-of-line blocked.
    pub_ring_stalls_.add();
    return false;
  }
  if (!source_.next_frame(pool_, d)) {
    pub_pool_exhausted_.add();
    return false;
  }
  std::size_t enqueued = 0;
  for (auto& w : workers_) {
    for (std::uint32_t i = 0; i < d.n_symbols; ++i)
      pool_.add_refs(d.slots[i], 1);
    d.workers_pending.fetch_add(1, std::memory_order_acq_rel);
    if (w->publish(&d)) {
      ++enqueued;
    } else {
      d.workers_pending.fetch_sub(1, std::memory_order_acq_rel);
      for (std::uint32_t i = 0; i < d.n_symbols; ++i)
        pool_.release(d.slots[i]);
      pub_worker_drops_.add();
    }
  }
  // Drop the publisher's own references; workers now co-own the slots.
  for (std::uint32_t i = 0; i < d.n_symbols; ++i) pool_.release(d.slots[i]);
  ring_pos_ = (ring_pos_ + 1) % kPubRing;
  pub_frames_.add();
  pub_symbols_.add(d.n_symbols);
  g_pool_free_.set(static_cast<double>(pool_.free_slots()));
  return enqueued > 0;
}

void Daemon::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (source_thread_.joinable()) source_thread_.join();
  for (auto& w : workers_) w->stop();
  if (status_) status_->stop();
}

std::size_t Daemon::subscribers() const {
  std::size_t n = 0;
  for (const auto& w : workers_) n += w->subscribers();
  return n;
}

}  // namespace w4k::serve

// One serving shard: an epoll loop owning one SO_REUSEPORT UDP socket,
// its subscriber table, and a single-producer/single-consumer inbox of
// published frames (DESIGN.md Sec. 4j).
//
// The kernel's SO_REUSEPORT 4-tuple hash pins each client socket — and
// therefore all of its virtual subscribers and their heartbeats — to one
// worker, so the subscriber table needs no locking: only the worker
// thread touches it. The publisher communicates exclusively through the
// lock-free inbox ring plus an eventfd kick.
//
// Steady state is allocation-free: subscriber slots, the batch arrays
// (mmsghdr / iovec / per-packet prefixes), and the inbox are all sized at
// construction. Each symbol leaves as a 2-iovec scatter/gather packet —
// per-subscriber prefix + shared pool slot — batched through sendmmsg
// (per-packet sendmsg fallback when the syscall is unavailable).
#pragma once

#include "obs/metrics.h"
#include "serve/buffer_pool.h"
#include "transport/leaky_bucket.h"

#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

namespace w4k::serve {

struct WorkerConfig {
  int index = 0;                    ///< shard number (metric names)
  std::size_t max_subscribers = 16384;
  double pace_mbps = 0.0;           ///< per-subscriber leaky-bucket rate;
                                    ///< 0 disables pacing
  std::size_t bucket_bytes = 15000; ///< bucket depth (~10 packets)
  double heartbeat_timeout_s = 5.0; ///< expire silent subscribers
  std::size_t max_backlog = 8;      ///< frames queued before publish fails
  std::size_t batch_packets = 128;  ///< sendmmsg batch size
};

/// Fixed-capacity SPSC ring of published frames (publisher -> worker).
class FrameRing {
 public:
  static constexpr std::uint32_t kCap = 32;

  bool push(FrameDesc* f);       // producer
  FrameDesc* front() const;      // consumer; nullptr when empty
  void pop();                    // consumer; only after front() != nullptr
  std::size_t size() const;

 private:
  std::array<FrameDesc*, kCap> buf_{};
  std::atomic<std::uint32_t> head_{0}, tail_{0};
};

class Worker {
 public:
  /// Takes ownership of `data_fd` (bound, non-blocking, SO_REUSEPORT).
  Worker(const WorkerConfig& cfg, BufferPool& pool, int data_fd);
  ~Worker();

  void start();  ///< spawn the event-loop thread
  void stop();   ///< flag + eventfd kick + join

  /// Publisher side: enqueue a frame whose slots already carry this
  /// worker's references. False when the backlog is full (caller keeps
  /// the references and counts the drop).
  bool publish(FrameDesc* f);

  /// One synchronous event-loop iteration (tests and the alloc gate call
  /// this directly instead of start()): epoll_wait up to `timeout_ms`,
  /// drain control traffic, advance pacing clocks, pump sends, expire
  /// silent subscribers.
  void run_once(int timeout_ms);

  std::size_t subscribers() const {
    return n_active_.load(std::memory_order_relaxed);
  }
  std::size_t backlog() const { return inbox_.size(); }
  std::uint64_t packets_sent() const { return packets_sent_.value(); }

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

 private:
  struct Sub {
    std::uint64_t id = 0;
    sockaddr_in addr{};
    transport::LeakyBucket bucket{Mbps{0.0}, 1};
    double last_heard = 0.0;
    std::uint32_t progress = 0;   ///< symbols of the head frame sent
    std::uint32_t active_pos = 0; ///< index into active_ (swap-remove)
    bool active = false;
  };

  void run();
  void on_ctrl(double now);
  void subscribe(std::uint64_t id, const sockaddr_in& from, double now);
  void remove(std::uint32_t slot);
  void pump();
  void enqueue_packet(Sub& s, std::uint32_t pool_slot, std::size_t record);
  void flush_batch();
  void finish_frame(FrameDesc* f);
  void expire(double now);
  int timeout_hint_ms() const;

  WorkerConfig cfg_;
  BufferPool& pool_;
  int fd_data_;
  int fd_event_ = -1;
  int fd_epoll_ = -1;

  FrameRing inbox_;
  std::vector<Sub> subs_;
  std::vector<std::uint32_t> free_subs_;
  std::vector<std::uint32_t> active_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_id_;

  // Batch arrays (batch_packets entries, fixed at construction).
  std::vector<mmsghdr> msgs_;
  std::vector<iovec> iovs_;                         // 2 per packet
  std::vector<std::array<std::uint8_t, 16>> prefixes_;
  std::size_t batch_n_ = 0;

  bool pacing_ = false;
  double last_tick_ = 0.0;
  double last_sweep_ = 0.0;
  double next_wait_s_ = -1.0;  ///< min bucket wait seen by the last pump

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> n_active_{0};

  obs::Counter& packets_sent_;
  obs::Counter& bytes_sent_;
  obs::Counter& batches_;
  obs::Counter& send_errors_;
  obs::Counter& ctrl_rejects_;
  obs::Counter& table_full_;
  obs::Counter& expired_;
  obs::Gauge& g_subscribers_;
  obs::Gauge& g_backlog_;
};

}  // namespace w4k::serve

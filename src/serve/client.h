// Loopback client for w4kd: one UDP socket carrying many virtual
// subscribers.
//
// The daemon identifies subscriptions by 64-bit sub id, not by source
// address, so a single connected socket can emulate thousands of
// receivers — which is how w4k_loadgen demonstrates >= 10k subscribers
// under the container's fd limit. Sub ids are contiguous
// [first_sub_id, first_sub_id + n_subs), letting per-sub stats live in a
// flat preallocated vector (drain() allocates nothing).
#pragma once

#include "serve/wire.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace w4k::serve {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t n_subs = 1;
    std::uint64_t first_sub_id = 0;
    std::size_t rcvbuf_bytes = 4 << 20;
  };

  struct SubStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  explicit Client(const Options& opts);
  ~Client();

  void subscribe_all();
  void heartbeat_all();
  void unsubscribe_all();

  /// Receives until EAGAIN, updating stats; returns packets drained.
  /// `on_packet` (when set) sees every parsed packet.
  std::size_t drain();

  /// Abandon the socket without unsubscribing — emulates a crashed
  /// client whose subscriptions must be reaped by heartbeat expiry.
  void kill();
  bool alive() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  const Options& options() const { return opts_; }
  const std::vector<SubStats>& stats() const { return stats_; }
  std::uint64_t total_packets() const { return total_packets_; }
  std::uint64_t parse_errors() const { return parse_errors_; }
  /// Highest frame id observed (seq_less order); valid once a packet
  /// has arrived.
  std::uint32_t last_frame() const { return last_frame_; }
  bool saw_frame() const { return saw_frame_; }

  /// Optional per-packet hook (decode checks in w4k_loadgen).
  std::function<void(const wire::DataPacket&)> on_packet;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

 private:
  void send_ctrl(wire::CtrlType type, std::uint64_t sub_id);

  Options opts_;
  int fd_ = -1;
  std::vector<SubStats> stats_;
  std::vector<std::uint8_t> rxbuf_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint32_t last_frame_ = 0;
  bool saw_frame_ = false;
};

}  // namespace w4k::serve

// Minimal HTTP/1.0 status endpoint for w4kd.
//
// One thread, sequential accept loop, three routes:
//   GET /status  -> {"daemon":"w4kd",...extra...,"metrics":<snapshot>}
//                   where <snapshot> is obs::write_json_snapshot of the
//                   global MetricsRegistry (counters, gauges, histograms,
//                   stage aggregates);
//   GET /healthz -> {"ok":true}
//   anything else -> 404.
//
// The response body is strict JSON — the same jsonlite parser used by the
// telemetry validators (and fuzzed against this exact response shape)
// must accept it. Deliberately not a general HTTP server: loopback-only
// diagnostics, one request per connection, Connection: close.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace w4k::serve {

class StatusServer {
 public:
  /// `extra` appends daemon-level fields to the /status JSON object; each
  /// call must append zero or more `"key":value,` pairs (trailing comma
  /// included). Pass port 0 for an ephemeral port (see port()).
  using ExtraFn = std::function<void(std::string&)>;

  StatusServer(std::uint16_t port, ExtraFn extra);
  ~StatusServer();

  void start();
  void stop();

  /// Actual bound TCP port (resolved when the constructor binds).
  std::uint16_t port() const { return port_; }

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

 private:
  void run();
  void serve_one(int fd);
  std::string build_status() const;

  ExtraFn extra_;
  int fd_listen_ = -1;
  int fd_wake_[2] = {-1, -1};  // self-pipe to interrupt poll() on stop
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace w4k::serve

#include "serve/wire.h"

namespace w4k::serve::wire {
namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void serialize_ctrl(const CtrlMsg& m, std::span<std::uint8_t> out) {
  put_u32(out.data(), kCtrlMagic);
  out[4] = kVersion;
  out[5] = static_cast<std::uint8_t>(m.type);
  put_u16(out.data() + 6, 0);
  put_u64(out.data() + 8, m.sub_id);
}

std::optional<CtrlMsg> parse_ctrl(const std::uint8_t* data, std::size_t size) {
  if (size != kCtrlBytes) return std::nullopt;
  if (get_u32(data) != kCtrlMagic || data[4] != kVersion) return std::nullopt;
  CtrlMsg m;
  switch (data[5]) {
    case 1: m.type = CtrlType::kSubscribe; break;
    case 2: m.type = CtrlType::kHeartbeat; break;
    case 3: m.type = CtrlType::kUnsubscribe; break;
    default: return std::nullopt;
  }
  m.sub_id = get_u64(data + 8);
  return m;
}

void serialize_prefix(std::uint64_t sub_id, std::span<std::uint8_t> out) {
  put_u32(out.data(), kDataMagic);
  out[4] = kVersion;
  out[5] = 0;
  put_u16(out.data() + 6, 0);
  put_u64(out.data() + 8, sub_id);
}

void serialize_symbol_header(const SymbolHeader& h,
                             std::span<std::uint8_t> out) {
  std::uint8_t* p = out.data();
  put_u32(p, h.frame_id);
  put_u16(p + 4, h.layer);
  put_u16(p + 6, h.sublayer);
  put_u32(p + 8, h.esi);
  put_u16(p + 12, h.k);
  put_u16(p + 14, h.n_frame_symbols);
  put_u32(p + 16, h.symbol_bytes);
  put_u64(p + 20, h.block_seed);
}

std::optional<DataPacket> parse_data(const std::uint8_t* data,
                                     std::size_t size) {
  if (size < kPrefixBytes + kSymbolHeaderBytes) return std::nullopt;
  if (get_u32(data) != kDataMagic || data[4] != kVersion) return std::nullopt;
  DataPacket pkt;
  pkt.sub_id = get_u64(data + 8);
  const std::uint8_t* p = data + kPrefixBytes;
  pkt.header.frame_id = get_u32(p);
  pkt.header.layer = get_u16(p + 4);
  pkt.header.sublayer = get_u16(p + 6);
  pkt.header.esi = get_u32(p + 8);
  pkt.header.k = get_u16(p + 12);
  pkt.header.n_frame_symbols = get_u16(p + 14);
  pkt.header.symbol_bytes = get_u32(p + 16);
  pkt.header.block_seed = get_u64(p + 20);
  const std::size_t expect = kPrefixBytes + kSymbolHeaderBytes +
                             pkt.header.symbol_bytes;
  if (size != expect) return std::nullopt;
  if (pkt.header.k == 0 || pkt.header.symbol_bytes == 0) return std::nullopt;
  pkt.payload = data + kPrefixBytes + kSymbolHeaderBytes;
  pkt.payload_size = pkt.header.symbol_bytes;
  return pkt;
}

}  // namespace w4k::serve::wire

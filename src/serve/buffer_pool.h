// Refcounted preallocated symbol-slot pool for the serving daemon.
//
// The publisher writes each symbol record (header + fountain payload)
// exactly once into a slot, hands one reference per worker, and every
// worker fans the slot out to all of its subscribers with scatter/gather
// sends — the packet bytes are never copied per subscriber. When the last
// worker releases its reference the slot returns to the freelist. All
// storage is one contiguous allocation made at construction, so the
// steady state (acquire / add_refs / release cycling) touches the heap
// exactly zero times — the property the W4K_COUNT_ALLOCS daemon gate
// (ServeAllocGate) pins.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace w4k::serve {

class BufferPool {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// `slot_bytes`: capacity of one symbol record (header + max payload).
  /// `n_slots`: total slots; sized for pool depth = publish ring depth x
  /// symbols per frame plus in-flight worker backlog.
  BufferPool(std::size_t slot_bytes, std::size_t n_slots);

  /// Pops a free slot with refcount 1 (the caller's reference); kNoSlot
  /// when exhausted (the publisher counts that as a dropped frame rather
  /// than blocking the source).
  std::uint32_t acquire();

  /// Adds `n` references (publisher, before handing the slot to workers).
  void add_refs(std::uint32_t slot, std::uint32_t n);

  /// Drops one reference; the last release returns the slot to the
  /// freelist. Releasing a free slot is an invariant violation.
  void release(std::uint32_t slot);

  std::span<std::uint8_t> slot(std::uint32_t idx) {
    return {data_.data() + idx * slot_bytes_, slot_bytes_};
  }
  std::span<const std::uint8_t> slot(std::uint32_t idx) const {
    return {data_.data() + idx * slot_bytes_, slot_bytes_};
  }

  std::size_t slot_bytes() const { return slot_bytes_; }
  std::size_t size() const { return refs_.size(); }
  std::size_t free_slots() const;
  std::uint32_t refs(std::uint32_t slot) const {
    return refs_[slot].load(std::memory_order_acquire);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  std::size_t slot_bytes_;
  std::vector<std::uint8_t> data_;               // n_slots * slot_bytes
  std::vector<std::atomic<std::uint32_t>> refs_;  // 0 = free
  mutable std::mutex mu_;                        // guards free_ only
  std::vector<std::uint32_t> free_;
};

/// Max symbols one published frame may carry (fixed so FrameDesc needs no
/// heap storage and the worker's progress bookkeeping is a plain index).
inline constexpr std::size_t kMaxFrameSymbols = 64;

/// One published frame: the slot indices and record lengths of its
/// symbols. Lives in the publisher's fixed ring; workers hold a pointer
/// while the frame is in their backlog and decrement `workers_pending`
/// when done, which is what lets the publisher reuse the ring entry.
struct FrameDesc {
  std::uint32_t frame_id = 0;
  std::uint32_t n_symbols = 0;
  std::array<std::uint32_t, kMaxFrameSymbols> slots{};
  std::array<std::uint32_t, kMaxFrameSymbols> bytes{};
  std::atomic<std::uint32_t> workers_pending{0};
};

}  // namespace w4k::serve

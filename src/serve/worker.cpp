#include "serve/worker.h"

#include "serve/wire.h"
#include "verify/invariants.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>

namespace w4k::serve {
namespace {

double mono_now() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

std::string metric(int index, const char* name) {
  return "serve.w" + std::to_string(index) + "." + name;
}

}  // namespace

// --- FrameRing -------------------------------------------------------------

bool FrameRing::push(FrameDesc* f) {
  const std::uint32_t t = tail_.load(std::memory_order_relaxed);
  const std::uint32_t h = head_.load(std::memory_order_acquire);
  if (t - h >= kCap) return false;
  buf_[t % kCap] = f;
  tail_.store(t + 1, std::memory_order_release);
  return true;
}

FrameDesc* FrameRing::front() const {
  const std::uint32_t h = head_.load(std::memory_order_relaxed);
  if (h == tail_.load(std::memory_order_acquire)) return nullptr;
  return buf_[h % kCap];
}

void FrameRing::pop() {
  const std::uint32_t h = head_.load(std::memory_order_relaxed);
  head_.store(h + 1, std::memory_order_release);
}

std::size_t FrameRing::size() const {
  return tail_.load(std::memory_order_acquire) -
         head_.load(std::memory_order_acquire);
}

// --- Worker ----------------------------------------------------------------

Worker::Worker(const WorkerConfig& cfg, BufferPool& pool, int data_fd)
    : cfg_(cfg),
      pool_(pool),
      fd_data_(data_fd),
      pacing_(cfg.pace_mbps > 0.0),
      packets_sent_(obs::MetricsRegistry::global().counter(
          metric(cfg.index, "packets_sent"))),
      bytes_sent_(obs::MetricsRegistry::global().counter(
          metric(cfg.index, "bytes_sent"))),
      batches_(obs::MetricsRegistry::global().counter(
          metric(cfg.index, "batches"))),
      send_errors_(obs::MetricsRegistry::global().counter(
          metric(cfg.index, "send_errors"))),
      ctrl_rejects_(obs::MetricsRegistry::global().counter(
          metric(cfg.index, "ctrl_rejects"))),
      table_full_(obs::MetricsRegistry::global().counter(
          metric(cfg.index, "table_full"))),
      expired_(obs::MetricsRegistry::global().counter(
          metric(cfg.index, "expired"))),
      g_subscribers_(obs::MetricsRegistry::global().gauge(
          metric(cfg.index, "subscribers"))),
      g_backlog_(obs::MetricsRegistry::global().gauge(
          metric(cfg.index, "backlog_frames"))) {
  if (cfg_.max_subscribers == 0 || cfg_.batch_packets == 0)
    throw std::invalid_argument("Worker: zero max_subscribers or batch");
  if (cfg_.max_backlog >= FrameRing::kCap)
    throw std::invalid_argument("Worker: max_backlog exceeds ring");
  fd_event_ = eventfd(0, EFD_NONBLOCK);
  fd_epoll_ = epoll_create1(0);
  if (fd_event_ < 0 || fd_epoll_ < 0)
    throw std::runtime_error("Worker: eventfd/epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd_data_;
  if (epoll_ctl(fd_epoll_, EPOLL_CTL_ADD, fd_data_, &ev) != 0)
    throw std::runtime_error("Worker: epoll_ctl(data) failed");
  ev.data.fd = fd_event_;
  if (epoll_ctl(fd_epoll_, EPOLL_CTL_ADD, fd_event_, &ev) != 0)
    throw std::runtime_error("Worker: epoll_ctl(eventfd) failed");

  subs_.resize(cfg_.max_subscribers);
  free_subs_.reserve(cfg_.max_subscribers);
  for (std::size_t i = cfg_.max_subscribers; i > 0; --i)
    free_subs_.push_back(static_cast<std::uint32_t>(i - 1));
  active_.reserve(cfg_.max_subscribers);
  by_id_.reserve(cfg_.max_subscribers);

  msgs_.resize(cfg_.batch_packets);
  iovs_.resize(2 * cfg_.batch_packets);
  prefixes_.resize(cfg_.batch_packets);

  last_tick_ = last_sweep_ = mono_now();
}

Worker::~Worker() {
  stop();
  if (fd_epoll_ >= 0) close(fd_epoll_);
  if (fd_event_ >= 0) close(fd_event_);
  if (fd_data_ >= 0) close(fd_data_);
}

void Worker::start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void Worker::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  if (fd_event_ >= 0)
    [[maybe_unused]] ssize_t r = write(fd_event_, &one, sizeof one);
  if (thread_.joinable()) thread_.join();
}

bool Worker::publish(FrameDesc* f) {
  if (inbox_.size() >= cfg_.max_backlog) return false;
  if (!inbox_.push(f)) return false;
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t r = write(fd_event_, &one, sizeof one);
  return true;
}

void Worker::run() {
  while (!stop_.load(std::memory_order_relaxed)) run_once(timeout_hint_ms());
}

int Worker::timeout_hint_ms() const {
  if (inbox_.front() == nullptr) return 100;  // idle: heartbeat cadence
  if (next_wait_s_ <= 0.0) return 0;
  const double ms = next_wait_s_ * 1e3;
  return ms >= 100.0 ? 100 : static_cast<int>(ms) + 1;
}

void Worker::run_once(int timeout_ms) {
  epoll_event evs[8];
  const int n = epoll_wait(fd_epoll_, evs, 8, timeout_ms);
  const double now = mono_now();
  bool ctrl_ready = false;
  for (int i = 0; i < n; ++i) {
    if (evs[i].data.fd == fd_event_) {
      std::uint64_t v;
      [[maybe_unused]] ssize_t r = read(fd_event_, &v, sizeof v);
    } else {
      ctrl_ready = true;
    }
  }
  if (ctrl_ready) on_ctrl(now);
  if (pacing_) {
    const double dt = now - last_tick_;
    if (dt > 0.0)
      for (const std::uint32_t idx : active_) subs_[idx].bucket.advance(dt);
  }
  last_tick_ = now;
  pump();
  // Expiry sweep cadence: half the heartbeat timeout, capped at 1 s, so
  // short test timeouts expire promptly without per-iteration sweeps.
  const double sweep_every =
      cfg_.heartbeat_timeout_s < 2.0 ? cfg_.heartbeat_timeout_s * 0.5 : 1.0;
  if (now - last_sweep_ >= sweep_every) {
    expire(now);
    last_sweep_ = now;
  }
  g_subscribers_.set(static_cast<double>(active_.size()));
  g_backlog_.set(static_cast<double>(inbox_.size()));
}

void Worker::on_ctrl(double now) {
  std::uint8_t buf[64];
  while (true) {
    sockaddr_in from{};
    socklen_t flen = sizeof(from);
    const ssize_t r =
        recvfrom(fd_data_, buf, sizeof buf, MSG_DONTWAIT,
                 reinterpret_cast<sockaddr*>(&from), &flen);
    if (r < 0) break;  // EAGAIN: drained
    const auto m = wire::parse_ctrl(buf, static_cast<std::size_t>(r));
    if (!m) {
      ctrl_rejects_.add();
      continue;
    }
    switch (m->type) {
      case wire::CtrlType::kSubscribe:
        subscribe(m->sub_id, from, now);
        break;
      case wire::CtrlType::kHeartbeat: {
        const auto it = by_id_.find(m->sub_id);
        if (it == by_id_.end()) {
          ctrl_rejects_.add();
        } else {
          subs_[it->second].last_heard = now;
          subs_[it->second].addr = from;
        }
        break;
      }
      case wire::CtrlType::kUnsubscribe: {
        const auto it = by_id_.find(m->sub_id);
        if (it != by_id_.end()) remove(it->second);
        break;
      }
    }
  }
}

void Worker::subscribe(std::uint64_t id, const sockaddr_in& from, double now) {
  const auto it = by_id_.find(id);
  if (it != by_id_.end()) {  // idempotent re-subscribe: refresh liveness
    subs_[it->second].addr = from;
    subs_[it->second].last_heard = now;
    return;
  }
  if (free_subs_.empty()) {
    table_full_.add();
    return;
  }
  const std::uint32_t slot = free_subs_.back();
  free_subs_.pop_back();
  Sub& s = subs_[slot];
  s.id = id;
  s.addr = from;
  s.last_heard = now;
  s.progress = 0;
  s.active = true;
  if (pacing_)
    s.bucket = transport::LeakyBucket(Mbps{cfg_.pace_mbps}, cfg_.bucket_bytes);
  s.active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(slot);
  by_id_.emplace(id, slot);
  n_active_.store(active_.size(), std::memory_order_relaxed);
}

void Worker::remove(std::uint32_t slot) {
  Sub& s = subs_[slot];
  verify::check(s.active, "serve.remove-inactive", [&] {
    return "remove of inactive sub slot " + std::to_string(slot);
  });
  const std::uint32_t pos = s.active_pos;
  const std::uint32_t last = active_.back();
  active_[pos] = last;
  subs_[last].active_pos = pos;
  active_.pop_back();
  by_id_.erase(s.id);
  s.active = false;
  free_subs_.push_back(slot);
  n_active_.store(active_.size(), std::memory_order_relaxed);
}

void Worker::pump() {
  next_wait_s_ = -1.0;
  while (FrameDesc* f = inbox_.front()) {
    bool all_done = true;
    for (const std::uint32_t idx : active_) {
      Sub& s = subs_[idx];
      verify::check(s.progress <= f->n_symbols, "serve.progress-bound", [&] {
        return "sub progress " + std::to_string(s.progress) + " > " +
               std::to_string(f->n_symbols) + " symbols";
      });
      while (s.progress < f->n_symbols) {
        const std::size_t record = f->bytes[s.progress];
        const std::size_t wire_bytes = record + wire::kPrefixBytes;
        if (pacing_ && !s.bucket.can_send(wire_bytes)) {
          const Seconds w = s.bucket.time_until(wire_bytes);
          if (next_wait_s_ < 0.0 || w < next_wait_s_) next_wait_s_ = w;
          break;
        }
        enqueue_packet(s, f->slots[s.progress], record);
        if (pacing_) s.bucket.on_send(wire_bytes);
        ++s.progress;
      }
      if (s.progress < f->n_symbols) all_done = false;
    }
    flush_batch();
    if (!all_done) break;
    finish_frame(f);
  }
}

void Worker::enqueue_packet(Sub& s, std::uint32_t pool_slot,
                            std::size_t record) {
  wire::serialize_prefix(s.id, prefixes_[batch_n_]);
  iovec* iov = &iovs_[2 * batch_n_];
  iov[0].iov_base = prefixes_[batch_n_].data();
  iov[0].iov_len = wire::kPrefixBytes;
  iov[1].iov_base = pool_.slot(pool_slot).data();
  iov[1].iov_len = record;
  msghdr& h = msgs_[batch_n_].msg_hdr;
  h.msg_name = &s.addr;
  h.msg_namelen = sizeof(sockaddr_in);
  h.msg_iov = iov;
  h.msg_iovlen = 2;
  h.msg_control = nullptr;
  h.msg_controllen = 0;
  h.msg_flags = 0;
  if (++batch_n_ == cfg_.batch_packets) flush_batch();
}

void Worker::flush_batch() {
  if (batch_n_ == 0) return;
  std::size_t done = 0;
  bool fell_back = false;
  while (done < batch_n_) {
    const int r = sendmmsg(fd_data_, msgs_.data() + done,
                           static_cast<unsigned>(batch_n_ - done),
                           MSG_DONTWAIT);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ENOSYS || errno == EOPNOTSUPP) {
      fell_back = true;
      break;
    }
    // EAGAIN / ENOBUFS: kernel send buffer momentarily full. The rest of
    // the batch is dropped (UDP loss semantics) and counted; the symbols
    // remain recoverable for receivers via later fountain symbols.
    send_errors_.add(batch_n_ - done);
    break;
  }
  if (fell_back) {
    // Per-packet fallback for kernels without sendmmsg.
    for (std::size_t i = done; i < batch_n_; ++i) {
      const ssize_t r = sendmsg(fd_data_, &msgs_[i].msg_hdr, MSG_DONTWAIT);
      if (r >= 0) {
        msgs_[i].msg_len = static_cast<unsigned>(r);
        ++done;
      } else {
        send_errors_.add();
      }
    }
  }
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < done; ++i) bytes += msgs_[i].msg_len;
  packets_sent_.add(done);
  bytes_sent_.add(bytes);
  batches_.add();
  batch_n_ = 0;
}

void Worker::finish_frame(FrameDesc* f) {
  for (std::uint32_t i = 0; i < f->n_symbols; ++i) pool_.release(f->slots[i]);
  for (const std::uint32_t idx : active_) subs_[idx].progress = 0;
  inbox_.pop();
  f->workers_pending.fetch_sub(1, std::memory_order_acq_rel);
}

void Worker::expire(double now) {
  for (std::size_t i = active_.size(); i > 0; --i) {
    const std::uint32_t idx = active_[i - 1];
    if (now - subs_[idx].last_heard > cfg_.heartbeat_timeout_s) {
      remove(idx);
      expired_.add();
    }
  }
}

}  // namespace w4k::serve

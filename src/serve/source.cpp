#include "serve/source.h"

#include "common/rng.h"
#include "serve/wire.h"
#include "verify/invariants.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace w4k::serve {
namespace {

std::vector<std::uint8_t> make_block(Rng& rng, std::size_t bytes) {
  std::vector<std::uint8_t> block(bytes);
  for (std::size_t i = 0; i < bytes; i += 8) {
    const std::uint64_t v = rng.next();
    for (std::size_t j = 0; j < 8 && i + j < bytes; ++j)
      block[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
  }
  return block;
}

}  // namespace

FountainSource::FountainSource(const SourceConfig& cfg) : cfg_(cfg) {
  if (cfg_.symbol_bytes == 0)
    throw std::invalid_argument("FountainSource: zero symbol_bytes");
  if (cfg_.layers.empty()) cfg_.layers.push_back(LayerSpec{});
  Rng rng(cfg_.seed);
  for (const LayerSpec& spec : cfg_.layers) {
    if (spec.k == 0 || spec.symbols == 0)
      throw std::invalid_argument("FountainSource: zero k or symbols");
    // Each unit gets an independent deterministic source block; the block
    // seed is forked per unit so coefficient rows differ across units.
    const auto block = make_block(rng, spec.k * cfg_.symbol_bytes);
    units_.push_back(Unit{
        spec,
        fec::FountainEncoder(block, cfg_.symbol_bytes, rng.next()),
        0,
    });
    symbols_per_frame_ += spec.symbols;
  }
  if (symbols_per_frame_ > kMaxFrameSymbols)
    throw std::invalid_argument("FountainSource: frame exceeds " +
                                std::to_string(kMaxFrameSymbols) +
                                " symbols");
  scratch_.data.reserve(cfg_.symbol_bytes);
}

std::size_t FountainSource::record_bytes() const {
  return wire::kSymbolHeaderBytes + cfg_.symbol_bytes;
}

bool FountainSource::next_frame(BufferPool& pool, FrameDesc& out) {
  out.frame_id = next_frame_id_;
  out.n_symbols = 0;
  for (Unit& u : units_) {
    for (std::uint16_t s = 0; s < u.spec.symbols; ++s) {
      const std::uint32_t slot = pool.acquire();
      if (slot == BufferPool::kNoSlot) {
        for (std::uint32_t i = 0; i < out.n_symbols; ++i)
          pool.release(out.slots[i]);
        out.n_symbols = 0;
        return false;
      }
      u.enc.encode_into(u.next_esi, scratch_);
      wire::SymbolHeader h;
      h.frame_id = out.frame_id;
      h.layer = u.spec.layer;
      h.sublayer = u.spec.sublayer;
      h.esi = u.next_esi;
      h.k = u.spec.k;
      h.n_frame_symbols = static_cast<std::uint16_t>(symbols_per_frame_);
      h.symbol_bytes = static_cast<std::uint32_t>(scratch_.data.size());
      h.block_seed = u.enc.block_seed();
      auto dst = pool.slot(slot);
      verify::check(
          wire::kSymbolHeaderBytes + scratch_.data.size() <= dst.size(),
          "serve.slot-overflow", [&] {
            return "record " +
                   std::to_string(wire::kSymbolHeaderBytes +
                                  scratch_.data.size()) +
                   " B > slot " + std::to_string(dst.size()) + " B";
          });
      wire::serialize_symbol_header(h, dst);
      std::memcpy(dst.data() + wire::kSymbolHeaderBytes, scratch_.data.data(),
                  scratch_.data.size());
      out.slots[out.n_symbols] = slot;
      out.bytes[out.n_symbols] = static_cast<std::uint32_t>(
          wire::kSymbolHeaderBytes + scratch_.data.size());
      ++out.n_symbols;
      ++u.next_esi;
    }
  }
  ++next_frame_id_;  // wraps; receivers order with transport::seq_less
  return true;
}

}  // namespace w4k::serve

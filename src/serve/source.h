// Fountain symbol source for the serving daemon.
//
// Holds one persistent FountainEncoder per configured (layer, sublayer)
// unit and, for each published frame, emits the next never-before-sent
// ESIs of every unit ("the sender continuously generates data stream"),
// writing each symbol record — wire::SymbolHeader + payload — directly
// into a BufferPool slot. The encoder scratch Symbol is reused across
// frames, so after the first frame reaches steady state next_frame()
// performs no heap allocation.
#pragma once

#include "fec/fountain.h"
#include "serve/buffer_pool.h"

#include <cstdint>
#include <vector>

namespace w4k::serve {

struct LayerSpec {
  std::uint16_t layer = 0;
  std::uint16_t sublayer = 0;
  std::uint16_t k = 4;        ///< source symbols per block
  std::uint16_t symbols = 2;  ///< coded symbols emitted per frame
};

struct SourceConfig {
  std::size_t symbol_bytes = 1200;  ///< fountain symbol payload size
  std::uint64_t seed = 1;           ///< block-seed / source-content seed
  std::vector<LayerSpec> layers;    ///< empty = one base layer {0,0,4,2}
};

class FountainSource {
 public:
  explicit FountainSource(const SourceConfig& cfg);

  /// Encodes one frame's symbols into freshly acquired pool slots and
  /// fills `out` (frame id, slot indices, record lengths). On pool
  /// exhaustion releases anything acquired and returns false, leaving the
  /// frame id unconsumed. The caller owns one reference per slot.
  bool next_frame(BufferPool& pool, FrameDesc& out);

  std::size_t symbols_per_frame() const { return symbols_per_frame_; }
  std::size_t record_bytes() const;  ///< max header+payload record length
  std::uint32_t next_frame_id() const { return next_frame_id_; }
  const SourceConfig& config() const { return cfg_; }

 private:
  struct Unit {
    LayerSpec spec;
    fec::FountainEncoder enc;
    fec::Esi next_esi = 0;
  };

  SourceConfig cfg_;
  std::vector<Unit> units_;
  std::size_t symbols_per_frame_ = 0;
  std::uint32_t next_frame_id_ = 0;
  fec::Symbol scratch_;
};

}  // namespace w4k::serve

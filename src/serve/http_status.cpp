#include "serve/http_status.h"

#include "obs/export.h"
#include "obs/metrics.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace w4k::serve {
namespace {

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t r = send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
    if (r <= 0) return;  // peer gone; diagnostics endpoint, just drop
    off += static_cast<std::size_t>(r);
  }
}

std::string http_response(int code, const char* reason,
                          const std::string& body) {
  std::string r = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                  "\r\nContent-Type: application/json\r\nContent-Length: " +
                  std::to_string(body.size()) +
                  "\r\nConnection: close\r\n\r\n";
  r += body;
  return r;
}

}  // namespace

StatusServer::StatusServer(std::uint16_t port, ExtraFn extra)
    : extra_(std::move(extra)) {
  fd_listen_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_listen_ < 0) throw std::runtime_error("StatusServer: socket failed");
  const int one = 1;
  setsockopt(fd_listen_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd_listen_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(fd_listen_, 16) != 0) {
    close(fd_listen_);
    throw std::runtime_error("StatusServer: bind/listen failed");
  }
  socklen_t alen = sizeof(addr);
  getsockname(fd_listen_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  if (pipe(fd_wake_) != 0)
    throw std::runtime_error("StatusServer: pipe failed");
}

StatusServer::~StatusServer() {
  stop();
  if (fd_listen_ >= 0) close(fd_listen_);
  for (int fd : fd_wake_)
    if (fd >= 0) close(fd);
}

void StatusServer::start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void StatusServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (fd_wake_[1] >= 0)
    [[maybe_unused]] ssize_t r = write(fd_wake_[1], "x", 1);
  if (thread_.joinable()) thread_.join();
}

void StatusServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{fd_listen_, POLLIN, 0}, {fd_wake_[0], POLLIN, 0}};
    if (poll(fds, 2, 1000) <= 0) continue;
    if (fds[1].revents != 0) break;  // woken for shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = accept(fd_listen_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_one(fd);
    close(fd);
  }
}

void StatusServer::serve_one(int fd) {
  // Bound the read so a stalled client cannot wedge the status thread.
  timeval tv{2, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  char buf[4096];
  std::size_t n = 0;
  while (n < sizeof(buf) - 1) {
    const ssize_t r = recv(fd, buf + n, sizeof(buf) - 1 - n, 0);
    if (r <= 0) break;
    n += static_cast<std::size_t>(r);
    buf[n] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr) break;
  }
  if (n == 0) return;
  buf[n] = '\0';
  // Request line: METHOD SP PATH SP VERSION.
  const char* sp1 = std::strchr(buf, ' ');
  if (sp1 == nullptr) return;
  const char* sp2 = std::strchr(sp1 + 1, ' ');
  if (sp2 == nullptr) return;
  const std::string method(static_cast<const char*>(buf), sp1);
  const std::string path(sp1 + 1, sp2);
  if (method != "GET") {
    send_all(fd, http_response(405, "Method Not Allowed",
                               "{\"error\":\"method\"}"));
    return;
  }
  if (path == "/status" || path == "/") {
    send_all(fd, http_response(200, "OK", build_status()));
  } else if (path == "/healthz") {
    send_all(fd, http_response(200, "OK", "{\"ok\":true}"));
  } else {
    send_all(fd, http_response(404, "Not Found", "{\"error\":\"path\"}"));
  }
}

std::string StatusServer::build_status() const {
  std::string body = "{\"daemon\":\"w4kd\",";
  if (extra_) extra_(body);
  std::ostringstream snapshot;
  obs::write_json_snapshot(snapshot, obs::MetricsRegistry::global());
  body += "\"metrics\":";
  body += snapshot.str();
  body += "}";
  return body;
}

}  // namespace w4k::serve

// Multicast beamforming (Sec. 2.5).
//
// For every candidate multicast group the sender derives a transmit beam,
// evaluates the per-member RSS, and maps the *minimum* member RSS to the
// group's MCS/UDP rate (the bottleneck member limits a multicast
// transmission). Four schemes, matching the paper's comparison:
//
//   kOptimizedMulticast  max-min via the SVD max-sum heuristic: the beam is
//                        the dominant right singular vector of the stacked
//                        channel matrix H = [h_1; ...; h_N] (Eq. 3);
//   kPredefinedMulticast best single codebook sector by min-member RSS;
//   kOptimizedUnicast    MRT beam conj(h)/||h|| (CSI-based; groups are
//                        restricted to singletons by the scheduler);
//   kPredefinedUnicast   best codebook sector for the single member.
#pragma once

#include "beamforming/codebook.h"
#include "channel/mcs.h"
#include "common/rng.h"
#include "common/units.h"
#include "linalg/matrix.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace w4k::beamforming {

enum class Scheme {
  kOptimizedMulticast,
  kPredefinedMulticast,
  kOptimizedUnicast,
  kPredefinedUnicast,
};

/// True for the two schemes that may serve groups larger than one user.
bool allows_multicast(Scheme s);

/// Display name used by bench harness output.
std::string to_string(Scheme s);

struct GroupBeam {
  linalg::CVector beam;          ///< transmit precoder F (unit norm)
  std::vector<Dbm> member_rss;   ///< RSS at each group member
  Dbm min_rss{-300.0};           ///< bottleneck member
  Mbps rate{0.0};                ///< Table 2 UDP rate at min_rss (0 = unusable)
};

/// Derives the beam and rate for a group with the given member channels.
/// Unicast schemes require exactly one member (throws otherwise). `rng`
/// seeds the SVD power iteration; `codebook` is consulted only by the
/// pre-defined schemes (may be empty for the optimized ones).
GroupBeam group_beam(Scheme scheme,
                     const std::vector<linalg::CVector>& member_channels,
                     const Codebook& codebook, Rng& rng);

/// Evaluates an externally-derived unit-norm beam against member
/// channels: per-member RSS, bottleneck RSS, and the Table 2 rate at the
/// bottleneck. This is exactly the evaluation every scheme path performs
/// internally; the scheduler's batched beamformer uses it to close the
/// loop on beams produced by linalg::packed_dominant_right_singular.
GroupBeam evaluate_beam(const linalg::CVector& beam,
                        const std::vector<linalg::CVector>& member_channels);

/// Seed-based variant: the SVD power iteration draws from a private
/// Rng(seed), so the result is a pure function of (scheme, channels,
/// codebook, seed) — independent of any shared generator's state. This is
/// what makes per-subset caching and parallel group enumeration safe: two
/// callers computing the same subset always get bit-identical beams.
GroupBeam group_beam(Scheme scheme,
                     const std::vector<linalg::CVector>& member_channels,
                     const Codebook& codebook, std::uint64_t seed);

// --- Span-based hot-loop surface (zero-alloc steady state) ----------------
// The _into variants write into a caller-owned GroupBeam whose internal
// buffers keep their capacity across calls, and take member channels as a
// span so the scheduler can point at workspace storage instead of building
// fresh vectors. Values are bit-identical to the vector-returning versions
// (which now wrap these).

/// evaluate_beam into a reusable GroupBeam.
void evaluate_beam_into(const linalg::CVector& beam,
                        std::span<const linalg::CVector> member_channels,
                        GroupBeam& out);

/// Seed-based group_beam into a reusable GroupBeam. The optimized schemes
/// (MRT, packed-SVD multicast) run allocation-free in steady state; the
/// pre-defined codebook schemes reuse `out` but may still allocate inside
/// the sector search on first use.
void group_beam_into(Scheme scheme,
                     std::span<const linalg::CVector> member_channels,
                     const Codebook& codebook, std::uint64_t seed,
                     GroupBeam& out);

/// Rng-based core shared by every overload above.
void group_beam_into(Scheme scheme,
                     std::span<const linalg::CVector> member_channels,
                     const Codebook& codebook, Rng& rng, GroupBeam& out);

}  // namespace w4k::beamforming

// Pre-defined sector codebook (802.11ad SLS).
//
// Commodity WiGig front-ends ship a fixed codebook of at most K = 128
// sector beams with coarse (2-bit) phase shifters; the paper's
// "pre-defined" beamforming schemes select from exactly such a codebook,
// while the "optimized" schemes synthesize beams from estimated CSI.
#pragma once

#include "linalg/matrix.h"

#include <cstddef>
#include <vector>

namespace w4k::beamforming {

struct Codebook {
  std::vector<linalg::CVector> beams;

  std::size_t size() const { return beams.size(); }
  const linalg::CVector& operator[](std::size_t i) const { return beams[i]; }
};

struct CodebookConfig {
  std::size_t n_antennas = 32;
  std::size_t n_beams = 64;        ///< <= 128 on Sparrow+-class hardware
  int phase_bits = 2;              ///< commodity phase-shifter resolution
  double max_abs_azimuth = 1.2;    ///< rad, azimuth fan the sectors cover
};

/// Sector beams with steering directions uniform in sin(azimuth) — uniform
/// beam spacing in the array's natural coordinate — each quantized to the
/// hardware phase resolution and normalized to unit total power.
Codebook make_sector_codebook(const CodebookConfig& cfg);

/// One beamwidth level of a hierarchical 802.11ad codebook: beams formed
/// on a leading subarray of `subarray` elements (the rest muted), giving a
/// lobe ~n_antennas/subarray times wider at 10*log10(subarray) dB gain.
struct CodebookLevel {
  std::size_t subarray = 32;
  std::size_t n_beams = 24;
};

/// Multi-level codebook, matching commodity 802.11ad designs that stack
/// quasi-omni, wide, and fine sector levels. Total beams across levels
/// must stay within the 128-entry hardware limit.
Codebook make_multilevel_codebook(std::size_t n_antennas,
                                  const std::vector<CodebookLevel>& levels,
                                  int phase_bits = 2,
                                  double max_abs_azimuth = 1.2);

/// Appends dual-lobe beams: every pair from an `n_directions` grid, each
/// realized by steering the two array halves at the two directions — the
/// phase-only trick multicast codebook proposals use to serve two spread
/// receivers with one pre-defined entry (~9 dB per lobe on 32 elements).
/// Throws if the total would exceed the 128-entry limit.
void append_dual_lobe_beams(Codebook& cb, std::size_t n_antennas,
                            std::size_t n_directions, int phase_bits = 2,
                            double max_abs_azimuth = 1.2);

}  // namespace w4k::beamforming

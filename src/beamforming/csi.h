// ACO-style CSI estimation (Palacios et al., MobiCom'18; Sec. 2.5/2.8).
//
// Commodity 802.11ad firmware reports only the *magnitude* (RSS) of each
// sector beam's response, never the phase, so recovering the channel
// vector h from a sweep is a phase-retrieval problem:
//     given r_k = |f_k . h|^2 for all beams k, find h.
// We solve it with Gerchberg-Saxton alternating projections: fix phase
// guesses psi_k, solve the linear least-squares system
// f_k . h = sqrt(r_k) e^{j psi_k}, re-derive psi_k from the solution, and
// iterate. With K >= 2 N_t diverse beams this converges to h up to a
// global phase — which is all beamforming needs.
#pragma once

#include "beamforming/codebook.h"
#include "beamforming/sls.h"
#include "linalg/matrix.h"

namespace w4k::beamforming {

struct CsiEstimate {
  linalg::CVector h;        ///< estimated channel (global phase arbitrary)
  double residual = 0.0;    ///< final relative LS residual
  int iterations = 0;
};

struct CsiConfig {
  int max_iterations = 60;
  double tolerance = 1e-9;  ///< stop when the residual improvement stalls
};

/// Estimates the channel from a sweep's per-beam RSS over `codebook`.
/// Requires codebook.size() >= number of antennas (throws otherwise).
CsiEstimate estimate_csi(const SweepResult& sweep, const Codebook& codebook,
                         const CsiConfig& cfg = {});

/// Alignment quality in [0, 1] between an estimate and the true channel:
/// |<h_est, h_true>| / (||h_est|| ||h_true||). 1 = perfect up to phase.
double csi_alignment(const linalg::CVector& estimate,
                     const linalg::CVector& truth);

}  // namespace w4k::beamforming

// Sector-level sweep (802.11ad beam training): the AP broadcasts beacons
// precoded with every codebook beam; the STA measures per-beam RSS and
// feeds back the best index. The sweep result is also the measurement
// vector consumed by ACO-style CSI estimation.
#pragma once

#include "beamforming/codebook.h"
#include "common/rng.h"
#include "common/units.h"
#include "linalg/matrix.h"

#include <vector>

namespace w4k::beamforming {

struct SweepResult {
  std::vector<double> rss_dbm;  ///< per-beam measured RSS
  std::size_t best_beam = 0;    ///< argmax index the STA feeds back
};

/// Performs an SLS sweep of `codebook` against the (true) channel `h`.
/// `rss_noise_db` is the per-measurement Gaussian error of the firmware
/// RSS readout (the paper's patched firmware is noisy under traffic).
SweepResult sector_sweep(const linalg::CVector& h, const Codebook& codebook,
                         Rng& rng, double rss_noise_db = 0.5);

}  // namespace w4k::beamforming

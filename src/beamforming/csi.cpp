#include "beamforming/csi.h"

#include "channel/array.h"
#include "linalg/decompose.h"

#include <cmath>
#include <stdexcept>

namespace w4k::beamforming {

CsiEstimate estimate_csi(const SweepResult& sweep, const Codebook& codebook,
                         const CsiConfig& cfg) {
  const std::size_t k = codebook.size();
  if (k == 0 || sweep.rss_dbm.size() != k)
    throw std::invalid_argument("estimate_csi: sweep/codebook mismatch");
  const std::size_t nt = codebook[0].size();
  if (k < nt)
    throw std::invalid_argument(
        "estimate_csi: need at least as many beams as antennas");

  // Measurement matrix A with row k = f_k (beam response is the plain
  // product f_k . h, see channel::beam_response).
  linalg::CMatrix a(k, nt);
  for (std::size_t row = 0; row < k; ++row)
    for (std::size_t col = 0; col < nt; ++col) a(row, col) = codebook[row][col];

  // Measured magnitudes.
  std::vector<double> mag(k);
  for (std::size_t row = 0; row < k; ++row)
    mag[row] = std::sqrt(std::pow(10.0, sweep.rss_dbm[row] / 10.0));

  // Initial phase guesses: zero. (A spectral initializer would converge
  // faster but Gerchberg-Saxton with damping is robust enough at K >= 2N.)
  linalg::CVector b(k);
  for (std::size_t row = 0; row < k; ++row) b[row] = mag[row];

  CsiEstimate est;
  double prev_res = 1e300;
  for (int it = 0; it < cfg.max_iterations; ++it) {
    est.h = linalg::solve_least_squares(a, b, 1e-9);
    // Project: keep model phases, measured magnitudes.
    double res = 0.0, scale = 0.0;
    for (std::size_t row = 0; row < k; ++row) {
      const linalg::Complex pred = channel::beam_response(est.h, codebook[row]);
      const double pmag = std::abs(pred);
      res += (pmag - mag[row]) * (pmag - mag[row]);
      scale += mag[row] * mag[row];
      b[row] = pmag > 0.0 ? pred / pmag * mag[row]
                          : linalg::Complex(mag[row], 0.0);
    }
    est.residual = scale > 0.0 ? std::sqrt(res / scale) : 0.0;
    est.iterations = it + 1;
    if (prev_res - est.residual < cfg.tolerance) break;
    prev_res = est.residual;
  }
  return est;
}

double csi_alignment(const linalg::CVector& estimate,
                     const linalg::CVector& truth) {
  const double ne = estimate.norm();
  const double nt = truth.norm();
  if (ne == 0.0 || nt == 0.0) return 0.0;
  return std::abs(linalg::dot(estimate, truth)) / (ne * nt);
}

}  // namespace w4k::beamforming

#include "beamforming/multicast.h"

#include "channel/array.h"
#include "linalg/decompose.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::beamforming {
namespace {

// A zeroed channel (corrupt CSI sanitized upstream, or a fully blocked
// link) has no direction to steer toward: any beam is equally useless, so
// use a uniform one and let beam_rss report the link as dead (-300 dBm)
// instead of throwing on normalization.
void uniform_beam_into(std::size_t n, linalg::CVector& out) {
  out.resize_zero(std::max<std::size_t>(1, n));
  const double mag = 1.0 / std::sqrt(static_cast<double>(out.size()));
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = linalg::Complex(mag, 0.0);
}

/// MRT beam conj(h)/||h|| into a reusable vector. Bit-identical to
/// h.conj().normalized(): norm(conj(x)) sums the same re^2 + im^2 terms,
/// and the element-wise complex /= double matches normalized()'s loop.
void mrt_beam_into(const linalg::CVector& h, linalg::CVector& out) {
  const double n = h.norm();
  if (n <= 0.0) {
    uniform_beam_into(h.size(), out);
    return;
  }
  out.resize_zero(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    out[i] = std::conj(h[i]);
    out[i] /= n;
  }
}

void evaluate_into(const linalg::CVector& beam,
                   std::span<const linalg::CVector> channels, GroupBeam& g) {
  g.beam = beam;  // copy-assign: capacity reused
  g.member_rss.clear();
  g.min_rss = Dbm{1e300};
  for (const auto& h : channels) {
    const Dbm rss = channel::beam_rss(h, beam);
    g.member_rss.push_back(rss);
    g.min_rss = std::min(g.min_rss, rss);
  }
  g.rate = channel::rate_for_rss(g.min_rss);
}

void best_codebook_beam_into(std::span<const linalg::CVector> channels,
                             const Codebook& codebook, GroupBeam& best) {
  if (codebook.size() == 0)
    throw std::invalid_argument("pre-defined scheme needs a codebook");
  thread_local GroupBeam cand;
  best.min_rss = Dbm{-1e300};
  best.rate = Mbps{0.0};
  for (std::size_t k = 0; k < codebook.size(); ++k) {
    evaluate_into(codebook[k], channels, cand);
    if (cand.min_rss > best.min_rss) best = cand;
  }
}

}  // namespace

void evaluate_beam_into(const linalg::CVector& beam,
                        std::span<const linalg::CVector> member_channels,
                        GroupBeam& out) {
  evaluate_into(beam, member_channels, out);
}

GroupBeam evaluate_beam(const linalg::CVector& beam,
                        const std::vector<linalg::CVector>& member_channels) {
  GroupBeam out;
  evaluate_into(beam, member_channels, out);
  return out;
}

bool allows_multicast(Scheme s) {
  return s == Scheme::kOptimizedMulticast || s == Scheme::kPredefinedMulticast;
}

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kOptimizedMulticast: return "optimized-multicast";
    case Scheme::kPredefinedMulticast: return "pre-defined-multicast";
    case Scheme::kOptimizedUnicast: return "optimized-unicast";
    case Scheme::kPredefinedUnicast: return "pre-defined-unicast";
  }
  return "unknown";
}

void group_beam_into(Scheme scheme,
                     std::span<const linalg::CVector> channels,
                     const Codebook& codebook, Rng& rng, GroupBeam& out) {
  if (channels.empty())
    throw std::invalid_argument("group_beam: empty group");
  if (!allows_multicast(scheme) && channels.size() != 1)
    throw std::invalid_argument(
        "group_beam: unicast scheme with a multi-member group");

  switch (scheme) {
    case Scheme::kOptimizedUnicast: {
      // MRT: F = conj(h) / ||h|| maximizes |F . h|.
      thread_local linalg::CVector f;
      mrt_beam_into(channels[0], f);
      evaluate_into(f, channels, out);
      return;
    }
    case Scheme::kPredefinedUnicast:
    case Scheme::kPredefinedMulticast:
      best_codebook_beam_into(channels, codebook, out);
      return;
    case Scheme::kOptimizedMulticast: {
      if (channels.size() == 1) {
        thread_local linalg::CVector f;
        mrt_beam_into(channels[0], f);
        evaluate_into(f, channels, out);
        return;
      }
      // Max-sum SVD heuristic for the NP-hard max-min problem: F is the
      // dominant right singular vector of the stacked channel matrix
      // (Sec. 2.5). The rows are *normalized* channels: with raw rows the
      // max-sum beam pours all power toward the strongest member and
      // starves the weak one — the opposite of the max-min intent. On
      // direction-only rows the SVD splits power across the members'
      // subspaces, which tracks min-RSS far better while keeping the
      // same O(N_t^2 N) cost. The rows live in a thread-local one-problem
      // pack and the iteration runs via packed_dominant_right_singular_into
      // — bit-identical to the historical CMatrix::from_rows path.
      thread_local linalg::PackedStacks pack;
      thread_local linalg::DominantSVD svd;
      pack.rows.clear();
      pack.offsets.clear();
      pack.cols = 0;
      for (const auto& h : channels) {
        const double n = h.norm();
        if (n <= 0.0) continue;
        if (pack.cols == 0) pack.cols = h.size();
        if (h.size() != pack.cols)
          throw std::invalid_argument("row size mismatch in set_row");
        for (std::size_t i = 0; i < h.size(); ++i) {
          linalg::Complex x = h[i];
          x /= n;  // the same element-wise divide normalized() performs
          pack.rows.push_back(x);
        }
      }
      if (pack.rows.empty()) {
        thread_local linalg::CVector uni;
        uniform_beam_into(channels[0].size(), uni);
        evaluate_into(uni, channels, out);
        return;
      }
      pack.offsets.push_back(0);
      pack.offsets.push_back(pack.rows.size() / pack.cols);
      linalg::packed_dominant_right_singular_into(pack, 0, rng, svd);
      evaluate_into(svd.right_singular, channels, out);
      return;
    }
  }
  throw std::logic_error("group_beam: unhandled scheme");
}

void group_beam_into(Scheme scheme,
                     std::span<const linalg::CVector> member_channels,
                     const Codebook& codebook, std::uint64_t seed,
                     GroupBeam& out) {
  Rng rng(seed);
  group_beam_into(scheme, member_channels, codebook, rng, out);
}

GroupBeam group_beam(Scheme scheme,
                     const std::vector<linalg::CVector>& channels,
                     const Codebook& codebook, Rng& rng) {
  GroupBeam out;
  group_beam_into(scheme, channels, codebook, rng, out);
  return out;
}

GroupBeam group_beam(Scheme scheme,
                     const std::vector<linalg::CVector>& channels,
                     const Codebook& codebook, std::uint64_t seed) {
  Rng rng(seed);
  GroupBeam out;
  group_beam_into(scheme, channels, codebook, rng, out);
  return out;
}

}  // namespace w4k::beamforming

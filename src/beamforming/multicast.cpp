#include "beamforming/multicast.h"

#include "channel/array.h"
#include "linalg/decompose.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::beamforming {
namespace {

// A zeroed channel (corrupt CSI sanitized upstream, or a fully blocked
// link) has no direction to steer toward: any beam is equally useless, so
// use a uniform one and let beam_rss report the link as dead (-300 dBm)
// instead of throwing on normalization.
linalg::CVector uniform_beam(std::size_t n) {
  linalg::CVector beam(std::max<std::size_t>(1, n));
  const double mag = 1.0 / std::sqrt(static_cast<double>(beam.size()));
  for (std::size_t i = 0; i < beam.size(); ++i)
    beam[i] = linalg::Complex(mag, 0.0);
  return beam;
}

linalg::CVector mrt_beam(const linalg::CVector& h) {
  return h.norm() > 0.0 ? h.conj().normalized() : uniform_beam(h.size());
}

GroupBeam evaluate(const linalg::CVector& beam,
                   const std::vector<linalg::CVector>& channels) {
  GroupBeam g;
  g.beam = beam;
  g.min_rss = Dbm{1e300};
  for (const auto& h : channels) {
    const Dbm rss = channel::beam_rss(h, beam);
    g.member_rss.push_back(rss);
    g.min_rss = std::min(g.min_rss, rss);
  }
  g.rate = channel::rate_for_rss(g.min_rss);
  return g;
}

GroupBeam best_codebook_beam(const std::vector<linalg::CVector>& channels,
                             const Codebook& codebook) {
  if (codebook.size() == 0)
    throw std::invalid_argument("pre-defined scheme needs a codebook");
  GroupBeam best;
  best.min_rss = Dbm{-1e300};
  for (std::size_t k = 0; k < codebook.size(); ++k) {
    GroupBeam cand = evaluate(codebook[k], channels);
    if (cand.min_rss > best.min_rss) best = std::move(cand);
  }
  return best;
}

}  // namespace

GroupBeam evaluate_beam(const linalg::CVector& beam,
                        const std::vector<linalg::CVector>& member_channels) {
  return evaluate(beam, member_channels);
}

bool allows_multicast(Scheme s) {
  return s == Scheme::kOptimizedMulticast || s == Scheme::kPredefinedMulticast;
}

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kOptimizedMulticast: return "optimized-multicast";
    case Scheme::kPredefinedMulticast: return "pre-defined-multicast";
    case Scheme::kOptimizedUnicast: return "optimized-unicast";
    case Scheme::kPredefinedUnicast: return "pre-defined-unicast";
  }
  return "unknown";
}

GroupBeam group_beam(Scheme scheme,
                     const std::vector<linalg::CVector>& channels,
                     const Codebook& codebook, Rng& rng) {
  if (channels.empty())
    throw std::invalid_argument("group_beam: empty group");
  if (!allows_multicast(scheme) && channels.size() != 1)
    throw std::invalid_argument(
        "group_beam: unicast scheme with a multi-member group");

  switch (scheme) {
    case Scheme::kOptimizedUnicast: {
      // MRT: F = conj(h) / ||h|| maximizes |F . h|.
      return evaluate(mrt_beam(channels[0]), channels);
    }
    case Scheme::kPredefinedUnicast:
      return best_codebook_beam(channels, codebook);
    case Scheme::kPredefinedMulticast:
      return best_codebook_beam(channels, codebook);
    case Scheme::kOptimizedMulticast: {
      if (channels.size() == 1)
        return evaluate(mrt_beam(channels[0]), channels);
      // Max-sum SVD heuristic for the NP-hard max-min problem: F is the
      // dominant right singular vector of the stacked channel matrix
      // (Sec. 2.5). The rows are *normalized* channels: with raw rows the
      // max-sum beam pours all power toward the strongest member and
      // starves the weak one — the opposite of the max-min intent. On
      // direction-only rows the SVD splits power across the members'
      // subspaces, which tracks min-RSS far better while keeping the
      // same O(N_t^2 N) cost.
      std::vector<linalg::CVector> rows;
      rows.reserve(channels.size());
      for (const auto& h : channels)
        if (h.norm() > 0.0) rows.push_back(h.normalized());
      if (rows.empty()) return evaluate(uniform_beam(channels[0].size()),
                                        channels);
      const linalg::CMatrix hmat = linalg::CMatrix::from_rows(rows);
      const auto svd = linalg::dominant_right_singular(hmat, rng);
      return evaluate(svd.right_singular, channels);
    }
  }
  throw std::logic_error("group_beam: unhandled scheme");
}

GroupBeam group_beam(Scheme scheme,
                     const std::vector<linalg::CVector>& channels,
                     const Codebook& codebook, std::uint64_t seed) {
  Rng rng(seed);
  return group_beam(scheme, channels, codebook, rng);
}

}  // namespace w4k::beamforming

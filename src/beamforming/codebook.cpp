#include "beamforming/codebook.h"

#include "channel/array.h"

#include <cmath>
#include <stdexcept>

namespace w4k::beamforming {

namespace {

/// Steered beam on the leading `subarray` elements of an `n`-element
/// array, phase-quantized; trailing elements are muted.
linalg::CVector subarray_beam(double theta, std::size_t n,
                              std::size_t subarray, int bits) {
  const linalg::CVector steer =
      channel::steering_vector(theta, subarray).conj();
  const linalg::CVector quant = channel::quantize_phases(steer, bits);
  linalg::CVector out(n);
  for (std::size_t i = 0; i < subarray; ++i) out[i] = quant[i];
  return out;  // norm is 1: quantize_phases sets magnitude 1/sqrt(subarray)
}

}  // namespace

Codebook make_multilevel_codebook(std::size_t n_antennas,
                                  const std::vector<CodebookLevel>& levels,
                                  int phase_bits, double max_abs_azimuth) {
  std::size_t total = 0;
  for (const auto& lvl : levels) total += lvl.n_beams;
  if (total == 0 || total > 128)
    throw std::invalid_argument(
        "make_multilevel_codebook: total beams must be in 1..128");
  Codebook cb;
  cb.beams.reserve(total);
  const double smax = std::sin(max_abs_azimuth);
  for (const auto& lvl : levels) {
    if (lvl.subarray == 0 || lvl.subarray > n_antennas)
      throw std::invalid_argument(
          "make_multilevel_codebook: bad subarray size");
    for (std::size_t k = 0; k < lvl.n_beams; ++k) {
      const double frac =
          lvl.n_beams == 1
              ? 0.5
              : static_cast<double>(k) / static_cast<double>(lvl.n_beams - 1);
      const double theta = std::asin(-smax + 2.0 * smax * frac);
      cb.beams.push_back(
          subarray_beam(theta, n_antennas, lvl.subarray, phase_bits));
    }
  }
  return cb;
}

void append_dual_lobe_beams(Codebook& cb, std::size_t n_antennas,
                            std::size_t n_directions, int phase_bits,
                            double max_abs_azimuth) {
  if (n_directions < 2)
    throw std::invalid_argument("append_dual_lobe_beams: need >= 2 dirs");
  const std::size_t added = n_directions * (n_directions - 1) / 2;
  if (cb.size() + added > 128)
    throw std::invalid_argument(
        "append_dual_lobe_beams: would exceed the 128-entry limit");
  const std::size_t half = n_antennas / 2;
  const double smax = std::sin(max_abs_azimuth);
  std::vector<double> dirs(n_directions);
  for (std::size_t i = 0; i < n_directions; ++i)
    dirs[i] = std::asin(-smax + 2.0 * smax * static_cast<double>(i) /
                                     static_cast<double>(n_directions - 1));
  for (std::size_t a = 0; a < n_directions; ++a) {
    for (std::size_t b = a + 1; b < n_directions; ++b) {
      const linalg::CVector lobe_a =
          channel::steering_vector(dirs[a], half).conj();
      const linalg::CVector lobe_b =
          channel::steering_vector(dirs[b], half).conj();
      linalg::CVector beam(n_antennas);
      for (std::size_t n = 0; n < half; ++n) beam[n] = lobe_a[n];
      for (std::size_t n = half; n < n_antennas; ++n)
        beam[n] = lobe_b[n - half];
      // Quantize to the shifter grid (also fixes all-element equal power).
      cb.beams.push_back(channel::quantize_phases(beam, phase_bits));
    }
  }
}

Codebook make_sector_codebook(const CodebookConfig& cfg) {
  if (cfg.n_beams == 0 || cfg.n_beams > 128)
    throw std::invalid_argument(
        "make_sector_codebook: n_beams must be in 1..128");
  Codebook cb;
  cb.beams.reserve(cfg.n_beams);
  const double smax = std::sin(cfg.max_abs_azimuth);
  for (std::size_t k = 0; k < cfg.n_beams; ++k) {
    const double frac =
        cfg.n_beams == 1
            ? 0.5
            : static_cast<double>(k) / static_cast<double>(cfg.n_beams - 1);
    const double s = -smax + 2.0 * smax * frac;
    const double theta = std::asin(s);
    // The conjugate steering vector is the matched (MRT) beam toward theta;
    // quantization to the phase-shifter grid makes it "pre-defined".
    const linalg::CVector ideal =
        channel::steering_vector(theta, cfg.n_antennas).conj();
    cb.beams.push_back(channel::quantize_phases(ideal, cfg.phase_bits));
  }
  return cb;
}

}  // namespace w4k::beamforming

#include "beamforming/sls.h"

#include "channel/array.h"

#include <stdexcept>

namespace w4k::beamforming {

SweepResult sector_sweep(const linalg::CVector& h, const Codebook& codebook,
                         Rng& rng, double rss_noise_db) {
  if (codebook.size() == 0)
    throw std::invalid_argument("sector_sweep: empty codebook");
  SweepResult res;
  res.rss_dbm.reserve(codebook.size());
  double best = -1e300;
  for (std::size_t k = 0; k < codebook.size(); ++k) {
    const double rss =
        channel::beam_rss(h, codebook[k]).value + rng.gaussian(0.0, rss_noise_db);
    res.rss_dbm.push_back(rss);
    if (rss > best) {
      best = rss;
      res.best_beam = k;
    }
  }
  return res;
}

}  // namespace w4k::beamforming

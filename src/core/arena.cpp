#include "core/arena.h"

#include <algorithm>
#include <cstdint>

namespace w4k::core {

namespace {
constexpr std::size_t kMinPageBytes = 4096;
}

FrameArena::FrameArena(std::size_t initial_bytes) {
  if (initial_bytes > 0) add_page(initial_bytes);
}

void FrameArena::reset() {
  for (Page& p : pages_) p.used = 0;
  active_ = 0;
  used_ = 0;
}

std::size_t FrameArena::capacity() const {
  std::size_t n = 0;
  for (const Page& p : pages_) n += p.size;
  return n;
}

FrameArena::Page& FrameArena::add_page(std::size_t min_bytes) {
  // Geometric growth from the last page keeps the page count logarithmic
  // in the eventual high-water mark, so reset() stays effectively O(1).
  const std::size_t prev = pages_.empty() ? 0 : pages_.back().size;
  const std::size_t size = std::max({kMinPageBytes, prev * 2, min_bytes});
  Page p;
  p.data = std::make_unique<std::byte[]>(size);
  p.size = size;
  pages_.push_back(std::move(p));
  return pages_.back();
}

void* FrameArena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0) align = 1;
  for (;;) {
    if (active_ < pages_.size()) {
      Page& p = pages_[active_];
      const auto base = reinterpret_cast<std::uintptr_t>(p.data.get());
      const std::size_t aligned =
          (static_cast<std::size_t>(base) + p.used + align - 1) / align *
              align -
          static_cast<std::size_t>(base);
      if (aligned + bytes <= p.size) {
        void* out = p.data.get() + aligned;
        p.used = aligned + bytes;
        used_ += bytes;
        high_water_ = std::max(high_water_, used_);
        return out;
      }
      // This page is full (or too fragmented for the alignment): move on.
      ++active_;
      continue;
    }
    add_page(bytes + align);
  }
}

}  // namespace w4k::core

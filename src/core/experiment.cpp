#include "core/experiment.h"

#include <stdexcept>
#include <utility>

namespace w4k::core {

Experiment::Experiment(model::QualityModel& quality,
                       std::vector<FrameContext> contexts)
    : quality_(quality), contexts_(std::move(contexts)) {
  if (contexts_.empty())
    throw std::invalid_argument("Experiment: no frame contexts");
  cfg_ = SessionConfig::scaled(contexts_.front().original.width(),
                               contexts_.front().original.height());
}

SessionConfig& Experiment::config() {
  session_.reset();
  return cfg_;
}

channel::PropagationConfig& Experiment::propagation() {
  session_.reset();  // placements made later use the new propagation
  return prop_;
}

Experiment& Experiment::codebook(beamforming::Codebook cb) {
  codebook_ = std::move(cb);
  session_.reset();
  return *this;
}

Experiment& Experiment::place_fixed(std::size_t n, double distance_m,
                                    double mas_rad, Rng& rng) {
  users_ = place_users_fixed(n, distance_m, mas_rad, rng);
  channels_ = channels_for(prop_, users_);
  session_.reset();
  return *this;
}

Experiment& Experiment::place_random(std::size_t n, double min_distance_m,
                                     double max_distance_m, double mas_rad,
                                     Rng& rng) {
  users_ = place_users_random(n, min_distance_m, max_distance_m, mas_rad,
                              rng);
  channels_ = channels_for(prop_, users_);
  session_.reset();
  return *this;
}

Experiment& Experiment::channels(std::vector<linalg::CVector> chans) {
  users_.clear();
  channels_ = std::move(chans);
  session_.reset();
  return *this;
}

Experiment& Experiment::faults(fault::FaultPlan plan) {
  fault_plan_ = std::move(plan);
  session_.reset();  // fault-recovery state must not leak across plans
  return *this;
}

MulticastSession& Experiment::session() {
  if (!session_) session_.emplace(cfg_, quality_, codebook_);
  return *session_;
}

SessionReport Experiment::run_static(int n_frames) {
  if (channels_.empty())
    throw std::invalid_argument(
        "Experiment::run_static: no users placed (call place_fixed / "
        "place_random / channels first)");
  if (fault_plan_.empty())
    return core::run_static(session(), channels_, contexts_, n_frames);
  const fault::FaultInjector injector(fault_plan_, channels_.size());
  return core::run_static(session(), channels_, contexts_, n_frames,
                          injector);
}

SessionReport Experiment::run_trace(const channel::CsiTrace& trace,
                                    int frames_per_snapshot) {
  if (fault_plan_.empty())
    return core::run_trace(session(), trace, contexts_, frames_per_snapshot);
  const fault::FaultInjector injector(fault_plan_, trace.users());
  return core::run_trace(session(), trace, contexts_, injector,
                         frames_per_snapshot);
}

}  // namespace w4k::core

#include "core/frame_context.h"

#include <algorithm>

namespace w4k::core {

FrameContext make_frame_context(video::Frame frame,
                                const video::Frame* previous,
                                std::size_t symbol_size,
                                std::size_t symbols_per_unit) {
  FrameContext ctx;
  ctx.encoded = video::encode(frame);
  const quality::ContentFeatures f =
      quality::content_features(frame, ctx.encoded);
  ctx.units = sched::frame_units(frame.width(), frame.height(), symbol_size,
                                 symbols_per_unit);
  // Layer caps are the symbol-padded transmission sizes (sum of whole
  // symbols over the layer's coding units), not the raw byte sizes —
  // otherwise an allocation of exactly layer_bytes comes up a few symbols
  // short of decoding the final unit of each sublayer.
  for (int l = 0; l < video::kNumLayers; ++l) {
    const auto ls = static_cast<std::size_t>(l);
    ctx.content.layer_bytes[ls] = 0.0;
    ctx.content.up_to_layer_ssim[ls] = f.up_to_layer[ls];
  }
  for (const auto& u : ctx.units)
    ctx.content.layer_bytes[u.id.layer] +=
        static_cast<double>(u.k_symbols * symbol_size);
  ctx.content.blank_ssim = f.blank;
  ctx.blank_psnr = quality::psnr(
      frame, video::Frame::blank(frame.width(), frame.height()));
  if (previous != nullptr)
    ctx.prev_frame_ssim = quality::ssim(frame, *previous);
  ctx.original = std::move(frame);
  return ctx;
}

std::vector<FrameContext> make_contexts(const video::SyntheticVideo& clip,
                                        int count,
                                        std::size_t symbol_size) {
  std::vector<FrameContext> out;
  out.reserve(static_cast<std::size_t>(count));
  video::Frame prev;
  for (int t = 0; t < count && t < clip.frame_count(); ++t) {
    video::Frame f = clip.frame(t);
    out.push_back(make_frame_context(f, t > 0 ? &prev : nullptr,
                                     symbol_size));
    prev = std::move(f);
  }
  return out;
}

void reconstruct_from_units_into(const FrameContext& ctx,
                                 const std::vector<bool>& unit_decoded,
                                 video::ReconstructWorkspace& ws,
                                 video::Frame& out) {
  ws.begin(ctx.encoded.width, ctx.encoded.height);
  for (std::size_t i = 0; i < ctx.units.size() && i < unit_decoded.size();
       ++i) {
    if (!unit_decoded[i]) continue;
    const sched::UnitSpec& u = ctx.units[i];
    const auto& src =
        ctx.encoded.layers[u.id.layer][static_cast<std::size_t>(u.sublayer_k)];
    ws.write(u.id.layer, u.sublayer_k, u.offset, src.data() + u.offset,
             u.source_bytes);
  }
  ws.finish(out);
}

video::Frame reconstruct_from_units(const FrameContext& ctx,
                                    const std::vector<bool>& unit_decoded) {
  video::ReconstructWorkspace ws;
  video::Frame out;
  reconstruct_from_units_into(ctx, unit_decoded, ws, out);
  return out;
}

double rate_scale_for(int width, int height) {
  return (static_cast<double>(width) * height) /
         (static_cast<double>(video::k4kWidth) * video::k4kHeight);
}

std::size_t scaled_symbol_size(int width, int height) {
  const double s = static_cast<double>(fec::kDefaultSymbolSize) *
                   rate_scale_for(width, height);
  return std::max<std::size_t>(40, static_cast<std::size_t>(s + 0.5));
}

}  // namespace w4k::core

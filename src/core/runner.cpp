#include "core/runner.h"

#include <algorithm>
#include <stdexcept>

namespace w4k::core {

std::vector<channel::Position> place_users_fixed(std::size_t n,
                                                 double distance_m,
                                                 double mas_rad, Rng& rng) {
  if (n == 0) throw std::invalid_argument("place_users_fixed: n == 0");
  std::vector<channel::Position> out;
  if (n == 1) {
    out.push_back(channel::Position::from_polar(
        distance_m, rng.uniform(-mas_rad / 2.0, mas_rad / 2.0)));
    return out;
  }
  // Leftmost and rightmost users pin the spread to exactly `mas_rad`;
  // everyone else lands uniformly between them. The window itself is
  // centred with a small random offset, like the testbed placements.
  const double centre = rng.uniform(-0.1, 0.1);
  const double left = centre - mas_rad / 2.0;
  out.push_back(channel::Position::from_polar(distance_m, left));
  for (std::size_t i = 2; i < n; ++i)
    out.push_back(channel::Position::from_polar(
        distance_m, left + rng.uniform(0.0, mas_rad)));
  out.push_back(channel::Position::from_polar(distance_m, left + mas_rad));
  return out;
}

std::vector<channel::Position> place_users_random(std::size_t n,
                                                  double min_distance_m,
                                                  double max_distance_m,
                                                  double mas_rad, Rng& rng) {
  if (n == 0) throw std::invalid_argument("place_users_random: n == 0");
  std::vector<channel::Position> out;
  const double centre = rng.uniform(-0.2, 0.2);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = rng.uniform(min_distance_m, max_distance_m);
    const double az = centre + rng.uniform(-mas_rad / 2.0, mas_rad / 2.0);
    out.push_back(channel::Position::from_polar(d, az));
  }
  return out;
}

std::vector<linalg::CVector> channels_for(
    const channel::PropagationConfig& prop,
    const std::vector<channel::Position>& users) {
  std::vector<linalg::CVector> out;
  channels_for_into(prop, users, out);
  return out;
}

void channels_for_into(const channel::PropagationConfig& prop,
                       const std::vector<channel::Position>& users,
                       std::vector<linalg::CVector>& out) {
  out.resize(users.size());
  for (std::size_t i = 0; i < users.size(); ++i)
    out[i] = channel::make_channel(prop, users[i]);
}

SessionReport run_static(MulticastSession& session,
                         const std::vector<linalg::CVector>& channels,
                         const std::vector<FrameContext>& contexts,
                         int n_frames) {
  if (contexts.empty())
    throw std::invalid_argument("run_static: no frame contexts");
  SessionReport report;
  const fault::FrameFaults no_faults;
  FrameOutcome outcome;
  for (int f = 0; f < n_frames; ++f) {
    const FrameContext& ctx =
        contexts[static_cast<std::size_t>(f) % contexts.size()];
    session.step_into(channels, channels, ctx, no_faults, outcome);
    report.add(outcome);
  }
  return report;
}

SessionReport run_static(MulticastSession& session,
                         const std::vector<linalg::CVector>& channels,
                         const std::vector<FrameContext>& contexts,
                         int n_frames, const fault::FaultInjector& injector) {
  if (contexts.empty())
    throw std::invalid_argument("run_static: no frame contexts");
  SessionReport report;
  FrameOutcome outcome;
  // Channel-level faults mutate per-frame copies; the placement itself
  // stays pristine for the frames the burst does not cover. The copies are
  // hoisted out of the loop: copy-assignment reuses each channel vector's
  // buffer instead of reallocating every frame.
  std::vector<linalg::CVector> decision;
  std::vector<linalg::CVector> truth;
  for (int f = 0; f < n_frames; ++f) {
    const FrameContext& ctx =
        contexts[static_cast<std::size_t>(f) % contexts.size()];
    const auto frame_id = static_cast<std::uint32_t>(f);
    const fault::FrameFaults faults = injector.at(frame_id);
    decision = channels;
    truth = channels;
    injector.apply(frame_id, decision, truth);
    session.step_into(decision, truth, ctx, faults, outcome);
    report.add(outcome);
  }
  return report;
}

SessionReport run_trace(MulticastSession& session,
                        const channel::CsiTrace& trace,
                        const std::vector<FrameContext>& contexts,
                        int frames_per_snapshot) {
  if (contexts.empty())
    throw std::invalid_argument("run_trace: no frame contexts");
  if (trace.steps() == 0)
    throw std::invalid_argument("run_trace: empty trace");
  SessionReport report;
  const fault::FrameFaults no_faults;
  FrameOutcome outcome;
  int frame = 0;
  for (std::size_t t = 0; t < trace.steps(); ++t) {
    const auto& truth = trace.snapshots[t];
    const auto& decision = trace.snapshots[t > 0 ? t - 1 : 0];
    for (int k = 0; k < frames_per_snapshot; ++k, ++frame) {
      const FrameContext& ctx =
          contexts[static_cast<std::size_t>(frame) % contexts.size()];
      session.step_into(decision, truth, ctx, no_faults, outcome);
      report.add(outcome);
    }
  }
  return report;
}

SessionReport run_static_multi_ap(
    MulticastSession& session,
    const std::vector<std::vector<linalg::CVector>>& stacks,
    const std::vector<FrameContext>& contexts, int n_frames,
    const fault::FaultInjector& injector,
    const std::vector<std::vector<double>>& azimuths) {
  if (contexts.empty())
    throw std::invalid_argument("run_static_multi_ap: no frame contexts");
  if (stacks.empty())
    throw std::invalid_argument("run_static_multi_ap: no AP stacks");
  SessionReport report;
  FrameOutcome outcome;
  // Per-frame faulted copies, hoisted so the nested buffers are reused.
  std::vector<std::vector<linalg::CVector>> decision;
  std::vector<std::vector<linalg::CVector>> truth;
  for (int f = 0; f < n_frames; ++f) {
    const FrameContext& ctx =
        contexts[static_cast<std::size_t>(f) % contexts.size()];
    const auto frame_id = static_cast<std::uint32_t>(f);
    const fault::FrameFaults faults = injector.at(frame_id);
    decision = stacks;
    truth = stacks;
    injector.apply_aps(frame_id, decision, truth, azimuths);
    session.step_multi_into(decision, truth, ctx, faults, outcome);
    report.add(outcome);
  }
  return report;
}

SessionReport run_trace(MulticastSession& session,
                        const channel::CsiTrace& trace,
                        const std::vector<FrameContext>& contexts,
                        const fault::FaultInjector& injector,
                        int frames_per_snapshot) {
  if (contexts.empty())
    throw std::invalid_argument("run_trace: no frame contexts");
  if (trace.steps() == 0)
    throw std::invalid_argument("run_trace: empty trace");
  SessionReport report;
  FrameOutcome outcome;
  std::vector<linalg::CVector> decision;
  std::vector<linalg::CVector> truth;
  std::uint32_t frame = 0;
  for (std::size_t t = 0; t < trace.steps(); ++t) {
    for (int k = 0; k < frames_per_snapshot; ++k, ++frame) {
      const FrameContext& ctx =
          contexts[frame % contexts.size()];
      const fault::FrameFaults faults = injector.at(frame);
      truth = trace.snapshots[t];
      decision = trace.snapshots[t > 0 ? t - 1 : 0];
      injector.apply(frame, decision, truth);
      session.step_into(decision, truth, ctx, faults, outcome);
      report.add(outcome);
    }
  }
  return report;
}

}  // namespace w4k::core

#include "core/session.h"

#include "beamforming/csi.h"
#include "beamforming/sls.h"
#include "channel/array.h"
#include "channel/multi_ap.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "verify/invariants.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

namespace w4k::core {

SessionConfig SessionConfig::scaled(int width, int height) {
  SessionConfig cfg;
  cfg.rate_scale = rate_scale_for(width, height);
  cfg.engine.symbol_size = scaled_symbol_size(width, height);
  cfg.engine.header_bytes = 0;
  // The kernel/driver queue shrinks with the data volume so the
  // no-rate-control overflow regime (Fig. 9) is preserved at reduced
  // resolution.
  cfg.engine.queue_capacity_bytes = std::max<std::size_t>(
      cfg.engine.symbol_size * 16,
      static_cast<std::size_t>(6'000'000 * cfg.rate_scale));
  return cfg;
}

void SessionConfig::validate(std::size_t codebook_beams,
                             std::size_t n_users) const {
  auto bad = [](const std::string& field, const std::string& msg) {
    throw std::invalid_argument("SessionConfig." + field + ": " + msg);
  };
  // `!(x > 0)` style so NaN fails too.
  if (!(rate_scale > 0.0))
    bad("rate_scale", "must be > 0 (got " + std::to_string(rate_scale) + ")");
  if (!(engine.frame_budget > 0.0))
    bad("engine.frame_budget",
        "must be > 0 s (got " + std::to_string(engine.frame_budget) + ")");
  if (!(makeup_margin >= 0.0 && makeup_margin < 1.0))
    bad("makeup_margin",
        "must be in [0, 1) (got " + std::to_string(makeup_margin) + ")");
  if (engine.symbol_size == 0) bad("engine.symbol_size", "must be > 0");
  if (engine.queue_capacity_bytes == 0)
    bad("engine.queue_capacity_bytes", "must be > 0");
  if (!(sls_noise_db >= 0.0))
    bad("sls_noise_db",
        "must be >= 0 dB (got " + std::to_string(sls_noise_db) + ")");
  if (!(lambda >= 0.0))
    bad("lambda", "must be >= 0 (got " + std::to_string(lambda) + ")");
  if (!(decide_deadline_ms >= 0.0) || !std::isfinite(decide_deadline_ms))
    bad("decide_deadline_ms",
        "must be a finite value >= 0 ms (got " +
            std::to_string(decide_deadline_ms) + ")");
  if (!(stale_csi_backoff_db >= 0.0))
    bad("stale_csi_backoff_db",
        "must be >= 0 dB (got " + std::to_string(stale_csi_backoff_db) + ")");
  if (!(blind_makeup_fraction >= 0.0 && blind_makeup_fraction <= 1.0))
    bad("blind_makeup_fraction",
        "must be in [0, 1] (got " + std::to_string(blind_makeup_fraction) +
            ")");
  if (blind_backoff_cap < 0 || blind_backoff_cap > 30)
    bad("blind_backoff_cap",
        "must be in [0, 30] (got " + std::to_string(blind_backoff_cap) + ")");
  if (quarantine_after < 0)
    bad("quarantine_after",
        "must be >= 0 (got " + std::to_string(quarantine_after) + ")");
  if (quarantine_reprobe_period < 1)
    bad("quarantine_reprobe_period",
        "must be >= 1 (got " + std::to_string(quarantine_reprobe_period) +
            ")");
  if (handoff.n_aps < 1 || handoff.n_aps > channel::kMaxAps)
    bad("handoff.n_aps",
        "must be in [1, " + std::to_string(channel::kMaxAps) + "] (got " +
            std::to_string(handoff.n_aps) + ")");
  if (!(handoff.hysteresis_db >= 0.0))
    bad("handoff.hysteresis_db",
        "must be >= 0 dB (got " + std::to_string(handoff.hysteresis_db) + ")");
  if (!std::isfinite(handoff.degrade_floor_dbm))
    bad("handoff.degrade_floor_dbm", "must be finite");
  if (handoff.degrade_after < 1)
    bad("handoff.degrade_after",
        "must be >= 1 (got " + std::to_string(handoff.degrade_after) + ")");
  if (handoff.probe_frames < 1)
    bad("handoff.probe_frames",
        "must be >= 1 (got " + std::to_string(handoff.probe_frames) + ")");
  if (handoff.min_dwell_frames < 1)
    bad("handoff.min_dwell_frames",
        "must be >= 1 (got " + std::to_string(handoff.min_dwell_frames) + ")");
  if (handoff.backoff_cap < 0 || handoff.backoff_cap > 20)
    bad("handoff.backoff_cap",
        "must be in [0, 20] (got " + std::to_string(handoff.backoff_cap) + ")");
  if (!(relay.loss >= 0.0 && relay.loss < 1.0))
    bad("relay.loss",
        "must be in [0, 1) (got " + std::to_string(relay.loss) + ")");
  if (!std::isfinite(relay.min_relayer_rss_dbm))
    bad("relay.min_relayer_rss_dbm", "must be finite");
  if (relay.enabled && handoff.n_aps <= 1 && quarantine_after == 0)
    bad("relay.enabled",
        "peer relay targets quarantined users: with a single AP and "
        "quarantine_after == 0 there is never a relay target (enable "
        "quarantine or add APs)");
  loss.validate();  // throws "LossModel.<field>: ..." on bad parameters
  if (use_estimated_csi && codebook_beams != kUnknown &&
      codebook_beams < channel::kDefaultApAntennas)
    bad("use_estimated_csi",
        "CSI estimation needs a codebook with at least one beam per "
        "antenna (" +
            std::to_string(codebook_beams) + " beams < " +
            std::to_string(channel::kDefaultApAntennas) + " antennas)");
  if (n_users != kUnknown && n_users > 0 && associated_user >= n_users)
    bad("associated_user",
        "out of range (" + std::to_string(associated_user) + " >= " +
            std::to_string(n_users) + " users)");
}

MulticastSession::MulticastSession(const SessionConfig& cfg,
                                   model::QualityModel& quality,
                                   beamforming::Codebook codebook)
    : cfg_(cfg),
      quality_(quality),
      codebook_(std::move(codebook)),
      engine_(cfg.engine),
      rng_(cfg.seed),
      beam_cache_(cfg.scheme, cfg.seed) {
  cfg_.validate(codebook_.size());
}

void MulticastSession::reset() {
  frozen_.reset();
  last_measured_.clear();
  beam_cache_.clear();
  prev_alloc_.clear();
  prev_total_time_ = 0.0;
  prev_n_users_ = 0;
  engine_.clear_backlog();
  rng_.reseed(cfg_.seed);
  next_frame_id_ = 0;
  held_csi_.clear();
  feedback_silent_streak_.clear();
  lost_frame_streak_.clear();
  quarantined_.clear();
  serving_ap_.clear();
  attach_state_.clear();
  weak_streak_.clear();
  probe_target_.clear();
  probe_countdown_.clear();
  dwell_until_.clear();
  handoff_streak_.clear();
  last_handoff_frame_.clear();
  partition_.clear();
  relays_.clear();
  group_pool_.clear();
  tx_pool_.clear();
}

void MulticastSession::ensure_user_state(std::size_t n_users) {
  if (feedback_silent_streak_.size() == n_users) return;
  // Churn: resize in place so surviving user indices keep their quarantine
  // flag and silence/loss streaks — a user who was blocked before a
  // neighbor joined is still blocked after. Only index-keyed caches whose
  // meaning depends on the user count are dropped.
  feedback_silent_streak_.resize(n_users, 0);
  lost_frame_streak_.resize(n_users, 0);
  quarantined_.resize(n_users, 0);
  serving_ap_.resize(n_users, kUnattached);
  attach_state_.resize(n_users, ApAttachState::kAttached);
  weak_streak_.resize(n_users, 0);
  probe_target_.resize(n_users, 0);
  probe_countdown_.resize(n_users, 0);
  dwell_until_.resize(n_users, 0);
  handoff_streak_.resize(n_users, 0);
  last_handoff_frame_.resize(n_users, kNeverHandedOff);
  held_csi_.clear();
  prev_alloc_.clear();
  prev_total_time_ = 0.0;
  prev_n_users_ = 0;
}

namespace {

/// Resize a vector of buffer-owning elements without churning the heap:
/// shrinking moves the victims into `pool` (their buffers survive),
/// growing pulls them back, so a group-count swing costs nothing once
/// both shapes have been seen. Plain resize would destroy + re-allocate.
template <class T>
void resize_recycled(std::vector<T>& v, std::size_t n, std::vector<T>& pool) {
  while (v.size() > n) {
    pool.push_back(std::move(v.back()));
    v.pop_back();
  }
  while (v.size() < n) {
    if (pool.empty()) {
      v.emplace_back();
    } else {
      v.push_back(std::move(pool.back()));
      pool.pop_back();
    }
  }
  // Pay for the worst future shrink (parking every element) now, at
  // growth time: growth to a new high-water allocates anyway, so a later
  // shrink-to-zero stays heap-free.
  if (pool.capacity() < v.size() + pool.size())
    pool.reserve(v.size() + pool.size());
}

bool all_finite(const std::vector<linalg::CVector>& channels) {
  for (const auto& h : channels)
    for (std::size_t n = 0; n < h.size(); ++n)
      if (!std::isfinite(h[n].real()) || !std::isfinite(h[n].imag()))
        return false;
  return true;
}

}  // namespace

MulticastSession::Decision MulticastSession::decide(
    const std::vector<linalg::CVector>& channels, const FrameContext& ctx,
    const std::vector<std::uint8_t>& exclude) {
  Decision d;
  decide_into(channels, ctx, exclude, d);
  return d;
}

void MulticastSession::decide_into(
    const std::vector<linalg::CVector>& channels, const FrameContext& ctx,
    const std::vector<std::uint8_t>& exclude, Decision& d) {
  // Anytime budget: beamforming may defer optional merge candidates past
  // ~45% of the budget, the allocator returns best-so-far past ~90%, and
  // the remaining slack absorbs unit mapping. A zero deadline arms
  // nothing — decide() then never reads the clock, which is what keeps
  // its output a pure function of the inputs.
  sched::OptimizerConfig opt_cfg = cfg_.optimizer;
  std::optional<std::chrono::steady_clock::time_point> beam_deadline;
  if (cfg_.decide_deadline_ms > 0.0) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto budget = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(cfg_.decide_deadline_ms));
    beam_deadline = t0 + budget * 45 / 100;
    opt_cfg.deadline = t0 + budget * 90 / 100;
  }
  {
    // Group beamforming. Every subset's beam derives its RNG from
    // (cfg_.seed, member bitmask), so the result is a pure function of the
    // CSI and config — the cache below and the ThreadPool-parallel miss
    // computation are bit-identical to a serial, uncached enumeration.
    static obs::Stage& st = obs::stage("session.beamform");
    obs::StageSpan span(st);
    // enum_cfg_ is a member so the exclude vector's capacity survives
    // across frames; copy-assign never shrinks, so this is allocation-free
    // once warm.
    enum_cfg_ = cfg_.group_enum;
    enum_cfg_.exclude.assign(exclude.begin(), exclude.end());
    // Multi-AP sessions own the partition: step_multi_into stamps each
    // user's serving AP into partition_ so groups never span APs. Empty on
    // the single-AP path — and then the enumerator is bit-identical to the
    // pre-partition code.
    enum_cfg_.partition.assign(partition_.begin(), partition_.end());
    enum_cfg_.deadline = beam_deadline;
    ThreadPool* pool = &ThreadPool::shared();
    const std::span<const sched::GroupSpec> emitted =
        cfg_.beam_cache
            ? beam_cache_.enumerate_into(channels, codebook_, enum_cfg_, pool,
                                         sched_ws_)
            : sched::enumerate_groups(cfg_.scheme, channels, codebook_,
                                      cfg_.seed, enum_cfg_, pool, sched_ws_);
    // Copy out of the workspace pool through the recycling resize:
    // copy-assignment over reused GroupSpec elements keeps their member /
    // beam buffers' capacity across frames, and shrunk elements survive
    // in group_pool_ for the next reprobe-frame growth.
    resize_recycled(d.groups, emitted.size(), group_pool_);
    for (std::size_t g = 0; g < emitted.size(); ++g) d.groups[g] = emitted[g];
    // Scale Table 2 rates to the frame resolution before any byte math.
    for (auto& g : d.groups)
      g.beam.rate = Mbps{g.beam.rate.value * cfg_.rate_scale};
  }

  if (verify::enabled()) {
    // Quarantined/excluded users must never appear in a scheduled group —
    // a single stale cache entry here would leak traffic to a silent user.
    for (std::size_t g = 0; g < d.groups.size(); ++g)
      for (std::size_t u : d.groups[g].members)
        verify::check(u < exclude.size() && exclude[u] == 0,
                      "session.excluded-user-scheduled", [&] {
                        return "group " + std::to_string(g) +
                               " contains excluded user " + std::to_string(u);
                      });
    // Groups must never span APs: one radio serves one beam, and a member
    // attached elsewhere would hear nothing while dragging the group MCS.
    if (!partition_.empty()) {
      for (std::size_t g = 0; g < d.groups.size(); ++g) {
        const auto& members = d.groups[g].members;
        for (std::size_t u : members)
          verify::check(
              u < partition_.size() &&
                  partition_[u] == partition_[members.front()],
              "session.group-spans-aps", [&] {
                return "group " + std::to_string(g) + " mixes AP " +
                       std::to_string(partition_[members.front()]) +
                       " and AP " + std::to_string(partition_[u]) +
                       " (user " + std::to_string(u) + ")";
              });
      }
    }
  }

  if (d.groups.empty()) {
    // Deep outage: nothing schedulable. A reused decision must not leak
    // the previous frame's plan (a fresh Decision is all-empty here).
    d.allocation.reset(0, 0);
    d.unit_map.assignments.clear();
    // Row-wise clear: emptying each row (rather than dropping the outer
    // vectors) keeps the row buffers, so the first schedulable frame after
    // an outage re-fills them without touching the heap.
    for (auto& row : d.unit_map.user_symbols) row.clear();
    for (auto& row : d.unit_map.user_decodes) row.clear();
    d.unit_map.leftover_symbols = 0;
    return;
  }

  sched::AllocProblem problem;
  problem.groups = d.groups;
  problem.n_users = channels.size();
  problem.content = ctx.content;
  problem.time_budget =
      cfg_.engine.frame_budget * (1.0 - cfg_.makeup_margin);
  problem.lambda = cfg_.lambda;

  // Remap the previous frame's allocation onto the surviving groups (by
  // member bitmask) to warm-start the optimizer. Only offered when at least
  // half of the previous airtime maps onto a still-existing group — past
  // that the landscape has shifted enough that the cold multi-start is the
  // better bet. Note: this depends only on the previous *allocation*, never
  // on the beam-cache flag, so cache on/off stays bit-identical.
  const auto group_mask = [](const sched::GroupSpec& g) {
    sched::GroupMask mask = 0;
    for (std::size_t u : g.members) mask |= sched::GroupMask{1} << u;
    return mask;
  };
  const std::vector<double>* warm = nullptr;
  if (cfg_.optimized_schedule && cfg_.warm_start && prev_total_time_ > 0.0 &&
      prev_n_users_ == channels.size()) {
    warm_vec_.assign(d.groups.size() * video::kNumLayers, 0.0);
    double covered = 0.0;
    for (std::size_t g = 0; g < d.groups.size(); ++g) {
      const sched::GroupMask mask = group_mask(d.groups[g]);
      const auto it = std::lower_bound(
          prev_alloc_.begin(), prev_alloc_.end(), mask,
          [](const PrevAlloc& e, sched::GroupMask m) { return e.mask < m; });
      if (it == prev_alloc_.end() || it->mask != mask) continue;
      for (std::size_t j = 0; j < video::kNumLayers; ++j) {
        warm_vec_[g * video::kNumLayers + j] = it->t[j];
        covered += it->t[j];
      }
    }
    if (covered >= 0.5 * prev_total_time_) warm = &warm_vec_;
  }

  {
    static obs::Stage& st = obs::stage("session.allocate");
    obs::StageSpan span(st);
    if (cfg_.optimized_schedule)
      sched::optimize_allocation_into(problem, quality_, d.allocation,
                                      opt_cfg, warm);
    else
      sched::round_robin_allocation_into(problem, quality_, d.allocation);
  }

  // Remember this allocation for the next frame's warm start. Groups are
  // emitted in ascending-mask order, so the rebuilt list stays sorted for
  // the binary search above.
  prev_alloc_.clear();
  prev_total_time_ = 0.0;
  prev_n_users_ = channels.size();
  for (std::size_t g = 0; g < d.groups.size(); ++g) {
    const sched::LayerArray& t = d.allocation.time(g);
    prev_alloc_.push_back(PrevAlloc{group_mask(d.groups[g]), t});
    for (double v : t) prev_total_time_ += v;
  }
  {
    static obs::Stage& st = obs::stage("session.unitmap");
    obs::StageSpan span(st);
    sched::map_to_units_into(d.groups, d.allocation.bytes_rows(), ctx.units,
                             channels.size(), cfg_.engine.symbol_size,
                             d.unit_map);
  }
}

FrameOutcome MulticastSession::step(
    const std::vector<linalg::CVector>& decision_channels,
    const std::vector<linalg::CVector>& true_channels,
    const FrameContext& ctx) {
  return step(decision_channels, true_channels, ctx, fault::FrameFaults{});
}

FrameOutcome MulticastSession::step(
    const std::vector<linalg::CVector>& decision_channels,
    const std::vector<linalg::CVector>& true_channels,
    const FrameContext& ctx, const fault::FrameFaults& faults) {
  FrameOutcome out;
  step_into(decision_channels, true_channels, ctx, faults, out);
  return out;
}

void MulticastSession::step_into(
    const std::vector<linalg::CVector>& decision_channels,
    const std::vector<linalg::CVector>& true_channels,
    const FrameContext& ctx, const fault::FrameFaults& faults,
    FrameOutcome& out) {
  // Field-by-field reset (not `out = {}`) so a reused outcome's vectors
  // keep their capacity.
  out.ssim.clear();
  out.psnr.clear();
  out.decoded_fraction.clear();
  out.stats = emu::FrameTxStats{};
  out.optimizer_objective = 0.0;
  out.frame_id = 0;
  out.user_present.clear();
  out.user_quarantined.clear();
  out.shed_symbols = 0;
  out.csi_held = false;
  out.user_ap.clear();
  out.handoffs = 0;
  out.relayed_symbols = 0;

  if (decision_channels.size() != true_channels.size())
    throw std::invalid_argument("step: channel vector count mismatch");
  const std::size_t n_users = true_channels.size();
  cfg_.validate(SessionConfig::kUnknown, n_users);
  const auto check_mask = [&](std::size_t got, const char* name) {
    if (got != 0 && got != n_users)
      throw std::invalid_argument(std::string("step: faults.") + name +
                                  " size mismatch");
  };
  check_mask(faults.feedback_lost.size(), "feedback_lost");
  check_mask(faults.user_active.size(), "user_active");
  check_mask(faults.relay_down.size(), "relay_down");
  if (!(faults.budget_scale > 0.0 && faults.budget_scale <= 1.0))
    throw std::invalid_argument("step: faults.budget_scale outside (0, 1]");
  ensure_user_state(n_users);
  const std::uint32_t frame_id = next_frame_id_++;

  static obs::Stage& st_frame = obs::stage("session.frame");
  obs::StageSpan frame_span(st_frame);

  // --- CSI health: hold the last good beamweights over a missed or
  // corrupt beacon instead of deciding on garbage. ------------------------
  const bool csi_finite = all_finite(decision_channels);
  const std::vector<linalg::CVector>* decision_base = &decision_channels;
  std::vector<linalg::CVector> sanitized;
  bool csi_held = false;
  if (faults.csi_stale || !csi_finite) {
    if (held_csi_.size() == n_users) {
      decision_base = &held_csi_;
      csi_held = true;
    } else if (!csi_finite) {
      // Nothing to fall back to: zero the poisoned entries. The affected
      // users enumerate as unreachable (outage) rather than NaN.
      sanitized = decision_channels;
      for (auto& h : sanitized)
        for (std::size_t n = 0; n < h.size(); ++n)
          if (!std::isfinite(h[n].real()) || !std::isfinite(h[n].imag()))
            h[n] = linalg::Complex(0.0, 0.0);
      decision_base = &sanitized;
    }
  } else {
    held_csi_ = decision_channels;  // fresh and finite: new fallback point
  }
  // Stale beamweights deserve a conservative MCS.
  const double mcs_margin_db =
      cfg_.mcs_margin_db + (csi_held ? cfg_.stale_csi_backoff_db : 0.0);

  // --- Active / quarantine bookkeeping -> group-optimizer exclusions ----
  const auto active = [&](std::size_t u) {
    return faults.user_active.empty() || faults.user_active[u] != 0;
  };
  const bool reprobe_frame =
      cfg_.quarantine_after > 0 &&
      frame_id % static_cast<std::uint32_t>(cfg_.quarantine_reprobe_period) ==
          0;
  exclude_.assign(n_users, 0);
  std::size_t n_included = 0;
  std::size_t n_active = 0;
  for (std::size_t u = 0; u < n_users; ++u) {
    const bool act = active(u);
    n_active += act ? 1 : 0;
    const bool inc = act && (quarantined_[u] == 0 || reprobe_frame);
    exclude_[u] = inc ? 0 : 1;
    n_included += inc ? 1 : 0;
  }
  if (n_included == 0 && n_active > 0) {
    // Every remaining user is quarantined: streaming to nobody serves no
    // one, so treat the frame as a forced re-probe of all of them.
    for (std::size_t u = 0; u < n_users; ++u) exclude_[u] = active(u) ? 0 : 1;
    n_included = n_active;
  }

  out.frame_id = frame_id;
  out.csi_held = csi_held;
  const auto fill_presence = [&] {
    if (n_active < n_users) {
      out.user_present.assign(n_users, false);
      for (std::size_t u = 0; u < n_users; ++u) out.user_present[u] = active(u);
    }
    bool any_quarantined = false;
    for (std::size_t u = 0; u < n_users; ++u)
      any_quarantined |= quarantined_[u] != 0;
    if (any_quarantined) {
      out.user_quarantined.assign(n_users, false);
      for (std::size_t u = 0; u < n_users; ++u)
        out.user_quarantined[u] = quarantined_[u] != 0;
    }
  };

  if (n_active == 0) {
    // Everyone left: an idle frame, not an error. Frame ids keep counting.
    out.ssim.assign(n_users, 0.0);
    out.psnr.assign(n_users, 0.0);
    out.decoded_fraction.assign(n_users, 0.0);
    fill_presence();
    return;
  }

  // Optionally estimate CSI the way the hardware does (SLS sweep + phase
  // retrieval) instead of taking the beacon channels as ground truth.
  const std::vector<linalg::CVector>* decision_csi = decision_base;
  std::vector<linalg::CVector> estimated;
  if (cfg_.use_estimated_csi) {
    static obs::Stage& st = obs::stage("session.csi_estimate");
    obs::StageSpan span(st);
    if (codebook_.size() < (decision_base->empty()
                                ? 1
                                : decision_base->front().size()))
      throw std::invalid_argument(
          "step: CSI estimation needs codebook size >= antenna count");
    estimated.reserve(decision_base->size());
    for (const auto& h : *decision_base) {
      const beamforming::SweepResult sweep =
          beamforming::sector_sweep(h, codebook_, rng_, cfg_.sls_noise_db);
      estimated.push_back(beamforming::estimate_csi(sweep, codebook_).h);
    }
    decision_csi = &estimated;
  }

  const Decision* decision = nullptr;
  if (!cfg_.adapt) {
    if (!frozen_) frozen_ = decide(*decision_csi, ctx, exclude_);
    decision = &*frozen_;
  } else {
    decide_into(*decision_csi, ctx, exclude_, decision_);
    decision = &decision_;
  }

  // "No Update" freezes the app-level decision (groups, time allocation,
  // packet schedule), but the 802.11ad firmware keeps training beams and
  // adapting MCS on its own — the link stays alive on pre-defined sectors
  // even though the schedule's rate assumptions have gone stale. Without
  // this, a walking receiver would simply leave the frozen beam, which is
  // not what happens on real hardware. The firmware's knowledge has the
  // same one-beacon staleness as everyone else's: it trains on the last
  // sweep (decision channels), not on the in-flight channel.
  std::vector<linalg::CVector> fallback_beams;
  if (!cfg_.adapt && codebook_.size() > 0) {
    fallback_beams.reserve(decision->groups.size());
    for (const auto& spec : decision->groups) {
      const linalg::CVector* best = nullptr;
      double best_min = -1e300;
      for (std::size_t k = 0; k < codebook_.size(); ++k) {
        double min_rss = 1e300;
        for (std::size_t u : spec.members)
          min_rss = std::min(
              min_rss,
              channel::beam_rss((*decision_base)[u], codebook_[k]).value);
        if (min_rss > best_min) {
          best_min = min_rss;
          best = &codebook_[k];
        }
      }
      fallback_beams.push_back(best != nullptr ? *best : spec.beam.beam);
    }
  }

  out.optimizer_objective = decision->allocation.objective;

  if (decision->groups.empty()) {
    // Outage frame: receivers render the blank frame.
    static obs::Stage& st = obs::stage("session.quality");
    obs::StageSpan span(st);
    // Both references were computed once at context-build time (the SSIM
    // doubles as a quality-model feature), so a long outage stays
    // allocation-free.
    const double s = ctx.content.blank_ssim;
    const double p = ctx.blank_psnr;
    out.ssim.assign(n_users, 0.0);
    out.psnr.assign(n_users, 0.0);
    out.decoded_fraction.assign(n_users, 0.0);
    for (std::size_t u = 0; u < n_users; ++u) {
      if (!active(u)) continue;
      out.ssim[u] = s;
      out.psnr[u] = p;
    }
    fill_presence();
    return;
  }

  // Assemble the per-group transmission parameters against the *current*
  // channel (the decision was made on beacon-time CSI). Indices must stay
  // 1:1 with decision->groups because the assignments reference them; a
  // group whose MCS lookup fails keeps a zero drain rate and the engine
  // drops its packets.
  resize_recycled(groups_tx_, decision->groups.size(), tx_pool_);
  {
    static obs::Stage& st = obs::stage("session.mcs");
    obs::StageSpan span(st);
    for (std::size_t g = 0; g < decision->groups.size(); ++g) {
      const auto& spec = decision->groups[g];
      // Per-entry reset of the reused slot: copy-assign / clear reuse the
      // member vectors' capacity; the fields match a fresh GroupTx.
      emu::GroupTx& tx = groups_tx_[g];
      tx.members = spec.members;
      tx.mcs = channel::McsEntry{};
      tx.drain_rate = Mbps{0.0};
      tx.bucket_rate = Mbps{0.0};
      tx.member_loss.clear();
      // Beam actually on the air: the decision's optimized beam, or the
      // firmware-tracked fallback sector in No-Update mode.
      const linalg::CVector& air_beam =
          fallback_beams.empty() ? spec.beam.beam : fallback_beams[g];
      // MCS from the freshest link knowledge available: in No-Update mode
      // the firmware's own tracking (current channel, fallback beam);
      // otherwise the beacon-time decision RSS, minus the mobility margin.
      Dbm link_rss = spec.beam.min_rss;
      if (!fallback_beams.empty()) {
        link_rss = Dbm{1e300};
        for (std::size_t u : spec.members)
          link_rss = std::min(
              link_rss, channel::beam_rss((*decision_base)[u], air_beam));
      }
      if (const auto mcs = channel::select_mcs(link_rss - mcs_margin_db)) {
        tx.mcs = *mcs;
        tx.drain_rate = Mbps{mcs->udp_throughput.value * cfg_.rate_scale};
        tx.bucket_rate = (cfg_.adapt && g < last_measured_.size() &&
                          last_measured_[g].value > 0.0)
                             ? last_measured_[g]
                             : tx.drain_rate;
        for (std::size_t u : spec.members) {
          const Dbm rss = channel::beam_rss(true_channels[u], air_beam);
          tx.member_loss.push_back(
              u == cfg_.associated_user
                  ? emu::associated_loss(cfg_.loss, rss, *mcs)
                  : emu::monitor_loss(cfg_.loss, rss, *mcs));
        }
      }
    }
  }

  // --- Budget collapse: shed enhancement layers, never the base ----------
  // Assignments are in transmission-priority order (layer asc), so the
  // airtime estimate fills the base layer first; everything past the
  // collapsed budget is shed unless it is base-layer data, which is always
  // attempted (the layered-coding rationale: a thumbnail beats a freeze).
  const std::vector<sched::UnitAssignment>* assignments =
      &decision->unit_map.assignments;
  std::vector<sched::UnitAssignment> shed_plan;
  if (faults.budget_scale < 1.0) {
    static obs::Stage& st = obs::stage("session.shed");
    obs::StageSpan span(st);
    const Seconds cap = cfg_.engine.frame_budget * faults.budget_scale;
    const double wire = static_cast<double>(cfg_.engine.header_bytes +
                                            cfg_.engine.symbol_size);
    Seconds est = 0.0;
    shed_plan.reserve(decision->unit_map.assignments.size());
    for (const auto& a : decision->unit_map.assignments) {
      const Mbps rate = groups_tx_[a.group].drain_rate;
      const Seconds air =
          rate.value > 0.0
              ? rate.seconds_for(wire * static_cast<double>(a.symbols))
              : 0.0;
      const bool base_layer =
          a.unit_index < ctx.units.size() &&
          ctx.units[a.unit_index].id.layer == 0;
      if (base_layer || est + air <= cap) {
        shed_plan.push_back(a);
        est += air;
      } else {
        out.shed_symbols += a.symbols;
      }
    }
    assignments = &shed_plan;
    if (verify::enabled()) {
      // Shedding must only re-partition the plan: every scheduled symbol is
      // either kept for transmission or counted as shed, never both/neither.
      std::size_t scheduled = 0, kept = 0;
      for (const auto& a : decision->unit_map.assignments)
        scheduled += a.symbols;
      for (const auto& a : shed_plan) kept += a.symbols;
      verify::check(scheduled == kept + out.shed_symbols,
                    "session.shed-conservation", [&] {
                      return "scheduled " + std::to_string(scheduled) +
                             " != kept " + std::to_string(kept) + " + shed " +
                             std::to_string(out.shed_symbols);
                    });
    }
  }

  // --- Feedback faults -> engine fault state -----------------------------
  emu::FrameFaultState efs;
  efs.frame_id = frame_id;
  efs.budget_scale = faults.budget_scale;
  bool any_silent = false;
  for (std::size_t u = 0; u < n_users; ++u) {
    const bool lost =
        (u < faults.feedback_lost.size() && faults.feedback_lost[u] != 0) ||
        !active(u);  // departed users cannot report either
    if (lost) any_silent = true;
  }
  if (any_silent) {
    efs.feedback_lost.assign(n_users, 0);
    efs.blind_fraction.assign(n_users, cfg_.blind_makeup_fraction);
    for (std::size_t u = 0; u < n_users; ++u) {
      const bool lost =
          (u < faults.feedback_lost.size() && faults.feedback_lost[u] != 0) ||
          !active(u);
      if (!lost) continue;
      efs.feedback_lost[u] = 1;
      // Capped exponential backoff: the first silent frame gets the full
      // conservative budget, each further consecutive one half of it.
      const int halvings =
          std::min(feedback_silent_streak_[u], cfg_.blind_backoff_cap);
      efs.blind_fraction[u] =
          cfg_.blind_makeup_fraction / static_cast<double>(1u << halvings);
    }
  }

  // --- Peer relay: LoS users forward base-layer symbols to quarantined
  // peers, charged against the same frame budget (DESIGN.md Sec. 4h) ------
  plan_relays(*decision_base, n_users, mcs_margin_db, faults);

  {
    static obs::Stage& st = obs::stage("session.transmit");
    obs::StageSpan span(st);
    engine_.run_frame_into(ctx.units, *assignments, groups_tx_, n_users,
                           rng_, efs, relays_, tx_result_);
  }

  if (cfg_.adapt) last_measured_ = tx_result_.measured_rate;

  // --- Cross-frame recovery bookkeeping ---------------------------------
  std::size_t quarantine_entered = 0;
  std::size_t quarantine_exited = 0;
  for (std::size_t u = 0; u < n_users; ++u) {
    const bool lost =
        (u < faults.feedback_lost.size() && faults.feedback_lost[u] != 0) &&
        active(u);
    const bool delayed =
        u < faults.feedback_delayed.size() && faults.feedback_delayed[u] != 0;
    // A delayed report proves the user alive once it lands, so it does not
    // feed the persistent-silence streak; an outright loss does.
    if (lost && !delayed) ++feedback_silent_streak_[u];
    else feedback_silent_streak_[u] = 0;
  }
  if (cfg_.quarantine_after > 0) {
    attempted_.assign(n_users, 0);
    for (const auto& g : groups_tx_) {
      if (g.drain_rate.value <= 0.0) continue;
      for (std::size_t u : g.members) attempted_[u] = 1;
    }
    for (std::size_t u = 0; u < n_users; ++u) {
      if (!active(u)) {
        lost_frame_streak_[u] = 0;  // churn is not blockage
        continue;
      }
      bool decoded_any = false;
      for (bool b : tx_result_.user_decoded[u]) decoded_any |= b;
      // A relay target's decodes came over the D2D side link, not its own
      // AP ray — they prove the relay worked, not that the direct link
      // recovered, so they must not release the quarantine (that would
      // ping-pong the user between quarantine and dragging every group).
      // Release still happens on re-probe frames, where the target is
      // scheduled directly and never relayed to.
      bool relayed_to = false;
      for (const auto& rl : relays_) relayed_to |= rl.target == u;
      if (decoded_any && !relayed_to) {
        lost_frame_streak_[u] = 0;
        if (quarantined_[u]) {
          quarantined_[u] = 0;
          ++quarantine_exited;
        }
      } else if (!decoded_any && attempted_[u] && faults.budget_scale >= 0.5 &&
                 !ctx.units.empty()) {
        // Only count frames where delivery was genuinely attempted over a
        // healthy budget — a NIC stall must not quarantine the room.
        if (++lost_frame_streak_[u] >= cfg_.quarantine_after &&
            quarantined_[u] == 0) {
          quarantined_[u] = 1;
          ++quarantine_entered;
        }
      }
    }
  }

  out.stats = tx_result_.stats;
  out.relayed_symbols = tx_result_.relayed_symbols;
  {
    static obs::Stage& st = obs::stage("session.quality");
    obs::StageSpan span(st);
    out.ssim.assign(n_users, 0.0);
    out.psnr.assign(n_users, 0.0);
    out.decoded_fraction.assign(n_users, 0.0);
    for (std::size_t u = 0; u < n_users; ++u) {
      if (!active(u)) continue;  // departed: placeholder sample
      reconstruct_from_units_into(ctx, tx_result_.user_decoded[u], recon_ws_,
                                  recon_frame_);
      out.ssim[u] = quality::ssim(ctx.original, recon_frame_);
      out.psnr[u] = quality::psnr(ctx.original, recon_frame_);
      std::size_t decoded = 0;
      for (bool b : tx_result_.user_decoded[u]) decoded += b ? 1 : 0;
      out.decoded_fraction[u] =
          ctx.units.empty() ? 0.0
                            : static_cast<double>(decoded) /
                                  static_cast<double>(ctx.units.size());
    }
  }
  fill_presence();

  // One batched telemetry flush per frame: every fault seen and every
  // degradation decision taken is visible in the metrics snapshot.
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_held = reg.counter("session.csi_held_frames");
    static obs::Counter& c_shed = reg.counter("session.shed_symbols");
    static obs::Counter& c_shed_frames = reg.counter("session.shed_frames");
    static obs::Counter& c_silent = reg.counter("session.feedback_silent_users");
    static obs::Counter& c_q_in = reg.counter("session.quarantine_entered");
    static obs::Counter& c_q_out = reg.counter("session.quarantine_exited");
    static obs::Counter& c_q_probe = reg.counter("session.quarantine_reprobes");
    static obs::Gauge& g_quarantined = reg.gauge("session.quarantined_users");
    static obs::Gauge& g_active = reg.gauge("session.active_users");
    static obs::Counter& c_relay_links = reg.counter("session.relay_links");
    static obs::Counter& c_relayed = reg.counter("session.relayed_symbols");
    c_relay_links.add(relays_.size());
    c_relayed.add(out.relayed_symbols);
    if (csi_held) c_held.add(1);
    if (out.shed_symbols > 0) {
      c_shed.add(out.shed_symbols);
      c_shed_frames.add(1);
    }
    std::uint64_t silent = 0;
    for (auto v : efs.feedback_lost) silent += v ? 1 : 0;
    c_silent.add(silent);
    c_q_in.add(quarantine_entered);
    c_q_out.add(quarantine_exited);
    if (reprobe_frame && n_included > 0) {
      std::uint64_t probed = 0;
      for (std::size_t u = 0; u < n_users; ++u)
        probed += (quarantined_[u] != 0 && active(u)) ? 1 : 0;
      c_q_probe.add(probed + quarantine_exited);
    }
    double quarantined = 0.0;
    for (auto v : quarantined_) quarantined += v ? 1.0 : 0.0;
    g_quarantined.set(quarantined);
    g_active.set(static_cast<double>(n_active));
  }
}

void MulticastSession::plan_relays(
    const std::vector<linalg::CVector>& decision_channels, std::size_t n_users,
    double mcs_margin_db, const fault::FrameFaults& faults) {
  relays_.clear();
  // Relaying needs the rateless code: a systematic-mode relayer could only
  // repeat the exact indices it holds, which the engine's duplication math
  // already covers.
  if (!cfg_.relay.enabled || !cfg_.engine.source_coding) return;
  const auto down = [&](std::size_t u) {
    return u < faults.relay_down.size() && faults.relay_down[u] != 0;
  };
  const auto active = [&](std::size_t u) {
    return faults.user_active.empty() || faults.user_active[u] != 0;
  };
  const auto rss_mw = [&](std::size_t u) {
    const double mw = decision_channels[u].norm_sq();
    return std::isfinite(mw) ? mw : 0.0;
  };
  for (std::size_t t = 0; t < n_users; ++t) {
    // Targets: quarantined users sitting out this frame (on re-probe
    // frames they are scheduled directly instead — exclude_[t] == 0).
    if (!active(t) || quarantined_[t] == 0 || exclude_[t] == 0) continue;
    // Quality-aware relayer pick: the strongest-RSS scheduled peer. Its own
    // AP link bounds the D2D budget we charge, so a marginal user never
    // burns airtime relaying.
    std::size_t best = n_users;
    double best_mw = 0.0;
    for (std::size_t r = 0; r < n_users; ++r) {
      if (r == t || !active(r) || exclude_[r] != 0 || down(r)) continue;
      const double mw = rss_mw(r);
      if (mw > best_mw) {
        best_mw = mw;
        best = r;
      }
    }
    if (best == n_users || best_mw <= 0.0) continue;
    const Dbm rss = Dbm::from_milliwatts(best_mw);
    if (rss.value < cfg_.relay.min_relayer_rss_dbm) continue;
    const auto mcs = channel::select_mcs(rss - mcs_margin_db);
    if (!mcs) continue;
    relays_.push_back(
        emu::RelayLink{best, t, Mbps{mcs->udp_throughput.value * cfg_.rate_scale},
                       cfg_.relay.loss});
  }
}

std::size_t MulticastSession::advance_attachments(
    std::size_t n_users, std::size_t n_aps, const std::vector<double>& rss_mw,
    std::uint32_t frame_id, bool beacon_ok) {
  const auto mw = [&](std::size_t a, std::size_t u) {
    return rss_mw[a * n_users + u];
  };
  const auto dbm = [](double m) {
    return m > 0.0 ? 10.0 * std::log10(m) : -400.0;
  };
  std::size_t handoffs = 0;
  const auto& hc = cfg_.handoff;
  for (std::size_t u = 0; u < n_users; ++u) {
    if (serving_ap_[u] == kUnattached) {
      // Initial AP selection: strongest beacon wins (ties to the lowest
      // id). This runs even with handoff disabled — a multi-AP user always
      // needs an attachment, it just never changes afterwards.
      std::size_t best = 0;
      for (std::size_t a = 1; a < n_aps; ++a)
        if (mw(a, u) > mw(best, u)) best = a;
      serving_ap_[u] = static_cast<std::uint8_t>(best);
      attach_state_[u] = ApAttachState::kAttached;
      weak_streak_[u] = 0;
      continue;
    }
    if (!hc.enabled) continue;
    if (serving_ap_[u] >= n_aps) serving_ap_[u] = 0;  // shrunk geometry
    const std::size_t serving = serving_ap_[u];
    const double serving_dbm = dbm(mw(serving, u));
    const bool weak = serving_dbm < hc.degrade_floor_dbm;
    switch (attach_state_[u]) {
      case ApAttachState::kAttached:
        if (weak) {
          if (++weak_streak_[u] >= hc.degrade_after)
            attach_state_[u] = ApAttachState::kDegraded;
        } else {
          weak_streak_[u] = 0;
        }
        break;
      case ApAttachState::kDegraded: {
        if (!weak) {
          attach_state_[u] = ApAttachState::kAttached;
          weak_streak_[u] = 0;
          break;
        }
        // A probe starts only off a healthy beacon, past the dwell window,
        // and with an alternate clearing the full hysteresis bar. Serial
        // comparison: dwell_until_ may sit across the u32 frame-id wrap.
        if (!beacon_ok || transport::seq_less(frame_id, dwell_until_[u]))
          break;
        std::size_t alt = serving;
        double alt_mw = 0.0;
        for (std::size_t a = 0; a < n_aps; ++a) {
          if (a == serving) continue;
          if (mw(a, u) > alt_mw) {
            alt_mw = mw(a, u);
            alt = a;
          }
        }
        if (alt != serving && dbm(alt_mw) >= serving_dbm + hc.hysteresis_db) {
          attach_state_[u] = ApAttachState::kProbing;
          probe_target_[u] = static_cast<std::uint8_t>(alt);
          probe_countdown_[u] = hc.probe_frames;
        }
        break;
      }
      case ApAttachState::kProbing: {
        // Make-before-break: the user keeps streaming from the old AP
        // while the alternate trains. A lost beacon pauses the probe clock
        // rather than committing on stale information.
        if (!beacon_ok) break;
        if (probe_target_[u] >= n_aps) {  // shrunk geometry mid-probe
          attach_state_[u] = ApAttachState::kDegraded;
          break;
        }
        const double tgt_dbm = dbm(mw(probe_target_[u], u));
        if (tgt_dbm < serving_dbm + 0.5 * hc.hysteresis_db) {
          // Target fell below half the bar mid-probe: abort, no flap.
          attach_state_[u] =
              weak ? ApAttachState::kDegraded : ApAttachState::kAttached;
          break;
        }
        if (--probe_countdown_[u] <= 0)
          attach_state_[u] = ApAttachState::kHandingOff;
        break;
      }
      case ApAttachState::kHandingOff: {
        // FST-style switch committed at the frame boundary. Quarantine,
        // feedback streaks, and warm-start state all survive untouched.
        serving_ap_[u] = probe_target_[u];
        attach_state_[u] = ApAttachState::kAttached;
        weak_streak_[u] = 0;
        ++handoffs;
        // Capped exponential dwell: back-to-back handoffs double the
        // cooldown so a user on an AP coverage boundary cannot ping-pong.
        const std::uint32_t base =
            static_cast<std::uint32_t>(hc.min_dwell_frames);
        if (last_handoff_frame_[u] != kNeverHandedOff &&
            transport::seq_distance(last_handoff_frame_[u], frame_id) <
                4 * base)
          handoff_streak_[u] = std::min(handoff_streak_[u] + 1, hc.backoff_cap);
        else
          handoff_streak_[u] = 0;
        dwell_until_[u] =
            frame_id + (base << static_cast<unsigned>(handoff_streak_[u]));
        last_handoff_frame_[u] = frame_id;
        break;
      }
    }
  }
  return handoffs;
}

void MulticastSession::step_multi_into(
    const std::vector<std::vector<linalg::CVector>>& decision_stacks,
    const std::vector<std::vector<linalg::CVector>>& true_stacks,
    const FrameContext& ctx, const fault::FrameFaults& faults,
    FrameOutcome& out) {
  const std::size_t n_aps = true_stacks.size();
  if (n_aps == 0 || decision_stacks.size() != n_aps)
    throw std::invalid_argument("step_multi: AP stack count mismatch");
  if (n_aps != cfg_.handoff.n_aps)
    throw std::invalid_argument("step_multi: got " + std::to_string(n_aps) +
                                " AP stacks but cfg.handoff.n_aps = " +
                                std::to_string(cfg_.handoff.n_aps));
  const std::size_t n_users = true_stacks[0].size();
  for (std::size_t a = 0; a < n_aps; ++a)
    if (decision_stacks[a].size() != n_users ||
        true_stacks[a].size() != n_users)
      throw std::invalid_argument("step_multi: per-AP user count mismatch");

  if (n_aps == 1) {
    // One AP: exactly the legacy path (no partition, no attachment
    // machinery) — bit-identical to step_into by construction.
    partition_.clear();
    step_into(decision_stacks[0], true_stacks[0], ctx, faults, out);
    return;
  }

  ensure_user_state(n_users);

  // Best-case beacon RSS per (ap, user) — the same beacon-time signal the
  // degradation ladder runs on; non-finite (corrupt-beacon) entries count
  // as unreachable, so a poisoned beacon can never look attractive.
  ap_rss_mw_.assign(n_aps * n_users, 0.0);
  for (std::size_t a = 0; a < n_aps; ++a)
    for (std::size_t u = 0; u < n_users; ++u) {
      const double mw = decision_stacks[a][u].norm_sq();
      if (std::isfinite(mw)) ap_rss_mw_[a * n_users + u] = mw;
    }

  // Handoff beacons share the fate of CSI beacons: either fault freezes
  // the attachment machine for the frame (streaming continues on the
  // serving AP — that is what make-before-break buys).
  const bool beacon_ok = !faults.handoff_beacon_lost && !faults.csi_stale;
  const std::size_t handoffs = advance_attachments(
      n_users, n_aps, ap_rss_mw_, next_frame_id_, beacon_ok);

  // Serving-AP view of the room: the rest of the frame path (CSI hold,
  // ladder, scheduler, engine) sees each user through their serving ray
  // only, and the partition keeps the enumerator from grouping across APs.
  if (eff_decision_.size() != n_users) eff_decision_.resize(n_users);
  if (eff_truth_.size() != n_users) eff_truth_.resize(n_users);
  partition_.assign(n_users, 0);
  for (std::size_t u = 0; u < n_users; ++u) {
    const std::size_t a = serving_ap_[u];
    eff_decision_[u] = decision_stacks[a][u];
    eff_truth_[u] = true_stacks[a][u];
    partition_[u] = serving_ap_[u];
  }

  step_into(eff_decision_, eff_truth_, ctx, faults, out);
  partition_.clear();

  out.user_ap.assign(n_users, 0);
  for (std::size_t u = 0; u < n_users; ++u) out.user_ap[u] = serving_ap_[u];
  out.handoffs = handoffs;

  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_ho = reg.counter("session.handoffs");
    static obs::Counter& c_probe = reg.counter("session.handoff_probes");
    if (handoffs > 0) c_ho.add(handoffs);
    std::uint64_t probing = 0;
    for (std::size_t u = 0; u < n_users; ++u)
      probing += attach_state_[u] == ApAttachState::kProbing ? 1 : 0;
    c_probe.add(probing);
  }
}

}  // namespace w4k::core

#include "core/session.h"

#include "beamforming/csi.h"
#include "beamforming/sls.h"
#include "channel/array.h"
#include "obs/span.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace w4k::core {

SessionConfig SessionConfig::scaled(int width, int height) {
  SessionConfig cfg;
  cfg.rate_scale = rate_scale_for(width, height);
  cfg.engine.symbol_size = scaled_symbol_size(width, height);
  cfg.engine.header_bytes = 0;
  // The kernel/driver queue shrinks with the data volume so the
  // no-rate-control overflow regime (Fig. 9) is preserved at reduced
  // resolution.
  cfg.engine.queue_capacity_bytes = std::max<std::size_t>(
      cfg.engine.symbol_size * 16,
      static_cast<std::size_t>(6'000'000 * cfg.rate_scale));
  return cfg;
}

void SessionConfig::validate(std::size_t codebook_beams,
                             std::size_t n_users) const {
  auto bad = [](const std::string& field, const std::string& msg) {
    throw std::invalid_argument("SessionConfig." + field + ": " + msg);
  };
  // `!(x > 0)` style so NaN fails too.
  if (!(rate_scale > 0.0))
    bad("rate_scale", "must be > 0 (got " + std::to_string(rate_scale) + ")");
  if (!(engine.frame_budget > 0.0))
    bad("engine.frame_budget",
        "must be > 0 s (got " + std::to_string(engine.frame_budget) + ")");
  if (!(makeup_margin >= 0.0 && makeup_margin < 1.0))
    bad("makeup_margin",
        "must be in [0, 1) (got " + std::to_string(makeup_margin) + ")");
  if (engine.symbol_size == 0) bad("engine.symbol_size", "must be > 0");
  if (engine.queue_capacity_bytes == 0)
    bad("engine.queue_capacity_bytes", "must be > 0");
  if (!(sls_noise_db >= 0.0))
    bad("sls_noise_db",
        "must be >= 0 dB (got " + std::to_string(sls_noise_db) + ")");
  if (!(lambda >= 0.0))
    bad("lambda", "must be >= 0 (got " + std::to_string(lambda) + ")");
  if (use_estimated_csi && codebook_beams != kUnknown &&
      codebook_beams < channel::kDefaultApAntennas)
    bad("use_estimated_csi",
        "CSI estimation needs a codebook with at least one beam per "
        "antenna (" +
            std::to_string(codebook_beams) + " beams < " +
            std::to_string(channel::kDefaultApAntennas) + " antennas)");
  if (n_users != kUnknown && n_users > 0 && associated_user >= n_users)
    bad("associated_user",
        "out of range (" + std::to_string(associated_user) + " >= " +
            std::to_string(n_users) + " users)");
}

MulticastSession::MulticastSession(const SessionConfig& cfg,
                                   model::QualityModel& quality,
                                   beamforming::Codebook codebook)
    : cfg_(cfg),
      quality_(quality),
      codebook_(std::move(codebook)),
      engine_(cfg.engine),
      rng_(cfg.seed) {
  cfg_.validate(codebook_.size());
}

void MulticastSession::reset() {
  frozen_.reset();
  last_measured_.clear();
  cached_channels_.clear();
  cached_groups_.clear();
  engine_.clear_backlog();
  rng_.reseed(cfg_.seed);
}

namespace {

bool same_channels(const std::vector<linalg::CVector>& a,
                   const std::vector<linalg::CVector>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t n = 0; n < a[i].size(); ++n)
      if (a[i][n] != b[i][n]) return false;
  }
  return true;
}

}  // namespace

MulticastSession::Decision MulticastSession::decide(
    const std::vector<linalg::CVector>& channels, const FrameContext& ctx) {
  Decision d;
  {
    // Group beamforming (cached across frames for static CSI; the span
    // still records so every frame shows the stage, near-zero when cached).
    static obs::Stage& st = obs::stage("session.beamform");
    obs::StageSpan span(st);
    if (!cached_groups_.empty() && same_channels(channels, cached_channels_)) {
      d.groups = cached_groups_;
    } else {
      d.groups = sched::enumerate_groups(cfg_.scheme, channels, codebook_,
                                         rng_, cfg_.group_enum);
      // Scale Table 2 rates to the frame resolution before any byte math.
      for (auto& g : d.groups)
        g.beam.rate = Mbps{g.beam.rate.value * cfg_.rate_scale};
      cached_channels_ = channels;
      cached_groups_ = d.groups;
    }
  }

  if (d.groups.empty()) return d;  // deep outage: nothing schedulable

  sched::AllocProblem problem;
  problem.groups = d.groups;
  problem.n_users = channels.size();
  problem.content = ctx.content;
  problem.time_budget =
      cfg_.engine.frame_budget * (1.0 - cfg_.makeup_margin);
  problem.lambda = cfg_.lambda;

  {
    static obs::Stage& st = obs::stage("session.allocate");
    obs::StageSpan span(st);
    d.allocation = cfg_.optimized_schedule
                       ? sched::optimize_allocation(problem, quality_,
                                                    cfg_.optimizer)
                       : sched::round_robin_allocation(problem, quality_);
  }
  {
    static obs::Stage& st = obs::stage("session.unitmap");
    obs::StageSpan span(st);
    d.unit_map = sched::map_to_units(d.groups, d.allocation.bytes, ctx.units,
                                     channels.size(),
                                     cfg_.engine.symbol_size);
  }
  return d;
}

FrameOutcome MulticastSession::step(
    const std::vector<linalg::CVector>& decision_channels,
    const std::vector<linalg::CVector>& true_channels,
    const FrameContext& ctx) {
  if (decision_channels.size() != true_channels.size())
    throw std::invalid_argument("step: channel vector count mismatch");
  const std::size_t n_users = true_channels.size();
  cfg_.validate(SessionConfig::kUnknown, n_users);

  static obs::Stage& st_frame = obs::stage("session.frame");
  obs::StageSpan frame_span(st_frame);

  // Optionally estimate CSI the way the hardware does (SLS sweep + phase
  // retrieval) instead of taking the beacon channels as ground truth.
  const std::vector<linalg::CVector>* decision_csi = &decision_channels;
  std::vector<linalg::CVector> estimated;
  if (cfg_.use_estimated_csi) {
    static obs::Stage& st = obs::stage("session.csi_estimate");
    obs::StageSpan span(st);
    if (codebook_.size() < (decision_channels.empty()
                                ? 1
                                : decision_channels.front().size()))
      throw std::invalid_argument(
          "step: CSI estimation needs codebook size >= antenna count");
    estimated.reserve(decision_channels.size());
    for (const auto& h : decision_channels) {
      const beamforming::SweepResult sweep =
          beamforming::sector_sweep(h, codebook_, rng_, cfg_.sls_noise_db);
      estimated.push_back(beamforming::estimate_csi(sweep, codebook_).h);
    }
    decision_csi = &estimated;
  }

  const Decision* decision = nullptr;
  Decision fresh;
  if (!cfg_.adapt) {
    if (!frozen_) frozen_ = decide(*decision_csi, ctx);
    decision = &*frozen_;
  } else {
    fresh = decide(*decision_csi, ctx);
    decision = &fresh;
  }

  // "No Update" freezes the app-level decision (groups, time allocation,
  // packet schedule), but the 802.11ad firmware keeps training beams and
  // adapting MCS on its own — the link stays alive on pre-defined sectors
  // even though the schedule's rate assumptions have gone stale. Without
  // this, a walking receiver would simply leave the frozen beam, which is
  // not what happens on real hardware. The firmware's knowledge has the
  // same one-beacon staleness as everyone else's: it trains on the last
  // sweep (decision_channels), not on the in-flight channel.
  std::vector<linalg::CVector> fallback_beams;
  if (!cfg_.adapt && codebook_.size() > 0) {
    fallback_beams.reserve(decision->groups.size());
    for (const auto& spec : decision->groups) {
      const linalg::CVector* best = nullptr;
      double best_min = -1e300;
      for (std::size_t k = 0; k < codebook_.size(); ++k) {
        double min_rss = 1e300;
        for (std::size_t u : spec.members)
          min_rss = std::min(
              min_rss,
              channel::beam_rss(decision_channels[u], codebook_[k]).value);
        if (min_rss > best_min) {
          best_min = min_rss;
          best = &codebook_[k];
        }
      }
      fallback_beams.push_back(best != nullptr ? *best : spec.beam.beam);
    }
  }

  FrameOutcome out;
  out.optimizer_objective = decision->allocation.objective;

  if (decision->groups.empty()) {
    // Outage frame: receivers render the blank frame.
    static obs::Stage& st = obs::stage("session.quality");
    obs::StageSpan span(st);
    const video::Frame blank =
        video::Frame::blank(ctx.original.width(), ctx.original.height());
    const double s = quality::ssim(ctx.original, blank);
    const double p = quality::psnr(ctx.original, blank);
    out.ssim.assign(n_users, s);
    out.psnr.assign(n_users, p);
    out.decoded_fraction.assign(n_users, 0.0);
    return out;
  }

  // Assemble the per-group transmission parameters against the *current*
  // channel (the decision was made on beacon-time CSI). Indices must stay
  // 1:1 with decision->groups because the assignments reference them; a
  // group whose MCS lookup fails keeps a zero drain rate and the engine
  // drops its packets.
  std::vector<emu::GroupTx> groups_tx;
  groups_tx.reserve(decision->groups.size());
  {
    static obs::Stage& st = obs::stage("session.mcs");
    obs::StageSpan span(st);
    for (std::size_t g = 0; g < decision->groups.size(); ++g) {
      const auto& spec = decision->groups[g];
      emu::GroupTx tx;
      tx.members = spec.members;
      // Beam actually on the air: the decision's optimized beam, or the
      // firmware-tracked fallback sector in No-Update mode.
      const linalg::CVector& air_beam =
          fallback_beams.empty() ? spec.beam.beam : fallback_beams[g];
      // MCS from the freshest link knowledge available: in No-Update mode
      // the firmware's own tracking (current channel, fallback beam);
      // otherwise the beacon-time decision RSS, minus the mobility margin.
      Dbm link_rss = spec.beam.min_rss;
      if (!fallback_beams.empty()) {
        link_rss = Dbm{1e300};
        for (std::size_t u : spec.members)
          link_rss = std::min(
              link_rss, channel::beam_rss(decision_channels[u], air_beam));
      }
      if (const auto mcs =
              channel::select_mcs(link_rss - cfg_.mcs_margin_db)) {
        tx.mcs = *mcs;
        tx.drain_rate = Mbps{mcs->udp_throughput.value * cfg_.rate_scale};
        tx.bucket_rate = (cfg_.adapt && g < last_measured_.size() &&
                          last_measured_[g].value > 0.0)
                             ? last_measured_[g]
                             : tx.drain_rate;
        for (std::size_t u : spec.members) {
          const Dbm rss = channel::beam_rss(true_channels[u], air_beam);
          tx.member_loss.push_back(
              u == cfg_.associated_user
                  ? emu::associated_loss(cfg_.loss, rss, *mcs)
                  : emu::monitor_loss(cfg_.loss, rss, *mcs));
        }
      }
      groups_tx.push_back(std::move(tx));
    }
  }

  emu::FrameTxResult tx_result;
  {
    static obs::Stage& st = obs::stage("session.transmit");
    obs::StageSpan span(st);
    tx_result = engine_.run_frame(ctx.units, decision->unit_map.assignments,
                                  groups_tx, n_users, rng_);
  }

  if (cfg_.adapt) last_measured_ = tx_result.measured_rate;

  out.stats = tx_result.stats;
  {
    static obs::Stage& st = obs::stage("session.quality");
    obs::StageSpan span(st);
    for (std::size_t u = 0; u < n_users; ++u) {
      const video::Frame rec =
          reconstruct_from_units(ctx, tx_result.user_decoded[u]);
      out.ssim.push_back(quality::ssim(ctx.original, rec));
      out.psnr.push_back(quality::psnr(ctx.original, rec));
      std::size_t decoded = 0;
      for (bool b : tx_result.user_decoded[u]) decoded += b ? 1 : 0;
      out.decoded_fraction.push_back(
          ctx.units.empty() ? 0.0
                            : static_cast<double>(decoded) /
                                  static_cast<double>(ctx.units.size()));
    }
  }
  return out;
}

}  // namespace w4k::core

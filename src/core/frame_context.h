// Pre-computed per-frame state shared by the sender and the evaluation
// harness: the layered encoding, the quality-model content features, and
// the coding-unit layout. Building a context is the expensive part of a
// streaming step (encode + four reconstructions + five SSIMs), so sessions
// cycle through a small pool of contexts instead of re-encoding every
// simulated frame — the paper's clips are long, but their per-frame
// content features vary slowly.
#pragma once

#include "quality/metrics.h"
#include "sched/allocate.h"
#include "sched/unitmap.h"
#include "video/layered.h"
#include "video/synthetic.h"

#include <vector>

namespace w4k::core {

struct FrameContext {
  video::Frame original;
  video::EncodedFrame encoded;
  sched::FrameContent content;        ///< layer sizes + SSIM features
  std::vector<sched::UnitSpec> units; ///< coding-unit layout
  /// SSIM between this frame and the previous one in the clip (1.0 for the
  /// first frame); used by the ABR baselines' freeze model.
  double prev_frame_ssim = 1.0;
  /// PSNR of this frame against the blank (mid-gray) reference — pairs
  /// with content.blank_ssim so a deep-outage frame (nothing schedulable)
  /// can be scored without rebuilding the blank frame on the hot path.
  double blank_psnr = 0.0;
};

/// Builds the context for one frame. `previous` (may be null) enables the
/// prev_frame_ssim computation.
FrameContext make_frame_context(video::Frame frame,
                                const video::Frame* previous = nullptr,
                                std::size_t symbol_size = fec::kDefaultSymbolSize,
                                std::size_t symbols_per_unit =
                                    fec::kDefaultSymbolsPerUnit);

/// Builds contexts for `count` frames sampled from the start of a clip.
std::vector<FrameContext> make_contexts(const video::SyntheticVideo& clip,
                                        int count,
                                        std::size_t symbol_size =
                                            fec::kDefaultSymbolSize);

/// Reconstructs the frame a user decoded: every decoded unit contributes
/// its byte range of its sublayer.
video::Frame reconstruct_from_units(const FrameContext& ctx,
                                    const std::vector<bool>& unit_decoded);

/// Allocation-free variant: splices each decoded unit's byte range straight
/// from ctx.encoded into the workspace (no PartialFrame / Segment copies)
/// and decodes into `out`. Bit-identical to reconstruct_from_units().
void reconstruct_from_units_into(const FrameContext& ctx,
                                 const std::vector<bool>& unit_decoded,
                                 video::ReconstructWorkspace& ws,
                                 video::Frame& out);

/// The rate-scale that maps Table 2 throughputs onto reduced-resolution
/// frames: rates are multiplied by frame_bytes / bytes-of-a-4K-frame so
/// the bandwidth-to-content ratio (and hence the whole operating regime)
/// matches the paper's full-4K testbed.
double rate_scale_for(int width, int height);

/// Symbol size scaled to the frame resolution so a frame consists of the
/// same number of symbols (~3000) as a 4K frame does at the paper's 6000 B
/// — keeping coding-unit granularity and packet counts representative.
std::size_t scaled_symbol_size(int width, int height);

}  // namespace w4k::core

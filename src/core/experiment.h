// Shared experiment setup: one builder for the config -> contexts ->
// placement -> channels -> session wiring that every bench binary and
// example used to copy-paste. Construct it with a trained quality model
// and the frame contexts, adjust config() / placement, then run.
//
//   core::Experiment exp(quality, contexts);
//   exp.config().seed = run;
//   exp.place_random(4, 8.0, 16.0, 2.09, placement_rng);
//   core::SessionReport report = exp.run_static(6);
//
// The session is built lazily on the first run and rebuilt whenever the
// config or placement changes, so a builder can be reused across runs of a
// sweep.
#pragma once

#include "core/runner.h"

#include <optional>
#include <vector>

namespace w4k::core {

class Experiment {
 public:
  /// `quality` must stay alive for the Experiment's lifetime and be
  /// trained before the first run. The default config is scaled to the
  /// first context's frame dimensions (SessionConfig::scaled); throws
  /// std::invalid_argument on empty contexts.
  Experiment(model::QualityModel& quality,
             std::vector<FrameContext> contexts);

  /// Mutable config; changes invalidate the cached session.
  SessionConfig& config();
  const SessionConfig& config() const { return cfg_; }

  /// Propagation model for the channels derived from placements.
  channel::PropagationConfig& propagation();

  /// Codebook handed to the session (pre-defined schemes / estimated CSI).
  Experiment& codebook(beamforming::Codebook cb);

  /// Testbed-style placement: `n` users at a fixed distance spread over
  /// `mas_rad` (place_users_fixed).
  Experiment& place_fixed(std::size_t n, double distance_m, double mas_rad,
                          Rng& rng);
  /// Emulation-style placement: distances in [min, max] inside an azimuth
  /// window of `mas_rad` (place_users_random).
  Experiment& place_random(std::size_t n, double min_distance_m,
                           double max_distance_m, double mas_rad, Rng& rng);
  /// Explicit channels (skips placement/propagation entirely).
  Experiment& channels(std::vector<linalg::CVector> chans);

  /// Fault plan injected into every subsequent run (validated against the
  /// user count at run time). Pass an empty plan to clear; an empty plan
  /// is also bit-identical to never having set one.
  Experiment& faults(fault::FaultPlan plan);
  const fault::FaultPlan& fault_plan() const { return fault_plan_; }

  const std::vector<channel::Position>& users() const { return users_; }
  const std::vector<linalg::CVector>& channel_vectors() const {
    return channels_;
  }
  const std::vector<FrameContext>& contexts() const { return contexts_; }

  /// The lazily built session (constructing validates the config).
  MulticastSession& session();

  /// Streams `n_frames` over the placed static channels.
  SessionReport run_static(int n_frames);
  /// Streams over a CSI trace (placement not required).
  SessionReport run_trace(const channel::CsiTrace& trace,
                          int frames_per_snapshot = 3);

 private:
  model::QualityModel& quality_;
  std::vector<FrameContext> contexts_;
  channel::PropagationConfig prop_;
  SessionConfig cfg_;
  beamforming::Codebook codebook_;
  std::vector<channel::Position> users_;
  std::vector<linalg::CVector> channels_;
  fault::FaultPlan fault_plan_;
  std::optional<MulticastSession> session_;
};

}  // namespace w4k::core

// Session results: accumulates per-frame outcomes and renders them as a
// human-readable summary or machine-readable CSV — what an operator of
// the streaming system (or a researcher plotting results) consumes. This
// is also the return type of the run_static/run_trace experiment loops
// (runner.h), so every caller gets the same aggregation helpers.
#pragma once

#include "common/stats.h"
#include "core/session.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace w4k::core {

class SessionReport {
 public:
  /// Records one streamed frame's outcome.
  void add(const FrameOutcome& outcome);

  std::size_t frames() const { return frames_.size(); }
  /// Maximum user count over all frames (frames may differ, e.g. when a
  /// user joins mid-session); per-user aggregates and CSV columns cover
  /// this many users, treating absent (frame, user) samples as missing.
  std::size_t users() const;

  /// Raw per-frame outcomes, in streaming order.
  const std::vector<FrameOutcome>& frame_outcomes() const { return frames_; }
  const FrameOutcome& frame(std::size_t i) const { return frames_.at(i); }

  /// Appends every frame of `other` after this report's frames, renumbering
  /// the appended frame_ids to continue monotonically from this report's
  /// last id (segments recorded independently both start at 0). All
  /// aggregates then cover the union; users() remains the per-segment
  /// maximum, with short frames treated as before (missing samples).
  void merge(const SessionReport& other);

  /// All per-(frame, user) samples flattened in streaming order — the
  /// shape the plotting benches consume. Samples for users absent from a
  /// frame (churn; FrameOutcome::user_present) are placeholders and are
  /// skipped, here and in every aggregate below.
  std::vector<double> all_ssim() const;
  std::vector<double> all_psnr() const;
  std::vector<double> all_decoded_fraction() const;

  /// Quality aggregated over all (frame, user) samples.
  Summary ssim_summary() const;
  Summary psnr_summary() const;

  /// Per-user mean SSIM (fairness view).
  std::vector<double> per_user_mean_ssim() const;

  /// Fraction of frames with any user below the SSIM threshold — the
  /// "bad frame" rate a viewer perceives as glitches.
  double bad_frame_fraction(double ssim_threshold = 0.9) const;

  /// Transport totals across the session.
  struct Totals {
    std::size_t packets_offered = 0;
    std::size_t packets_sent = 0;
    std::size_t packets_dropped_queue = 0;
    std::size_t makeup_packets = 0;
    Seconds airtime = 0.0;
    /// Fault/degradation visibility (all zero on a fault-free run).
    std::size_t csi_held_frames = 0;   ///< frames decided on held CSI
    std::size_t shed_symbols = 0;      ///< enhancement symbols shed
    /// Multi-AP / relay visibility (all zero on single-AP, relay-off
    /// runs — and then omitted from the JSON so legacy goldens hold).
    std::size_t handoffs = 0;          ///< committed AP switches
    std::size_t relay_packets = 0;     ///< D2D relay transmissions
    std::size_t relayed_symbols = 0;   ///< symbols delivered via relay
  };
  Totals totals() const;

  /// Multi-line human-readable summary.
  std::string summary_text() const;

  /// CSV with one row per frame: frame, user columns for SSIM/PSNR,
  /// decoded fraction, packets sent/dropped, airtime.
  void write_csv(std::ostream& os) const;
  /// Convenience file variant; throws std::runtime_error on I/O failure.
  void write_csv_file(const std::string& path) const;

  /// Canonical JSON: fixed key order, no locale dependence, doubles printed
  /// with %.17g so the output is byte-identical whenever the computed
  /// values are. This is the regression-gate format (scripts/golden.sh) —
  /// any schema change invalidates the blessed files, so extend it only
  /// with a deliberate re-bless, or (for feature-gated data like the
  /// multi-AP / relay fields) emit the new keys only when the feature
  /// produced nonzero values, so legacy runs stay byte-identical.
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;

 private:
  std::vector<FrameOutcome> frames_;
};

}  // namespace w4k::core

#include "core/report.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace w4k::core {

void SessionReport::add(const FrameOutcome& outcome) {
  frames_.push_back(outcome);
}

std::size_t SessionReport::users() const {
  std::size_t n = 0;
  for (const auto& f : frames_) n = std::max(n, f.ssim.size());
  return n;
}

std::vector<double> SessionReport::all_ssim() const {
  std::vector<double> all;
  for (const auto& f : frames_)
    all.insert(all.end(), f.ssim.begin(), f.ssim.end());
  return all;
}

std::vector<double> SessionReport::all_psnr() const {
  std::vector<double> all;
  for (const auto& f : frames_)
    all.insert(all.end(), f.psnr.begin(), f.psnr.end());
  return all;
}

Summary SessionReport::ssim_summary() const { return summarize(all_ssim()); }

Summary SessionReport::psnr_summary() const { return summarize(all_psnr()); }

std::vector<double> SessionReport::per_user_mean_ssim() const {
  if (frames_.empty()) return {};
  std::vector<double> sums(users(), 0.0);
  std::vector<std::size_t> present(sums.size(), 0);
  for (const auto& f : frames_)
    for (std::size_t u = 0; u < sums.size() && u < f.ssim.size(); ++u) {
      sums[u] += f.ssim[u];
      ++present[u];
    }
  for (std::size_t u = 0; u < sums.size(); ++u)
    if (present[u] > 0) sums[u] /= static_cast<double>(present[u]);
  return sums;
}

double SessionReport::bad_frame_fraction(double ssim_threshold) const {
  if (frames_.empty()) return 0.0;
  std::size_t bad = 0;
  for (const auto& f : frames_) {
    bool any_bad = false;
    for (double s : f.ssim) any_bad |= s < ssim_threshold;
    bad += any_bad ? 1 : 0;
  }
  return static_cast<double>(bad) / static_cast<double>(frames_.size());
}

SessionReport::Totals SessionReport::totals() const {
  Totals t;
  for (const auto& f : frames_) {
    t.packets_offered += f.stats.packets_offered;
    t.packets_sent += f.stats.packets_sent;
    t.packets_dropped_queue += f.stats.packets_dropped_queue;
    t.makeup_packets += f.stats.makeup_packets;
    t.airtime += f.stats.airtime;
  }
  return t;
}

std::string SessionReport::summary_text() const {
  std::ostringstream os;
  os << "frames: " << frames() << ", users: " << users() << "\n";
  os << "SSIM " << to_string(ssim_summary()) << "\n";
  os << "PSNR " << to_string(psnr_summary()) << "\n";
  os << "per-user mean SSIM:";
  for (double s : per_user_mean_ssim()) {
    os.precision(4);
    os << " " << std::fixed << s;
  }
  os << "\nbad-frame rate (<0.9): " << bad_frame_fraction() << "\n";
  const Totals t = totals();
  os << "packets sent " << t.packets_sent << " (makeup " << t.makeup_packets
     << ", queue-dropped " << t.packets_dropped_queue << "), airtime "
     << t.airtime << " s\n";
  return os.str();
}

void SessionReport::write_csv(std::ostream& os) const {
  const std::size_t n = users();
  os << "frame";
  for (std::size_t u = 0; u < n; ++u) os << ",ssim_u" << u;
  for (std::size_t u = 0; u < n; ++u) os << ",psnr_u" << u;
  for (std::size_t u = 0; u < n; ++u) os << ",decoded_u" << u;
  os << ",packets_sent,packets_dropped,makeup,airtime_s\n";
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const auto& f = frames_[i];
    os << i;
    for (std::size_t u = 0; u < n; ++u)
      os << ',' << (u < f.ssim.size() ? f.ssim[u] : 0.0);
    for (std::size_t u = 0; u < n; ++u)
      os << ',' << (u < f.psnr.size() ? f.psnr[u] : 0.0);
    for (std::size_t u = 0; u < n; ++u)
      os << ',' << (u < f.decoded_fraction.size() ? f.decoded_fraction[u] : 0.0);
    os << ',' << f.stats.packets_sent << ',' << f.stats.packets_dropped_queue
       << ',' << f.stats.makeup_packets << ',' << f.stats.airtime << '\n';
  }
}

void SessionReport::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("SessionReport: cannot create " + path);
  write_csv(os);
  if (!os) throw std::runtime_error("SessionReport: write failed");
}

}  // namespace w4k::core

#include "core/report.h"

#include "verify/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace w4k::core {
namespace {

/// user_present is empty on the no-churn fast path (everyone present).
bool present(const FrameOutcome& f, std::size_t u) {
  return f.user_present.empty() ||
         (u < f.user_present.size() && f.user_present[u]);
}

}  // namespace

void SessionReport::add(const FrameOutcome& outcome) {
  if (verify::enabled()) {
    const auto& f = outcome;
    verify::check(f.psnr.size() == f.ssim.size() &&
                      f.decoded_fraction.size() == f.ssim.size(),
                  "report.ragged-outcome", [&] {
                    return "ssim/psnr/decoded sizes " +
                           std::to_string(f.ssim.size()) + "/" +
                           std::to_string(f.psnr.size()) + "/" +
                           std::to_string(f.decoded_fraction.size());
                  });
    for (std::size_t u = 0; u < f.ssim.size(); ++u) {
      verify::check(f.ssim[u] >= 0.0 && f.ssim[u] <= 1.0 + 1e-9,
                    "report.ssim-out-of-range", [&] {
                      return "user " + std::to_string(u) + " ssim " +
                             std::to_string(f.ssim[u]);
                    });
      if (u < f.psnr.size())
        verify::check(std::isfinite(f.psnr[u]) && f.psnr[u] >= 0.0,
                      "report.psnr-out-of-range", [&] {
                        return "user " + std::to_string(u) + " psnr " +
                               std::to_string(f.psnr[u]);
                      });
      if (u < f.decoded_fraction.size())
        verify::check(f.decoded_fraction[u] >= 0.0 &&
                          f.decoded_fraction[u] <= 1.0 + 1e-9,
                      "report.decoded-fraction-out-of-range", [&] {
                        return "user " + std::to_string(u) + " decoded " +
                               std::to_string(f.decoded_fraction[u]);
                      });
    }
    verify::check(frames_.empty() || f.frame_id >= frames_.back().frame_id,
                  "report.frame-id-regression", [&] {
                    return "frame_id " + std::to_string(f.frame_id) +
                           " after " + std::to_string(frames_.back().frame_id);
                  });
    verify::check(f.stats.packets_sent <= f.stats.packets_offered,
                  "report.sent-exceeds-offered", [&] {
                    return std::to_string(f.stats.packets_sent) + " sent of " +
                           std::to_string(f.stats.packets_offered) +
                           " offered";
                  });
  }
  frames_.push_back(outcome);
}

std::size_t SessionReport::users() const {
  std::size_t n = 0;
  for (const auto& f : frames_) n = std::max(n, f.ssim.size());
  return n;
}

std::vector<double> SessionReport::all_ssim() const {
  std::vector<double> all;
  for (const auto& f : frames_)
    for (std::size_t u = 0; u < f.ssim.size(); ++u)
      if (present(f, u)) all.push_back(f.ssim[u]);
  return all;
}

std::vector<double> SessionReport::all_psnr() const {
  std::vector<double> all;
  for (const auto& f : frames_)
    for (std::size_t u = 0; u < f.psnr.size(); ++u)
      if (present(f, u)) all.push_back(f.psnr[u]);
  return all;
}

std::vector<double> SessionReport::all_decoded_fraction() const {
  std::vector<double> all;
  for (const auto& f : frames_)
    for (std::size_t u = 0; u < f.decoded_fraction.size(); ++u)
      if (present(f, u)) all.push_back(f.decoded_fraction[u]);
  return all;
}

void SessionReport::merge(const SessionReport& other) {
  // frame_id must stay monotone across the splice even though both
  // segments numbered from 0; rebase the appended segment past our tail.
  std::uint32_t next_id = frames_.empty() ? 0 : frames_.back().frame_id + 1;
  for (const FrameOutcome& f : other.frames_) {
    FrameOutcome renumbered = f;
    renumbered.frame_id = next_id++;
    add(renumbered);
  }
}

Summary SessionReport::ssim_summary() const { return summarize(all_ssim()); }

Summary SessionReport::psnr_summary() const { return summarize(all_psnr()); }

std::vector<double> SessionReport::per_user_mean_ssim() const {
  if (frames_.empty()) return {};
  std::vector<double> sums(users(), 0.0);
  std::vector<std::size_t> present(sums.size(), 0);
  for (const auto& f : frames_)
    for (std::size_t u = 0; u < sums.size() && u < f.ssim.size(); ++u) {
      if (!core::present(f, u)) continue;  // churned out this frame
      sums[u] += f.ssim[u];
      ++present[u];
    }
  for (std::size_t u = 0; u < sums.size(); ++u)
    if (present[u] > 0) sums[u] /= static_cast<double>(present[u]);
  return sums;
}

double SessionReport::bad_frame_fraction(double ssim_threshold) const {
  if (frames_.empty()) return 0.0;
  std::size_t bad = 0;
  for (const auto& f : frames_) {
    bool any_bad = false;
    for (std::size_t u = 0; u < f.ssim.size(); ++u)
      any_bad |= present(f, u) && f.ssim[u] < ssim_threshold;
    bad += any_bad ? 1 : 0;
  }
  return static_cast<double>(bad) / static_cast<double>(frames_.size());
}

SessionReport::Totals SessionReport::totals() const {
  Totals t;
  for (const auto& f : frames_) {
    t.packets_offered += f.stats.packets_offered;
    t.packets_sent += f.stats.packets_sent;
    t.packets_dropped_queue += f.stats.packets_dropped_queue;
    t.makeup_packets += f.stats.makeup_packets;
    t.airtime += f.stats.airtime;
    t.csi_held_frames += f.csi_held ? 1 : 0;
    t.shed_symbols += f.shed_symbols;
    t.handoffs += f.handoffs;
    t.relay_packets += f.stats.relay_packets;
    t.relayed_symbols += f.relayed_symbols;
  }
  return t;
}

std::string SessionReport::summary_text() const {
  std::ostringstream os;
  os << "frames: " << frames() << ", users: " << users() << "\n";
  os << "SSIM " << to_string(ssim_summary()) << "\n";
  os << "PSNR " << to_string(psnr_summary()) << "\n";
  os << "per-user mean SSIM:";
  for (double s : per_user_mean_ssim()) {
    os.precision(4);
    os << " " << std::fixed << s;
  }
  os << "\nbad-frame rate (<0.9): " << bad_frame_fraction() << "\n";
  const Totals t = totals();
  os << "packets sent " << t.packets_sent << " (makeup " << t.makeup_packets
     << ", queue-dropped " << t.packets_dropped_queue << "), airtime "
     << t.airtime << " s\n";
  if (t.csi_held_frames > 0 || t.shed_symbols > 0)
    os << "degraded: " << t.csi_held_frames << " frames on held CSI, "
       << t.shed_symbols << " enhancement symbols shed\n";
  if (t.handoffs > 0 || t.relay_packets > 0)
    os << "multi-AP: " << t.handoffs << " handoffs, " << t.relay_packets
       << " relay packets (" << t.relayed_symbols << " symbols delivered)\n";
  return os.str();
}

void SessionReport::write_csv(std::ostream& os) const {
  const std::size_t n = users();
  os << "frame";
  for (std::size_t u = 0; u < n; ++u) os << ",ssim_u" << u;
  for (std::size_t u = 0; u < n; ++u) os << ",psnr_u" << u;
  for (std::size_t u = 0; u < n; ++u) os << ",decoded_u" << u;
  os << ",packets_sent,packets_dropped,makeup,airtime_s\n";
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const auto& f = frames_[i];
    os << i;
    // Users absent from a frame (churn) get an empty cell, not a fake 0;
    // frames that simply recorded fewer users keep the zero fill.
    const auto cell = [&](const std::vector<double>& v, std::size_t u) {
      if (u < v.size() && !present(f, u)) return;  // absent: empty cell
      os << (u < v.size() ? v[u] : 0.0);
    };
    for (std::size_t u = 0; u < n; ++u) { os << ','; cell(f.ssim, u); }
    for (std::size_t u = 0; u < n; ++u) { os << ','; cell(f.psnr, u); }
    for (std::size_t u = 0; u < n; ++u) { os << ','; cell(f.decoded_fraction, u); }
    os << ',' << f.stats.packets_sent << ',' << f.stats.packets_dropped_queue
       << ',' << f.stats.makeup_packets << ',' << f.stats.airtime << '\n';
  }
}

void SessionReport::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("SessionReport: cannot create " + path);
  write_csv(os);
  if (!os) throw std::runtime_error("SessionReport: write failed");
}

namespace {

/// %.17g round-trips every double exactly and, unlike operator<<, is
/// immune to stream-state surprises — the byte-stability the golden gate
/// depends on.
std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void jarray(std::ostream& os, const std::vector<double>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? "," : "") << jnum(v[i]);
  os << ']';
}

void jarray(std::ostream& os, const std::vector<bool>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? "," : "") << (v[i] ? 1 : 0);
  os << ']';
}

void jarray(std::ostream& os, const std::vector<std::uint8_t>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? "," : "") << static_cast<unsigned>(v[i]);
  os << ']';
}

void jsummary(std::ostream& os, const Summary& s) {
  os << "{\"count\":" << s.count << ",\"mean\":" << jnum(s.mean)
     << ",\"min\":" << jnum(s.min) << ",\"q1\":" << jnum(s.q1)
     << ",\"median\":" << jnum(s.median) << ",\"q3\":" << jnum(s.q3)
     << ",\"max\":" << jnum(s.max) << '}';
}

}  // namespace

void SessionReport::write_json(std::ostream& os) const {
  os << "{\"frames\":" << frames() << ",\"users\":" << users();
  os << ",\"ssim\":";
  jsummary(os, ssim_summary());
  os << ",\"psnr\":";
  jsummary(os, psnr_summary());
  os << ",\"per_user_mean_ssim\":";
  jarray(os, per_user_mean_ssim());
  os << ",\"bad_frame_fraction\":" << jnum(bad_frame_fraction());
  const Totals t = totals();
  os << ",\"totals\":{\"packets_offered\":" << t.packets_offered
     << ",\"packets_sent\":" << t.packets_sent
     << ",\"packets_dropped_queue\":" << t.packets_dropped_queue
     << ",\"makeup_packets\":" << t.makeup_packets
     << ",\"airtime\":" << jnum(t.airtime)
     << ",\"csi_held_frames\":" << t.csi_held_frames
     << ",\"shed_symbols\":" << t.shed_symbols;
  // Feature-gated keys: emitted only when multi-AP / relay machinery
  // actually fired, so legacy (single-AP, relay-off) goldens stay
  // byte-identical without a re-bless.
  if (t.handoffs > 0) os << ",\"handoffs\":" << t.handoffs;
  if (t.relay_packets > 0 || t.relayed_symbols > 0)
    os << ",\"relay_packets\":" << t.relay_packets
       << ",\"relayed_symbols\":" << t.relayed_symbols;
  os << '}';
  os << ",\"per_frame\":[";
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const auto& f = frames_[i];
    os << (i ? "," : "") << "{\"frame_id\":" << f.frame_id << ",\"ssim\":";
    jarray(os, f.ssim);
    os << ",\"psnr\":";
    jarray(os, f.psnr);
    os << ",\"decoded_fraction\":";
    jarray(os, f.decoded_fraction);
    os << ",\"user_present\":";
    jarray(os, f.user_present);
    os << ",\"user_quarantined\":";
    jarray(os, f.user_quarantined);
    os << ",\"stats\":{\"packets_offered\":" << f.stats.packets_offered
       << ",\"packets_sent\":" << f.stats.packets_sent
       << ",\"packets_dropped_queue\":" << f.stats.packets_dropped_queue
       << ",\"makeup_packets\":" << f.stats.makeup_packets
       << ",\"airtime\":" << jnum(f.stats.airtime)
       << ",\"backlog_packets_after\":" << f.stats.backlog_packets_after;
    if (f.stats.relay_packets > 0)
      os << ",\"relay_packets\":" << f.stats.relay_packets
         << ",\"relay_airtime\":" << jnum(f.stats.relay_airtime);
    os << '}';
    os << ",\"shed_symbols\":" << f.shed_symbols
       << ",\"csi_held\":" << (f.csi_held ? "true" : "false");
    if (!f.user_ap.empty()) {
      os << ",\"user_ap\":";
      jarray(os, f.user_ap);
    }
    if (f.handoffs > 0) os << ",\"handoffs\":" << f.handoffs;
    if (f.relayed_symbols > 0)
      os << ",\"relayed_symbols\":" << f.relayed_symbols;
    os << '}';
  }
  os << "]}\n";
}

void SessionReport::write_json_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os)
    throw std::runtime_error("SessionReport: cannot create " + path);
  write_json(os);
  if (!os) throw std::runtime_error("SessionReport: write failed");
}

}  // namespace w4k::core

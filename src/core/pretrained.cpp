#include "core/pretrained.h"

#include "model/dataset.h"

namespace w4k::core {

double ensure_trained(model::QualityModel& model,
                      const PretrainedOptions& opts) {
  if (!opts.cache_path.empty() && model.load_file(opts.cache_path))
    return 0.0;

  model::DatasetConfig cfg;
  cfg.frames_per_video = opts.frames_per_video;
  cfg.fractions_per_frame = opts.fractions_per_frame;
  const model::Dataset ds = model::build_dataset(
      video::standard_videos(opts.width, opts.height,
                             opts.frames_per_video + 1),
      cfg);

  model::TrainConfig train;
  train.epochs = opts.epochs;
  model.train(ds.train, train);
  const double test_mse = model.evaluate(ds.test);

  if (!opts.cache_path.empty()) model.save_file(opts.cache_path);
  return test_mse;
}

}  // namespace w4k::core

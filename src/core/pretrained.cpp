#include "core/pretrained.h"

#include "model/dataset.h"
#include "obs/metrics.h"

#include <cstdio>
#include <fstream>
#include <iostream>

namespace w4k::core {

double ensure_trained(model::QualityModel& model,
                      const PretrainedOptions& opts) {
  if (!opts.cache_path.empty()) {
    const bool exists = static_cast<bool>(std::ifstream(opts.cache_path));
    if (model.load_file(opts.cache_path)) return 0.0;
    if (exists) {
      // The cache is present but corrupt (truncated, bit-flipped, wrong
      // topology). Retraining silently would hide the corruption, and
      // keeping the file would hit the same failure every run — so warn,
      // delete, retrain, and re-save below.
      std::cerr << "w4k: quality-model cache '" << opts.cache_path
                << "' is corrupt; deleting and retraining\n";
      if (obs::enabled()) {
        static obs::Counter& c =
            obs::MetricsRegistry::global().counter("pretrained.cache_corrupt");
        c.add(1);
      }
      std::remove(opts.cache_path.c_str());
    }
  }

  model::DatasetConfig cfg;
  cfg.frames_per_video = opts.frames_per_video;
  cfg.fractions_per_frame = opts.fractions_per_frame;
  const model::Dataset ds = model::build_dataset(
      video::standard_videos(opts.width, opts.height,
                             opts.frames_per_video + 1),
      cfg);

  model::TrainConfig train;
  train.epochs = opts.epochs;
  model.train(ds.train, train);
  const double test_mse = model.evaluate(ds.test);

  if (!opts.cache_path.empty()) model.save_file(opts.cache_path);
  return test_mse;
}

}  // namespace w4k::core

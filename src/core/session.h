// End-to-end multicast streaming session — the Fig. 3 workflow.
//
// Per frame: (CSI) -> multicast beamforming for every candidate group ->
// group UDP rates -> time-allocation optimization (Eq. 1) -> coding-unit
// mapping (Eq. 4) -> leaky-bucket-paced transmission with feedback/makeup
// rounds -> per-user reconstruction and SSIM/PSNR measurement.
//
// The session supports the paper's ablations through its config:
//   * beamforming scheme (4 variants, Sec. 4.2.1),
//   * optimized vs round-robin scheduling (Sec. 4.2.2),
//   * rate control on/off (Sec. 4.2.3),
//   * source coding on/off (Sec. 4.2.4),
//   * Real-time Update vs No Update channel adaptation (Sec. 4.3.4).
#pragma once

#include "beamforming/multicast.h"
#include "core/frame_context.h"
#include "emu/engine.h"
#include "fault/injector.h"
#include "model/quality_model.h"
#include "sched/beam_cache.h"
#include "sched/groups.h"
#include "sched/workspace.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace w4k::core {

struct SessionConfig {
  /// Config pre-wired for a reduced-resolution emulation: rate scale,
  /// symbol size, and header overhead all scaled to the frame dimensions
  /// (see frame_context.h). Contexts must be built with the same symbol
  /// size (make_contexts does this when given scaled_symbol_size(w, h)).
  static SessionConfig scaled(int width, int height);

  beamforming::Scheme scheme = beamforming::Scheme::kOptimizedMulticast;
  bool optimized_schedule = true;  ///< false = round-robin baseline
  bool adapt = true;               ///< false = "No Update"
  /// Reuse per-subset beams across frames (sched::BeamCache): only subsets
  /// containing a user whose CSI changed are re-beamformed, in parallel on
  /// the shared ThreadPool. Because every subset's beam is a pure function
  /// of (scheme, member channels, codebook, seed), the output is
  /// bit-identical with the cache on or off — this flag exists for A/B
  /// benchmarking and for the property suite that asserts exactly that.
  bool beam_cache = true;
  /// Warm-start the Eq. 1 optimizer from the previous frame's allocation,
  /// remapped by member bitmask onto the surviving group set. Falls back to
  /// the full multi-start whenever the warm candidate is worse than the
  /// evaluated round-robin init (or too little of the previous allocation
  /// survived). Independent of `beam_cache`, so toggling the cache cannot
  /// change the schedule.
  bool warm_start = true;
  /// dB backed off the measured min-RSS before MCS selection. Mobile runs
  /// use 1-2 dB: the beacon-time CSI is up to 100 ms stale, and selecting
  /// at the exact sensitivity makes every fade a burst of losses.
  double mcs_margin_db = 0.0;
  /// Run ACO-style CSI estimation (SLS sweep + phase retrieval over the
  /// codebook) instead of assuming perfect CSI at the sender. Requires a
  /// codebook with at least as many beams as antennas. This is what the
  /// real system does (Fig. 3 starts with "fetch CSI using ACO").
  bool use_estimated_csi = false;
  /// Per-beam RSS readout noise for the SLS sweeps (dB).
  double sls_noise_db = 0.5;
  emu::EngineConfig engine;
  sched::GroupEnumConfig group_enum;
  sched::OptimizerConfig optimizer;
  /// Anytime wall-clock budget for decide(), in milliseconds. 0 (the
  /// default) disables the deadline entirely: decide() reads no clock and
  /// its output is a pure function of the inputs (the golden/purity
  /// determinism contract). When > 0, candidate beamforming stops
  /// deferring optional merge subsets at ~45% of the budget and the Eq. 1
  /// optimizer returns its best plan so far at ~90%, so the whole
  /// decision lands inside the budget while every reachable user stays
  /// served (singleton beams and the first optimizer start always run to
  /// completion).
  double decide_deadline_ms = 0.0;
  emu::LossModel loss;
  /// Scales Table 2 rates to the frame resolution (see rate_scale_for).
  double rate_scale = 1.0;
  double lambda = 1e-8;            ///< Eq. 1 traffic penalty (per byte)
  /// Fraction of the frame budget withheld from the schedule so feedback
  /// and fountain-coded makeup packets fit inside the same 1/FR deadline
  /// ("the feedbacks and all retransmissions should finish within 33 ms").
  double makeup_margin = 0.08;
  /// Index of the associated (MAC-ARQ) STA; the rest are monitor mode.
  std::size_t associated_user = 0;
  std::uint64_t seed = 1;

  // --- Degradation ladder (fault tolerance; see DESIGN.md Sec. 4d) ------
  /// Extra dB backed off the MCS while running on held (stale/corrupt-
  /// beacon) CSI: the beamweights are old, so select conservatively.
  double stale_csi_backoff_db = 2.0;
  /// Blind worst-case makeup budget for a user whose feedback report was
  /// lost, as a fraction of each unit's k symbols. Halved for every
  /// further consecutive silent frame (capped below) so a dead receiver
  /// cannot permanently eat the makeup budget.
  double blind_makeup_fraction = 0.5;
  /// Cap on the number of halvings of blind_makeup_fraction.
  int blind_backoff_cap = 4;
  /// Quarantine a user from the group optimizer after this many
  /// consecutive frames with zero decoded units while transmissions were
  /// attempted (0 disables quarantine). A persistently blocked user then
  /// no longer drags every group containing them to the bottleneck MCS.
  int quarantine_after = 6;
  /// Re-probe quarantined users every this many frames: they rejoin the
  /// optimizer for one frame and are released if anything decodes.
  int quarantine_reprobe_period = 8;

  // --- Multi-AP handoff + peer relay (DESIGN.md Sec. 4h) ----------------
  /// Per-user AP attachment and mid-session handoff. With `enabled` false
  /// the knobs below are never read: a multi-AP run still picks each
  /// user's initial AP but nobody ever moves, and the SessionReport is
  /// byte-identical for any knob values (the property suite pins this).
  struct HandoffConfig {
    /// APs this session streams across. step_multi_into requires its
    /// channel stacks to match; 1 (the default) is the legacy single-AP
    /// session.
    std::size_t n_aps = 1;
    bool enabled = false;
    /// An alternate AP must beat the serving AP by this much (dB) before a
    /// probe starts, and must still hold half of it for the probe to
    /// commit — the classic flap damper.
    double hysteresis_db = 3.0;
    /// Serving best-case RSS below this (dBm) counts as a weak frame.
    double degrade_floor_dbm = -66.0;
    /// Consecutive weak frames before attached -> degraded.
    int degrade_after = 3;
    /// Make-before-break probe length (frames): the user keeps streaming
    /// from the old AP while the alternate trains.
    int probe_frames = 2;
    /// Base dwell after a handoff before the next probe may start.
    int min_dwell_frames = 8;
    /// Cap on dwell doublings for back-to-back handoffs (flapping links).
    int backoff_cap = 3;
  };
  HandoffConfig handoff;

  /// Peer relay: a line-of-sight user re-encodes decoded base-layer units
  /// and forwards fresh fountain symbols to a quarantined peer over a D2D
  /// side link, charged against the same Eq. 1 airtime budget. Only
  /// meaningful with quarantine (targets are quarantined users) — enabling
  /// it with a single AP and quarantine off fails validate().
  struct RelayConfig {
    bool enabled = false;
    /// Minimum relayer best-case RSS (dBm): only LoS-grade users relay.
    double min_relayer_rss_dbm = -58.0;
    /// Per-symbol delivery loss on the D2D side link.
    double loss = 0.05;
  };
  RelayConfig relay;

  /// Sentinel for validate() arguments that are not known yet.
  static constexpr std::size_t kUnknown = static_cast<std::size_t>(-1);

  /// Checks every field range and throws std::invalid_argument naming the
  /// offending field ("SessionConfig.rate_scale: ..."). `codebook_beams`
  /// and `n_users` enable the context-dependent checks (undersized
  /// codebook with use_estimated_csi, associated_user out of range) and
  /// may be kUnknown to skip them. MulticastSession's constructor calls
  /// this, so a bad config fails at construction instead of deep inside a
  /// frame.
  void validate(std::size_t codebook_beams = kUnknown,
                std::size_t n_users = kUnknown) const;
};

struct FrameOutcome {
  std::vector<double> ssim;          ///< measured per user
  std::vector<double> psnr;          ///< measured per user
  std::vector<double> decoded_fraction;  ///< decoded units / total units
  emu::FrameTxStats stats;
  double optimizer_objective = 0.0;
  /// Monotonically increasing per-session frame number (chaos invariant).
  std::uint32_t frame_id = 0;
  /// user_present[u]: user u was in the session this frame. Empty = all
  /// present (the no-churn fast path). Absent users' quality samples are
  /// placeholders and excluded from every SessionReport aggregate.
  std::vector<bool> user_present;
  /// user_quarantined[u]: excluded from the group optimizer this frame
  /// after persistent outage. Empty = none.
  std::vector<bool> user_quarantined;
  /// Enhancement-layer symbols shed before transmission under a collapsed
  /// budget (the base layer is never shed).
  std::size_t shed_symbols = 0;
  /// Decision ran on held beamweights (missed/corrupt CSI beacon).
  bool csi_held = false;
  /// Serving AP per user (multi-AP sessions only). Empty = single AP.
  std::vector<std::uint8_t> user_ap;
  /// Handoffs committed this frame (multi-AP sessions only).
  std::size_t handoffs = 0;
  /// Base-layer symbols delivered to quarantined peers over D2D relay.
  std::size_t relayed_symbols = 0;
};

class MulticastSession {
 public:
  /// `quality` must be trained; `codebook` is used by pre-defined schemes
  /// (pass a default-constructed one only with optimized schemes).
  MulticastSession(const SessionConfig& cfg, model::QualityModel& quality,
                   beamforming::Codebook codebook);

  const SessionConfig& config() const { return cfg_; }

  /// Streams one frame. `decision_channels` is the CSI the sender acts on
  /// (last beacon); `true_channels` is the channel during transmission.
  /// In No-Update mode the decision made on the first call is reused
  /// forever (matching the paper's baseline).
  FrameOutcome step(const std::vector<linalg::CVector>& decision_channels,
                    const std::vector<linalg::CVector>& true_channels,
                    const FrameContext& ctx);

  /// Fault-aware variant: `faults` is this frame's resolved fault state
  /// (fault::FaultInjector::at). The session walks the degradation ladder
  /// instead of assuming the fault never happens: lost feedback → blind
  /// makeup with capped backoff; stale/corrupt CSI → hold the last good
  /// beamweights and back the MCS off; persistent per-user outage →
  /// quarantine from the group optimizer with periodic re-probe; collapsed
  /// budget → shed enhancement layers, always attempting the base layer;
  /// churn → departed users drop out of the optimizer and the report.
  /// A default-constructed FrameFaults reproduces the 3-argument overload
  /// bit-identically.
  FrameOutcome step(const std::vector<linalg::CVector>& decision_channels,
                    const std::vector<linalg::CVector>& true_channels,
                    const FrameContext& ctx, const fault::FrameFaults& faults);

  /// The frame path proper, writing into a caller-owned outcome whose
  /// vectors reuse their capacity across frames. Together with the
  /// session's internal workspaces (scheduler enumeration buffers, engine
  /// scratch, reconstruction workspace) a steady-state frame performs zero
  /// heap allocations (the W4K_COUNT_ALLOCS tier-1 gate). Bit-identical to
  /// step(); both step overloads are thin wrappers over this.
  void step_into(const std::vector<linalg::CVector>& decision_channels,
                 const std::vector<linalg::CVector>& true_channels,
                 const FrameContext& ctx, const fault::FrameFaults& faults,
                 FrameOutcome& out);

  /// Multi-AP variant: `decision_stacks` / `true_stacks` are per-AP channel
  /// stacks indexed [ap][user] (channel::ap_channel_stacks). Each user is
  /// served by exactly one AP per frame; the per-user ApAttachment state
  /// machine (attached -> degraded -> probing-alternate -> handing-off ->
  /// attached) moves users between APs when cfg.handoff.enabled, driven by
  /// the same beacon-time CSI the degradation ladder uses, with hysteresis
  /// plus capped dwell backoff against flapping. Handoff is make-before-
  /// break: the user keeps streaming from the old AP through the probe, and
  /// quarantine / feedback-streak / warm-start state survives the switch
  /// untouched. Groups never span APs (the enumerator enforces partition
  /// purity). With one AP stack this is bit-identical to step_into.
  void step_multi_into(
      const std::vector<std::vector<linalg::CVector>>& decision_stacks,
      const std::vector<std::vector<linalg::CVector>>& true_stacks,
      const FrameContext& ctx, const fault::FrameFaults& faults,
      FrameOutcome& out);

  /// Drops cached decisions, backlog, and fault-recovery state (e.g.
  /// between independent runs).
  void reset();

  struct Decision {
    std::vector<sched::GroupSpec> groups;
    sched::Allocation allocation;
    sched::UnitMapResult unit_map;
  };

  /// Runs the per-frame decision pipeline (group beamforming -> Eq. 1 time
  /// allocation -> Eq. 4 unit mapping) without transmitting. Public so the
  /// scheduler-scaling bench can time exactly this path; step() calls it
  /// internally. Mutates the beam cache and warm-start state.
  Decision decide(const std::vector<linalg::CVector>& channels,
                  const FrameContext& ctx,
                  const std::vector<std::uint8_t>& exclude);

  /// decide() writing into a caller-owned Decision. Reused decisions
  /// copy-assign the emitted groups / allocation / unit map over the
  /// previous frame's containers, so the whole decision pipeline reuses
  /// capacity in steady state. Bit-identical to decide().
  void decide_into(const std::vector<linalg::CVector>& channels,
                   const FrameContext& ctx,
                   const std::vector<std::uint8_t>& exclude, Decision& d);

 private:
  /// (Re)sizes the per-user recovery state when the user count changes.
  /// State for surviving user indices (quarantine, feedback/loss streaks)
  /// is preserved — only the resized tail starts fresh; index-keyed caches
  /// that become meaningless (held CSI, previous allocation) are dropped.
  void ensure_user_state(std::size_t n_users);

  /// Computes this frame's peer-relay plan into relays_ (empty unless
  /// cfg_.relay.enabled): for each active quarantined non-reprobing user,
  /// the best-RSS eligible line-of-sight peer gets one relay slot at the
  /// MCS its own link sustains. Deterministic, no rng.
  void plan_relays(const std::vector<linalg::CVector>& decision_channels,
                   std::size_t n_users, double mcs_margin_db,
                   const fault::FrameFaults& faults);

  /// Advances the per-user ApAttachment state machines one frame and
  /// returns the number of handoffs committed. `rss_mw[a * n_users + u]`
  /// is user u's best-case beacon RSS from AP a in milliwatts.
  std::size_t advance_attachments(std::size_t n_users, std::size_t n_aps,
                                  const std::vector<double>& rss_mw,
                                  std::uint32_t frame_id, bool beacon_ok);

  SessionConfig cfg_;
  model::QualityModel& quality_;
  beamforming::Codebook codebook_;
  emu::TxEngine engine_;
  Rng rng_;
  std::optional<Decision> frozen_;            ///< No-Update cache
  std::vector<Mbps> last_measured_;           ///< per-group rate feedback
  /// Per-subset beam cache (see sched/beam_cache.h): beamforming depends
  /// only on the member CSI (plus scheme/codebook/seed), so beams are
  /// reused across frames for every subset whose members' channels are
  /// unchanged, while the allocation still re-optimizes per frame content.
  sched::BeamCache beam_cache_;
  /// Previous frame's optimized time allocation keyed by member bitmask,
  /// remapped onto the surviving groups to warm-start the optimizer.
  /// Sorted ascending by mask (groups are emitted in ascending-mask
  /// order), looked up by binary search; clear() + push_back reuses the
  /// buffer across frames.
  struct PrevAlloc {
    sched::GroupMask mask = 0;
    sched::LayerArray t{};
  };
  std::vector<PrevAlloc> prev_alloc_;
  double prev_total_time_ = 0.0;
  std::size_t prev_n_users_ = 0;

  // --- Per-frame workspaces (capacity reused across frames) -------------
  sched::SchedWorkspace sched_ws_;        ///< enumeration buffers
  /// Per-frame copy of cfg_.group_enum with the frame's exclusions and
  /// deadline stamped in; a member so its exclude vector's capacity is
  /// reused instead of reallocated every frame.
  sched::GroupEnumConfig enum_cfg_;
  std::vector<double> warm_vec_;          ///< flattened warm-start vector
  std::vector<std::uint8_t> exclude_;     ///< per-user optimizer exclusion
  std::vector<emu::GroupTx> groups_tx_;   ///< per-group air parameters
  /// Recycling pools for the two group-count-sized vectors whose elements
  /// own buffers (GroupSpec members/beam, GroupTx members/member_loss).
  /// A reprobe frame swings the group count up and down; plain resize
  /// would free the shrunk elements' buffers and re-allocate them on the
  /// next growth. Shrinking parks victims here instead; growth pulls them
  /// back, so the swing is heap-free once both shapes have been seen.
  std::vector<sched::GroupSpec> group_pool_;
  std::vector<emu::GroupTx> tx_pool_;
  emu::FrameTxResult tx_result_;          ///< engine result rows
  std::vector<std::uint8_t> attempted_;   ///< quarantine bookkeeping
  video::ReconstructWorkspace recon_ws_;  ///< per-user reconstruction
  video::Frame recon_frame_;
  Decision decision_;                     ///< adapt-mode decision storage

  // --- Fault-recovery state (all deterministic, no rng) -----------------
  std::uint32_t next_frame_id_ = 0;
  /// Last finite, non-stale beacon CSI: the fallback when a beacon is
  /// missed or corrupt.
  std::vector<linalg::CVector> held_csi_;
  /// Consecutive frames each user's feedback has been missing.
  std::vector<int> feedback_silent_streak_;
  /// Consecutive attempted frames each user decoded nothing.
  std::vector<int> lost_frame_streak_;
  std::vector<std::uint8_t> quarantined_;

  // --- Multi-AP attachment + relay state (deterministic, no rng) --------
  enum class ApAttachState : std::uint8_t {
    kAttached = 0,
    kDegraded = 1,
    kProbing = 2,
    kHandingOff = 3,
  };
  static constexpr std::uint8_t kUnattached = 0xff;
  static constexpr std::uint32_t kNeverHandedOff =
      static_cast<std::uint32_t>(-1);
  std::vector<std::uint8_t> serving_ap_;      ///< kUnattached before frame 0
  std::vector<ApAttachState> attach_state_;
  std::vector<int> weak_streak_;              ///< consecutive weak frames
  std::vector<std::uint8_t> probe_target_;    ///< alternate under probe
  std::vector<int> probe_countdown_;
  std::vector<std::uint32_t> dwell_until_;    ///< no probes before this frame
  std::vector<int> handoff_streak_;           ///< back-to-back handoffs
  std::vector<std::uint32_t> last_handoff_frame_;
  /// Serving-AP channels assembled per frame from the per-AP stacks.
  std::vector<linalg::CVector> eff_decision_;
  std::vector<linalg::CVector> eff_truth_;
  std::vector<double> ap_rss_mw_;             ///< flat [ap * n_users + u]
  /// Per-user serving AP handed to the group enumerator (groups must not
  /// span APs). Empty on the single-AP path — bit-identical legacy output.
  std::vector<std::uint8_t> partition_;
  std::vector<emu::RelayLink> relays_;        ///< this frame's relay plan
};

}  // namespace w4k::core

// Experiment runners: user placement helpers and the static / trace-driven
// streaming loops shared by the benchmark harnesses and tests.
#pragma once

#include "channel/mobility.h"
#include "channel/propagation.h"
#include "core/report.h"
#include "core/session.h"
#include "fault/injector.h"

#include <vector>

namespace w4k::core {

/// Places `n` users at a fixed distance with angular positions drawn so the
/// spread from leftmost to rightmost equals the given maximum angular
/// spacing (testbed placements, Fig. 4a).
std::vector<channel::Position> place_users_fixed(std::size_t n,
                                                 double distance_m,
                                                 double mas_rad, Rng& rng);

/// Random placements with distance in [min, max] and azimuths inside a
/// window of width `mas_rad` (emulation placements, Fig. 4b).
std::vector<channel::Position> place_users_random(std::size_t n,
                                                  double min_distance_m,
                                                  double max_distance_m,
                                                  double mas_rad, Rng& rng);

/// Channels for a static placement.
std::vector<linalg::CVector> channels_for(
    const channel::PropagationConfig& prop,
    const std::vector<channel::Position>& users);

/// Same, writing into a caller-owned vector whose per-user channel buffers
/// are reused across calls (mobility loops regenerating channels per step).
void channels_for_into(const channel::PropagationConfig& prop,
                       const std::vector<channel::Position>& users,
                       std::vector<linalg::CVector>& out);

/// Streams `n_frames` over a static channel, cycling through `contexts`.
/// Decision CSI equals the true channel (static case: beacons are fresh).
/// Returns the accumulated per-frame outcomes with all the aggregation
/// helpers of SessionReport (per-(frame,user) quality via all_ssim(), raw
/// outcomes via frame_outcomes()).
SessionReport run_static(MulticastSession& session,
                         const std::vector<linalg::CVector>& channels,
                         const std::vector<FrameContext>& contexts,
                         int n_frames);

/// Streams over a CSI trace at 30 FPS (3 frames per 100 ms beacon): the
/// sender acts on the previous beacon's CSI while the true channel is the
/// current snapshot — the one-beacon staleness of real 802.11ad.
SessionReport run_trace(MulticastSession& session,
                        const channel::CsiTrace& trace,
                        const std::vector<FrameContext>& contexts,
                        int frames_per_snapshot = 3);

/// Fault-injecting variants: each frame's FrameFaults come from
/// `injector.at(frame)`, and the injector's channel-level faults (blockage
/// bursts, CSI corruption) are applied to per-frame copies of the decision
/// and true channels before stepping. An empty FaultPlan reproduces the
/// fault-free overload bit-identically — the chaos suite asserts this.
SessionReport run_static(MulticastSession& session,
                         const std::vector<linalg::CVector>& channels,
                         const std::vector<FrameContext>& contexts,
                         int n_frames, const fault::FaultInjector& injector);

SessionReport run_trace(MulticastSession& session,
                        const channel::CsiTrace& trace,
                        const std::vector<FrameContext>& contexts,
                        const fault::FaultInjector& injector,
                        int frames_per_snapshot = 3);

/// Multi-AP static loop: per-frame copies of the per-AP channel stacks
/// ([ap][user], channel::ap_channel_stacks) take the injector's channel-
/// level and AP-level faults (blockage with AP scoping, total and sector
/// outages) via apply_aps, then stream through session.step_multi_into.
/// `azimuths[a][u]` (channel::ap_user_azimuths) feeds the sector-outage
/// geometry; pass {} to degrade sector outages to total ones. With one AP
/// stack and a plan with no AP-level faults this is bit-identical to the
/// single-AP run_static overload.
SessionReport run_static_multi_ap(
    MulticastSession& session,
    const std::vector<std::vector<linalg::CVector>>& stacks,
    const std::vector<FrameContext>& contexts, int n_frames,
    const fault::FaultInjector& injector,
    const std::vector<std::vector<double>>& azimuths = {});

}  // namespace w4k::core

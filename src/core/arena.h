// Per-frame bump allocator (DESIGN.md Sec. 4g).
//
// A FrameArena owns a chain of pages sized once at session start (plus
// geometric growth during warmup) and hands out trivially-destructible
// scratch spans with a pointer bump. reset() rewinds every page without
// releasing memory, so after the first few frames have established the
// high-water mark the per-frame cost of "allocating" from the arena is a
// few arithmetic instructions and zero heap traffic — which is what the
// W4K_COUNT_ALLOCS gate asserts for the whole frame path.
//
// The arena is for transient per-frame POD scratch (doubles, flags,
// LayerArrays, index buffers). State that must outlive the frame — the
// No-Update Decision cache, capacity-persistent nested containers — lives
// in the owning workspace objects instead; see the ownership rules in
// DESIGN.md Sec. 4g.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace w4k::core {

class FrameArena {
 public:
  /// `initial_bytes` pre-sizes the first page (0 defers until first use).
  explicit FrameArena(std::size_t initial_bytes = 0);

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  FrameArena(FrameArena&&) = default;
  FrameArena& operator=(FrameArena&&) = default;

  /// Rewinds all pages. O(pages), never frees.
  void reset();

  /// Raw aligned allocation. Grows by adding a page when the active chain
  /// is exhausted (heap traffic only until the high-water mark settles).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Uninitialized scratch span of `n` Ts. T must be trivially
  /// destructible (reset() runs no destructors) and trivially copyable
  /// (the arena never constructs).
  template <typename T>
  std::span<T> alloc_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "FrameArena holds trivial scratch only");
    if (n == 0) return {};
    void* p = allocate(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// Zero-initialized variant (for accumulators).
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t n) {
    std::span<T> s = alloc_span<T>(n);
    for (auto& v : s) v = T{};
    return s;
  }

  /// Bytes handed out since the last reset().
  std::size_t used() const { return used_; }
  /// Total bytes owned across all pages.
  std::size_t capacity() const;
  /// Largest used() ever observed (sizing diagnostic for BENCH_alloc).
  std::size_t high_water() const { return high_water_; }
  std::size_t page_count() const { return pages_.size(); }

 private:
  struct Page {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Page& add_page(std::size_t min_bytes);

  std::vector<Page> pages_;
  std::size_t active_ = 0;      ///< index of the page being bumped
  std::size_t used_ = 0;        ///< bytes handed out since reset()
  std::size_t high_water_ = 0;
};

}  // namespace w4k::core

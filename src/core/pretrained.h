// Lazily trained, disk-cached quality model shared by examples, tests and
// benchmark harnesses, so each binary does not pay the dataset-generation
// + training cost when a cached model is available and compatible.
#pragma once

#include "model/quality_model.h"

#include <string>

namespace w4k::core {

struct PretrainedOptions {
  /// Resolution of the synthetic clips the dataset is built from.
  int width = 512;
  int height = 288;
  int frames_per_video = 4;
  int fractions_per_frame = 60;
  int epochs = 1500;
  /// Cache file; empty disables caching.
  std::string cache_path = "quality_model.cache";
};

/// Loads the model from `cache_path` if present, otherwise builds the
/// dataset from the six standard clips, trains, and saves. Returns the
/// held-out test MSE from training (0.0 when loaded from cache).
double ensure_trained(model::QualityModel& model,
                      const PretrainedOptions& opts = {});

}  // namespace w4k::core

#include "channel/multi_ap.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace w4k::channel {

void MultiApGeometry::validate() const {
  if (aps.empty())
    throw std::invalid_argument("MultiApGeometry: need at least one AP");
  if (aps.size() > kMaxAps)
    throw std::invalid_argument(
        "MultiApGeometry: " + std::to_string(aps.size()) +
        " APs exceeds the cap of " + std::to_string(kMaxAps));
  for (std::size_t a = 0; a < aps.size(); ++a) {
    if (!std::isfinite(aps[a].pos.x) || !std::isfinite(aps[a].pos.y) ||
        !std::isfinite(aps[a].boresight_rad))
      throw std::invalid_argument("MultiApGeometry: ap[" +
                                  std::to_string(a) + "] pose is not finite");
  }
}

Position to_ap_frame(const ApPose& ap, Position world) {
  const double dx = world.x - ap.pos.x;
  const double dy = world.y - ap.pos.y;
  const double c = std::cos(ap.boresight_rad);
  const double s = std::sin(ap.boresight_rad);
  // Rotate by -boresight so the AP's boresight lands on the local +x axis.
  return Position{c * dx + s * dy, -s * dx + c * dy};
}

double azimuth_from_ap(const ApPose& ap, Position world) {
  return to_ap_frame(ap, world).azimuth();
}

std::vector<ApPose> default_ap_layout(std::size_t n, const Room& room) {
  if (n == 0 || n > kMaxAps)
    throw std::invalid_argument("default_ap_layout: n must be in [1, " +
                                std::to_string(kMaxAps) + "]");
  constexpr double kPi = 3.14159265358979323846;
  std::vector<ApPose> aps;
  aps.reserve(n);
  // Legacy pose first so a 1-AP geometry is exactly the single-AP model.
  aps.push_back(ApPose{Position{0.0, 0.0}, 0.0});
  if (n > 1) aps.push_back(ApPose{Position{room.length, 0.0}, kPi});
  if (n > 2)
    aps.push_back(ApPose{Position{room.length / 2, room.width / 2}, -kPi / 2});
  if (n > 3)
    aps.push_back(ApPose{Position{room.length / 2, -room.width / 2}, kPi / 2});
  for (std::size_t k = 4; k < n; ++k) {
    const double y = (k % 2 ? -1.0 : 1.0) * room.width / 4;
    if (k % 4 < 2) aps.push_back(ApPose{Position{0.0, y}, 0.0});
    else aps.push_back(ApPose{Position{room.length, y}, kPi});
  }
  return aps;
}

linalg::CVector ap_channel(const PropagationConfig& cfg, const ApPose& ap,
                           Position user, double los_extra_loss_db) {
  return make_channel(cfg, to_ap_frame(ap, user), los_extra_loss_db);
}

std::vector<std::vector<linalg::CVector>> ap_channel_stacks(
    const MultiApGeometry& geo, const std::vector<Position>& users) {
  geo.validate();
  std::vector<std::vector<linalg::CVector>> stacks(geo.aps.size());
  for (std::size_t a = 0; a < geo.aps.size(); ++a) {
    stacks[a].reserve(users.size());
    for (const auto& u : users)
      stacks[a].push_back(ap_channel(geo.prop, geo.aps[a], u));
  }
  return stacks;
}

std::vector<std::vector<double>> ap_user_azimuths(
    const MultiApGeometry& geo, const std::vector<Position>& users) {
  geo.validate();
  std::vector<std::vector<double>> az(geo.aps.size());
  for (std::size_t a = 0; a < geo.aps.size(); ++a) {
    az[a].reserve(users.size());
    for (const auto& u : users)
      az[a].push_back(azimuth_from_ap(geo.aps[a], u));
  }
  return az;
}

MultiApGeometry parse_geometry(std::istream& is,
                               const PropagationConfig& prop) {
  MultiApGeometry geo;
  geo.prop = prop;
  bool saw_room = false;
  std::string line;
  int lineno = 0;
  const auto err = [&](const std::string& msg) -> void {
    throw std::runtime_error("geometry:" + std::to_string(lineno) + ": " +
                             msg);
  };
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "room") {
      if (saw_room) err("duplicate room line");
      saw_room = true;
      double length = 0.0, width = 0.0;
      if (!(ls >> length >> width)) err("expected room <length_m> <width_m>");
      if (!(length > 0.0) || !(width > 0.0) || !std::isfinite(length) ||
          !std::isfinite(width))
        err("room dimensions must be finite and > 0");
      geo.prop.room.length = length;
      geo.prop.room.width = width;
    } else if (kind == "ap") {
      double x = 0.0, y = 0.0, boresight_deg = 0.0;
      if (!(ls >> x >> y >> boresight_deg))
        err("expected ap <x_m> <y_m> <boresight_deg>");
      if (!std::isfinite(x) || !std::isfinite(y) ||
          !std::isfinite(boresight_deg))
        err("ap pose must be finite");
      constexpr double kRad = 3.14159265358979323846 / 180.0;
      geo.aps.push_back(ApPose{Position{x, y}, boresight_deg * kRad});
      if (geo.aps.size() > kMaxAps)
        err("more than " + std::to_string(kMaxAps) + " APs");
    } else {
      err("unknown item '" + kind + "'");
    }
    std::string extra;
    if (ls >> extra) err("trailing tokens starting at '" + extra + "'");
  }
  if (geo.aps.empty())
    throw std::runtime_error("geometry: no 'ap' lines (need at least one)");
  geo.validate();
  return geo;
}

MultiApGeometry load_geometry(const std::string& path,
                              const PropagationConfig& prop) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_geometry: cannot open " + path);
  try {
    return parse_geometry(is, prop);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace w4k::channel

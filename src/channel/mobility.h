// CSI trace generation for the trace-driven mobile experiments (Sec. 2.8 /
// 4.3.4). The paper records SLS-derived CSI at the 100 ms ACO beacon
// interval while (a) receivers walk randomly or (b) people walk between the
// AP and static receivers; we generate the equivalent traces from the
// propagation model with a random-waypoint walker and a LoS-blockage
// process, then replay them through the same streaming stack.
#pragma once

#include "channel/propagation.h"
#include "common/rng.h"
#include "linalg/matrix.h"

#include <cstdint>
#include <vector>

namespace w4k::channel {

/// ACO beacon interval (802.11ad): one CSI snapshot every 100 ms.
inline constexpr Seconds kBeaconInterval = 0.1;

/// One trace: snapshots[t][u] is user u's channel vector at time
/// t * kBeaconInterval. Positions are recorded for diagnostics.
struct CsiTrace {
  std::vector<std::vector<linalg::CVector>> snapshots;
  std::vector<std::vector<Position>> positions;
  Seconds interval = kBeaconInterval;

  std::size_t steps() const { return snapshots.size(); }
  std::size_t users() const {
    return snapshots.empty() ? 0 : snapshots.front().size();
  }
};

/// Parameters for a moving-receiver trace.
struct MovingReceiverConfig {
  PropagationConfig prop;
  std::size_t n_users = 1;
  /// users[i] moves iff moving[i]; must match n_users (empty = all move).
  std::vector<bool> moving;
  Seconds duration = 60.0;        ///< paper: "walk randomly for a minute"
  double walk_speed = 1.0;        ///< m/s
  double min_distance = 2.5;      ///< annulus the walkers stay inside
  double max_distance = 6.0;
  double max_abs_azimuth = 1.0;   ///< rad, keeps users in the array's FoV
  std::uint64_t seed = 1;
};

/// Random-waypoint walkers inside a distance annulus. High-RSS traces use
/// the default 2.5-6 m band; pass 13-18 m for the paper's low-RSS regime.
CsiTrace moving_receiver_trace(const MovingReceiverConfig& cfg);

/// Parameters for a moving-environment trace (static users, walking
/// blockers between AP and receivers).
struct MovingEnvironmentConfig {
  PropagationConfig prop;
  std::vector<Position> users;    ///< static receiver placements
  int n_blockers = 2;             ///< "two people walk randomly"
  Seconds duration = 60.0;
  double walk_speed = 1.0;
  double blockage_loss_db = 18.0; ///< human torso at 60 GHz
  double blocker_radius = 0.35;   ///< m, how close to the LoS ray counts
  std::uint64_t seed = 2;
};

/// Static users; blockers do a random walk in front of the AP and attenuate
/// the LoS component of any user whose AP ray they intersect. Attenuation
/// ramps smoothly with blocker-to-ray distance (no step discontinuities).
CsiTrace moving_environment_trace(const MovingEnvironmentConfig& cfg);

/// Convenience: per-step best-case RSS (optimal unicast beam) for user `u`,
/// used to classify traces into the paper's high/low RSS regimes.
std::vector<double> best_case_rss_dbm(const CsiTrace& trace, std::size_t user);

}  // namespace w4k::channel

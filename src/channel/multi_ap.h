// Multi-AP room geometry for handoff and relay scenarios.
//
// The paper's testbed is one AP at the origin of a rectangular room; this
// header generalises that to a small set of wall-mounted APs, each with its
// own position and boresight. Every user then has a *per-AP channel
// stack* — one synthesized channel vector per AP-user ray — and blockage /
// outage faults attenuate individual rays (see FaultInjector::apply_aps).
//
// Modeling note: make_channel's image-method reflections assume the AP at
// the origin of its own room frame, so each AP sees the shared room through
// its local frame (position and boresight rotated into it). That keeps every
// AP's multipath physically plausible without re-deriving the image set per
// wall; cross-AP geometry only needs relative distance and azimuth, which
// are exact.
#pragma once

#include "channel/propagation.h"
#include "linalg/matrix.h"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace w4k::channel {

/// Hard cap on APs per geometry: partitions are stored as per-user uint8
/// ids and real deployments in the source material use 2-4 APs per room.
inline constexpr std::size_t kMaxAps = 8;

/// One access point: world position plus boresight azimuth (radians,
/// measured from +x). The legacy single-AP setup is {(0,0), 0}.
struct ApPose {
  Position pos;
  double boresight_rad = 0.0;
};

/// A room shared by `aps` access points with a common radio config.
struct MultiApGeometry {
  std::vector<ApPose> aps;
  PropagationConfig prop;

  std::size_t n_aps() const { return aps.size(); }

  /// Throws std::invalid_argument on 0 APs, more than kMaxAps, or
  /// non-finite poses.
  void validate() const;
};

/// Transforms a world position into `ap`'s local frame (AP at origin,
/// boresight along +x) — the frame make_channel expects.
Position to_ap_frame(const ApPose& ap, Position world);

/// The user's azimuth as seen from `ap`, in the AP's local frame
/// (radians). Sector outages are expressed in this frame.
double azimuth_from_ap(const ApPose& ap, Position world);

/// A sensible default wall layout for `n` APs in `room`: AP 0 at the
/// origin of the x=0 wall facing +x (the legacy pose), AP 1 opposite on
/// the x=length wall facing -x, APs 2/3 centred on the side walls, then
/// alternating quarter-points of the end walls. Deterministic.
std::vector<ApPose> default_ap_layout(std::size_t n, const Room& room);

/// Synthesizes the channel from one AP to a user at a world position.
linalg::CVector ap_channel(const PropagationConfig& cfg, const ApPose& ap,
                           Position user, double los_extra_loss_db = 0.0);

/// Per-AP channel stacks for a set of static users: result[ap][user].
std::vector<std::vector<linalg::CVector>> ap_channel_stacks(
    const MultiApGeometry& geo, const std::vector<Position>& users);

/// AP-local azimuth table for a set of static users: result[ap][user].
/// This is what FaultInjector::apply_aps consumes for sector outages.
std::vector<std::vector<double>> ap_user_azimuths(
    const MultiApGeometry& geo, const std::vector<Position>& users);

/// Parses the text geometry format (one item per line, '#' comments):
///
///   room <length_m> <width_m>          # optional, at most once
///   ap <x_m> <y_m> <boresight_deg>     # one per AP, >= 1 required
///
/// The room line overrides prop.room dimensions; everything else in `prop`
/// (antennas, calibration, materials) is taken from the argument. Throws
/// std::runtime_error naming the offending line.
MultiApGeometry parse_geometry(std::istream& is,
                               const PropagationConfig& prop = {});

/// File variant; error messages carry the path.
MultiApGeometry load_geometry(const std::string& path,
                              const PropagationConfig& prop = {});

}  // namespace w4k::channel

#include "channel/mcs.h"

#include <array>
#include <cstdio>

namespace w4k::channel {
namespace {

// Table 2 of the paper, supported rows only (MCS 0/5/9/9.1/>=12.1 are not
// usable for data traffic on the QCA6320).
constexpr std::array<McsEntry, 10> kTable = {{
    {1, Dbm{-68.0}, Mbps{300.0}},
    {2, Dbm{-66.0}, Mbps{550.0}},
    {3, Dbm{-65.0}, Mbps{720.0}},
    {4, Dbm{-64.0}, Mbps{850.0}},
    {6, Dbm{-63.0}, Mbps{1050.0}},
    {7, Dbm{-62.0}, Mbps{1250.0}},
    {8, Dbm{-61.0}, Mbps{1580.0}},
    {10, Dbm{-55.0}, Mbps{1850.0}},
    {11, Dbm{-54.0}, Mbps{2100.0}},
    {12, Dbm{-53.0}, Mbps{2400.0}},
}};

}  // namespace

std::span<const McsEntry> mcs_table() { return kTable; }

std::optional<McsEntry> select_mcs(Dbm rss) {
  std::optional<McsEntry> best;
  for (const auto& e : kTable) {
    if (rss.value >= e.sensitivity.value) best = e;
  }
  return best;
}

Mbps rate_for_rss(Dbm rss) {
  const auto e = select_mcs(rss);
  return e ? e->udp_throughput : Mbps{0.0};
}

std::optional<McsEntry> mcs_by_index(int mcs) {
  for (const auto& e : kTable)
    if (e.mcs == mcs) return e;
  return std::nullopt;
}

std::string to_string(const McsEntry& e) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "MCS %d: sens %.1f dBm, %.0f Mbps", e.mcs,
                e.sensitivity.value, e.udp_throughput.value);
  return buf;
}

}  // namespace w4k::channel

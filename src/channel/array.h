// Phased-array geometry: steering vectors for the AP's uniform linear
// array and the RSS of a (channel, beam) pair. The STA side is a single
// quasi-omnidirectional antenna, matching the paper's SLS description, so
// a channel is an N_t-dimensional complex vector.
#pragma once

#include "common/units.h"
#include "linalg/matrix.h"

namespace w4k::channel {

/// Number of AP antenna elements (Sparrow+/QCA6320-class arrays are 32).
inline constexpr std::size_t kDefaultApAntennas = 32;

/// Steering vector of a half-wavelength-spaced ULA toward azimuth `theta`
/// (radians, 0 = boresight, positive toward +y). Unit-magnitude entries.
linalg::CVector steering_vector(double theta_rad, std::size_t n_antennas);

/// Received power |f . h|^2 expressed in dBm given that the channel vector
/// h already carries absolute amplitudes calibrated to dBm (see
/// propagation.h). `f` is the transmit beam (precoder), normally unit-norm.
Dbm beam_rss(const linalg::CVector& channel, const linalg::CVector& beam);

/// Plain (unconjugated) inner product sum f_n * h_n used by beam_rss;
/// exposed for the beamforming optimizer.
linalg::Complex beam_response(const linalg::CVector& channel,
                              const linalg::CVector& beam);

/// Quantizes each element's phase to `bits` (e.g. 2-bit phase shifters on
/// commodity WiGig front-ends) and fixes magnitudes to 1/sqrt(N). This is
/// what turns an ideal codebook beam into a realizable "pre-defined" beam.
linalg::CVector quantize_phases(const linalg::CVector& beam, int bits);

}  // namespace w4k::channel

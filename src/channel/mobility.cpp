#include "channel/mobility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::channel {
namespace {

/// Random-waypoint state for one walker.
struct Walker {
  Position pos;
  Position target;
  double speed = 1.0;

  void pick_target(Rng& rng, double min_d, double max_d, double max_az) {
    const double d = rng.uniform(min_d, max_d);
    const double az = rng.uniform(-max_az, max_az);
    target = Position::from_polar(d, az);
  }

  void step(Rng& rng, Seconds dt, double min_d, double max_d, double max_az) {
    const double dx = target.x - pos.x;
    const double dy = target.y - pos.y;
    const double dist = std::hypot(dx, dy);
    const double stride = speed * dt;
    if (dist <= stride) {
      pos = target;
      pick_target(rng, min_d, max_d, max_az);
      return;
    }
    pos.x += dx / dist * stride;
    pos.y += dy / dist * stride;
  }
};

/// Perpendicular distance from point p to the segment AP(origin)->u,
/// clamped to the segment.
double distance_to_los(Position p, Position u) {
  const double len2 = u.x * u.x + u.y * u.y;
  if (len2 <= 0.0) return std::hypot(p.x, p.y);
  double t = (p.x * u.x + p.y * u.y) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return std::hypot(p.x - t * u.x, p.y - t * u.y);
}

}  // namespace

CsiTrace moving_receiver_trace(const MovingReceiverConfig& cfg) {
  if (cfg.n_users == 0)
    throw std::invalid_argument("moving_receiver_trace: need >= 1 user");
  if (!cfg.moving.empty() && cfg.moving.size() != cfg.n_users)
    throw std::invalid_argument(
        "moving_receiver_trace: moving flags size mismatch");
  Rng rng(cfg.seed);
  std::vector<Walker> walkers(cfg.n_users);
  for (auto& w : walkers) {
    w.speed = cfg.walk_speed * rng.uniform(0.8, 1.2);
    w.pos = Position::from_polar(
        rng.uniform(cfg.min_distance, cfg.max_distance),
        rng.uniform(-cfg.max_abs_azimuth, cfg.max_abs_azimuth));
    w.pick_target(rng, cfg.min_distance, cfg.max_distance,
                  cfg.max_abs_azimuth);
  }

  CsiTrace trace;
  const auto steps =
      static_cast<std::size_t>(cfg.duration / kBeaconInterval);
  trace.snapshots.reserve(steps);
  trace.positions.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<linalg::CVector> snap;
    std::vector<Position> pos;
    for (std::size_t u = 0; u < cfg.n_users; ++u) {
      snap.push_back(make_channel(cfg.prop, walkers[u].pos));
      pos.push_back(walkers[u].pos);
      const bool moves = cfg.moving.empty() || cfg.moving[u];
      if (moves)
        walkers[u].step(rng, kBeaconInterval, cfg.min_distance,
                        cfg.max_distance, cfg.max_abs_azimuth);
    }
    trace.snapshots.push_back(std::move(snap));
    trace.positions.push_back(std::move(pos));
  }
  return trace;
}

CsiTrace moving_environment_trace(const MovingEnvironmentConfig& cfg) {
  if (cfg.users.empty())
    throw std::invalid_argument("moving_environment_trace: need >= 1 user");
  Rng rng(cfg.seed);

  // Blockers roam the space between the AP and the farthest user.
  double max_d = 0.0;
  for (const auto& u : cfg.users) max_d = std::max(max_d, u.distance());
  const double roam_min = 0.8;
  const double roam_max = std::max(roam_min + 0.5, max_d * 0.9);

  std::vector<Walker> blockers(static_cast<std::size_t>(cfg.n_blockers));
  for (auto& b : blockers) {
    b.speed = cfg.walk_speed * rng.uniform(0.8, 1.2);
    b.pos = Position::from_polar(rng.uniform(roam_min, roam_max),
                                 rng.uniform(-1.2, 1.2));
    b.pick_target(rng, roam_min, roam_max, 1.2);
  }

  CsiTrace trace;
  const auto steps =
      static_cast<std::size_t>(cfg.duration / kBeaconInterval);
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<linalg::CVector> snap;
    for (const auto& user : cfg.users) {
      // Soft blockage: full loss when a blocker stands on the ray, fading
      // quadratically to zero at blocker_radius. Multiple blockers stack.
      double block_db = 0.0;
      for (const auto& b : blockers) {
        const double d = distance_to_los(b.pos, user);
        if (d < cfg.blocker_radius) {
          const double frac = 1.0 - d / cfg.blocker_radius;
          block_db += cfg.blockage_loss_db * frac * frac;
        }
      }
      snap.push_back(make_channel(cfg.prop, user, block_db));
    }
    trace.snapshots.push_back(std::move(snap));
    trace.positions.push_back(cfg.users);
    for (auto& b : blockers)
      b.step(rng, kBeaconInterval, roam_min, roam_max, 1.2);
  }
  return trace;
}

std::vector<double> best_case_rss_dbm(const CsiTrace& trace,
                                      std::size_t user) {
  std::vector<double> out;
  out.reserve(trace.steps());
  for (const auto& snap : trace.snapshots) {
    if (user >= snap.size())
      throw std::out_of_range("best_case_rss_dbm: user index");
    // MRT achieves ||h||^2.
    const double p = snap[user].norm_sq();
    out.push_back(p > 0.0 ? Dbm::from_milliwatts(p).value : -300.0);
  }
  return out;
}

}  // namespace w4k::channel

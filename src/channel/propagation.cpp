#include "channel/propagation.h"

#include "channel/array.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace w4k::channel {
namespace {

constexpr double kLambda = kSpeedOfLight / kWigigFreqHz;  // ~4.96 mm

}  // namespace

Position Position::from_polar(double distance_m, double azimuth_rad) {
  return Position{distance_m * std::cos(azimuth_rad),
                  distance_m * std::sin(azimuth_rad)};
}

double Position::distance() const { return std::hypot(x, y); }

double Position::azimuth() const { return std::atan2(y, x); }

double fspl_db(double distance_m) {
  if (distance_m < 0.1) distance_m = 0.1;  // avoid near-field blowup
  return 20.0 * std::log10(4.0 * std::numbers::pi * distance_m / kLambda);
}

std::vector<Path> trace_paths(const Room& room, Position rx) {
  std::vector<Path> paths;
  const double d = rx.distance();

  // Line of sight.
  paths.push_back(Path{rx.azimuth(), std::max(d, 0.1), 0.0, true});

  // First-order wall reflections via receiver images. The AP is embedded
  // in the x=0 wall, so only the far wall (x = length) and the two side
  // walls produce departures into the room.
  const auto add_image = [&](Position image, double loss) {
    const double len = image.distance();
    // A reflected path shorter than LoS is geometrically impossible; guard
    // against degenerate placements (receiver on a wall).
    if (len < d + 1e-6) return;
    paths.push_back(Path{image.azimuth(), len, loss, false});
  };
  add_image(Position{rx.x, room.width - rx.y}, room.wall_loss_db);    // y=+W/2
  add_image(Position{rx.x, -room.width - rx.y}, room.wall_loss_db);   // y=-W/2
  add_image(Position{2.0 * room.length - rx.x, rx.y}, room.wall_loss_db);

  // Ceiling and floor bounces: same azimuth as LoS, longer path. Vertical
  // detour = twice the gap between device height and the surface.
  const double up = 2.0 * (room.height - room.device_height);
  const double down = 2.0 * room.device_height;
  paths.push_back(Path{rx.azimuth(), std::hypot(d, up), room.ceiling_loss_db,
                       false});
  paths.push_back(Path{rx.azimuth(), std::hypot(d, down), room.floor_loss_db,
                       false});
  return paths;
}

linalg::CVector make_channel(const PropagationConfig& cfg, Position rx,
                             double los_extra_loss_db) {
  if (cfg.n_antennas == 0)
    throw std::invalid_argument("make_channel: zero antennas");
  std::vector<Path> paths;
  if (cfg.reflections) {
    paths = trace_paths(cfg.room, rx);
  } else {
    paths.push_back(Path{rx.azimuth(), std::max(rx.distance(), 0.1), 0.0,
                         true});
  }

  linalg::CVector h(cfg.n_antennas);
  for (const auto& p : paths) {
    double loss = fspl_db(p.length_m) + p.extra_loss_db;
    if (p.line_of_sight) loss += los_extra_loss_db;
    const double amp_db = cfg.calibration_db - loss;
    const double amp = std::pow(10.0, amp_db / 20.0);
    // Carrier phase from the exact travelled distance: this is what makes
    // multipath interference (and its evolution under motion) physical.
    const double phase = -2.0 * std::numbers::pi *
                         std::fmod(p.length_m / kLambda, 1.0);
    const linalg::Complex gain = std::polar(amp, phase);
    const linalg::CVector a = steering_vector(p.azimuth_rad, cfg.n_antennas);
    for (std::size_t n = 0; n < cfg.n_antennas; ++n) h[n] += gain * a[n];
  }
  return h;
}

}  // namespace w4k::channel

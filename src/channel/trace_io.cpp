#include "channel/trace_io.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace w4k::channel {
namespace {

// Version 1 had no per-step sequence ids; version 2 prefixes every step's
// records with its step index so reordered/spliced captures are caught.
constexpr char kMagicV1[8] = {'W', '4', 'K', 'C', 'S', 'I', 'T', '1'};
constexpr char kMagicV2[8] = {'W', '4', 'K', 'C', 'S', 'I', 'T', '2'};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

double read_f64(std::istream& is) {
  double v = 0.0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

[[noreturn]] void bad_record(const std::string& path, std::uint32_t t,
                             std::uint32_t u, const std::string& what) {
  throw std::runtime_error("load_trace: " + what + " at step " +
                           std::to_string(t) + " user " + std::to_string(u) +
                           " in " + path);
}

}  // namespace

void save_trace(const CsiTrace& trace, const std::string& path) {
  if (trace.steps() == 0 || trace.users() == 0)
    throw std::runtime_error("save_trace: empty trace");
  const std::size_t antennas = trace.snapshots[0][0].size();
  for (std::size_t t = 0; t < trace.steps(); ++t) {
    if (trace.snapshots[t].size() != trace.users() ||
        trace.positions[t].size() != trace.users())
      throw std::runtime_error("save_trace: ragged trace");
    for (const auto& h : trace.snapshots[t])
      if (h.size() != antennas)
        throw std::runtime_error("save_trace: ragged antenna count");
  }

  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_trace: cannot create " + path);
  os.write(kMagicV2, sizeof(kMagicV2));
  write_u32(os, static_cast<std::uint32_t>(trace.steps()));
  write_u32(os, static_cast<std::uint32_t>(trace.users()));
  write_u32(os, static_cast<std::uint32_t>(antennas));
  write_f64(os, trace.interval);
  for (std::size_t t = 0; t < trace.steps(); ++t) {
    write_u32(os, static_cast<std::uint32_t>(t));  // v2 sequence id
    for (std::size_t u = 0; u < trace.users(); ++u) {
      write_f64(os, trace.positions[t][u].x);
      write_f64(os, trace.positions[t][u].y);
      for (std::size_t n = 0; n < antennas; ++n) {
        write_f64(os, trace.snapshots[t][u][n].real());
        write_f64(os, trace.snapshots[t][u][n].imag());
      }
    }
  }
  if (!os) throw std::runtime_error("save_trace: write failed");
}

CsiTrace load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_trace: cannot open " + path);
  return load_trace(is, path);
}

CsiTrace load_trace(std::istream& is, const std::string& path) {
  char magic[8];
  is.read(magic, sizeof(magic));
  bool v2 = false;
  if (is && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) v2 = true;
  else if (!is || std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0)
    throw std::runtime_error("load_trace: bad magic in " + path);

  const std::uint32_t steps = read_u32(is);
  const std::uint32_t users = read_u32(is);
  const std::uint32_t antennas = read_u32(is);
  CsiTrace trace;
  trace.interval = read_f64(is);
  if (!is || steps == 0 || users == 0 || antennas == 0 ||
      steps > 10'000'000 || users > 1024 || antennas > 4096)
    throw std::runtime_error("load_trace: implausible header in " + path);
  if (!std::isfinite(trace.interval) || trace.interval <= 0.0)
    throw std::runtime_error("load_trace: non-positive beacon interval in " +
                             path);

  trace.snapshots.resize(steps);
  trace.positions.resize(steps);
  for (std::uint32_t t = 0; t < steps; ++t) {
    if (v2) {
      const std::uint32_t seq = read_u32(is);
      if (!is) bad_record(path, t, 0, "truncated step header");
      if (seq != t)
        bad_record(path, t, 0,
                   "out-of-order step id (got " + std::to_string(seq) + ")");
    }
    trace.snapshots[t].resize(users);
    trace.positions[t].resize(users);
    for (std::uint32_t u = 0; u < users; ++u) {
      trace.positions[t][u].x = read_f64(is);
      trace.positions[t][u].y = read_f64(is);
      if (!std::isfinite(trace.positions[t][u].x) ||
          !std::isfinite(trace.positions[t][u].y))
        bad_record(path, t, u, "non-finite position");
      linalg::CVector h(antennas);
      for (std::uint32_t n = 0; n < antennas; ++n) {
        const double re = read_f64(is);
        const double im = read_f64(is);
        if (!std::isfinite(re) || !std::isfinite(im))
          bad_record(path, t, u, "non-finite channel value");
        h[n] = linalg::Complex(re, im);
      }
      // A row that ran past EOF is reported where it happened, not as a
      // whole-file "truncated" after megabytes of zero-filled snapshots.
      if (!is) bad_record(path, t, u, "truncated record");
      trace.snapshots[t][u] = std::move(h);
    }
  }
  if (!is) throw std::runtime_error("load_trace: truncated " + path);
  return trace;
}

}  // namespace w4k::channel

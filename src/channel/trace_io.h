// CSI trace persistence (Sec. 2.8: "we record the RSS traces measured at
// each receiver to compute CSI. We then use the CSI trace to drive
// emulation"). The binary format is versioned and self-describing so
// recorded traces can be replayed across builds:
//
//   magic "W4KCSIT2" | u32 steps | u32 users | u32 antennas | f64 interval
//   then per step: u32 step id, then users x (2 f64 position +
//   antennas x 2 f64 channel).
//
// Version 1 ("W4KCSIT1", no per-step ids) is still read. The loader
// validates as it goes: truncated rows, non-finite values, and
// out-of-order step ids all throw std::runtime_error naming the offending
// step/user record.
#pragma once

#include "channel/mobility.h"

#include <iosfwd>
#include <string>

namespace w4k::channel {

/// Writes a trace. Throws std::runtime_error on I/O failure or an empty /
/// ragged trace (every snapshot must have the same user and antenna count).
void save_trace(const CsiTrace& trace, const std::string& path);

/// Reads a trace written by save_trace (either format version). Throws
/// std::runtime_error on missing file, bad magic, implausible header,
/// truncation, non-finite values, or out-of-order step ids — the message
/// names the offending record.
CsiTrace load_trace(const std::string& path);

/// Stream variant — the same loader over any byte source (fuzz harnesses
/// feed it in-memory buffers). `name` labels error messages.
CsiTrace load_trace(std::istream& is, const std::string& name);

}  // namespace w4k::channel

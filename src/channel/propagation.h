// 60 GHz indoor propagation model.
//
// Substitutes the paper's two channel sources — the physical QCA6320
// testbed and the Wireless Insite ray-traced meeting room — with an
// image-method ray tracer for a rectangular room: the line-of-sight path,
// first-order reflections off the three far walls, and ceiling/floor
// bounces. Each path carries free-space path loss at 60.48 GHz, a material
// reflection loss, and a geometry-derived carrier phase, so multipath
// fading and angular spread are physically consistent as receivers move.
//
// Calibration: the single constant kCalibrationDb is chosen so that an
// optimally beamformed unicast link at 3 m sits at about -48 dBm, which
// puts the testbed distances (3-6 m) in the MCS 10-12 regime and the
// emulation distances (4-16 m) across MCS 6-12 — matching where Table 2
// puts the paper's own measurements.
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "linalg/matrix.h"

#include <vector>

namespace w4k::channel {

/// 2D position in meters. The AP sits at the origin at the middle of the
/// x=0 wall, boresight along +x; the room spans x in [0, length],
/// y in [-width/2, width/2].
struct Position {
  double x = 0.0;
  double y = 0.0;

  static Position from_polar(double distance_m, double azimuth_rad);
  double distance() const;
  double azimuth() const;
};

/// Rectangular conference room (the lidar-scanned meeting room stand-in).
struct Room {
  double length = 20.0;        ///< m, +x extent
  double width = 12.0;         ///< m, y extent centred on 0
  double height = 3.0;         ///< m
  double device_height = 1.2;  ///< AP/STA height above the floor
  double wall_loss_db = 11.0;  ///< drywall reflection loss at 60 GHz
  double ceiling_loss_db = 13.0;
  double floor_loss_db = 14.0;
};

/// One propagation path from the AP to a receiver.
struct Path {
  double azimuth_rad = 0.0;  ///< angle of departure at the AP array
  double length_m = 0.0;     ///< total travelled distance
  double extra_loss_db = 0.0;///< reflection/blockage loss on top of FSPL
  bool line_of_sight = false;
};

/// Free-space path loss at 60.48 GHz in dB.
double fspl_db(double distance_m);

struct PropagationConfig {
  std::size_t n_antennas = 32;
  /// Link-budget constant folding TX power and per-element gain (see file
  /// comment for how it was calibrated).
  double calibration_db = 14.5;
  Room room;
  /// Disable to get a pure-LoS channel (useful in unit tests).
  bool reflections = true;
};

/// Image-method ray trace from the AP to `rx`. Paths whose image falls
/// outside a physically sensible geometry are skipped. The LoS path is
/// always first in the returned vector.
std::vector<Path> trace_paths(const Room& room, Position rx);

/// Synthesizes the channel vector h for a receiver: the coherent sum of
/// per-path steering vectors weighted by amplitude and carrier phase.
/// `los_extra_loss_db` models human blockage of the LoS component only
/// (reflected paths go around the blocker).
linalg::CVector make_channel(const PropagationConfig& cfg, Position rx,
                             double los_extra_loss_db = 0.0);

}  // namespace w4k::channel

// 802.11ad modulation-and-coding-scheme table as measured on the paper's
// QCA6320 testbed (Table 2): per-MCS receiver sensitivity and the *measured
// Iperf3 UDP throughput*, which already accounts for PHY/MAC overhead. The
// paper feeds the UDP column (not the PHY rate) into the schedule
// optimizer; we do the same.
#pragma once

#include "common/units.h"

#include <optional>
#include <span>
#include <string>

namespace w4k::channel {

struct McsEntry {
  int mcs = 0;             ///< MCS index (QCA6320 supports 1-12 minus 5/9/9.1)
  Dbm sensitivity{0.0};    ///< minimum RSS to sustain this MCS
  Mbps udp_throughput{0};  ///< measured Iperf3-UDP goodput
};

/// The supported rows of Table 2, ascending by MCS.
std::span<const McsEntry> mcs_table();

/// Highest MCS whose sensitivity is satisfied by `rss`, or std::nullopt if
/// the link cannot even sustain MCS 1 (-68 dBm).
std::optional<McsEntry> select_mcs(Dbm rss);

/// UDP throughput for `rss`: the selected MCS's rate, or 0 Mbps when no MCS
/// is sustainable.
Mbps rate_for_rss(Dbm rss);

/// Entry for an exact MCS index; std::nullopt for unsupported indices
/// (0, 5, 9, and anything outside 1..12).
std::optional<McsEntry> mcs_by_index(int mcs);

/// Human-readable row ("MCS 8: sens -61.0 dBm, 1580 Mbps") for harness output.
std::string to_string(const McsEntry& e);

/// The paper's high/low-RSS split for mobile experiments: MCS 8 sensitivity.
inline constexpr Dbm kHighRssThreshold{-61.0};

}  // namespace w4k::channel

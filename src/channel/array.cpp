#include "channel/array.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace w4k::channel {

linalg::CVector steering_vector(double theta_rad, std::size_t n_antennas) {
  if (n_antennas == 0)
    throw std::invalid_argument("steering_vector: zero antennas");
  linalg::CVector a(n_antennas);
  const double k = std::numbers::pi * std::sin(theta_rad);  // d = lambda/2
  for (std::size_t n = 0; n < n_antennas; ++n)
    a[n] = std::polar(1.0, k * static_cast<double>(n));
  return a;
}

linalg::Complex beam_response(const linalg::CVector& channel,
                              const linalg::CVector& beam) {
  if (channel.size() != beam.size())
    throw std::invalid_argument("beam_response: size mismatch");
  linalg::Complex s = 0.0;
  for (std::size_t n = 0; n < channel.size(); ++n) s += beam[n] * channel[n];
  return s;
}

Dbm beam_rss(const linalg::CVector& channel, const linalg::CVector& beam) {
  const double p = std::norm(beam_response(channel, beam));
  if (p <= 0.0) return Dbm{-300.0};  // numerically dead link
  return Dbm::from_milliwatts(p);
}

linalg::CVector quantize_phases(const linalg::CVector& beam, int bits) {
  if (bits <= 0 || bits > 16)
    throw std::invalid_argument("quantize_phases: bits must be in 1..16");
  const int levels = 1 << bits;
  const double step = 2.0 * std::numbers::pi / levels;
  linalg::CVector out(beam.size());
  const double mag = 1.0 / std::sqrt(static_cast<double>(beam.size()));
  for (std::size_t n = 0; n < beam.size(); ++n) {
    const double phase = std::arg(beam[n]);
    const double q = std::round(phase / step) * step;
    out[n] = std::polar(mag, q);
  }
  return out;
}

}  // namespace w4k::channel

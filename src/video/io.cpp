#include "video/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace w4k::video {
namespace {

void check_codec_dims(int width, int height) {
  if (width <= 0 || height <= 0 || width % 16 != 0 || height % 16 != 0)
    throw std::runtime_error(
        "video io: dimensions must be positive multiples of 16 "
        "(layered-codec requirement)");
}

/// Reads exactly `plane.size()` bytes into the plane.
bool read_plane(std::istream& is, Plane& plane) {
  is.read(reinterpret_cast<char*>(plane.pix.data()),
          static_cast<std::streamsize>(plane.pix.size()));
  return static_cast<std::size_t>(is.gcount()) == plane.pix.size();
}

}  // namespace

struct Y4mReader::Impl {
  std::ifstream file;
};

Y4mReader::Y4mReader(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->file.open(path, std::ios::binary);
  if (!impl_->file)
    throw std::runtime_error("Y4mReader: cannot open " + path);
  std::string line;
  if (!std::getline(impl_->file, line) || line.rfind("YUV4MPEG2", 0) != 0)
    throw std::runtime_error("Y4mReader: not a YUV4MPEG2 stream: " + path);
  // Header tags: space-separated, first letter selects the parameter.
  std::istringstream tags(line.substr(9));
  std::string tag;
  while (tags >> tag) {
    if (tag.empty()) continue;
    switch (tag[0]) {
      case 'W': header_.width = std::stoi(tag.substr(1)); break;
      case 'H': header_.height = std::stoi(tag.substr(1)); break;
      case 'F': {
        const auto colon = tag.find(':');
        if (colon != std::string::npos) {
          header_.fps_num = std::stoi(tag.substr(1, colon - 1));
          header_.fps_den = std::stoi(tag.substr(colon + 1));
        }
        break;
      }
      case 'C': header_.colorspace = tag.substr(1); break;
      default: break;  // interlacing/aspect tags are irrelevant here
    }
  }
  if (header_.colorspace.rfind("420", 0) != 0)
    throw std::runtime_error("Y4mReader: unsupported colorspace C" +
                             header_.colorspace +
                             " (only C420* is supported)");
  check_codec_dims(header_.width, header_.height);
}

Y4mReader::~Y4mReader() = default;

std::optional<Frame> Y4mReader::next() {
  std::string line;
  if (!std::getline(impl_->file, line)) return std::nullopt;  // clean EOF
  if (line.rfind("FRAME", 0) != 0)
    throw std::runtime_error("Y4mReader: malformed frame marker");
  Frame f(header_.width, header_.height);
  if (!read_plane(impl_->file, f.y) || !read_plane(impl_->file, f.u) ||
      !read_plane(impl_->file, f.v))
    throw std::runtime_error("Y4mReader: truncated frame");
  return f;
}

struct Y4mWriter::Impl {
  std::ofstream file;
};

Y4mWriter::Y4mWriter(const std::string& path, int width, int height,
                     int fps_num, int fps_den)
    : impl_(std::make_unique<Impl>()), width_(width), height_(height) {
  check_codec_dims(width, height);
  impl_->file.open(path, std::ios::binary);
  if (!impl_->file)
    throw std::runtime_error("Y4mWriter: cannot create " + path);
  char header[128];
  std::snprintf(header, sizeof(header),
                "YUV4MPEG2 W%d H%d F%d:%d Ip A1:1 C420\n", width, height,
                fps_num, fps_den);
  impl_->file << header;
}

Y4mWriter::~Y4mWriter() = default;

void Y4mWriter::write(const Frame& frame) {
  if (frame.width() != width_ || frame.height() != height_)
    throw std::invalid_argument("Y4mWriter: frame dimension mismatch");
  impl_->file << "FRAME\n";
  impl_->file.write(reinterpret_cast<const char*>(frame.y.pix.data()),
                    static_cast<std::streamsize>(frame.y.pix.size()));
  impl_->file.write(reinterpret_cast<const char*>(frame.u.pix.data()),
                    static_cast<std::streamsize>(frame.u.pix.size()));
  impl_->file.write(reinterpret_cast<const char*>(frame.v.pix.data()),
                    static_cast<std::streamsize>(frame.v.pix.size()));
  if (!impl_->file) throw std::runtime_error("Y4mWriter: write failed");
  ++count_;
}

Frame read_raw_yuv420(const std::string& path, int width, int height,
                      std::size_t index) {
  check_codec_dims(width, height);
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("read_raw_yuv420: cannot open " + path);
  Frame f(width, height);
  const std::size_t frame_bytes = f.total_bytes();
  file.seekg(static_cast<std::streamoff>(frame_bytes * index));
  if (!read_plane(file, f.y) || !read_plane(file, f.u) ||
      !read_plane(file, f.v))
    throw std::runtime_error("read_raw_yuv420: file too short for frame " +
                             std::to_string(index));
  return f;
}

std::size_t raw_yuv420_frame_count(const std::string& path, int width,
                                   int height) {
  check_codec_dims(width, height);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("raw_yuv420_frame_count: cannot stat " + path);
  const std::size_t frame_bytes =
      static_cast<std::size_t>(width) * height * 3 / 2;
  return static_cast<std::size_t>(size) / frame_bytes;
}

void append_raw_yuv420(const std::string& path, const Frame& frame) {
  std::ofstream file(path, std::ios::binary | std::ios::app);
  if (!file) throw std::runtime_error("append_raw_yuv420: cannot open " + path);
  file.write(reinterpret_cast<const char*>(frame.y.pix.data()),
             static_cast<std::streamsize>(frame.y.pix.size()));
  file.write(reinterpret_cast<const char*>(frame.u.pix.data()),
             static_cast<std::streamsize>(frame.u.pix.size()));
  file.write(reinterpret_cast<const char*>(frame.v.pix.data()),
             static_cast<std::streamsize>(frame.v.pix.size()));
  if (!file) throw std::runtime_error("append_raw_yuv420: write failed");
}

}  // namespace w4k::video

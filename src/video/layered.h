// Jigsaw-style layered video codec (Sec. 2.2).
//
// A frame is decomposed into a pixel-domain hierarchy:
//   layer 0: the mean of every 8x8 block (a 512x270 thumbnail for 4K);
//   layer 1: per 4x4 block, mean(4x4) - mean(parent 8x8);
//   layer 2: per 2x2 block, mean(2x2) - mean(parent 4x4);
//   layer 3: per pixel,     pixel     - mean(parent 2x2).
// Each of layers 1-3 has four *sublayers*: sublayer k holds the k-th child
// block of every parent (raster order: 0=top-left, 1=top-right,
// 2=bottom-left, 3=bottom-right). The decomposition is applied to all
// three YUV planes; a sublayer buffer is the concatenation Y|U|V.
//
// The decoder is progressive: any subset of sublayer bytes reconstructs a
// frame — missing differences are treated as zero, so the affected region
// falls back to the coarser layer's mean. This is the property that lets
// the multicast scheduler trade bytes for quality continuously.
//
// Differences are quantized to 8 bits as (diff + 128) clamped to [0, 255];
// quantization noise is at most 1 LSB per stage except in the rare
// saturation case, so full reception is visually lossless.
#pragma once

#include "video/frame.h"

#include <array>
#include <cstdint>
#include <vector>

namespace w4k::video {

inline constexpr int kNumLayers = 4;
/// Layers 1..3 have 4 sublayers each; layer 0 has a single sublayer.
inline constexpr int kSublayersPerDiffLayer = 4;

/// Number of sublayers in the given layer (1 for layer 0, else 4).
constexpr int sublayer_count(int layer) {
  return layer == 0 ? 1 : kSublayersPerDiffLayer;
}

/// Byte size of one sublayer buffer of `layer` for a frame of the given
/// luma dimensions (includes all three planes).
std::size_t sublayer_bytes(int layer, int width, int height);

/// Total byte size of a layer (all its sublayers).
std::size_t layer_bytes(int layer, int width, int height);

/// Fully encoded frame: 1 + 4 + 4 + 4 = 13 sublayer buffers.
struct EncodedFrame {
  int width = 0;
  int height = 0;
  /// layers[l][k] is sublayer k of layer l. layers[0] has one entry.
  std::array<std::vector<std::vector<std::uint8_t>>, kNumLayers> layers;

  std::size_t total_bytes() const;
};

/// A contiguous received span of a sublayer buffer.
struct Segment {
  std::size_t offset = 0;
  std::vector<std::uint8_t> bytes;
};

/// The receiver's view of one sublayer: whatever byte ranges arrived.
struct PartialSublayer {
  std::vector<Segment> segments;
};

/// The receiver's view of a whole frame, indexed like EncodedFrame.
struct PartialFrame {
  int width = 0;
  int height = 0;
  std::array<std::vector<PartialSublayer>, kNumLayers> layers;

  /// Empty partial frame with the correct sublayer structure.
  static PartialFrame empty(int width, int height);

  /// Marks an entire encoded frame as received (for lossless round-trip
  /// tests and for computing the per-layer SSIM features).
  static PartialFrame full(const EncodedFrame& enc);

  /// Everything up to and including `layer` fully received, nothing above.
  static PartialFrame up_to_layer(const EncodedFrame& enc, int layer);

  /// Bytes received in the given layer across sublayers.
  std::size_t layer_received(int layer) const;
};

/// Encodes a frame into the full layer hierarchy.
/// Throws std::invalid_argument if dimensions are not multiples of 16.
EncodedFrame encode(const Frame& frame);

/// Reusable scratch for the progressive decoder: owns the 13 assembled
/// sublayer buffers plus the intermediate mean planes, all of which keep
/// their capacity across frames. Usage per reconstruction:
///   ws.begin(w, h);                 // buffers reset to "no information"
///   ws.write(l, k, offset, p, n);   // splice received byte ranges in
///   ws.finish(frame);               // decode into a reusable Frame
/// One workspace serves any number of frames of any (bounded) size; the
/// steady state performs zero heap allocations.
class ReconstructWorkspace {
 public:
  /// Resets every sublayer buffer to the default byte 128 (mid-gray for
  /// layer 0, zero difference for layers 1-3) at the given dimensions.
  void begin(int width, int height);

  /// Copies `n` bytes into sublayer (layer, k) at byte `offset`, clipped
  /// to the buffer like reconstruct() clips malformed Segments.
  void write(int layer, int k, std::size_t offset, const std::uint8_t* data,
             std::size_t n);

  /// Decodes the assembled buffers into `out` (planes resized in place,
  /// capacity reused). Must follow a begin().
  void finish(Frame& out);

 private:
  int width_ = 0;
  int height_ = 0;
  std::array<std::vector<std::vector<std::uint8_t>>, kNumLayers> bufs_;
  std::vector<int> m4_, m2_;  // decoder mean-plane scratch
};

/// Reconstructs a frame from whatever arrived. Missing layer-0 blocks
/// render as mid-gray (the blank frame); missing difference bytes fall
/// back to the coarser layer.
Frame reconstruct(const PartialFrame& partial);

/// Allocation-free variant: assembles `partial` into the workspace and
/// decodes into `out`. Bit-identical to reconstruct().
void reconstruct_into(const PartialFrame& partial, ReconstructWorkspace& ws,
                      Frame& out);

/// Convenience: decode from a complete EncodedFrame.
Frame reconstruct_full(const EncodedFrame& enc);

}  // namespace w4k::video

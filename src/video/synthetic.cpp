#include "video/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::video {
namespace {

/// Stateless per-pixel hash noise in [-1, 1] (fine film-grain texture).
double hash_noise(std::uint64_t seed, int x, int y, int t) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4FULL;
  h ^= static_cast<std::uint64_t>(t) * 0x165667B19E3779F9ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

int to_byte(double v) {
  return std::clamp(static_cast<int>(std::lround(v)), 0, 255);
}

}  // namespace

double SyntheticVideo::Lattice::sample(double x, double y) const {
  const double gx = x / cell;
  const double gy = y / cell;
  // Torus wrap keeps scrolling seamless over arbitrarily long clips.
  const auto wrap = [this](int i) {
    const int m = i % size;
    return m < 0 ? m + size : m;
  };
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const double fx = gx - std::floor(gx);
  const double fy = gy - std::floor(gy);
  // Smoothstep for C1 continuity (avoids visible lattice edges).
  const double sx = fx * fx * (3.0 - 2.0 * fx);
  const double sy = fy * fy * (3.0 - 2.0 * fy);
  const double v00 = values[static_cast<std::size_t>(wrap(y0)) * size + wrap(x0)];
  const double v10 = values[static_cast<std::size_t>(wrap(y0)) * size + wrap(x0 + 1)];
  const double v01 = values[static_cast<std::size_t>(wrap(y0 + 1)) * size + wrap(x0)];
  const double v11 = values[static_cast<std::size_t>(wrap(y0 + 1)) * size + wrap(x0 + 1)];
  const double a = v00 + (v10 - v00) * sx;
  const double b = v01 + (v11 - v01) * sx;
  return (a + (b - a) * sy) * amplitude;
}

SyntheticVideo::SyntheticVideo(const VideoSpec& spec) : spec_(spec) {
  if (spec.width <= 0 || spec.height <= 0 || spec.width % 16 != 0 ||
      spec.height % 16 != 0)
    throw std::invalid_argument(
        "SyntheticVideo: dimensions must be positive multiples of 16");
  Rng rng(spec.seed);

  const bool high = spec.richness == Richness::kHigh;
  // Two kinds of octaves. Scene structure scales with the frame (cells as
  // width fractions) so every resolution renders the same composition.
  // Texture detail lives at *absolute* pixel scales relative to the
  // codec's 8x8/4x4/2x2 blocks, so the layered quality curve — how much
  // SSIM each layer contributes — is resolution-invariant and matches
  // what the paper's 4K clips see. LR clips: smooth gradients only.
  struct OctaveSpec {
    double cell_px, amplitude;
  };
  std::vector<OctaveSpec> specs;
  specs.push_back({0.50 * spec.width, high ? 40.0 : 28.0});
  if (high) {
    specs.push_back({0.09 * spec.width, 24.0});
    specs.push_back({24.0, 12.0});
    specs.push_back({10.0, 7.0});
  } else {
    specs.push_back({0.19 * spec.width, 6.0});
  }
  for (const auto& os : specs) {
    const double cell = os.cell_px;
    if (cell < 2.0) continue;  // below the pixel grid: invisible detail
    Lattice lat;
    lat.size = 64;
    lat.cell = cell;
    lat.amplitude = os.amplitude;
    lat.values.resize(static_cast<std::size_t>(lat.size) * lat.size);
    for (auto& v : lat.values) v = rng.uniform(-1.0, 1.0);
    octaves_.push_back(std::move(lat));
  }

  const int num_objects = high ? 6 : 3;
  for (int i = 0; i < num_objects; ++i) {
    Object o;
    o.x = rng.uniform(0.0, spec.width);
    o.y = rng.uniform(0.0, spec.height);
    const double speed = spec.motion * rng.uniform(0.5, 1.5);
    const double dir = rng.uniform(0.0, 2.0 * 3.14159265358979);
    o.vx = speed * std::cos(dir);
    o.vy = speed * std::sin(dir);
    o.rx = rng.uniform(spec.width * 0.04, spec.width * 0.12);
    o.ry = rng.uniform(spec.height * 0.05, spec.height * 0.15);
    o.brightness = static_cast<int>(rng.range(-60, 60));
    o.cb = static_cast<int>(rng.range(-50, 50));
    o.cr = static_cast<int>(rng.range(-50, 50));
    objects_.push_back(o);
  }

  noise_amplitude_ = high ? 3 : 1;
  pixel_noise_seed_ = rng.next();
}

Frame SyntheticVideo::frame(int t) const {
  if (t < 0 || t >= spec_.frames)
    throw std::out_of_range("SyntheticVideo::frame: index out of range");
  Frame f(spec_.width, spec_.height);

  const double shift = spec_.motion * t;
  const int w = spec_.width;
  const int h = spec_.height;

  // Luma: scrolling noise field + grain.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double v = 128.0;
      for (const auto& oct : octaves_) v += oct.sample(x + shift, y + shift * 0.35);
      v += noise_amplitude_ * hash_noise(pixel_noise_seed_, x, y, t);
      f.y.at(x, y) = static_cast<std::uint8_t>(to_byte(v));
    }
  }
  // Chroma: slow large-scale tint from the first octave, half resolution.
  const auto& broad = octaves_.front();
  for (int y = 0; y < h / 2; ++y) {
    for (int x = 0; x < w / 2; ++x) {
      const double n = broad.sample(x * 2 - shift * 0.5, y * 2 + shift * 0.2);
      f.u.at(x, y) = static_cast<std::uint8_t>(to_byte(128.0 + n * 0.6));
      f.v.at(x, y) = static_cast<std::uint8_t>(to_byte(128.0 - n * 0.4));
    }
  }

  // Moving elliptic objects (toroidal wrap) drawn over all planes.
  for (const auto& o : objects_) {
    double cx = std::fmod(o.x + o.vx * t, static_cast<double>(w));
    double cy = std::fmod(o.y + o.vy * t, static_cast<double>(h));
    if (cx < 0) cx += w;
    if (cy < 0) cy += h;
    const int x0 = std::max(0, static_cast<int>(cx - o.rx));
    const int x1 = std::min(w - 1, static_cast<int>(cx + o.rx));
    const int y0 = std::max(0, static_cast<int>(cy - o.ry));
    const int y1 = std::min(h - 1, static_cast<int>(cy + o.ry));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const double dx = (x - cx) / o.rx;
        const double dy = (y - cy) / o.ry;
        const double r2 = dx * dx + dy * dy;
        if (r2 > 1.0) continue;
        // Soft falloff toward the rim keeps edges codec-friendly.
        const double wgt = 1.0 - r2;
        f.y.at(x, y) = static_cast<std::uint8_t>(
            to_byte(f.y.at(x, y) + o.brightness * wgt));
        if (x % 2 == 0 && y % 2 == 0) {
          f.u.at(x / 2, y / 2) = static_cast<std::uint8_t>(
              to_byte(f.u.at(x / 2, y / 2) + o.cb * wgt));
          f.v.at(x / 2, y / 2) = static_cast<std::uint8_t>(
              to_byte(f.v.at(x / 2, y / 2) + o.cr * wgt));
        }
      }
    }
  }
  return f;
}

std::vector<VideoSpec> standard_videos(int width, int height, int frames) {
  std::vector<VideoSpec> v;
  const struct {
    const char* name;
    Richness rich;
    double motion;
    std::uint64_t seed;
  } defs[] = {
      {"hr_crowd", Richness::kHigh, 3.0, 11},
      {"hr_foliage", Richness::kHigh, 1.5, 22},
      {"hr_sports", Richness::kHigh, 5.0, 33},
      {"lr_studio", Richness::kLow, 0.5, 44},
      {"lr_drawing", Richness::kLow, 1.0, 55},
      {"lr_sunset", Richness::kLow, 2.0, 66},
  };
  for (const auto& d : defs) {
    VideoSpec s;
    s.name = d.name;
    s.width = width;
    s.height = height;
    s.frames = frames;
    s.richness = d.rich;
    s.motion = d.motion;
    s.seed = d.seed;
    v.push_back(std::move(s));
  }
  return v;
}

double luma_variance(const Frame& f) {
  double sum = 0.0;
  for (auto p : f.y.pix) sum += p;
  const double m = sum / static_cast<double>(f.y.pix.size());
  double sq = 0.0;
  for (auto p : f.y.pix) sq += (p - m) * (p - m);
  return sq / static_cast<double>(f.y.pix.size());
}

}  // namespace w4k::video

// Raw video frames in planar YUV420 — the input/output format of the
// layered codec, matching the paper's uncompressed Derf/Xiph sources.
#pragma once

#include <cstdint>
#include <vector>

namespace w4k::video {

/// One image plane of 8-bit samples.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pix;

  Plane() = default;
  Plane(int w, int h, std::uint8_t fill = 0)
      : width(w), height(h),
        pix(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), fill) {}

  std::uint8_t at(int x, int y) const {
    return pix[static_cast<std::size_t>(y) * width + x];
  }
  std::uint8_t& at(int x, int y) {
    return pix[static_cast<std::size_t>(y) * width + x];
  }
  std::size_t size() const { return pix.size(); }
};

/// Planar YUV420 frame. Luma is width x height; chroma planes are
/// half-resolution in both dimensions. The layered codec requires width
/// and height divisible by 16 (so chroma is divisible by 8).
struct Frame {
  Plane y;
  Plane u;
  Plane v;

  Frame() = default;
  /// Allocates a frame of the given luma dimensions.
  /// Throws std::invalid_argument unless both are positive multiples of 16.
  Frame(int width, int height);

  int width() const { return y.width; }
  int height() const { return y.height; }
  /// Total bytes across all three planes.
  std::size_t total_bytes() const { return y.size() + u.size() + v.size(); }

  /// Mid-gray frame (what a receiver renders with zero data) — the paper's
  /// "blank frame" reference used as a quality-model feature.
  static Frame blank(int width, int height);
};

/// The paper's 4K dimensions (Derf collection, 4096x2160).
inline constexpr int k4kWidth = 4096;
inline constexpr int k4kHeight = 2160;

}  // namespace w4k::video

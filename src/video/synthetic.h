// Procedural uncompressed video source.
//
// Substitutes the paper's Derf/Xiph 4K collection (3 high-richness + 3
// low-richness clips). Richness in the paper is the variance of the luma
// plane; the generator controls it directly via texture amplitude and
// octave count, and provides deterministic motion (scene scroll plus
// independently moving elliptic objects) so consecutive frames are
// temporally coherent like real video.
#pragma once

#include "common/rng.h"
#include "video/frame.h"

#include <cstdint>
#include <string>
#include <vector>

namespace w4k::video {

enum class Richness { kLow, kHigh };

/// Parameters of one synthetic clip.
struct VideoSpec {
  std::string name;
  int width = 1024;
  int height = 544;
  int frames = 60;
  Richness richness = Richness::kHigh;
  /// Scene scroll speed in pixels/frame (the paper's clips have "various
  /// motion").
  double motion = 2.0;
  std::uint64_t seed = 1;
};

/// Deterministic procedural clip; frames are generated on demand.
class SyntheticVideo {
 public:
  explicit SyntheticVideo(const VideoSpec& spec);

  const VideoSpec& spec() const { return spec_; }
  int frame_count() const { return spec_.frames; }

  /// Renders frame t (0-based). Throws std::out_of_range past the end.
  Frame frame(int t) const;

 private:
  struct Object {
    double x, y;        // center at t = 0, pixels
    double vx, vy;      // velocity, pixels/frame
    double rx, ry;      // radii
    int brightness;     // luma offset
    int cb, cr;         // chroma of the object
  };

  VideoSpec spec_;
  // Value-noise lattice (torus-wrapped) per octave.
  struct Lattice {
    int size = 0;
    double cell = 1.0;
    double amplitude = 0.0;
    std::vector<double> values;
    double sample(double x, double y) const;
  };
  std::vector<Lattice> octaves_;
  std::vector<Object> objects_;
  int noise_amplitude_ = 0;
  std::uint64_t pixel_noise_seed_ = 0;
};

/// The six standard clips used for quality-model training and evaluation
/// (3 HR + 3 LR, mirroring Sec. 2.3). `width`/`height` default to a
/// compute-friendly 1024x544; pass 4096x2160 for full 4K.
std::vector<VideoSpec> standard_videos(int width = 1024, int height = 544,
                                       int frames = 60);

/// Population variance of the luma plane — the paper's richness measure.
double luma_variance(const Frame& f);

}  // namespace w4k::video

#include "video/frame.h"

#include <stdexcept>

namespace w4k::video {

Frame::Frame(int width, int height) {
  if (width <= 0 || height <= 0 || width % 16 != 0 || height % 16 != 0)
    throw std::invalid_argument(
        "Frame: dimensions must be positive multiples of 16");
  y = Plane(width, height);
  u = Plane(width / 2, height / 2);
  v = Plane(width / 2, height / 2);
}

Frame Frame::blank(int width, int height) {
  Frame f(width, height);
  // Mid-gray in YUV: Y=128 (not 0 — black would bias the SSIM feature),
  // chroma neutral at 128.
  for (auto& p : f.y.pix) p = 128;
  for (auto& p : f.u.pix) p = 128;
  for (auto& p : f.v.pix) p = 128;
  return f;
}

}  // namespace w4k::video

// Uncompressed video file I/O.
//
// Lets the library run on real footage (e.g. the paper's Derf/Xiph 4K
// clips) instead of the synthetic generator:
//   * Y4M (YUV4MPEG2): the standard container Derf clips ship in, with a
//     plain-text stream header and per-frame FRAME markers; only the
//     C420 family is supported (the codec is YUV420).
//   * raw .yuv: headerless concatenated planar frames; dimensions come
//     from the caller.
#pragma once

#include "video/frame.h"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace w4k::video {

/// Parsed Y4M stream parameters.
struct Y4mHeader {
  int width = 0;
  int height = 0;
  int fps_num = 30;
  int fps_den = 1;
  std::string colorspace = "420";  // from the C tag, e.g. "420mpeg2"
};

/// Streaming Y4M reader. Frames are decoded on demand; the file is kept
/// open. Dimensions must be positive multiples of 16 (the layered codec's
/// requirement) — reject others early rather than failing mid-pipeline.
class Y4mReader {
 public:
  /// Opens and parses the stream header.
  /// Throws std::runtime_error on I/O errors or unsupported formats.
  explicit Y4mReader(const std::string& path);
  ~Y4mReader();

  Y4mReader(const Y4mReader&) = delete;
  Y4mReader& operator=(const Y4mReader&) = delete;

  const Y4mHeader& header() const { return header_; }

  /// Reads the next frame; std::nullopt at end of stream.
  /// Throws std::runtime_error on a truncated or malformed frame.
  std::optional<Frame> next();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Y4mHeader header_;
};

/// Writes frames as a Y4M stream (C420, progressive).
class Y4mWriter {
 public:
  /// Throws std::runtime_error if the file cannot be created.
  Y4mWriter(const std::string& path, int width, int height, int fps_num = 30,
            int fps_den = 1);
  ~Y4mWriter();

  Y4mWriter(const Y4mWriter&) = delete;
  Y4mWriter& operator=(const Y4mWriter&) = delete;

  /// Appends one frame. Throws std::invalid_argument on dimension
  /// mismatch, std::runtime_error on write failure.
  void write(const Frame& frame);

  std::size_t frames_written() const { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int width_;
  int height_;
  std::size_t count_ = 0;
};

/// Reads frame `index` from a headerless planar YUV420 file.
/// Throws std::runtime_error when the file is too short.
Frame read_raw_yuv420(const std::string& path, int width, int height,
                      std::size_t index = 0);

/// Number of whole YUV420 frames in a raw file of the given dimensions.
std::size_t raw_yuv420_frame_count(const std::string& path, int width,
                                   int height);

/// Appends a frame to a raw planar YUV420 file (creates it if absent).
void append_raw_yuv420(const std::string& path, const Frame& frame);

}  // namespace w4k::video

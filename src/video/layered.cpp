#include "video/layered.h"

#include <algorithm>
#include <stdexcept>

namespace w4k::video {
namespace {

/// Per-plane element count of one sublayer of `layer`.
std::size_t plane_elems(int layer, int w, int h) {
  switch (layer) {
    case 0: return static_cast<std::size_t>(w / 8) * (h / 8);
    case 1: return static_cast<std::size_t>(w / 8) * (h / 8);
    case 2: return static_cast<std::size_t>(w / 4) * (h / 4);
    case 3: return static_cast<std::size_t>(w / 2) * (h / 2);
    default: throw std::invalid_argument("bad layer index");
  }
}

int clamp_byte(int v) { return std::clamp(v, 0, 255); }

/// Quantizes a difference to the byte representation (d + 128, clamped).
std::uint8_t quantize_diff(int d) {
  return static_cast<std::uint8_t>(std::clamp(d + 128, 0, 255));
}

/// Recovers a difference from its byte representation.
int dequantize_diff(std::uint8_t b) { return static_cast<int>(b) - 128; }

/// Rounded integer mean of the s x s block at (bx*s, by*s).
int block_mean(const Plane& p, int bx, int by, int s) {
  int sum = 0;
  const int x0 = bx * s;
  const int y0 = by * s;
  for (int dy = 0; dy < s; ++dy)
    for (int dx = 0; dx < s; ++dx) sum += p.at(x0 + dx, y0 + dy);
  return (sum + s * s / 2) / (s * s);
}

/// Encodes one plane, writing into the plane's slice of each sublayer
/// buffer. `base[l][k]` is the byte offset of this plane inside sublayer
/// buffer (l, k).
struct PlaneEncoder {
  const Plane& plane;
  EncodedFrame& out;
  const std::array<std::array<std::size_t, 4>, kNumLayers>& base;

  void run() const {
    const int w8 = plane.width / 8;
    const int h8 = plane.height / 8;
    // Reconstructed means of the previous stage, kept so differences chain
    // against what the decoder will actually have (no drift).
    std::vector<int> m4rec(static_cast<std::size_t>(w8 * 2) * (h8 * 2));
    std::vector<int> m2rec(static_cast<std::size_t>(w8 * 4) * (h8 * 4));

    // Layer 0: 8x8 means.
    for (int by = 0; by < h8; ++by) {
      for (int bx = 0; bx < w8; ++bx) {
        const int m8 = block_mean(plane, bx, by, 8);
        out.layers[0][0][base[0][0] + static_cast<std::size_t>(by) * w8 + bx] =
            static_cast<std::uint8_t>(m8);
      }
    }
    // Layer 1: 4x4 means relative to parent 8x8.
    const int w4 = w8 * 2;
    for (int by = 0; by < h8 * 2; ++by) {
      for (int bx = 0; bx < w4; ++bx) {
        const int parent =
            out.layers[0][0][base[0][0] +
                             static_cast<std::size_t>(by / 2) * w8 + bx / 2];
        const int m4 = block_mean(plane, bx, by, 4);
        const int d = std::clamp(m4 - parent, -128, 127);
        const int k = (by % 2) * 2 + (bx % 2);
        out.layers[1][k][base[1][k] +
                         static_cast<std::size_t>(by / 2) * w8 + bx / 2] =
            quantize_diff(d);
        m4rec[static_cast<std::size_t>(by) * w4 + bx] = parent + d;
      }
    }
    // Layer 2: 2x2 means relative to parent 4x4.
    const int w2 = w8 * 4;
    for (int by = 0; by < h8 * 4; ++by) {
      for (int bx = 0; bx < w2; ++bx) {
        const int parent = m4rec[static_cast<std::size_t>(by / 2) * w4 + bx / 2];
        const int m2 = block_mean(plane, bx, by, 2);
        const int d = std::clamp(m2 - parent, -128, 127);
        const int k = (by % 2) * 2 + (bx % 2);
        out.layers[2][k][base[2][k] +
                         static_cast<std::size_t>(by / 2) * w4 + bx / 2] =
            quantize_diff(d);
        m2rec[static_cast<std::size_t>(by) * w2 + bx] = parent + d;
      }
    }
    // Layer 3: pixels relative to parent 2x2.
    const int w1 = plane.width;
    for (int y = 0; y < plane.height; ++y) {
      for (int x = 0; x < w1; ++x) {
        const int parent = m2rec[static_cast<std::size_t>(y / 2) * w2 + x / 2];
        const int d = std::clamp(plane.at(x, y) - parent, -128, 127);
        const int k = (y % 2) * 2 + (x % 2);
        out.layers[3][k][base[3][k] +
                         static_cast<std::size_t>(y / 2) * w2 + x / 2] =
            quantize_diff(d);
      }
    }
  }
};

/// Reconstructs one plane from assembled sublayer buffers (missing bytes
/// already defaulted to "no information": 128).
struct PlaneDecoder {
  Plane& plane;
  const std::array<std::vector<std::vector<std::uint8_t>>, kNumLayers>& bufs;
  const std::array<std::array<std::size_t, 4>, kNumLayers>& base;
  // Caller-provided mean-plane scratch (every element is written before it
  // is read, so resize without zeroing is enough).
  std::vector<int>& m4;
  std::vector<int>& m2;

  void run() const {
    const int w8 = plane.width / 8;
    const int h8 = plane.height / 8;
    const int w4 = w8 * 2;
    const int w2 = w8 * 4;
    m4.resize(static_cast<std::size_t>(w4) * (h8 * 2));
    m2.resize(static_cast<std::size_t>(w2) * (h8 * 4));

    for (int by = 0; by < h8 * 2; ++by) {
      for (int bx = 0; bx < w4; ++bx) {
        const int parent =
            bufs[0][0][base[0][0] + static_cast<std::size_t>(by / 2) * w8 +
                       bx / 2];
        const int k = (by % 2) * 2 + (bx % 2);
        const int d = dequantize_diff(
            bufs[1][k][base[1][k] + static_cast<std::size_t>(by / 2) * w8 +
                       bx / 2]);
        m4[static_cast<std::size_t>(by) * w4 + bx] = parent + d;
      }
    }
    for (int by = 0; by < h8 * 4; ++by) {
      for (int bx = 0; bx < w2; ++bx) {
        const int parent = m4[static_cast<std::size_t>(by / 2) * w4 + bx / 2];
        const int k = (by % 2) * 2 + (bx % 2);
        const int d = dequantize_diff(
            bufs[2][k][base[2][k] + static_cast<std::size_t>(by / 2) * w4 +
                       bx / 2]);
        m2[static_cast<std::size_t>(by) * w2 + bx] = parent + d;
      }
    }
    for (int y = 0; y < plane.height; ++y) {
      for (int x = 0; x < plane.width; ++x) {
        const int parent = m2[static_cast<std::size_t>(y / 2) * w2 + x / 2];
        const int k = (y % 2) * 2 + (x % 2);
        const int d = dequantize_diff(
            bufs[3][k][base[3][k] + static_cast<std::size_t>(y / 2) * w2 +
                       x / 2]);
        plane.at(x, y) = static_cast<std::uint8_t>(clamp_byte(parent + d));
      }
    }
  }
};

/// Byte offsets of the Y/U/V plane slices inside each sublayer buffer.
struct PlaneBases {
  std::array<std::array<std::size_t, 4>, kNumLayers> y{};
  std::array<std::array<std::size_t, 4>, kNumLayers> u{};
  std::array<std::array<std::size_t, 4>, kNumLayers> v{};
};

PlaneBases plane_bases(int width, int height) {
  PlaneBases b;
  for (int l = 0; l < kNumLayers; ++l) {
    const std::size_t ye = plane_elems(l, width, height);
    const std::size_t ce = plane_elems(l, width / 2, height / 2);
    for (int k = 0; k < sublayer_count(l); ++k) {
      b.y[l][static_cast<std::size_t>(k)] = 0;
      b.u[l][static_cast<std::size_t>(k)] = ye;
      b.v[l][static_cast<std::size_t>(k)] = ye + ce;
    }
  }
  return b;
}

void check_dims(int width, int height) {
  if (width <= 0 || height <= 0 || width % 16 != 0 || height % 16 != 0)
    throw std::invalid_argument(
        "layered codec: dimensions must be positive multiples of 16");
}

}  // namespace

std::size_t sublayer_bytes(int layer, int width, int height) {
  check_dims(width, height);
  return plane_elems(layer, width, height) +
         2 * plane_elems(layer, width / 2, height / 2);
}

std::size_t layer_bytes(int layer, int width, int height) {
  return sublayer_bytes(layer, width, height) *
         static_cast<std::size_t>(sublayer_count(layer));
}

std::size_t EncodedFrame::total_bytes() const {
  std::size_t n = 0;
  for (const auto& layer : layers)
    for (const auto& sub : layer) n += sub.size();
  return n;
}

PartialFrame PartialFrame::empty(int width, int height) {
  check_dims(width, height);
  PartialFrame p;
  p.width = width;
  p.height = height;
  for (int l = 0; l < kNumLayers; ++l)
    p.layers[l].resize(static_cast<std::size_t>(sublayer_count(l)));
  return p;
}

PartialFrame PartialFrame::full(const EncodedFrame& enc) {
  PartialFrame p = empty(enc.width, enc.height);
  for (int l = 0; l < kNumLayers; ++l)
    for (int k = 0; k < sublayer_count(l); ++k)
      p.layers[l][static_cast<std::size_t>(k)].segments.push_back(
          Segment{0, enc.layers[l][static_cast<std::size_t>(k)]});
  return p;
}

PartialFrame PartialFrame::up_to_layer(const EncodedFrame& enc, int layer) {
  PartialFrame p = empty(enc.width, enc.height);
  for (int l = 0; l <= layer && l < kNumLayers; ++l)
    for (int k = 0; k < sublayer_count(l); ++k)
      p.layers[l][static_cast<std::size_t>(k)].segments.push_back(
          Segment{0, enc.layers[l][static_cast<std::size_t>(k)]});
  return p;
}

std::size_t PartialFrame::layer_received(int layer) const {
  std::size_t n = 0;
  for (const auto& sub : layers[layer])
    for (const auto& seg : sub.segments) n += seg.bytes.size();
  return n;
}

EncodedFrame encode(const Frame& frame) {
  check_dims(frame.width(), frame.height());
  EncodedFrame out;
  out.width = frame.width();
  out.height = frame.height();
  for (int l = 0; l < kNumLayers; ++l) {
    out.layers[l].assign(
        static_cast<std::size_t>(sublayer_count(l)),
        std::vector<std::uint8_t>(
            sublayer_bytes(l, frame.width(), frame.height())));
  }
  const PlaneBases bases = plane_bases(frame.width(), frame.height());
  PlaneEncoder{frame.y, out, bases.y}.run();
  PlaneEncoder{frame.u, out, bases.u}.run();
  PlaneEncoder{frame.v, out, bases.v}.run();
  return out;
}

void ReconstructWorkspace::begin(int width, int height) {
  check_dims(width, height);
  width_ = width;
  height_ = height;
  // Reset to the "no information" default: 128 decodes as mid-gray for
  // layer 0 and as a zero difference for layers 1-3. assign() reuses each
  // buffer's capacity.
  for (int l = 0; l < kNumLayers; ++l) {
    const std::size_t sz = sublayer_bytes(l, width, height);
    bufs_[l].resize(static_cast<std::size_t>(sublayer_count(l)));
    for (auto& sub : bufs_[l]) sub.assign(sz, 128);
  }
}

void ReconstructWorkspace::write(int layer, int k, std::size_t offset,
                                 const std::uint8_t* data, std::size_t n) {
  auto& buf = bufs_[layer][static_cast<std::size_t>(k)];
  if (offset > buf.size()) return;  // malformed; ignore
  n = std::min(n, buf.size() - offset);
  std::copy(data, data + n,
            buf.begin() + static_cast<std::ptrdiff_t>(offset));
}

namespace {

/// In-place plane (re)size; element values are left unspecified, which is
/// fine for the decoder (it writes every pixel).
void resize_plane(Plane& p, int w, int h) {
  p.width = w;
  p.height = h;
  p.pix.resize(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
}

}  // namespace

void ReconstructWorkspace::finish(Frame& out) {
  resize_plane(out.y, width_, height_);
  resize_plane(out.u, width_ / 2, height_ / 2);
  resize_plane(out.v, width_ / 2, height_ / 2);
  const PlaneBases bases = plane_bases(width_, height_);
  PlaneDecoder{out.y, bufs_, bases.y, m4_, m2_}.run();
  PlaneDecoder{out.u, bufs_, bases.u, m4_, m2_}.run();
  PlaneDecoder{out.v, bufs_, bases.v, m4_, m2_}.run();
}

void reconstruct_into(const PartialFrame& partial, ReconstructWorkspace& ws,
                      Frame& out) {
  ws.begin(partial.width, partial.height);
  for (int l = 0; l < kNumLayers; ++l) {
    for (int k = 0; k < sublayer_count(l); ++k) {
      for (const Segment& seg :
           partial.layers[l][static_cast<std::size_t>(k)].segments) {
        ws.write(l, k, seg.offset, seg.bytes.data(), seg.bytes.size());
      }
    }
  }
  ws.finish(out);
}

Frame reconstruct(const PartialFrame& partial) {
  ReconstructWorkspace ws;
  Frame out;
  reconstruct_into(partial, ws, out);
  return out;
}

Frame reconstruct_full(const EncodedFrame& enc) {
  return reconstruct(PartialFrame::full(enc));
}

}  // namespace w4k::video

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace w4k {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  for (double v : values)
    if (std::isnan(v))
      throw std::invalid_argument("summarize: NaN in input series");
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  s.q1 = quantile_sorted(v, 0.25);
  s.median = quantile_sorted(v, 0.5);
  s.q3 = quantile_sorted(v, 0.75);
  s.mean = mean(v);
  s.count = v.size();
  return s;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double harmonic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double inv = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    inv += 1.0 / v;
  }
  return static_cast<double>(values.size()) / inv;
}

std::string to_string(const Summary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.4f [min=%.4f q1=%.4f med=%.4f q3=%.4f max=%.4f n=%zu]",
                s.mean, s.min, s.q1, s.median, s.q3, s.max, s.count);
  return buf;
}

void RunningStats::add(double x) {
  if (std::isnan(x))
    throw std::invalid_argument("RunningStats::add: NaN sample");
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace w4k

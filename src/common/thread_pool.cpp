#include "common/thread_pool.h"

#include "obs/span.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace w4k {
namespace {

// True while the current thread is executing a parallel_for chunk; nested
// parallel_for calls detect this and run inline instead of re-entering the
// pool (which would deadlock the waiting outer call).
thread_local bool t_in_pool_body = false;

std::size_t default_pool_size() {
  if (const char* env = std::getenv("W4K_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

// One parallel_for invocation. Each job owns its chunk cursor and
// completion state, so a worker that wakes late and drains an
// already-finished job can never touch a newer job's body or counters.
//
// Jobs are pooled in Impl::jobs and recycled: a job may be re-acquired
// only when it is not in use by a caller AND no worker is inside run()
// (`entrants` == 0, checked under Impl::mu — the same mutex a worker
// holds while registering as an entrant). A straggler worker that grabs a
// retired-but-not-yet-recycled job simply observes an exhausted chunk
// cursor and leaves without writing anything.
struct ThreadPool::Impl {
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t n_chunks = 0;
    BodyRef body;
    std::atomic<std::size_t> next_chunk{0};
    /// Workers currently between registering for this job and leaving
    /// run(). Incremented under Impl::mu, decremented under `mu` below.
    std::atomic<int> entrants{0};
    bool in_use = false;  ///< held by a parallel_for caller (under Impl::mu)

    std::mutex mu;
    std::condition_variable cv_done;
    std::size_t chunks_done = 0;
    std::exception_ptr first_error;

    void run() {
      std::size_t completed = 0;
      for (;;) {
        const std::size_t c =
            next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= n_chunks) break;
        const std::size_t b = begin + c * grain;
        const std::size_t e = std::min(end, b + grain);
        t_in_pool_body = true;
        try {
          body.fn(body.ctx, b, e);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!first_error) first_error = std::current_exception();
        }
        t_in_pool_body = false;
        ++completed;
      }
      if (completed > 0) {
        std::lock_guard<std::mutex> lock(mu);
        chunks_done += completed;
        if (chunks_done == n_chunks) cv_done.notify_all();
      }
    }
  };

  std::mutex mu;
  std::condition_variable cv_work;
  std::uint64_t job_generation = 0;
  Job* current = nullptr;
  bool shutting_down = false;
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<std::thread> workers;

  /// Finds (or creates) a recyclable job. Caller must hold `mu`.
  Job* acquire_job() {
    for (auto& j : jobs) {
      if (!j->in_use && j->entrants.load(std::memory_order_acquire) == 0) {
        j->in_use = true;
        return j.get();
      }
    }
    jobs.push_back(std::make_unique<Job>());
    jobs.back()->in_use = true;
    return jobs.back().get();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock,
                     [&] { return shutting_down || job_generation != seen; });
        if (shutting_down) return;
        seen = job_generation;
        job = current;
        // Register as inside the job while still holding Impl::mu: from
        // here until the decrement below, acquire_job will not recycle it.
        if (job != nullptr)
          job->entrants.fetch_add(1, std::memory_order_acq_rel);
      }
      if (job != nullptr) {
        job->run();
        {
          std::lock_guard<std::mutex> lock(job->mu);
          job->entrants.fetch_sub(1, std::memory_order_acq_rel);
          job->cv_done.notify_all();
        }
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(std::make_unique<Impl>()),
      size_(threads > 0 ? threads : default_pool_size()) {
  impl_->workers.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i)
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for_impl(std::size_t begin, std::size_t end,
                                   std::size_t grain, BodyRef body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n_chunks = (end - begin + grain - 1) / grain;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_calls = reg.counter("pool.parallel_for");
    static obs::Counter& c_chunks = reg.counter("pool.chunks");
    c_calls.add(1);
    c_chunks.add(n_chunks);
  }
  // Serial fast paths: single-context pool, a one-chunk range, or a nested
  // call from inside a worker. Chunk boundaries are identical to the
  // parallel path, so results are too.
  if (size_ == 1 || n_chunks == 1 || t_in_pool_body) {
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t b = begin + c * grain;
      body.fn(body.ctx, b, std::min(end, b + grain));
    }
    return;
  }

  Impl::Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    job = impl_->acquire_job();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->n_chunks = n_chunks;
    job->body = body;
    job->next_chunk.store(0, std::memory_order_relaxed);
    job->chunks_done = 0;
    job->first_error = nullptr;
    impl_->current = job;
    ++impl_->job_generation;
  }
  impl_->cv_work.notify_all();
  job->run();  // the calling thread is one of the pool's execution contexts
  // Caller-side wait: how long the issuing thread blocks on stragglers
  // after finishing its own share of the chunks. Waiting for entrants to
  // reach zero (not just for the chunk count) is what makes recycling the
  // job safe: once this returns, no worker holds a pointer to it that it
  // will still dereference.
  const std::uint64_t wait_t0 = obs::enabled() ? obs::now_ns() : 0;
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv_done.wait(lock, [&] {
      return job->chunks_done == job->n_chunks &&
             job->entrants.load(std::memory_order_acquire) == 0;
    });
  }
  if (obs::enabled()) {
    static obs::Histogram& h_wait = obs::MetricsRegistry::global().histogram(
        "pool.wait_us", {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0});
    h_wait.observe(static_cast<double>(obs::now_ns() - wait_t0) / 1e3);
  }
  const std::exception_ptr err = job->first_error;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    job->in_use = false;
  }
  if (err) std::rethrow_exception(err);
}

namespace {

std::unique_ptr<ThreadPool>& shared_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& shared_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& ThreadPool::shared() {
  std::lock_guard<std::mutex> lock(shared_mu());
  auto& slot = shared_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::reset_shared(std::size_t threads) {
  std::lock_guard<std::mutex> lock(shared_mu());
  shared_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace w4k

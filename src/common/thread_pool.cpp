#include "common/thread_pool.h"

#include "obs/span.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace w4k {
namespace {

// True while the current thread is executing a parallel_for chunk; nested
// parallel_for calls detect this and run inline instead of re-entering the
// pool (which would deadlock the waiting outer call).
thread_local bool t_in_pool_body = false;

std::size_t default_pool_size() {
  if (const char* env = std::getenv("W4K_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// One parallel_for invocation. Each job owns its chunk cursor and completion
// state, so a worker that wakes late and drains an already-finished job can
// never touch a newer job's body or counters.
struct Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t n_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next_chunk{0};

  std::mutex mu;
  std::condition_variable cv_done;
  std::size_t chunks_done = 0;
  std::exception_ptr first_error;

  void run() {
    std::size_t completed = 0;
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) break;
      const std::size_t b = begin + c * grain;
      const std::size_t e = std::min(end, b + grain);
      t_in_pool_body = true;
      try {
        (*body)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      t_in_pool_body = false;
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(mu);
      chunks_done += completed;
      if (chunks_done == n_chunks) cv_done.notify_all();
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv_work;
  std::uint64_t job_generation = 0;
  std::shared_ptr<Job> current;
  bool shutting_down = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock,
                     [&] { return shutting_down || job_generation != seen; });
        if (shutting_down) return;
        seen = job_generation;
        job = current;
      }
      if (job) job->run();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(std::make_unique<Impl>()),
      size_(threads > 0 ? threads : default_pool_size()) {
  impl_->workers.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i)
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n_chunks = (end - begin + grain - 1) / grain;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_calls = reg.counter("pool.parallel_for");
    static obs::Counter& c_chunks = reg.counter("pool.chunks");
    c_calls.add(1);
    c_chunks.add(n_chunks);
  }
  // Serial fast paths: single-context pool, a one-chunk range, or a nested
  // call from inside a worker. Chunk boundaries are identical to the
  // parallel path, so results are too.
  if (size_ == 1 || n_chunks == 1 || t_in_pool_body) {
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t b = begin + c * grain;
      body(b, std::min(end, b + grain));
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->n_chunks = n_chunks;
  job->body = &body;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->current = job;
    ++impl_->job_generation;
  }
  impl_->cv_work.notify_all();
  job->run();  // the calling thread is one of the pool's execution contexts
  // Caller-side wait: how long the issuing thread blocks on stragglers
  // after finishing its own share of the chunks.
  const std::uint64_t wait_t0 = obs::enabled() ? obs::now_ns() : 0;
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv_done.wait(lock,
                      [&] { return job->chunks_done == job->n_chunks; });
  }
  if (obs::enabled()) {
    static obs::Histogram& h_wait = obs::MetricsRegistry::global().histogram(
        "pool.wait_us", {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0});
    h_wait.observe(static_cast<double>(obs::now_ns() - wait_t0) / 1e3);
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

namespace {

std::unique_ptr<ThreadPool>& shared_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& shared_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& ThreadPool::shared() {
  std::lock_guard<std::mutex> lock(shared_mu());
  auto& slot = shared_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::reset_shared(std::size_t threads) {
  std::lock_guard<std::mutex> lock(shared_mu());
  shared_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace w4k

// Minimal command-line argument parsing for the example/CLI binaries.
//
// Supports "--name value" and "--name=value" pairs plus boolean flags
// ("--flag"). Typed getters validate and fall back to defaults; unknown
// arguments are collected so tools can reject typos instead of silently
// ignoring them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace w4k {

class Args {
 public:
  /// Parses argv. Positional arguments (no leading --) are kept in order.
  Args(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// Raw string value of --name, if present with a value.
  std::optional<std::string> value(const std::string& name) const;

  /// Typed getters with defaults. Throw std::invalid_argument when the
  /// value is present but unparseable (a typo should fail loudly).
  std::string get(const std::string& name, const std::string& def) const;
  double get(const std::string& name, double def) const;
  int get(const std::string& name, int def) const;
  bool get(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line that the program never queried;
  /// call after all get()/has() calls to report typos.
  std::vector<std::string> unqueried() const;

 private:
  std::map<std::string, std::string> named_;  // "" when flag-only
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace w4k

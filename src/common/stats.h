// Small descriptive-statistics helpers used by the benchmark harnesses to
// print the paper's box-plot style summaries (min / quartiles / median /
// max) and by tests to assert on distributions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace w4k {

/// Five-number summary plus mean, matching the paper's box plots
/// ("the lines on the box from the top to the bottom are the max,
///  1st quartile, median, 3rd quartile and min").
struct Summary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Computes the summary of `values`. Empty input yields an all-zero
/// summary. Throws std::invalid_argument on NaN input: NaN breaks the
/// sort's strict weak ordering, so a poisoned series must fail loudly
/// instead of yielding garbage quartiles.
Summary summarize(std::span<const double> values);

/// Linear-interpolated quantile of a *sorted* sequence, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean (0 for empty input).
double mean(std::span<const double> values);

/// Population standard deviation (0 for fewer than 2 elements).
double stddev(std::span<const double> values);

/// Harmonic mean (used by FastMPC-style throughput prediction).
double harmonic_mean(std::span<const double> values);

/// Formats a summary as "mean=… [min q1 med q3 max]" for bench output.
std::string to_string(const Summary& s);

/// Online accumulator for mean/variance (Welford).
class RunningStats {
 public:
  /// Throws std::invalid_argument on NaN (one NaN would silently poison
  /// every later mean/variance read).
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace w4k

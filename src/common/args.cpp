#include "common/args.h"

#include <stdexcept>

namespace w4k {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      named_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another option or absent.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      named_[body] = argv[++i];
    } else {
      named_[body] = "";
    }
  }
}

bool Args::has(const std::string& name) const {
  queried_[name] = true;
  return named_.count(name) > 0;
}

std::optional<std::string> Args::value(const std::string& name) const {
  queried_[name] = true;
  const auto it = named_.find(name);
  if (it == named_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string Args::get(const std::string& name, const std::string& def) const {
  return value(name).value_or(def);
}

double Args::get(const std::string& name, double def) const {
  const auto v = value(name);
  if (!v) return def;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                *v + "'");
  }
}

int Args::get(const std::string& name, int def) const {
  const auto v = value(name);
  if (!v) return def;
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" +
                                *v + "'");
  }
}

bool Args::get(const std::string& name, bool def) const {
  queried_[name] = true;
  const auto it = named_.find(name);
  if (it == named_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes" || v == "on")
    return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + name + ": expected a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Args::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : named_)
    if (queried_.find(name) == queried_.end()) out.push_back(name);
  return out;
}

}  // namespace w4k

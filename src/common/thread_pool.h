// Fixed-size shared thread pool with a deterministic parallel_for.
//
// The compute substrate for the hot paths (fountain coding, SSIM tiling,
// per-user emulation): one lazily created process-wide pool, sized to
// hardware concurrency (overridable via the W4K_THREADS environment
// variable), with a chunked parallel_for whose chunk boundaries depend
// only on the range and grain — never on the number of threads or on
// scheduling order. Callers that accumulate per-chunk partial results
// into chunk-indexed slots and reduce them in chunk order therefore get
// bit-identical results for any pool size, including 1 (serial).
//
// There is no work stealing and no task queue beyond a single atomic
// chunk cursor per parallel_for: the design goal is predictable,
// reproducible bandwidth on large contiguous loops, not general task
// parallelism. Nested parallel_for calls from inside a worker run the
// nested body inline on the calling worker (no deadlock, same results).
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace w4k {

class ThreadPool {
 public:
  /// Creates a pool with `threads` execution contexts (including the
  /// caller of parallel_for, so `threads` == 1 means no worker threads
  /// and fully serial execution). `threads` == 0 picks the W4K_THREADS
  /// environment variable if set, else std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution contexts (worker threads + the calling thread).
  std::size_t size() const { return size_; }

  /// Runs body(chunk_begin, chunk_end) over [begin, end) split into
  /// ceil((end-begin)/grain) chunks of `grain` indices each (last chunk
  /// may be short). Chunks are claimed dynamically but their boundaries
  /// are a pure function of (begin, end, grain), so writes into
  /// chunk-indexed slots are deterministic. Blocks until every chunk has
  /// finished. The first exception thrown by any chunk is rethrown here.
  ///
  /// The callable is borrowed by reference for the duration of the call
  /// (it outlives every chunk because parallel_for blocks), so no
  /// std::function is materialized and dispatching a parallel loop
  /// performs zero heap allocations in the steady state — the Job
  /// records the pool hands to workers are recycled from a free list
  /// (see thread_pool.cpp).
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    F&& body) {
    using Fn = std::remove_reference_t<F>;
    parallel_for_impl(
        begin, end, grain,
        BodyRef{const_cast<void*>(static_cast<const void*>(&body)),
                [](void* ctx, std::size_t b, std::size_t e) {
                  (*static_cast<Fn*>(ctx))(b, e);
                }});
  }

  /// The process-wide shared pool (lazily created on first use).
  static ThreadPool& shared();

  /// Replaces the shared pool with one of the given size (0 = default
  /// sizing). Intended for tests and benchmarks that A/B pool sizes; not
  /// safe while another thread is inside the shared pool.
  static void reset_shared(std::size_t threads);

 private:
  /// Type-erased borrowed callable: one context pointer plus one function
  /// pointer, trivially copyable, never owning.
  struct BodyRef {
    void* ctx = nullptr;
    void (*fn)(void*, std::size_t, std::size_t) = nullptr;
  };

  void parallel_for_impl(std::size_t begin, std::size_t end,
                         std::size_t grain, BodyRef body);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t size_ = 1;
};

}  // namespace w4k

#include "common/alloc_count.h"

#ifdef W4K_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: the gate reads the counters on the same thread that
// joins (or synchronizes with) the workers via the ThreadPool's mutex, so
// the counter values it observes are ordered by those stronger fences.
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  // malloc(0) may return nullptr; operator new must return a unique
  // pointer, so allocate at least one byte.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return p;
}

void counted_free(void* p) {
  if (p == nullptr) return;
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace w4k::alloc_count {

bool counting_available() { return true; }
std::uint64_t allocations() {
  return g_news.load(std::memory_order_relaxed);
}
std::uint64_t deallocations() {
  return g_deletes.load(std::memory_order_relaxed);
}
std::uint64_t bytes_allocated() {
  return g_bytes.load(std::memory_order_relaxed);
}

}  // namespace w4k::alloc_count

#else  // !W4K_COUNT_ALLOCS

namespace w4k::alloc_count {

bool counting_available() { return false; }
std::uint64_t allocations() { return 0; }
std::uint64_t deallocations() { return 0; }
std::uint64_t bytes_allocated() { return 0; }

}  // namespace w4k::alloc_count

#endif

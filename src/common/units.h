// Physical units used throughout the system.
//
// WiGig link budgets mix logarithmic (dBm, dB) and linear (mW, Mbps)
// quantities; keeping them in distinct strong types prevents the classic
// bug of adding a dBm value to a linear rate.
#pragma once

#include <compare>
#include <cstdint>

namespace w4k {

/// Received signal strength / transmit power in dBm.
struct Dbm {
  double value = 0.0;

  constexpr Dbm() = default;
  constexpr explicit Dbm(double v) : value(v) {}

  constexpr auto operator<=>(const Dbm&) const = default;

  /// Applies a gain/loss in dB.
  constexpr Dbm operator+(double db) const { return Dbm{value + db}; }
  constexpr Dbm operator-(double db) const { return Dbm{value - db}; }
  /// Difference between two absolute levels is a relative dB figure.
  constexpr double operator-(Dbm other) const { return value - other.value; }

  /// Linear power in milliwatts.
  double milliwatts() const;
  static Dbm from_milliwatts(double mw);
};

/// Data rate in megabits per second.
struct Mbps {
  double value = 0.0;

  constexpr Mbps() = default;
  constexpr explicit Mbps(double v) : value(v) {}

  constexpr auto operator<=>(const Mbps&) const = default;

  /// Bytes deliverable in `seconds` at this rate.
  constexpr double bytes_in(double seconds) const {
    return value * 1e6 / 8.0 * seconds;
  }
  /// Seconds needed to deliver `bytes` at this rate.
  constexpr double seconds_for(double bytes) const {
    return value <= 0.0 ? 1e18 : bytes * 8.0 / (value * 1e6);
  }
};

/// Simulation time in seconds (double — microsecond precision is ample
/// for 33 ms frame budgets over minutes-long traces).
using Seconds = double;

/// Frequently used constants.
inline constexpr double kSpeedOfLight = 299'792'458.0;      // m/s
inline constexpr double kWigigFreqHz = 60.48e9;             // 802.11ad ch. 2
inline constexpr double kFrameRate = 30.0;                  // paper: 30 FPS
inline constexpr Seconds kFrameBudget = 1.0 / kFrameRate;   // 33.3 ms

}  // namespace w4k

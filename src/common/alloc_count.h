// Process-wide heap-allocation counting for the zero-allocation frame-path
// gate (DESIGN.md Sec. 4g).
//
// Under `cmake -DW4K_COUNT_ALLOCS=ON` this translation unit overrides the
// global `operator new`/`operator delete` family with thin malloc/free
// wrappers that bump relaxed process-wide atomics. The counters are
// thread-aware by construction: every thread (including ThreadPool
// workers) increments the same atomics, so a delta of allocations()
// around a frame step observes hidden allocations made on worker threads
// too.
//
// In a normal build nothing is overridden and counting_available() returns
// false; the alloc-gate tests use that to skip themselves instead of
// reporting a vacuous pass as a real one.
#pragma once

#include <cstdint>

namespace w4k::alloc_count {

/// True when the build overrides operator new/delete (W4K_COUNT_ALLOCS).
bool counting_available();

/// Number of operator-new calls (all forms, all threads) since process
/// start. Always 0 when counting is unavailable.
std::uint64_t allocations();

/// Number of operator-delete calls with a non-null pointer.
std::uint64_t deallocations();

/// Total bytes requested from operator new (not including allocator
/// rounding). Always 0 when counting is unavailable.
std::uint64_t bytes_allocated();

/// Convenience delta probe: records the counters at construction; taken()
/// returns how many allocations happened since.
class Scope {
 public:
  Scope() : start_(allocations()) {}
  std::uint64_t taken() const { return allocations() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace w4k::alloc_count

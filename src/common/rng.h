// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit Rng so that
// tests and benchmarks are bit-reproducible across runs and platforms.
// The generator is splitmix64-seeded xoshiro256**, which is fast, has a
// 2^256-1 period, and passes BigCrush.
#pragma once

#include <cstdint>
#include <limits>

namespace w4k {

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, but the helpers below are preferred as they are
/// platform-stable (libstdc++ distributions are not guaranteed stable).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Derives an independent child generator (for parallel substreams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace w4k

#include "common/units.h"

#include <cmath>

namespace w4k {

double Dbm::milliwatts() const { return std::pow(10.0, value / 10.0); }

Dbm Dbm::from_milliwatts(double mw) {
  return Dbm{10.0 * std::log10(mw)};
}

}  // namespace w4k

#include "campaign/stats_gate.h"

#include "common/rng.h"
#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <vector>

namespace w4k::campaign {
namespace {

double median_sorted(std::span<const double> sorted) {
  return quantile_sorted(sorted, 0.5);
}

double sample_median(std::vector<double>& scratch) {
  std::sort(scratch.begin(), scratch.end());
  return median_sorted(scratch);
}

}  // namespace

MwuResult mann_whitney_u(std::span<const double> a,
                         std::span<const double> b) {
  MwuResult r;
  const std::size_t n1 = a.size();
  const std::size_t n2 = b.size();
  if (n1 == 0 || n2 == 0) return r;

  // Pool and rank with midranks for ties.
  struct Tagged {
    double v;
    bool first;
  };
  std::vector<Tagged> pool;
  pool.reserve(n1 + n2);
  for (double v : a) pool.push_back({v, true});
  for (double v : b) pool.push_back({v, false});
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  const double n = static_cast<double>(n1 + n2);
  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum over tie groups of t^3 - t
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].v == pool[i].v) ++j;
    const double t = static_cast<double>(j - i);
    // Midrank of the group (ranks are 1-based).
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k)
      if (pool[k].first) rank_sum_a += midrank;
    tie_term += t * t * t - t;
    i = j;
  }

  const double fn1 = static_cast<double>(n1);
  const double fn2 = static_cast<double>(n2);
  r.u = rank_sum_a - fn1 * (fn1 + 1.0) / 2.0;
  const double mean_u = fn1 * fn2 / 2.0;
  // Tie-corrected variance; all-identical pools give variance 0.
  const double var_u =
      fn1 * fn2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    r.z = 0.0;
    r.p = 1.0;
    return r;
  }
  const double diff = r.u - mean_u;
  // Continuity correction toward the mean.
  const double cc = diff > 0.5 ? -0.5 : (diff < -0.5 ? 0.5 : -diff);
  r.z = (diff + cc) / std::sqrt(var_u);
  r.p = std::erfc(std::fabs(r.z) / std::sqrt(2.0));
  if (r.p > 1.0) r.p = 1.0;
  return r;
}

BootstrapCi bootstrap_median_delta_ci(std::span<const double> a,
                                      std::span<const double> b,
                                      int resamples, double confidence,
                                      std::uint64_t seed) {
  BootstrapCi ci;
  if (a.empty() || b.empty() || resamples < 2) return ci;
  Rng rng(seed);
  std::vector<double> deltas;
  deltas.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> ra(a.size()), rb(b.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : ra) v = a[rng.below(a.size())];
    for (auto& v : rb) v = b[rng.below(b.size())];
    deltas.push_back(sample_median(ra) - sample_median(rb));
  }
  std::sort(deltas.begin(), deltas.end());
  const double tail = (1.0 - confidence) / 2.0;
  ci.lo = quantile_sorted(deltas, tail);
  ci.hi = quantile_sorted(deltas, 1.0 - tail);
  return ci;
}

GateReport compare(const CampaignSummary& current,
                   const CampaignSummary& baseline, const GateConfig& cfg) {
  GateReport report;
  if (current.failed > baseline.failed) {
    report.pass = false;
    report.structural_failure =
        "failed cells: " + std::to_string(current.failed) +
        " current vs " + std::to_string(baseline.failed) + " baseline";
    return report;
  }
  for (std::size_t m = 0; m < kNumMetrics; ++m) {
    const std::vector<double>& cur = current.metrics[m];
    const std::vector<double>& base = baseline.metrics[m];
    MetricVerdict v;
    v.name = kMetricNames[m];
    v.n_current = cur.size();
    v.n_baseline = base.size();
    v.median_current = median_sorted(cur);
    v.median_baseline = median_sorted(base);
    const MwuResult mwu = mann_whitney_u(cur, base);
    v.p = mwu.p;
    const double delta = v.median_current - v.median_baseline;
    v.flagged = mwu.p < cfg.alpha && std::fabs(delta) > cfg.min_effect;
    if (v.flagged) report.pass = false;
    if (v.flagged)
      v.delta_ci = bootstrap_median_delta_ci(cur, base);
    report.metrics.push_back(std::move(v));
  }
  return report;
}

void print_gate_report(std::ostream& os, const GateReport& report) {
  if (!report.structural_failure.empty()) {
    os << "campaign gate: STRUCTURAL FAILURE: " << report.structural_failure
       << "\n";
    return;
  }
  char line[256];
  std::snprintf(line, sizeof(line), "%-20s %6s %14s %14s %12s  %s\n",
                "metric", "n", "median", "baseline", "p", "verdict");
  os << line;
  for (const MetricVerdict& v : report.metrics) {
    std::snprintf(line, sizeof(line),
                  "%-20s %6zu %14.6g %14.6g %12.3g  %s\n", v.name.c_str(),
                  v.n_current, v.median_current, v.median_baseline, v.p,
                  v.flagged ? "SHIFTED" : "ok");
    os << line;
    if (v.flagged) {
      std::snprintf(line, sizeof(line),
                    "    median delta %.6g, bootstrap 99%% CI [%.6g, %.6g]\n",
                    v.median_current - v.median_baseline, v.delta_ci.lo,
                    v.delta_ci.hi);
      os << line;
    }
  }
  os << "campaign gate: " << (report.pass ? "PASS" : "FAIL") << "\n";
}

}  // namespace w4k::campaign

// Sharded campaign execution: a parent process partitions the cell range
// across worker processes (fork/exec of the campaign binary itself), each
// worker streams its cells and appends one JSONL row per cell to its own
// shard with a flush after every row, and the parent merges the shards
// into the canonical summary. Crash isolation is structural: an aborting
// cell kills only its worker process; the parent re-runs the missing
// cells one per process and records a synthetic "crashed" row for any
// cell that dies again — the campaign always completes.
#pragma once

#include "campaign/scenario.h"
#include "campaign/shard.h"
#include "model/quality_model.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace w4k::core {
struct FrameContext;
}

namespace w4k::campaign {

/// Abort hook for the crash-isolation tests: when the environment variable
/// W4K_CAMPAIGN_CRASH_CELL names a cell index, the worker that reaches it
/// calls std::abort() mid-cell — deterministically, so crash handling is
/// itself byte-stable across worker partitions.
inline constexpr const char* kCrashCellEnv = "W4K_CAMPAIGN_CRASH_CELL";

struct CampaignOptions {
  std::uint64_t campaign_seed = 1;
  std::uint64_t n_cells = 500;
  int n_workers = 4;
  std::string out_dir;      ///< shards + merged outputs land here
  std::string model_cache;  ///< shared quality-model cache (empty: retrain)
  /// Config override for the gate's regression self-test: >= 0 replaces
  /// SessionConfig::stale_csi_backoff_db in every cell. A large value
  /// over-backs-off every held-CSI decision, degrading MCS and SSIM on
  /// all CSI-faulted cells — a realistic "mis-tuned knob" regression.
  double stale_csi_backoff_db = -1.0;
  /// Per missing cell after a worker crash: how many single-cell retry
  /// processes to attempt before recording the cell as crashed.
  int max_retries = 1;
};

/// Per-worker cache of the expensive encoded-frame contexts, keyed by the
/// cell's (richness, video_seed) palette entry.
class ContextCache {
 public:
  const std::vector<core::FrameContext>& get(video::Richness richness,
                                             std::uint64_t video_seed);

 private:
  std::map<std::pair<int, std::uint64_t>, std::vector<core::FrameContext>>
      cache_;
};

/// Executes one cell end-to-end (generate spec, materialize, stream,
/// extract metrics). Exceptions become a kFailed row with the message in
/// `error`; never throws.
CellRow run_cell(const ScenarioSpec& spec, model::QualityModel& quality,
                 ContextCache& contexts, const CampaignOptions& opts);

/// Worker entry point: streams cells [begin, end) of the campaign and
/// appends one JSONL row per cell to `shard_path`, flushing after each row
/// so a crash loses at most the in-flight cell. Returns a process exit
/// code (0 on success).
int run_worker(const CampaignOptions& opts, std::uint64_t begin,
               std::uint64_t end, const std::string& shard_path);

struct CampaignResult {
  CampaignSummary summary;
  std::vector<CellRow> rows;  ///< one per cell, sorted by cell index
  int workers_failed = 0;     ///< worker processes with nonzero exit
  int cells_retried = 0;      ///< missing cells re-run in isolation
  int cells_crashed = 0;      ///< cells recorded via synthetic rows
  double wall_ms = 0.0;
};

/// Orchestrates a full campaign: spawns `n_workers` processes of
/// `self_exe` over a contiguous partition of the cell range, waits,
/// re-runs missing cells, merges, and writes `cells.jsonl`,
/// `summary.json`, `timing.json`, and `manifest.json` into
/// opts.out_dir. The summary (file and return value) is byte-stable
/// across worker counts; the timing sidecar carries all wall-clock data.
/// Throws std::runtime_error on orchestration failures (cannot spawn,
/// cannot write).
CampaignResult run_campaign(const CampaignOptions& opts,
                            const std::string& self_exe);

/// End-to-end self-test of the campaign + gate machinery:
///  1. runs a campaign with `n_workers` workers, and again with one
///     worker under W4K_THREADS=1 — the two summary.json files must be
///     byte-identical;
///  2. the statistical gate comparing the two must PASS;
///  3. a third campaign with stale_csi_backoff_db mis-set to 30 dB must
///     FAIL the gate against the first.
/// Returns 0 when all three hold; prints a verdict trail to stdout.
int run_selftest(const CampaignOptions& base, const std::string& self_exe);

/// Resolves /proc/self/exe (fallback: argv0) for worker respawning.
std::string self_executable(const char* argv0);

}  // namespace w4k::campaign

#include "campaign/runner.h"

#include "campaign/stats_gate.h"

#include "beamforming/codebook.h"
#include "channel/mobility.h"
#include "core/frame_context.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "core/session.h"
#include "fault/injector.h"
#include "obs/manifest.h"

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

extern char** environ;

namespace w4k::campaign {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::SessionReport stream_cell(const ScenarioSpec& spec,
                                model::QualityModel& quality,
                                ContextCache& contexts,
                                const CampaignOptions& opts) {
  core::SessionConfig cfg = make_config(spec);
  if (opts.stale_csi_backoff_db >= 0.0) {
    cfg.stale_csi_backoff_db = opts.stale_csi_backoff_db;
    cfg.validate(core::SessionConfig::kUnknown, spec.n_users);
  }
  core::MulticastSession session(cfg, quality, beamforming::Codebook{});
  const std::vector<core::FrameContext>& ctx =
      contexts.get(spec.richness, spec.video_seed);
  const fault::FaultInjector injector(make_fault_plan(spec), spec.n_users,
                                      spec.kind == CellKind::kMultiAp
                                          ? spec.n_aps
                                          : 1);
  switch (spec.kind) {
    case CellKind::kStatic: {
      Rng rng(spec.placement_seed);
      channel::PropagationConfig prop;
      prop.room.length = spec.room_length_m;
      prop.room.width = spec.room_width_m;
      const auto users = core::place_users_fixed(
          spec.n_users, spec.distance_m, spec.mas_rad, rng);
      return core::run_static(session, core::channels_for(prop, users), ctx,
                              spec.frames(), injector);
    }
    case CellKind::kMobile: {
      channel::MovingReceiverConfig mc;
      mc.prop.room.length = spec.room_length_m;
      mc.prop.room.width = spec.room_width_m;
      mc.n_users = spec.n_users;
      // +0.5 beacon so float truncation cannot drop the final snapshot.
      mc.duration = (spec.n_beacons + 0.5) * channel::kBeaconInterval;
      mc.walk_speed = spec.walk_speed_mps;
      mc.seed = spec.placement_seed;
      return core::run_trace(session, channel::moving_receiver_trace(mc),
                             ctx, injector);
    }
    case CellKind::kMultiAp: {
      const channel::MultiApGeometry geo = make_geometry(spec);
      Rng rng(spec.placement_seed);
      const auto users = core::place_users_fixed(
          spec.n_users, spec.distance_m, spec.mas_rad, rng);
      return core::run_static_multi_ap(
          session, channel::ap_channel_stacks(geo, users), ctx,
          spec.frames(), injector, channel::ap_user_azimuths(geo, users));
    }
  }
  throw std::logic_error("unreachable cell kind");
}

struct SpawnedWorker {
  pid_t pid = -1;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::string shard;
};

std::string shard_name(int worker) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04d.jsonl", worker);
  return buf;
}

pid_t spawn_worker(const std::string& self_exe, const CampaignOptions& opts,
                   std::uint64_t begin, std::uint64_t end,
                   const std::string& shard_path) {
  std::vector<std::string> args = {
      self_exe,
      "worker",
      "--seed=" + std::to_string(opts.campaign_seed),
      "--cells=" + std::to_string(opts.n_cells),
      "--begin=" + std::to_string(begin),
      "--end=" + std::to_string(end),
      "--out=" + shard_path,
  };
  if (!opts.model_cache.empty())
    args.push_back("--model-cache=" + opts.model_cache);
  if (opts.stale_csi_backoff_db >= 0.0)
    args.push_back("--stale-csi-backoff=" +
                   std::to_string(opts.stale_csi_backoff_db));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, self_exe.c_str(), nullptr, nullptr,
                               argv.data(), environ);
  if (rc != 0)
    throw std::runtime_error("campaign: posix_spawn failed for " + self_exe +
                             ": " + std::string(std::strerror(rc)));
  return pid;
}

/// Waits for `pid`; returns true when it exited cleanly with status 0.
bool wait_clean(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return false;
  }
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("campaign: cannot open " + path);
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_timing(const std::string& path, const CampaignResult& result,
                  int n_workers) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("campaign: cannot create " + path);
  char num[64];
  std::snprintf(num, sizeof(num), "%.3f", result.wall_ms);
  os << "{\"total_wall_ms\":" << num << ",\"workers\":" << n_workers
     << ",\"workers_failed\":" << result.workers_failed
     << ",\"cells_retried\":" << result.cells_retried
     << ",\"cells_crashed\":" << result.cells_crashed << ",\"cells\":[";
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const CellRow& row = result.rows[i];
    std::snprintf(num, sizeof(num), "%.3f", row.wall_ms);
    os << (i ? "," : "") << "{\"cell\":" << row.cell << ",\"status\":\""
       << to_string(row.status) << "\",\"wall_ms\":" << num << '}';
  }
  os << "]}\n";
}

}  // namespace

std::string self_executable(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 ? argv0 : "";
}

const std::vector<core::FrameContext>& ContextCache::get(
    video::Richness richness, std::uint64_t video_seed) {
  const auto key = std::make_pair(static_cast<int>(richness), video_seed);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  video::VideoSpec spec;
  spec.width = kCellWidth;
  spec.height = kCellHeight;
  spec.frames = 4;
  spec.richness = richness;
  spec.seed = video_seed;
  auto ctx = core::make_contexts(video::SyntheticVideo(spec), 3,
                                 core::scaled_symbol_size(kCellWidth,
                                                          kCellHeight));
  return cache_.emplace(key, std::move(ctx)).first->second;
}

CellRow run_cell(const ScenarioSpec& spec, model::QualityModel& quality,
                 ContextCache& contexts, const CampaignOptions& opts) {
  CellRow row;
  row.cell = spec.cell_index;
  row.kind = spec.kind;
  const double t0 = now_ms();
  try {
    const core::SessionReport report =
        stream_cell(spec, quality, contexts, opts);
    row.metrics = metrics_from_report(report);
    row.status = CellRow::Status::kOk;
  } catch (const std::exception& e) {
    row.status = CellRow::Status::kFailed;
    row.error = e.what();
  }
  row.wall_ms = now_ms() - t0;
  return row;
}

int run_worker(const CampaignOptions& opts, std::uint64_t begin,
               std::uint64_t end, const std::string& shard_path) {
  std::ofstream shard(shard_path, std::ios::binary);
  if (!shard) {
    std::fprintf(stderr, "campaign worker: cannot create %s\n",
                 shard_path.c_str());
    return 1;
  }
  std::int64_t crash_cell = -1;
  if (const char* env = std::getenv(kCrashCellEnv))
    crash_cell = std::atoll(env);

  model::QualityModel quality(42);
  core::PretrainedOptions popts;
  popts.cache_path = opts.model_cache;
  core::ensure_trained(quality, popts);

  ContextCache contexts;
  for (std::uint64_t i = begin; i < end; ++i) {
    const ScenarioSpec spec = ScenarioGen::cell(opts.campaign_seed, i);
    if (crash_cell >= 0 && static_cast<std::uint64_t>(crash_cell) == i)
      std::abort();  // crash-isolation hook; see kCrashCellEnv
    const CellRow row = run_cell(spec, quality, contexts, opts);
    shard << to_jsonl(row) << '\n';
    shard.flush();  // a crash later loses at most the in-flight cell
  }
  return shard ? 0 : 1;
}

CampaignResult run_campaign(const CampaignOptions& opts,
                            const std::string& self_exe) {
  if (opts.n_cells == 0) throw std::invalid_argument("campaign: 0 cells");
  if (opts.n_workers < 1)
    throw std::invalid_argument("campaign: need at least 1 worker");
  if (self_exe.empty())
    throw std::runtime_error("campaign: cannot resolve own executable");
  std::filesystem::create_directories(opts.out_dir);

  const double t0 = now_ms();
  // Train (or load) the shared model once before fan-out so the workers
  // all hit a warm cache instead of racing to train it.
  if (!opts.model_cache.empty()) {
    model::QualityModel quality(42);
    core::PretrainedOptions popts;
    popts.cache_path = opts.model_cache;
    core::ensure_trained(quality, popts);
  }

  // Contiguous partition: worker k gets cells [k*per + min(k, extra), ...).
  const int n_workers =
      static_cast<int>(std::min<std::uint64_t>(
          static_cast<std::uint64_t>(opts.n_workers), opts.n_cells));
  const std::uint64_t per = opts.n_cells / static_cast<std::uint64_t>(n_workers);
  const std::uint64_t extra = opts.n_cells % static_cast<std::uint64_t>(n_workers);
  std::vector<SpawnedWorker> workers;
  std::uint64_t next = 0;
  for (int k = 0; k < n_workers; ++k) {
    SpawnedWorker w;
    w.begin = next;
    w.end = next + per + (static_cast<std::uint64_t>(k) < extra ? 1 : 0);
    next = w.end;
    w.shard = opts.out_dir + "/" + shard_name(k);
    w.pid = spawn_worker(self_exe, opts, w.begin, w.end, w.shard);
    workers.push_back(std::move(w));
  }

  CampaignResult result;
  for (const SpawnedWorker& w : workers)
    if (!wait_clean(w.pid)) ++result.workers_failed;

  // Merge: first well-formed row per cell wins; torn lines were already
  // dropped by read_shard.
  std::map<std::uint64_t, CellRow> by_cell;
  for (const SpawnedWorker& w : workers)
    for (CellRow& row : read_shard(w.shard))
      by_cell.emplace(row.cell, std::move(row));

  // Re-run each missing cell in its own process: a deterministic abort
  // crashes again and becomes a synthetic row; a transient failure (e.g.
  // a worker that died between cells) recovers.
  for (std::uint64_t i = 0; i < opts.n_cells; ++i) {
    if (by_cell.count(i)) continue;
    ++result.cells_retried;
    const std::string retry_shard =
        opts.out_dir + "/retry-" + std::to_string(i) + ".jsonl";
    for (int attempt = 0; attempt < opts.max_retries; ++attempt) {
      const pid_t pid = spawn_worker(self_exe, opts, i, i + 1, retry_shard);
      wait_clean(pid);
      for (CellRow& row : read_shard(retry_shard))
        by_cell.emplace(row.cell, std::move(row));
      if (by_cell.count(i)) break;
    }
    if (!by_cell.count(i)) {
      CellRow crashed;
      crashed.cell = i;
      crashed.kind = ScenarioGen::cell(opts.campaign_seed, i).kind;
      crashed.status = CellRow::Status::kCrashed;
      by_cell.emplace(i, std::move(crashed));
      ++result.cells_crashed;
    }
  }

  result.rows.reserve(by_cell.size());
  for (auto& [cell, row] : by_cell) result.rows.push_back(std::move(row));
  result.summary =
      summarize_rows(opts.campaign_seed, opts.n_cells, result.rows);
  result.wall_ms = now_ms() - t0;

  {
    std::ofstream cells(opts.out_dir + "/cells.jsonl", std::ios::binary);
    if (!cells)
      throw std::runtime_error("campaign: cannot create cells.jsonl");
    for (const CellRow& row : result.rows) cells << to_jsonl(row) << '\n';
  }
  write_summary_file(opts.out_dir + "/summary.json", result.summary);
  write_timing(opts.out_dir + "/timing.json", result, n_workers);

  obs::Manifest manifest("campaign");
  manifest.set("campaign_seed",
               static_cast<std::int64_t>(opts.campaign_seed));
  manifest.set("cells", static_cast<std::int64_t>(opts.n_cells));
  manifest.set("workers", n_workers);
  manifest.set("ok", static_cast<std::int64_t>(result.summary.ok));
  manifest.set("failed", static_cast<std::int64_t>(result.summary.failed));
  manifest.set("cells_retried", result.cells_retried);
  manifest.set("cells_crashed", result.cells_crashed);
  manifest.set("stale_csi_backoff_override", opts.stale_csi_backoff_db);
  if (const char* threads = std::getenv("W4K_THREADS"))
    manifest.set_env("W4K_THREADS", threads);
  manifest.write_file(opts.out_dir + "/manifest.json");
  return result;
}

int run_selftest(const CampaignOptions& base, const std::string& self_exe) {
  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("selftest: %-55s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };

  CampaignOptions multi = base;
  multi.out_dir = base.out_dir + "/clean-multi";
  const CampaignResult a = run_campaign(multi, self_exe);
  check(a.summary.ok + a.summary.failed == multi.n_cells,
        "multi-worker campaign covered every cell");

  // Same campaign, one worker, single-threaded sessions: the merged
  // summary must not move by a byte.
  CampaignOptions single = base;
  single.out_dir = base.out_dir + "/clean-single";
  single.n_workers = 1;
  std::string saved_threads;
  bool had_threads = false;
  if (const char* t = std::getenv("W4K_THREADS")) {
    saved_threads = t;
    had_threads = true;
  }
  ::setenv("W4K_THREADS", "1", 1);
  const CampaignResult b = run_campaign(single, self_exe);
  if (had_threads)
    ::setenv("W4K_THREADS", saved_threads.c_str(), 1);
  else
    ::unsetenv("W4K_THREADS");
  check(read_file(multi.out_dir + "/summary.json") ==
            read_file(single.out_dir + "/summary.json"),
        "summary byte-stable across workers=N/1 and W4K_THREADS=1");

  const GateReport clean = compare(b.summary, a.summary);
  check(clean.pass, "gate passes on an unchanged configuration");

  // The injected regression: a mis-tuned stale-CSI backoff. 30 dB of
  // over-backoff collapses the MCS choice on every held-CSI frame, so
  // CSI-faulted cells lose base-layer delivery and quality.
  CampaignOptions regressed = base;
  regressed.out_dir = base.out_dir + "/regressed";
  regressed.stale_csi_backoff_db = 30.0;
  const CampaignResult c = run_campaign(regressed, self_exe);
  const GateReport gate = compare(c.summary, a.summary);
  print_gate_report(std::cout, gate);
  check(!gate.pass, "gate flags the injected stale-CSI regression");

  std::printf("selftest: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace w4k::campaign

// Campaign shard format: one JSONL row per executed cell, written
// incrementally by each worker process so a crashed worker loses at most
// the cell it was executing, and a canonical merged summary aggregating
// the per-cell metric distributions.
//
// Determinism contract: a row's canonical fields (cell, kind, status,
// metrics) depend only on (campaign_seed, cell_index); `wall_ms` is the
// one wall-clock field and is excluded from the merged summary, so the
// summary is byte-stable across worker counts, W4K_THREADS, and reruns.
#pragma once

#include "campaign/scenario.h"
#include "core/report.h"

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace w4k::campaign {

/// The per-cell scalar metrics the campaign aggregates into population
/// distributions. Fixed order — it is the schema of both the shard rows
/// and the blessed baseline.
inline constexpr std::size_t kNumMetrics = 10;
extern const std::array<const char*, kNumMetrics> kMetricNames;

struct CellMetrics {
  std::array<double, kNumMetrics> v{};

  double ssim_mean() const { return v[0]; }
  double ssim_p5() const { return v[1]; }
  double psnr_mean() const { return v[2]; }
  double delivery_mean() const { return v[3]; }
  double base_delivery() const { return v[4]; }
  double bad_frame_fraction() const { return v[5]; }
};

/// Extracts the metric vector from a finished cell report. Throws
/// std::runtime_error naming the metric if any value comes out non-finite
/// (a total-outage cell must still aggregate NaN-free; the report-merge
/// tests pin that SessionReport's aggregates uphold this).
CellMetrics metrics_from_report(const core::SessionReport& report);

/// One shard row.
struct CellRow {
  enum class Status : std::uint8_t { kOk = 0, kFailed = 1, kCrashed = 2 };

  std::uint64_t cell = 0;
  CellKind kind = CellKind::kStatic;
  Status status = Status::kOk;
  CellMetrics metrics;   ///< valid only when status == kOk
  double wall_ms = 0.0;  ///< wall clock; excluded from the merged summary
  std::string error;     ///< exception text when status == kFailed
};

const char* to_string(CellRow::Status s);

/// Renders one row as a single JSONL line (no trailing newline). Doubles
/// print with %.17g; `error` is JSON-escaped.
std::string to_jsonl(const CellRow& row);

/// Parses one JSONL line. Returns false (with a message in `err`) on
/// malformed input — a torn final line from a crashed worker is expected
/// and skipped by the merge step.
bool parse_row(const std::string& line, CellRow* out, std::string* err);

/// Reads every well-formed row of a shard file (missing file = empty).
std::vector<CellRow> read_shard(const std::string& path);

/// The merged, canonical campaign summary: per-metric distributions over
/// all ok cells, cell indices sorted ascending.
struct CampaignSummary {
  std::uint64_t campaign_seed = 0;
  std::uint64_t cells = 0;   ///< cells requested
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;  ///< failed + crashed
  /// metrics[m] = ascending-sorted per-cell values of kMetricNames[m].
  std::array<std::vector<double>, kNumMetrics> metrics;
};

/// Builds the summary from merged rows (one row per cell expected; the
/// caller deduplicates). Rows with status != ok contribute to `failed`.
CampaignSummary summarize_rows(std::uint64_t campaign_seed,
                               std::uint64_t n_cells,
                               const std::vector<CellRow>& rows);

/// Canonical JSON: fixed key order, %.17g doubles, sorted value arrays —
/// byte-identical whenever the campaign's numbers are. This is the format
/// blessed into tests/golden/data/ and consumed by the statistical gate.
void write_summary(std::ostream& os, const CampaignSummary& s);
void write_summary_file(const std::string& path, const CampaignSummary& s);

/// Loads a summary (blessed baseline or a fresh run). Throws
/// std::runtime_error naming the path on parse/schema errors.
CampaignSummary load_summary(const std::string& path);

}  // namespace w4k::campaign

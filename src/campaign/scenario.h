// Parameterized scenario generation for the campaign engine (DESIGN.md
// Sec. 4i): a pure function from (campaign seed, cell index) to one fully
// specified evaluation cell — room geometry and AP layout, crowd size and
// mobility model, blockage intensity, churn rate, video richness, fault
// plan, and session knobs — expressed entirely through the existing
// SessionConfig / FaultPlan / MultiApGeometry surfaces.
//
// Purity is the contract everything else leans on: the same
// (campaign_seed, cell_index) pair yields a byte-identical ScenarioSpec
// (and hence, because the whole streaming stack is deterministic with
// decide_deadline_ms == 0, a byte-identical SessionReport) on any thread,
// any worker process, and any worker-count partition of a campaign. The
// property suite pins this via ScenarioSpec::to_text().
#pragma once

#include "channel/multi_ap.h"
#include "core/session.h"
#include "fault/plan.h"
#include "video/synthetic.h"

#include <cstdint>
#include <string>

namespace w4k::campaign {

/// Emulation resolution every campaign cell streams at. Kept small (and a
/// multiple of 16 per SyntheticVideo's block constraint) so a 500-cell
/// smoke campaign finishes in CI time; the rate scale and symbol size are
/// resolution-matched (SessionConfig::scaled), so the operating regime
/// still mirrors the paper's 4K testbed.
inline constexpr int kCellWidth = 192;
inline constexpr int kCellHeight = 112;

/// What kind of run a cell performs.
enum class CellKind : std::uint8_t {
  kStatic = 0,   ///< single AP, static users (run_static)
  kMobile = 1,   ///< single AP, random-waypoint walkers (run_trace)
  kMultiAp = 2,  ///< 2-4 APs, handoff (+ optional relay), run_static_multi_ap
};

const char* to_string(CellKind k);

/// One fully specified campaign cell. Plain data; materialized into the
/// runtime objects via make_config / make_fault_plan / make_geometry.
struct ScenarioSpec {
  std::uint64_t campaign_seed = 0;
  std::uint64_t cell_index = 0;
  CellKind kind = CellKind::kStatic;

  // --- Video (content richness) ---------------------------------------
  video::Richness richness = video::Richness::kHigh;
  /// Drawn from a small palette so workers can cache the expensive frame
  /// contexts per (richness, video_seed) instead of re-encoding per cell.
  std::uint64_t video_seed = 11;

  // --- Population and geometry -----------------------------------------
  std::size_t n_users = 4;
  double distance_m = 3.0;   ///< placement distance (static / multi-AP)
  double mas_rad = 1.0;      ///< maximum angular spacing of the placement
  std::uint64_t placement_seed = 5;
  double room_length_m = 20.0;
  double room_width_m = 12.0;
  std::size_t n_aps = 1;     ///< > 1 only for kMultiAp

  // --- Mobility (kMobile) ----------------------------------------------
  double walk_speed_mps = 1.0;
  int n_beacons = 4;         ///< trace snapshots; frames = 3 per beacon

  // --- Streaming length (kStatic / kMultiAp) ---------------------------
  int n_frames = 8;

  // --- Faults (blockage intensity, churn rate, outages) ----------------
  bool faults_enabled = true;
  std::uint64_t fault_seed = 0;
  fault::RandomPlanConfig fault_cfg;

  // --- Session knobs -----------------------------------------------------
  std::uint64_t session_seed = 1;
  double mcs_margin_db = 0.0;
  bool relay = false;
  int quarantine_after = 6;
  int quarantine_reprobe_period = 8;
  int min_dwell_frames = 8;  ///< handoff dwell (kMultiAp)

  /// Frames the cell actually streams (kMobile derives it from the trace).
  int frames() const;

  /// Canonical text form: one "key value" line per field, doubles printed
  /// with %.17g. Two specs are identical iff their to_text() bytes are —
  /// the purity property compares exactly this.
  std::string to_text() const;
};

/// The generator: ScenarioGen::cell is a pure function of its arguments
/// (internally a dedicated splitmix64-seeded Rng; no globals, no clock).
struct ScenarioGen {
  static ScenarioSpec cell(std::uint64_t campaign_seed,
                           std::uint64_t cell_index);
};

/// Materializes the session config for a cell. Always validates (throws
/// std::invalid_argument on an internal generator bug — the property suite
/// sweeps for exactly that). decide_deadline_ms stays 0 for every cell:
/// campaign outputs must be pure functions of the spec.
core::SessionConfig make_config(const ScenarioSpec& spec);

/// The cell's fault plan (empty when !faults_enabled), validated against
/// the cell's user and AP counts.
fault::FaultPlan make_fault_plan(const ScenarioSpec& spec);

/// Multi-AP room geometry for a kMultiAp cell (default wall layout in the
/// cell's room), validated. Throws std::logic_error for other kinds.
channel::MultiApGeometry make_geometry(const ScenarioSpec& spec);

}  // namespace w4k::campaign

#include "campaign/scenario.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace w4k::campaign {
namespace {

/// splitmix64 mix of (campaign_seed, cell_index) — the same construction
/// sched::subset_seed uses to decouple parallel substreams. The cell Rng
/// is seeded from this, so neighbouring cells draw independent scenarios.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(CellKind k) {
  switch (k) {
    case CellKind::kStatic: return "static";
    case CellKind::kMobile: return "mobile";
    case CellKind::kMultiAp: return "multiap";
  }
  return "unknown";
}

int ScenarioSpec::frames() const {
  // run_trace streams 3 frames per beacon snapshot (30 FPS vs the 100 ms
  // ACO beacon), so a mobile cell's length is fixed by its trace.
  return kind == CellKind::kMobile ? 3 * n_beacons : n_frames;
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream os;
  os << "campaign_seed " << campaign_seed << '\n'
     << "cell_index " << cell_index << '\n'
     << "kind " << to_string(kind) << '\n'
     << "richness " << (richness == video::Richness::kHigh ? "high" : "low")
     << '\n'
     << "video_seed " << video_seed << '\n'
     << "n_users " << n_users << '\n'
     << "distance_m " << fmt(distance_m) << '\n'
     << "mas_rad " << fmt(mas_rad) << '\n'
     << "placement_seed " << placement_seed << '\n'
     << "room " << fmt(room_length_m) << ' ' << fmt(room_width_m) << '\n'
     << "n_aps " << n_aps << '\n'
     << "walk_speed_mps " << fmt(walk_speed_mps) << '\n'
     << "n_beacons " << n_beacons << '\n'
     << "n_frames " << frames() << '\n'
     << "faults_enabled " << (faults_enabled ? 1 : 0) << '\n'
     << "fault_seed " << fault_seed << '\n'
     << "fault_cfg " << fault_cfg.feedback_events << ' ' << fault_cfg.csi_events
     << ' ' << fault_cfg.blockage_bursts << ' ' << fault_cfg.budget_collapses
     << ' ' << fault_cfg.churn_events << ' ' << fault_cfg.max_burst_frames
     << ' ' << fmt(fault_cfg.min_blockage_db) << ' '
     << fmt(fault_cfg.max_blockage_db) << ' ' << fmt(fault_cfg.min_budget_scale)
     << ' ' << fault_cfg.ap_outages << ' ' << fault_cfg.handoff_beacon_losses
     << ' ' << fault_cfg.relay_churns << ' ' << fault_cfg.n_aps << '\n'
     << "session_seed " << session_seed << '\n'
     << "mcs_margin_db " << fmt(mcs_margin_db) << '\n'
     << "relay " << (relay ? 1 : 0) << '\n'
     << "quarantine_after " << quarantine_after << '\n'
     << "quarantine_reprobe_period " << quarantine_reprobe_period << '\n'
     << "min_dwell_frames " << min_dwell_frames << '\n';
  return os.str();
}

ScenarioSpec ScenarioGen::cell(std::uint64_t campaign_seed,
                               std::uint64_t cell_index) {
  Rng rng(mix(campaign_seed, cell_index));
  ScenarioSpec s;
  s.campaign_seed = campaign_seed;
  s.cell_index = cell_index;

  // Scenario family: the population leans on the multi-AP and static
  // sweeps (the behaviour spaces PR 6 and PR 8 opened) with a mobile
  // slice for trace-driven staleness.
  const double kind_draw = rng.uniform();
  s.kind = kind_draw < 0.40   ? CellKind::kStatic
           : kind_draw < 0.65 ? CellKind::kMobile
                              : CellKind::kMultiAp;

  // Video richness: a small palette of (richness, seed) pairs so workers
  // amortize context construction across cells.
  s.richness = rng.chance(0.5) ? video::Richness::kHigh
                               : video::Richness::kLow;
  static constexpr std::uint64_t kVideoSeeds[3] = {11, 23, 37};
  s.video_seed = kVideoSeeds[rng.below(3)];

  // Room: varied but always large enough to contain every placement drawn
  // below (distance <= 6 m from the origin-wall AP).
  s.room_length_m = rng.uniform(10.0, 20.0);
  s.room_width_m = rng.uniform(8.0, 12.0);

  s.placement_seed = rng.next();
  s.session_seed = 1 + rng.below(1u << 30);
  s.fault_seed = rng.next();
  s.faults_enabled = rng.chance(0.85);

  switch (s.kind) {
    case CellKind::kStatic:
      s.n_users = 2 + rng.below(7);                    // 2..8
      s.distance_m = rng.uniform(2.5, 6.0);
      s.mas_rad = rng.uniform(0.5, 2.0);
      s.n_frames = 6 + static_cast<int>(rng.below(5)); // 6..10
      s.mcs_margin_db = rng.uniform(0.0, 1.0);
      // A relay slice mirrors the `relay` golden: persistent blockage plus
      // quarantine makes D2D relay the recovery path.
      s.relay = rng.chance(0.25);
      break;
    case CellKind::kMobile:
      s.n_users = 1 + rng.below(3);                    // 1..3
      s.n_beacons = 3 + static_cast<int>(rng.below(3)); // 3..5 -> 9..15 frames
      s.walk_speed_mps = rng.uniform(0.5, 1.5);
      s.mcs_margin_db = rng.uniform(1.0, 2.0);
      break;
    case CellKind::kMultiAp:
      s.n_users = 3 + rng.below(6);                    // 3..8
      s.n_aps = 2 + rng.below(3);                      // 2..4
      s.distance_m = rng.uniform(2.5, 5.0);
      s.mas_rad = rng.uniform(0.5, 1.2);
      s.n_frames = 8 + static_cast<int>(rng.below(5)); // 8..12
      s.mcs_margin_db = rng.uniform(0.0, 1.0);
      s.min_dwell_frames = 2 + static_cast<int>(rng.below(5));
      s.relay = rng.chance(0.5);
      break;
  }
  if (s.relay) {
    // Relay targets quarantined users; make quarantine bite within a cell.
    s.quarantine_after = 3;
    s.quarantine_reprobe_period = 4;
  }

  // Fault intensity: blockage depth, churn rate, and outage counts are the
  // sweep dimensions the paper's evaluation populations vary.
  fault::RandomPlanConfig& fc = s.fault_cfg;
  fc.feedback_events = static_cast<int>(rng.below(7));       // 0..6
  fc.csi_events = static_cast<int>(rng.below(5));            // 0..4
  fc.blockage_bursts = static_cast<int>(rng.below(4));       // 0..3
  fc.budget_collapses = static_cast<int>(rng.below(3));      // 0..2
  fc.churn_events = s.n_users > 1 ? static_cast<int>(rng.below(4)) : 0;
  fc.max_burst_frames =
      1 + static_cast<std::uint32_t>(rng.below(
              static_cast<std::uint64_t>(s.frames())));
  fc.max_blockage_db = rng.uniform(10.0, 30.0);
  fc.min_blockage_db = rng.uniform(6.0, fc.max_blockage_db - 2.0);
  fc.min_budget_scale = rng.uniform(0.05, 0.4);
  if (s.kind == CellKind::kMultiAp) {
    fc.n_aps = s.n_aps;
    fc.ap_outages = static_cast<int>(rng.below(3));          // 0..2
    fc.handoff_beacon_losses = static_cast<int>(rng.below(3));
  }
  if (s.relay) fc.relay_churns = static_cast<int>(rng.below(3));
  return s;
}

core::SessionConfig make_config(const ScenarioSpec& spec) {
  core::SessionConfig cfg = core::SessionConfig::scaled(kCellWidth,
                                                        kCellHeight);
  cfg.seed = spec.session_seed;
  cfg.mcs_margin_db = spec.mcs_margin_db;
  cfg.quarantine_after = spec.quarantine_after;
  cfg.quarantine_reprobe_period = spec.quarantine_reprobe_period;
  // decide_deadline_ms stays 0: a deadline makes decide() clock-dependent,
  // and campaign summaries must be byte-stable across machines and worker
  // partitions.
  if (spec.kind == CellKind::kMultiAp) {
    cfg.handoff.n_aps = spec.n_aps;
    cfg.handoff.enabled = true;
    cfg.handoff.min_dwell_frames = spec.min_dwell_frames;
  }
  cfg.relay.enabled = spec.relay;
  cfg.validate(core::SessionConfig::kUnknown, spec.n_users);
  return cfg;
}

fault::FaultPlan make_fault_plan(const ScenarioSpec& spec) {
  if (!spec.faults_enabled) return {};
  const fault::FaultPlan plan = fault::FaultPlan::random(
      spec.fault_seed, static_cast<std::uint32_t>(spec.frames()),
      spec.n_users, spec.fault_cfg);
  plan.validate(spec.n_users, spec.n_aps);
  return plan;
}

channel::MultiApGeometry make_geometry(const ScenarioSpec& spec) {
  if (spec.kind != CellKind::kMultiAp)
    throw std::logic_error("make_geometry: not a multi-AP cell");
  channel::MultiApGeometry geo;
  geo.prop.room.length = spec.room_length_m;
  geo.prop.room.width = spec.room_width_m;
  geo.aps = channel::default_ap_layout(spec.n_aps, geo.prop.room);
  geo.validate();
  return geo;
}

}  // namespace w4k::campaign

// Statistical quality-regression gate over campaign metric distributions.
//
// The golden gate compares five pinned scenarios byte-for-byte; a campaign
// compares *populations*: for each metric, the per-cell values of the
// current run are tested against the blessed baseline distribution with a
// two-sided Mann-Whitney U test (normal approximation with tie
// correction — campaign metrics are heavily tied: most cells have zero
// handoffs, deliveries saturate at 1.0). A metric fails the gate when the
// shift is both statistically significant (p < alpha) and practically
// meaningful (|median delta| > min_effect), so a 500-cell run cannot fail
// on a microscopic-but-consistent float ripple, and a genuinely moved
// distribution cannot hide behind per-cell noise. A seeded bootstrap CI of
// the median delta is reported alongside for humans; it never decides.
#pragma once

#include "campaign/shard.h"

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace w4k::campaign {

/// Two-sided Mann-Whitney U via the normal approximation with tie and
/// continuity correction. Degenerate inputs (either sample empty, or all
/// N values identical) yield p = 1 — no evidence of a shift.
struct MwuResult {
  double u = 0.0;  ///< U statistic of the first sample
  double z = 0.0;  ///< tie-corrected standardized statistic
  double p = 1.0;  ///< two-sided p-value
};
MwuResult mann_whitney_u(std::span<const double> a, std::span<const double> b);

/// Percentile bootstrap CI for median(a) - median(b). Deterministic: the
/// resampling Rng is seeded from `seed` only.
struct BootstrapCi {
  double lo = 0.0;
  double hi = 0.0;
};
BootstrapCi bootstrap_median_delta_ci(std::span<const double> a,
                                      std::span<const double> b,
                                      int resamples = 1000,
                                      double confidence = 0.99,
                                      std::uint64_t seed = 0x5eed);

struct GateConfig {
  /// Per-metric two-sided significance threshold. The campaign tests
  /// kNumMetrics correlated metrics; 1e-4 keeps the family-wise false
  /// alarm rate comfortably below the golden gate's (zero) while a real
  /// regression across hundreds of cells lands at p orders of magnitude
  /// smaller.
  double alpha = 1e-4;
  /// Minimum |median delta| for a significant shift to count.
  double min_effect = 1e-4;
};

struct MetricVerdict {
  std::string name;
  std::size_t n_current = 0;
  std::size_t n_baseline = 0;
  double median_current = 0.0;
  double median_baseline = 0.0;
  double p = 1.0;
  BootstrapCi delta_ci;
  bool flagged = false;  ///< significant AND practically meaningful
};

struct GateReport {
  bool pass = true;
  std::vector<MetricVerdict> metrics;
  std::string structural_failure;  ///< non-statistical reason, if any
};

/// Runs the gate: every baseline metric distribution against the current
/// one. Structural failures (more failed/crashed cells than the baseline
/// had) fail the gate before any statistics run.
GateReport compare(const CampaignSummary& current,
                   const CampaignSummary& baseline,
                   const GateConfig& cfg = {});

/// Human-readable verdict table ("metric  n  median  baseline  p  ...").
void print_gate_report(std::ostream& os, const GateReport& report);

}  // namespace w4k::campaign

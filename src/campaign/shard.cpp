#include "campaign/shard.h"

#include "common/stats.h"
#include "obs/jsonlite.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace w4k::campaign {
namespace {

std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string jescape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

CellKind kind_from_string(const std::string& s) {
  if (s == "static") return CellKind::kStatic;
  if (s == "mobile") return CellKind::kMobile;
  if (s == "multiap") return CellKind::kMultiAp;
  throw std::runtime_error("unknown cell kind '" + s + "'");
}

}  // namespace

const std::array<const char*, kNumMetrics> kMetricNames = {
    "ssim_mean",          "ssim_p5",
    "psnr_mean",          "delivery_mean",
    "base_delivery",      "bad_frame_fraction",
    "csi_held_frames",    "shed_symbols",
    "handoffs",           "relay_packets",
};

CellMetrics metrics_from_report(const core::SessionReport& report) {
  CellMetrics m;
  std::vector<double> ssim = report.all_ssim();
  std::sort(ssim.begin(), ssim.end());
  m.v[0] = mean(ssim);
  m.v[1] = quantile_sorted(ssim, 0.05);
  m.v[2] = mean(report.all_psnr());
  const std::vector<double> decoded = report.all_decoded_fraction();
  m.v[3] = mean(decoded);
  std::size_t base_ok = 0;
  for (double d : decoded) base_ok += d > 0.0 ? 1 : 0;
  m.v[4] = decoded.empty()
               ? 0.0
               : static_cast<double>(base_ok) /
                     static_cast<double>(decoded.size());
  m.v[5] = report.bad_frame_fraction();
  const core::SessionReport::Totals t = report.totals();
  m.v[6] = static_cast<double>(t.csi_held_frames);
  m.v[7] = static_cast<double>(t.shed_symbols);
  m.v[8] = static_cast<double>(t.handoffs);
  m.v[9] = static_cast<double>(t.relay_packets);
  for (std::size_t i = 0; i < kNumMetrics; ++i)
    if (!std::isfinite(m.v[i]))
      throw std::runtime_error(std::string("non-finite metric ") +
                               kMetricNames[i]);
  return m;
}

const char* to_string(CellRow::Status s) {
  switch (s) {
    case CellRow::Status::kOk: return "ok";
    case CellRow::Status::kFailed: return "failed";
    case CellRow::Status::kCrashed: return "crashed";
  }
  return "unknown";
}

std::string to_jsonl(const CellRow& row) {
  std::ostringstream os;
  os << "{\"cell\":" << row.cell << ",\"kind\":\"" << to_string(row.kind)
     << "\",\"status\":\"" << to_string(row.status) << '"';
  if (row.status == CellRow::Status::kOk) {
    os << ",\"metrics\":{";
    for (std::size_t i = 0; i < kNumMetrics; ++i)
      os << (i ? "," : "") << '"' << kMetricNames[i]
         << "\":" << jnum(row.metrics.v[i]);
    os << '}';
  }
  if (!row.error.empty()) os << ",\"error\":\"" << jescape(row.error) << '"';
  os << ",\"wall_ms\":" << jnum(row.wall_ms) << '}';
  return os.str();
}

bool parse_row(const std::string& line, CellRow* out, std::string* err) {
  std::string perr;
  const auto doc = obs::json::parse(line, &perr);
  if (!doc || !doc->is_object()) {
    if (err) *err = perr.empty() ? "not a JSON object" : perr;
    return false;
  }
  const auto* cell = doc->find("cell");
  const auto* kind = doc->find("kind");
  const auto* status = doc->find("status");
  if (!cell || !cell->is_number() || !kind || !kind->is_string() || !status ||
      !status->is_string()) {
    if (err) *err = "missing cell/kind/status";
    return false;
  }
  CellRow row;
  row.cell = static_cast<std::uint64_t>(cell->number);
  try {
    row.kind = kind_from_string(kind->str);
  } catch (const std::exception& e) {
    if (err) *err = e.what();
    return false;
  }
  if (status->str == "ok") {
    row.status = CellRow::Status::kOk;
  } else if (status->str == "failed") {
    row.status = CellRow::Status::kFailed;
  } else if (status->str == "crashed") {
    row.status = CellRow::Status::kCrashed;
  } else {
    if (err) *err = "unknown status '" + status->str + "'";
    return false;
  }
  if (row.status == CellRow::Status::kOk) {
    const auto* metrics = doc->find("metrics");
    if (!metrics || !metrics->is_object()) {
      if (err) *err = "ok row without metrics";
      return false;
    }
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
      const auto* v = metrics->find(kMetricNames[i]);
      if (!v || !v->is_number()) {
        if (err) *err = std::string("missing metric ") + kMetricNames[i];
        return false;
      }
      row.metrics.v[i] = v->number;
    }
  }
  if (const auto* e = doc->find("error"); e && e->is_string())
    row.error = e->str;
  if (const auto* w = doc->find("wall_ms"); w && w->is_number())
    row.wall_ms = w->number;
  *out = row;
  return true;
}

std::vector<CellRow> read_shard(const std::string& path) {
  std::vector<CellRow> rows;
  std::ifstream is(path);
  if (!is) return rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    CellRow row;
    // A torn final line (worker crashed mid-write) parses as garbage and
    // is skipped: the parent reschedules the missing cell.
    if (parse_row(line, &row, nullptr)) rows.push_back(row);
  }
  return rows;
}

CampaignSummary summarize_rows(std::uint64_t campaign_seed,
                               std::uint64_t n_cells,
                               const std::vector<CellRow>& rows) {
  CampaignSummary s;
  s.campaign_seed = campaign_seed;
  s.cells = n_cells;
  for (const CellRow& row : rows) {
    if (row.status == CellRow::Status::kOk) {
      ++s.ok;
      for (std::size_t i = 0; i < kNumMetrics; ++i)
        s.metrics[i].push_back(row.metrics.v[i]);
    } else {
      ++s.failed;
    }
  }
  for (auto& values : s.metrics) std::sort(values.begin(), values.end());
  return s;
}

void write_summary(std::ostream& os, const CampaignSummary& s) {
  os << "{\"campaign_seed\":" << s.campaign_seed << ",\"cells\":" << s.cells
     << ",\"ok\":" << s.ok << ",\"failed\":" << s.failed << ",\"metrics\":{";
  for (std::size_t i = 0; i < kNumMetrics; ++i) {
    const std::vector<double>& v = s.metrics[i];
    os << (i ? "," : "") << '"' << kMetricNames[i]
       << "\":{\"count\":" << v.size();
    os << ",\"mean\":" << jnum(mean(v))
       << ",\"p5\":" << jnum(quantile_sorted(v, 0.05))
       << ",\"p50\":" << jnum(quantile_sorted(v, 0.50))
       << ",\"p99\":" << jnum(quantile_sorted(v, 0.99));
    os << ",\"values\":[";
    for (std::size_t j = 0; j < v.size(); ++j)
      os << (j ? "," : "") << jnum(v[j]);
    os << "]}";
  }
  os << "}}\n";
}

void write_summary_file(const std::string& path, const CampaignSummary& s) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("campaign: cannot create " + path);
  write_summary(os, s);
  if (!os) throw std::runtime_error("campaign: write failed: " + path);
}

CampaignSummary load_summary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("campaign: cannot open " + path);
  std::stringstream buf;
  buf << is.rdbuf();
  std::string err;
  const auto doc = obs::json::parse(buf.str(), &err);
  if (!doc || !doc->is_object())
    throw std::runtime_error("campaign: " + path + ": " +
                             (err.empty() ? "not a JSON object" : err));
  CampaignSummary s;
  const auto num = [&](const char* key) {
    const auto* v = doc->find(key);
    if (!v || !v->is_number())
      throw std::runtime_error("campaign: " + path + ": missing " + key);
    return static_cast<std::uint64_t>(v->number);
  };
  s.campaign_seed = num("campaign_seed");
  s.cells = num("cells");
  s.ok = num("ok");
  s.failed = num("failed");
  const auto* metrics = doc->find("metrics");
  if (!metrics || !metrics->is_object())
    throw std::runtime_error("campaign: " + path + ": missing metrics");
  for (std::size_t i = 0; i < kNumMetrics; ++i) {
    const auto* m = metrics->find(kMetricNames[i]);
    if (!m || !m->is_object())
      throw std::runtime_error("campaign: " + path + ": missing metric " +
                               kMetricNames[i]);
    const auto* values = m->find("values");
    if (!values || !values->is_array())
      throw std::runtime_error("campaign: " + path + ": metric " +
                               kMetricNames[i] + " has no values");
    for (const auto& v : values->arr) {
      if (!v.is_number())
        throw std::runtime_error("campaign: " + path + ": non-numeric value");
      s.metrics[i].push_back(v.number);
    }
    std::sort(s.metrics[i].begin(), s.metrics[i].end());
  }
  return s;
}

}  // namespace w4k::campaign

#include "gf256/gf256.h"

#include <array>
#include <cassert>

namespace w4k::gf256 {
namespace {

struct Tables {
  // exp_[i] = g^i for generator g = 2; period 255, extended to 510 entries
  // so mul can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};
  // mul_table_[a][b] = a * b, used by the row kernels: a 64 KiB table that
  // stays hot in L2 during Gaussian elimination.
  std::array<std::array<std::uint8_t, 256>, 256> mul_{};

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // undefined; callers must not use it
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        mul_[a][b] = (a == 0 || b == 0)
                         ? 0
                         : exp_[log_[a] + log_[b]];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return tables().mul_[a][b];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0 && "division by zero in GF(256)");
  if (b == 0) return 0;
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0 && "inverse of zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned e = (static_cast<unsigned>(t.log_[a]) * power) % 255;
  return t.exp_[e];
}

void mul_add_row(std::span<std::uint8_t> dst,
                 std::span<const std::uint8_t> src, std::uint8_t coeff) {
  assert(dst.size() == src.size());
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const auto& row = tables().mul_[coeff];
  std::size_t i = 0;
  const std::size_t n = dst.size();
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void scale_row(std::span<std::uint8_t> dst, std::uint8_t coeff) {
  if (coeff == 1) return;
  const auto& row = tables().mul_[coeff];
  for (auto& x : dst) x = row[x];
}

std::span<const std::uint8_t, 256> log_table() {
  return std::span<const std::uint8_t, 256>(tables().log_);
}

std::span<const std::uint8_t, 256> exp_table() {
  return std::span<const std::uint8_t, 256>(tables().exp_.data(), 256);
}

}  // namespace w4k::gf256

#include "gf256/gf256.h"

#include <array>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define W4K_GF256_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define W4K_GF256_NEON 1
#include <arm_neon.h>
#endif

namespace w4k::gf256 {
namespace {

struct Tables {
  // exp_[i] = g^i for generator g = 2; period 255, extended to 510 entries
  // so mul can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};
  // mul_table_[a][b] = a * b, used by the scalar row kernels: a 64 KiB
  // table that stays hot in L2 during Gaussian elimination.
  std::array<std::array<std::uint8_t, 256>, 256> mul_{};
  // Split-nibble tables for the SIMD kernels: nib_[c][0..15] = c * i and
  // nib_[c][16..31] = c * (i << 4), so c * b = nib_[c][b & 15] ^
  // nib_[c][16 + (b >> 4)]. 8 KiB total; each kernel call touches one
  // cache-line-aligned 32-byte entry.
  alignas(64) std::array<std::array<std::uint8_t, 32>, 256> nib_{};

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // undefined; callers must not use it
    for (unsigned a = 0; a < 256; ++a) {
      for (unsigned b = 0; b < 256; ++b) {
        mul_[a][b] = (a == 0 || b == 0)
                         ? 0
                         : exp_[log_[a] + log_[b]];
      }
    }
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned i = 0; i < 16; ++i) {
        nib_[c][i] = mul_[c][i];
        nib_[c][16 + i] = mul_[c][i << 4];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

// --- Row kernels -----------------------------------------------------------
// All kernels share one signature so dispatch is a pair of function
// pointers. `nib` is the coefficient's 32-byte split-nibble entry.

using MulAddFn = void (*)(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, std::uint8_t coeff,
                          const std::uint8_t* nib);
using ScaleFn = void (*)(std::uint8_t* dst, std::size_t n, std::uint8_t coeff,
                         const std::uint8_t* nib);

void mul_add_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t coeff, const std::uint8_t* /*nib*/) {
  const auto& row = tables().mul_[coeff];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void scale_scalar(std::uint8_t* dst, std::size_t n, std::uint8_t coeff,
                  const std::uint8_t* /*nib*/) {
  const auto& row = tables().mul_[coeff];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

#if defined(W4K_GF256_X86)

__attribute__((target("ssse3"))) void mul_add_ssse3(
    std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
    std::uint8_t coeff, const std::uint8_t* nib) {
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi16(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
  }
  if (i < n) mul_add_scalar(dst + i, src + i, n - i, coeff, nib);
}

__attribute__((target("ssse3"))) void scale_ssse3(std::uint8_t* dst,
                                                  std::size_t n,
                                                  std::uint8_t coeff,
                                                  const std::uint8_t* nib) {
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(d, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi16(d, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(pl, ph));
  }
  if (i < n) scale_scalar(dst + i, n - i, coeff, nib);
}

__attribute__((target("avx2"))) void mul_add_avx2(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::size_t n,
                                                  std::uint8_t coeff,
                                                  const std::uint8_t* nib) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi16(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(pl, ph)));
  }
  if (i < n) mul_add_ssse3(dst + i, src + i, n - i, coeff, nib);
}

__attribute__((target("avx2"))) void scale_avx2(std::uint8_t* dst,
                                                std::size_t n,
                                                std::uint8_t coeff,
                                                const std::uint8_t* nib) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(d, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi16(d, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(pl, ph));
  }
  if (i < n) scale_ssse3(dst + i, n - i, coeff, nib);
}

#endif  // W4K_GF256_X86

#if defined(W4K_GF256_NEON)

void mul_add_neon(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                  std::uint8_t coeff, const std::uint8_t* nib) {
  const uint8x16_t lo = vld1q_u8(nib);
  const uint8x16_t hi = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(s, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
    vst1q_u8(dst + i, veorq_u8(d, veorq_u8(pl, ph)));
  }
  if (i < n) mul_add_scalar(dst + i, src + i, n - i, coeff, nib);
}

void scale_neon(std::uint8_t* dst, std::size_t n, std::uint8_t coeff,
                const std::uint8_t* nib) {
  const uint8x16_t lo = vld1q_u8(nib);
  const uint8x16_t hi = vld1q_u8(nib + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(d, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(d, 4));
    vst1q_u8(dst + i, veorq_u8(pl, ph));
  }
  if (i < n) scale_scalar(dst + i, n - i, coeff, nib);
}

#endif  // W4K_GF256_NEON

// --- Dispatch --------------------------------------------------------------

struct Dispatch {
  Tier tier = Tier::kScalar;
  MulAddFn mul_add = &mul_add_scalar;
  ScaleFn scale = &scale_scalar;
};

bool apply_tier(Dispatch& d, Tier t) {
  if (!tier_supported(t)) return false;
  switch (t) {
    case Tier::kScalar:
      d = Dispatch{Tier::kScalar, &mul_add_scalar, &scale_scalar};
      return true;
#if defined(W4K_GF256_X86)
    case Tier::kSsse3:
      d = Dispatch{Tier::kSsse3, &mul_add_ssse3, &scale_ssse3};
      return true;
    case Tier::kAvx2:
      d = Dispatch{Tier::kAvx2, &mul_add_avx2, &scale_avx2};
      return true;
#endif
#if defined(W4K_GF256_NEON)
    case Tier::kNeon:
      d = Dispatch{Tier::kNeon, &mul_add_neon, &scale_neon};
      return true;
#endif
    default:
      return false;
  }
}

Tier detect_best_tier() {
  if (const char* env = std::getenv("W4K_FORCE_SCALAR")) {
    if (std::strcmp(env, "0") != 0) return Tier::kScalar;
  }
  for (Tier t : {Tier::kNeon, Tier::kAvx2, Tier::kSsse3})
    if (tier_supported(t)) return t;
  return Tier::kScalar;
}

Dispatch make_default_dispatch() {
  Dispatch d;
  apply_tier(d, detect_best_tier());
  return d;
}

Dispatch& dispatch() {
  static Dispatch d = make_default_dispatch();
  return d;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return tables().mul_[a][b];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("gf256::div: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0 && "inverse of zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned e = (static_cast<unsigned>(t.log_[a]) * power) % 255;
  return t.exp_[e];
}

void mul_add_row(std::span<std::uint8_t> dst,
                 std::span<const std::uint8_t> src, std::uint8_t coeff) {
  assert(dst.size() == src.size());
  if (coeff == 0) return;
  if (coeff == 1) {
    // Plain XOR; every tier would produce this, so keep the cheap path.
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const Dispatch& d = dispatch();
  d.mul_add(dst.data(), src.data(), dst.size(), coeff,
            tables().nib_[coeff].data());
}

void scale_row(std::span<std::uint8_t> dst, std::uint8_t coeff) {
  if (coeff == 1) return;
  const Dispatch& d = dispatch();
  d.scale(dst.data(), dst.size(), coeff, tables().nib_[coeff].data());
}

std::span<const std::uint8_t, 256> log_table() {
  return std::span<const std::uint8_t, 256>(tables().log_);
}

std::span<const std::uint8_t, 256> exp_table() {
  return std::span<const std::uint8_t, 256>(tables().exp_.data(), 256);
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSsse3: return "ssse3";
    case Tier::kAvx2: return "avx2";
    case Tier::kNeon: return "neon";
  }
  return "unknown";
}

Tier active_tier() { return dispatch().tier; }

bool tier_supported(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
#if defined(W4K_GF256_X86)
    case Tier::kSsse3:
      return __builtin_cpu_supports("ssse3");
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if defined(W4K_GF256_NEON)
    case Tier::kNeon:
      return true;  // NEON is baseline on AArch64
#endif
    default:
      return false;
  }
}

bool set_active_tier(Tier t) { return apply_tier(dispatch(), t); }

Tier refresh_dispatch() {
  apply_tier(dispatch(), detect_best_tier());
  return dispatch().tier;
}

}  // namespace w4k::gf256

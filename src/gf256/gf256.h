// Arithmetic over GF(2^8) with the RaptorQ/AES polynomial x^8+x^4+x^3+x^2+1
// (0x11D), implemented with log/exp tables. This is the field underlying
// the rateless source code in src/fec; the 1 - 1/256^(h+1) decode-failure
// bound the paper quotes for RaptorQ is a property of dense random linear
// combinations over this field.
//
// The row kernels (mul_add_row / scale_row) are the hot loops of fountain
// encoding and Gaussian-elimination decoding. They are dispatched at
// runtime to the widest SIMD tier the CPU supports, using the classic
// split-nibble PSHUFB technique: per coefficient, two 16-entry tables give
// the products of the low and high nibble, and one byte-shuffle per 16/32
// lanes combines them. Setting the W4K_FORCE_SCALAR environment variable
// (to anything but "0") pins the scalar tier for A/B testing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace w4k::gf256 {

/// Multiplies two field elements.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Divides a by b. Throws std::domain_error if b == 0 (in every build
/// mode: a silent 0 here would let a decoder bug corrupt data unnoticed).
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0.
std::uint8_t inv(std::uint8_t a);

/// a^power with a in GF(256), power >= 0.
std::uint8_t pow(std::uint8_t a, unsigned power);

/// dst[i] += coeff * src[i] over GF(256) (addition is XOR).
/// The hot loop of fountain encoding/decoding; SIMD-dispatched.
void mul_add_row(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
                 std::uint8_t coeff);

/// dst[i] *= coeff over GF(256). SIMD-dispatched.
void scale_row(std::span<std::uint8_t> dst, std::uint8_t coeff);

/// Access to the raw tables, exposed for tests validating field axioms.
std::span<const std::uint8_t, 256> log_table();
std::span<const std::uint8_t, 256> exp_table();

// --- Runtime kernel dispatch -----------------------------------------------

/// SIMD tiers for the row kernels, ordered from narrowest to widest.
enum class Tier {
  kScalar,  ///< byte-at-a-time 64 KiB-table lookups (always available)
  kSsse3,   ///< 16-byte PSHUFB split-nibble kernel (x86 SSSE3)
  kAvx2,    ///< 32-byte VPSHUFB split-nibble kernel (x86 AVX2)
  kNeon,    ///< 16-byte TBL split-nibble kernel (AArch64 NEON)
};

/// Human-readable tier name ("scalar", "ssse3", "avx2", "neon").
const char* tier_name(Tier t);

/// The tier the row kernels currently run on.
Tier active_tier();

/// True if the running CPU supports `t`.
bool tier_supported(Tier t);

/// Forces the row kernels onto `t`. Returns false (and leaves the dispatch
/// unchanged) if the CPU does not support it. Not thread-safe against
/// concurrent kernel calls; intended for tests and benchmarks.
bool set_active_tier(Tier t);

/// Re-runs CPU detection and the W4K_FORCE_SCALAR environment override,
/// as performed on first use. Returns the resulting tier.
Tier refresh_dispatch();

}  // namespace w4k::gf256

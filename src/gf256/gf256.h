// Arithmetic over GF(2^8) with the RaptorQ/AES polynomial x^8+x^4+x^3+x^2+1
// (0x11D), implemented with log/exp tables. This is the field underlying
// the rateless source code in src/fec; the 1 - 1/256^(h+1) decode-failure
// bound the paper quotes for RaptorQ is a property of dense random linear
// combinations over this field.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace w4k::gf256 {

/// Multiplies two field elements.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Divides a by b. Precondition: b != 0 (asserted; returns 0 in release
/// builds on violation so fuzzed inputs cannot UB).
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0.
std::uint8_t inv(std::uint8_t a);

/// a^power with a in GF(256), power >= 0.
std::uint8_t pow(std::uint8_t a, unsigned power);

/// dst[i] += coeff * src[i] over GF(256) (addition is XOR).
/// The hot loop of fountain encoding/decoding; unrolled over a per-
/// coefficient multiplication row for speed.
void mul_add_row(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
                 std::uint8_t coeff);

/// dst[i] *= coeff over GF(256).
void scale_row(std::span<std::uint8_t> dst, std::uint8_t coeff);

/// Access to the raw tables, exposed for tests validating field axioms.
std::span<const std::uint8_t, 256> log_table();
std::span<const std::uint8_t, 256> exp_table();

}  // namespace w4k::gf256

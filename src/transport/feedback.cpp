#include "transport/feedback.h"

#include <numeric>
#include <stdexcept>

namespace w4k::transport {

BandwidthEstimator::BandwidthEstimator(std::size_t window_packets)
    : window_(window_packets) {
  if (window_packets < 2)
    throw std::invalid_argument("BandwidthEstimator: window must be >= 2");
}

void BandwidthEstimator::on_probe(Seconds arrival_time, std::size_t bytes) {
  times_.push_back(arrival_time);
  bytes_.push_back(bytes);
  if (times_.size() > window_) {
    times_.erase(times_.begin());
    bytes_.erase(bytes_.begin());
  }
}

std::optional<Mbps> BandwidthEstimator::estimate() const {
  if (times_.size() < window_) return std::nullopt;
  const Seconds span = times_.back() - times_.front();
  if (span <= 0.0) return std::nullopt;
  // Bytes delivered *between* the first and last arrival: the first
  // packet's bytes were in flight before the window opened.
  const auto total = std::accumulate(bytes_.begin() + 1, bytes_.end(),
                                     std::size_t{0});
  return Mbps{static_cast<double>(total) * 8.0 / (span * 1e6)};
}

void BandwidthEstimator::reset() {
  times_.clear();
  bytes_.clear();
}

}  // namespace w4k::transport

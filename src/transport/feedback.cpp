#include "transport/feedback.h"

#include <cstring>
#include <numeric>
#include <stdexcept>

namespace w4k::transport {
namespace {

constexpr std::uint8_t kReportTag = 0xF1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

bool get_u32(const std::uint8_t* data, std::size_t size, std::size_t& off,
             std::uint32_t& v) {
  if (off + 4 > size) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data[off + i]) << (8 * i);
  off += 4;
  return true;
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) out.push_back((bits >> (8 * i)) & 0xFF);
}

bool get_f64(const std::uint8_t* data, std::size_t size, std::size_t& off,
             double& v) {
  if (off + 8 > size) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(data[off + i]) << (8 * i);
  std::memcpy(&v, &bits, sizeof(v));
  off += 8;
  return true;
}

}  // namespace

std::vector<std::uint8_t> serialize_report(const ReceptionReport& r) {
  std::vector<std::uint8_t> out;
  out.push_back(kReportTag);
  put_u32(out, r.frame_id);
  put_u32(out, static_cast<std::uint32_t>(r.user));
  put_u32(out, static_cast<std::uint32_t>(r.symbols_received.size()));
  for (std::size_t s : r.symbols_received)
    put_u32(out, static_cast<std::uint32_t>(s));
  // Decoded flags ride as a bit-packed tail (empty mask = zero flag byte).
  out.push_back(r.unit_decoded.empty() ? 0 : 1);
  if (!r.unit_decoded.empty()) {
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < r.unit_decoded.size(); ++i) {
      if (r.unit_decoded[i]) acc |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        out.push_back(acc);
        acc = 0;
      }
    }
    if (r.unit_decoded.size() % 8 != 0) out.push_back(acc);
  }
  out.push_back(r.measured_bandwidth ? 1 : 0);
  if (r.measured_bandwidth) put_f64(out, r.measured_bandwidth->value);
  return out;
}

std::optional<ReceptionReport> parse_report(const std::uint8_t* data,
                                            std::size_t size) {
  std::size_t off = 0;
  if (size == 0 || data[off++] != kReportTag) return std::nullopt;
  ReceptionReport r;
  std::uint32_t user = 0, n_units = 0;
  if (!get_u32(data, size, off, r.frame_id)) return std::nullopt;
  if (!get_u32(data, size, off, user)) return std::nullopt;
  if (!get_u32(data, size, off, n_units)) return std::nullopt;
  if (n_units > 1'000'000) return std::nullopt;  // implausible: reject
  r.user = user;
  r.symbols_received.resize(n_units);
  for (std::uint32_t i = 0; i < n_units; ++i) {
    std::uint32_t s = 0;
    if (!get_u32(data, size, off, s)) return std::nullopt;
    r.symbols_received[i] = s;
  }
  if (off >= size) return std::nullopt;
  const bool has_mask = data[off++] != 0;
  if (has_mask) {
    const std::size_t mask_bytes = (n_units + 7) / 8;
    if (off + mask_bytes > size) return std::nullopt;
    r.unit_decoded.resize(n_units);
    for (std::uint32_t i = 0; i < n_units; ++i)
      r.unit_decoded[i] = (data[off + i / 8] >> (i % 8)) & 1;
    off += mask_bytes;
  }
  if (off >= size) return std::nullopt;
  const bool has_bw = data[off++] != 0;
  if (has_bw) {
    double bw = 0.0;
    if (!get_f64(data, size, off, bw)) return std::nullopt;
    r.measured_bandwidth = Mbps{bw};
  }
  if (off != size) return std::nullopt;  // trailing garbage
  return r;
}

ReportCollector::ReportCollector(std::uint32_t frame_id, std::size_t n_users,
                                 std::size_t n_units) {
  reset(frame_id, n_users, n_units);
}

void ReportCollector::reset(std::uint32_t frame_id, std::size_t n_users,
                            std::size_t n_units) {
  frame_id_ = frame_id;
  n_units_ = n_units;
  if (slots_.size() != n_users) slots_.resize(n_users);
  present_.assign(n_users, 0);
  reported_ = 0;
}

bool ReportCollector::accept(const ReceptionReport& r) {
  if (r.frame_id != frame_id_) return false;
  if (r.user >= slots_.size()) return false;
  if (present_[r.user]) return false;  // duplicate: first report wins
  if (r.symbols_received.size() != n_units_) return false;
  if (!r.unit_decoded.empty() && r.unit_decoded.size() != n_units_)
    return false;
  slots_[r.user] = r;  // copy-assign: the reused slot's capacity survives
  present_[r.user] = 1;
  ++reported_;
  return true;
}

const ReceptionReport* ReportCollector::report(std::size_t user) const {
  if (user >= slots_.size() || present_[user] == 0) return nullptr;
  return &slots_[user];
}

std::vector<std::size_t> ReportCollector::missing_users() const {
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < slots_.size(); ++u)
    if (present_[u] == 0) out.push_back(u);
  return out;
}

std::optional<std::size_t> ReportCollector::deficit(
    std::size_t user, std::size_t unit, std::size_t k_symbols) const {
  const ReceptionReport* r = report(user);
  if (r == nullptr || unit >= n_units_) return std::nullopt;
  const bool decoded =
      !r->unit_decoded.empty() && r->unit_decoded[unit] != 0;
  if (decoded) return 0;
  const std::size_t recv = r->symbols_received[unit];
  return recv < k_symbols ? k_symbols - recv : 1;
}

BandwidthEstimator::BandwidthEstimator(std::size_t window_packets)
    : window_(window_packets) {
  if (window_packets < 2)
    throw std::invalid_argument("BandwidthEstimator: window must be >= 2");
}

void BandwidthEstimator::on_probe(Seconds arrival_time, std::size_t bytes) {
  times_.push_back(arrival_time);
  bytes_.push_back(bytes);
  if (times_.size() > window_) {
    times_.erase(times_.begin());
    bytes_.erase(bytes_.begin());
  }
}

std::optional<Mbps> BandwidthEstimator::estimate() const {
  if (times_.size() < window_) return std::nullopt;
  const Seconds span = times_.back() - times_.front();
  if (span <= 0.0) return std::nullopt;
  // Bytes delivered *between* the first and last arrival: the first
  // packet's bytes were in flight before the window opened.
  const auto total = std::accumulate(bytes_.begin() + 1, bytes_.end(),
                                     std::size_t{0});
  return Mbps{static_cast<double>(total) * 8.0 / (span * 1e6)};
}

void BandwidthEstimator::reset() {
  times_.clear();
  bytes_.clear();
}

}  // namespace w4k::transport

// Receiver feedback (Sec. 2.6/2.7): per-coding-unit reception reports used
// for fountain-coded retransmission, and arrival-spacing bandwidth
// estimation used to drive the leaky bucket.
#pragma once

#include "common/units.h"
#include "fec/coding_unit.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace w4k::transport {

/// One receiver's per-frame report: for each coding unit, how many symbols
/// arrived. The sender subtracts this from what it transmitted and sends
/// that many *fresh* symbols as makeup (Sec. 2.6's "additional P packets").
struct ReceptionReport {
  std::uint32_t frame_id = 0;
  std::size_t user = 0;
  /// symbols_received[i] for frame unit i (indexing matches the sender's
  /// sched::frame_units order).
  std::vector<std::size_t> symbols_received;
  /// unit_decoded[i]: the receiver decoded unit i. Not derivable from the
  /// count alone — a decode attempt at exactly k symbols can hit the
  /// rateless code's residual rank deficiency, in which case the receiver
  /// holds k symbols but still needs one more.
  std::vector<std::uint8_t> unit_decoded;
  /// Measured link bandwidth, if the estimator had enough probe packets.
  std::optional<Mbps> measured_bandwidth;
};

/// Serializes a report to the on-air byte layout (little-endian, versioned
/// one-byte tag). parse_report returns std::nullopt on truncation, a bad
/// tag, or an inconsistent payload (decoded mask sized differently from the
/// symbol counts) — a malformed report is dropped, never trusted.
std::vector<std::uint8_t> serialize_report(const ReceptionReport& r);
std::optional<ReceptionReport> parse_report(const std::uint8_t* data,
                                            std::size_t size);

/// Sender-side mailbox for one frame's reports: deduplicates (first report
/// per user wins — retransmitted duplicates carry no new information),
/// rejects reports for other frames or unknown users, tolerates arbitrary
/// arrival order, and knows which users never reported so the sender can
/// fall back to a blind worst-case makeup budget for them.
class ReportCollector {
 public:
  ReportCollector(std::uint32_t frame_id, std::size_t n_users,
                  std::size_t n_units);

  /// Re-arms the collector for a new frame. Slot storage is reused: a
  /// collector embedded in the per-frame engine performs zero heap
  /// allocations once its slots have reached their steady-state sizes.
  void reset(std::uint32_t frame_id, std::size_t n_users,
             std::size_t n_units);

  /// Accepts one report. Returns false (and ignores it) when it targets a
  /// different frame, an out-of-range user, repeats a user already heard
  /// from, or its per-unit vectors are not exactly n_units long.
  bool accept(const ReceptionReport& r);

  /// The accepted report for `user`, or nullptr while it is missing.
  const ReceptionReport* report(std::size_t user) const;

  std::size_t reported() const { return reported_; }
  bool complete() const { return reported_ == slots_.size(); }
  std::vector<std::size_t> missing_users() const;

  /// Symbols still needed by `user` toward decoding unit `unit` with
  /// `k_symbols` source symbols: 0 once decoded, the shortfall below k, or
  /// 1 for a rank-deficient decode at exactly k. Returns std::nullopt for
  /// users that have not reported (the caller chooses the blind budget).
  std::optional<std::size_t> deficit(std::size_t user, std::size_t unit,
                                     std::size_t k_symbols) const;

 private:
  std::uint32_t frame_id_ = 0;
  std::size_t n_units_ = 0;
  /// Slot storage stays allocated across reset(); `present_` tracks which
  /// slots hold this frame's report (copy-assigning a report into a reused
  /// slot recycles its vectors' capacity).
  std::vector<ReceptionReport> slots_;
  std::vector<std::uint8_t> present_;
  std::size_t reported_ = 0;
};

/// Estimates link bandwidth from the arrival spacing of back-to-back probe
/// packets: bw = bytes_between / (t_last - t_first) over a window of 100
/// packets (Sec. 2.7). Probes come from the highest layer so congestion
/// losses hit expendable data.
class BandwidthEstimator {
 public:
  explicit BandwidthEstimator(std::size_t window_packets = 100);

  /// Records one probe arrival.
  void on_probe(Seconds arrival_time, std::size_t bytes);

  /// Current estimate; std::nullopt until a full window has been seen.
  std::optional<Mbps> estimate() const;

  /// Clears the window (e.g., at a large time gap between frames).
  void reset();

  std::size_t samples() const { return times_.size(); }

 private:
  std::size_t window_;
  std::vector<Seconds> times_;
  std::vector<std::size_t> bytes_;
};

}  // namespace w4k::transport

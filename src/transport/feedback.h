// Receiver feedback (Sec. 2.6/2.7): per-coding-unit reception reports used
// for fountain-coded retransmission, and arrival-spacing bandwidth
// estimation used to drive the leaky bucket.
#pragma once

#include "common/units.h"
#include "fec/coding_unit.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace w4k::transport {

/// One receiver's per-frame report: for each coding unit, how many symbols
/// arrived. The sender subtracts this from what it transmitted and sends
/// that many *fresh* symbols as makeup (Sec. 2.6's "additional P packets").
struct ReceptionReport {
  std::uint32_t frame_id = 0;
  std::size_t user = 0;
  /// symbols_received[i] for frame unit i (indexing matches the sender's
  /// sched::frame_units order).
  std::vector<std::size_t> symbols_received;
  /// Measured link bandwidth, if the estimator had enough probe packets.
  std::optional<Mbps> measured_bandwidth;
};

/// Estimates link bandwidth from the arrival spacing of back-to-back probe
/// packets: bw = bytes_between / (t_last - t_first) over a window of 100
/// packets (Sec. 2.7). Probes come from the highest layer so congestion
/// losses hit expendable data.
class BandwidthEstimator {
 public:
  explicit BandwidthEstimator(std::size_t window_packets = 100);

  /// Records one probe arrival.
  void on_probe(Seconds arrival_time, std::size_t bytes);

  /// Current estimate; std::nullopt until a full window has been seen.
  std::optional<Mbps> estimate() const;

  /// Clears the window (e.g., at a large time gap between frames).
  void reset();

  std::size_t samples() const { return times_.size(); }

 private:
  std::size_t window_;
  std::vector<Seconds> times_;
  std::vector<std::size_t> bytes_;
};

}  // namespace w4k::transport

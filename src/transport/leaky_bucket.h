// Leaky-bucket rate control (Sec. 2.7).
//
// Per multicast group the sender holds a byte credit that refills at the
// expected link throughput and is capped at a small depth (default: 10
// packets' worth) to bound queueing delay at the driver. A packet may be
// sent only when the bucket holds enough credit; without this, the kernel
// queue overflows and drops whole bursts (the paper's Fig. 9 ablation).
#pragma once

#include "common/units.h"

#include <cstddef>

namespace w4k::transport {

class LeakyBucket {
 public:
  /// `fill_rate`: expected link throughput. `max_credit_bytes`: bucket
  /// depth (paper: "a small value (e.g., 10 packets)").
  LeakyBucket(Mbps fill_rate, std::size_t max_credit_bytes);

  /// Advances time, accruing credit (clamped at the cap).
  void advance(Seconds dt);

  /// Whether a packet of `bytes` may be sent now. Tolerant of the
  /// credit-arithmetic rounding slack: waiting exactly time_until(bytes)
  /// always satisfies can_send(bytes), even when the seconds<->bytes
  /// round-trip leaves the credit a few ulps short.
  bool can_send(std::size_t bytes) const;

  /// Deducts a sent packet. Call only when can_send() is true (asserted).
  void on_send(std::size_t bytes);

  /// Time until credit suffices for `bytes` at the current rate (0 when
  /// sendable now; +inf when the rate is 0).
  Seconds time_until(std::size_t bytes) const;

  /// Applies the receiver's bandwidth feedback for the next frame.
  void set_rate(Mbps rate) { rate_ = rate; }

  Mbps rate() const { return rate_; }
  double credit_bytes() const { return credit_; }
  std::size_t capacity() const { return cap_; }

 private:
  Mbps rate_;
  std::size_t cap_;
  double credit_;
};

}  // namespace w4k::transport

#include "transport/leaky_bucket.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace w4k::transport {

LeakyBucket::LeakyBucket(Mbps fill_rate, std::size_t max_credit_bytes)
    : rate_(fill_rate), cap_(max_credit_bytes),
      credit_(static_cast<double>(max_credit_bytes)) {
  if (max_credit_bytes == 0)
    throw std::invalid_argument("LeakyBucket: zero capacity");
}

void LeakyBucket::advance(Seconds dt) {
  if (dt <= 0.0) return;
  credit_ = std::min(static_cast<double>(cap_),
                     credit_ + rate_.bytes_in(dt));
}

bool LeakyBucket::can_send(std::size_t bytes) const {
  return credit_ >= static_cast<double>(bytes);
}

void LeakyBucket::on_send(std::size_t bytes) {
  assert(can_send(bytes) && "LeakyBucket::on_send without credit");
  credit_ -= static_cast<double>(bytes);
}

Seconds LeakyBucket::time_until(std::size_t bytes) const {
  const double deficit = static_cast<double>(bytes) - credit_;
  if (deficit <= 0.0) return 0.0;
  if (rate_.value <= 0.0) return 1e18;
  return deficit * 8.0 / (rate_.value * 1e6);
}

}  // namespace w4k::transport

#include "transport/leaky_bucket.h"

#include "verify/invariants.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace w4k::transport {

namespace {
// Credit arithmetic goes through seconds<->bytes conversions, so a sender
// that waited exactly time_until(bytes) may land a rounding error short.
constexpr double kCreditEps = 1e-3;  // bytes
}  // namespace

LeakyBucket::LeakyBucket(Mbps fill_rate, std::size_t max_credit_bytes)
    : rate_(fill_rate), cap_(max_credit_bytes),
      credit_(static_cast<double>(max_credit_bytes)) {
  if (max_credit_bytes == 0)
    throw std::invalid_argument("LeakyBucket: zero capacity");
}

void LeakyBucket::advance(Seconds dt) {
  if (dt <= 0.0) return;
  credit_ = std::min(static_cast<double>(cap_),
                     credit_ + rate_.bytes_in(dt));
  verify::check(credit_ <= static_cast<double>(cap_) + kCreditEps,
                "transport.bucket-over-capacity", [&] {
                  return "credit " + std::to_string(credit_) + " > cap " +
                         std::to_string(cap_);
                });
}

bool LeakyBucket::can_send(std::size_t bytes) const {
  // Tolerate the rounding slack: a sender that advance()s by exactly
  // time_until(bytes) accrues credit through a bytes->seconds->bytes
  // round-trip and can land kCreditEps short of `bytes`. Without the
  // tolerance that sender fails can_send (and trips on_send's assert)
  // purely on fp noise; on_send already clamps the matching sub-epsilon
  // negative level back to zero.
  return credit_ + kCreditEps >= static_cast<double>(bytes);
}

void LeakyBucket::on_send(std::size_t bytes) {
  assert(can_send(bytes) && "LeakyBucket::on_send without credit");
  verify::check(credit_ + kCreditEps >= static_cast<double>(bytes),
                "transport.bucket-send-without-credit", [&] {
                  return "send of " + std::to_string(bytes) +
                         " bytes with credit " + std::to_string(credit_);
                });
  credit_ -= static_cast<double>(bytes);
  // The level must never go (more than fp-noise) negative; clamp the noise
  // so it cannot accumulate across millions of sends.
  verify::check(credit_ >= -kCreditEps, "transport.bucket-negative-level",
                [&] { return "credit " + std::to_string(credit_); });
  credit_ = std::max(credit_, 0.0);
}

Seconds LeakyBucket::time_until(std::size_t bytes) const {
  const double deficit = static_cast<double>(bytes) - credit_;
  if (deficit <= 0.0) return 0.0;
  if (rate_.value <= 0.0) return 1e18;
  return deficit * 8.0 / (rate_.value * 1e6);
}

}  // namespace w4k::transport

// UDP-style packet framing for the multicast data plane.
//
// The system runs over UDP (Sec. 2.7): loss recovery is fountain-coded
// retransmission, not ARQ, so a packet is just a header identifying which
// coding unit and encoding symbol it carries plus the symbol payload. The
// emulator may strip the payload and track symbol counts only — the header
// carries everything the receiver's bookkeeping needs.
#pragma once

#include "fec/coding_unit.h"

#include <cstdint>
#include <type_traits>
#include <vector>

namespace w4k::transport {

// ---------------------------------------------------------------------------
// Serial-number arithmetic (RFC 1982 style) for the wrapping sequence
// fields below. `frame_id` is a u32 that a long-lived sender increments
// every frame and `group_id` a u16: both wrap, so ordering and distance
// comparisons on the feedback/dedupe path must NOT use plain `<` — at the
// wrap boundary 0x00000000 is *newer* than 0xffffffff. Equality checks
// (e.g. ReportCollector's frame match) are wrap-safe as-is.
//
// seq_less(a, b): a precedes b, i.e. the forward distance a -> b is in
// (0, 2^(N-1)). Comparisons exactly half the space apart are ambiguous by
// construction; this implementation reports them as unordered (both
// seq_less(a, b) and seq_less(b, a) false), matching RFC 1982.

/// Forward (wrapping) distance from `from` to `to`: how many increments
/// move `from` onto `to`. Well-defined for any pair.
template <typename U>
constexpr U seq_distance(U from, U to) {
  static_assert(std::is_unsigned_v<U>, "serial arithmetic is unsigned");
  return static_cast<U>(to - from);
}

/// True when `a` is strictly earlier than `b` in serial-number order.
template <typename U>
constexpr bool seq_less(U a, U b) {
  static_assert(std::is_unsigned_v<U>, "serial arithmetic is unsigned");
  constexpr U half = static_cast<U>(U(1) << (sizeof(U) * 8 - 1));
  const U d = static_cast<U>(b - a);
  return d != 0 && d < half;
}

/// True when `a` is at or earlier than `b` in serial-number order.
template <typename U>
constexpr bool seq_less_eq(U a, U b) {
  return a == b || seq_less(a, b);
}

struct PacketHeader {
  std::uint32_t frame_id = 0;
  std::uint16_t group_id = 0;     ///< multicast group the packet targets
  fec::UnitId unit;               ///< coding unit (layer, unit index)
  fec::Esi esi = 0;               ///< encoding symbol id
  /// Measurement packets bypass rate control and are sent back-to-back
  /// for the receiver's bandwidth estimator (Sec. 2.7).
  bool bandwidth_probe = false;
};

struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;  ///< empty in accounting-mode emulation

  /// On-air size in bytes (header overhead + symbol payload).
  std::size_t wire_size(std::size_t symbol_size) const {
    return kHeaderBytes + (payload.empty() ? symbol_size : payload.size());
  }

  static constexpr std::size_t kHeaderBytes = 16;
};

}  // namespace w4k::transport

// UDP-style packet framing for the multicast data plane.
//
// The system runs over UDP (Sec. 2.7): loss recovery is fountain-coded
// retransmission, not ARQ, so a packet is just a header identifying which
// coding unit and encoding symbol it carries plus the symbol payload. The
// emulator may strip the payload and track symbol counts only — the header
// carries everything the receiver's bookkeeping needs.
#pragma once

#include "fec/coding_unit.h"

#include <cstdint>
#include <vector>

namespace w4k::transport {

struct PacketHeader {
  std::uint32_t frame_id = 0;
  std::uint16_t group_id = 0;     ///< multicast group the packet targets
  fec::UnitId unit;               ///< coding unit (layer, unit index)
  fec::Esi esi = 0;               ///< encoding symbol id
  /// Measurement packets bypass rate control and are sent back-to-back
  /// for the receiver's bandwidth estimator (Sec. 2.7).
  bool bandwidth_probe = false;
};

struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;  ///< empty in accounting-mode emulation

  /// On-air size in bytes (header overhead + symbol payload).
  std::size_t wire_size(std::size_t symbol_size) const {
    return kHeaderBytes + (payload.empty() ? symbol_size : payload.size());
  }

  static constexpr std::size_t kHeaderBytes = 16;
};

}  // namespace w4k::transport

// Full-reference video quality metrics (stand-in for the paper's FFmpeg
// SSIM computation).
//
// SSIM follows Wang et al. 2004 in the FFmpeg variant: 8x8 box windows
// with stride 4 on the luma plane, C1 = (0.01*255)^2, C2 = (0.03*255)^2.
// PSNR is the standard 10*log10(255^2 / MSE) on luma.
#pragma once

#include "video/frame.h"
#include "video/layered.h"

#include <array>

namespace w4k::quality {

/// Mean SSIM between two luma planes of identical dimensions.
/// Throws std::invalid_argument on dimension mismatch.
double ssim(const video::Plane& reference, const video::Plane& distorted);

/// Mean SSIM on the luma planes of two frames.
double ssim(const video::Frame& reference, const video::Frame& distorted);

/// PSNR in dB on luma; identical planes yield +inf capped at 100 dB
/// (FFmpeg's convention for lossless frames).
double psnr(const video::Plane& reference, const video::Plane& distorted);
double psnr(const video::Frame& reference, const video::Frame& distorted);

/// Multi-scale SSIM (Wang et al. 2003): SSIM evaluated over a dyadic
/// pyramid with the standard five per-scale exponents. More faithful to
/// perceived 4K quality than single-scale SSIM because coarse-structure
/// errors (exactly what losing low layers causes) are weighted across
/// scales. Requires luma at least 2^(scales-1) * 8 in both dimensions.
double ms_ssim(const video::Plane& reference, const video::Plane& distorted,
               int scales = 5);
double ms_ssim(const video::Frame& reference, const video::Frame& distorted,
               int scales = 5);

/// The quality-model features of Sec. 2.3 that depend only on content:
/// cumulative SSIM when everything up to layer i is received, and the SSIM
/// of the blank (mid-gray) frame.
struct ContentFeatures {
  /// up_to[i]: SSIM of the reconstruction from layers 0..i complete.
  std::array<double, video::kNumLayers> up_to_layer{};
  double blank = 0.0;
};

/// Computes the content features for a frame given its encoding.
ContentFeatures content_features(const video::Frame& original,
                                 const video::EncodedFrame& encoded);

}  // namespace w4k::quality

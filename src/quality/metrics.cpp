#include "quality/metrics.h"

#include "common/thread_pool.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace w4k::quality {
namespace {

constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
constexpr int kWindow = 8;
constexpr int kStride = 4;

// Window rows per parallel_for chunk. Fixed (never derived from the pool
// size) so the band boundaries — and therefore the floating-point
// summation order — are identical for any thread count.
constexpr std::size_t kBandRows = 32;

void check_same(const video::Plane& a, const video::Plane& b) {
  if (a.width != b.width || a.height != b.height)
    throw std::invalid_argument("quality metric: plane dimension mismatch");
  if (a.width < kWindow || a.height < kWindow)
    throw std::invalid_argument("quality metric: plane smaller than window");
}

/// Partial sums of one horizontal band of SSIM windows. `ssim` accumulates
/// the full per-window SSIM (luminance * contrast-structure), `cs` the
/// contrast-structure term alone (needed by MS-SSIM's coarse scales).
struct BandSums {
  double ssim = 0.0;
  double cs = 0.0;
  long windows = 0;
};

/// Accumulates windows whose top rows are wy = wr * kStride for wr in
/// [wr_begin, wr_end). The per-window arithmetic is shared by ssim() and
/// ms_ssim() so the two metrics stay mutually consistent.
BandSums band_sums(const video::Plane& a, const video::Plane& b,
                   std::size_t wr_begin, std::size_t wr_end) {
  BandSums out;
  for (std::size_t wr = wr_begin; wr < wr_end; ++wr) {
    const int wy = static_cast<int>(wr) * kStride;
    for (int wx = 0; wx + kWindow <= a.width; wx += kStride) {
      long sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (int y = 0; y < kWindow; ++y) {
        const std::uint8_t* ra =
            a.pix.data() + static_cast<std::size_t>(wy + y) * a.width + wx;
        const std::uint8_t* rb =
            b.pix.data() + static_cast<std::size_t>(wy + y) * b.width + wx;
        for (int x = 0; x < kWindow; ++x) {
          const int va = ra[x];
          const int vb = rb[x];
          sa += va;
          sb += vb;
          saa += va * va;
          sbb += vb * vb;
          sab += va * vb;
        }
      }
      constexpr double n = kWindow * kWindow;
      const double ma = sa / n;
      const double mb = sb / n;
      const double va = saa / n - ma * ma;
      const double vb = sbb / n - mb * mb;
      const double cov = sab / n - ma * mb;
      const double cs = (2.0 * cov + kC2) / (va + vb + kC2);
      const double l = (2.0 * ma * mb + kC1) / (ma * ma + mb * mb + kC1);
      out.cs += cs;
      out.ssim += l * cs;
      ++out.windows;
    }
  }
  return out;
}

/// Tiles the window grid into row bands dispatched on the shared pool and
/// reduces the per-band sums in band order (deterministic for any pool
/// size; see kBandRows).
BandSums plane_sums(const video::Plane& a, const video::Plane& b) {
  const std::size_t n_wrows =
      static_cast<std::size_t>((a.height - kWindow) / kStride) + 1;
  const std::size_t n_bands = (n_wrows + kBandRows - 1) / kBandRows;
  // Per-thread band scratch: ssim runs once per user per frame in the
  // emulator, and the band vector is the only allocation on that path.
  // The local reference is load-bearing: thread_local variables are not
  // captured by lambdas, so without it each pool worker would touch its
  // own (empty) instance instead of the dispatcher's.
  thread_local std::vector<BandSums> bands_tls;
  std::vector<BandSums>& bands = bands_tls;
  bands.assign(n_bands, BandSums{});
  ThreadPool::shared().parallel_for(
      0, n_wrows, kBandRows, [&](std::size_t wr_begin, std::size_t wr_end) {
        bands[wr_begin / kBandRows] = band_sums(a, b, wr_begin, wr_end);
      });
  BandSums total;
  for (const BandSums& s : bands) {
    total.ssim += s.ssim;
    total.cs += s.cs;
    total.windows += s.windows;
  }
  return total;
}

}  // namespace

double ssim(const video::Plane& reference, const video::Plane& distorted) {
  check_same(reference, distorted);
  const BandSums s = plane_sums(reference, distorted);
  // Anti-correlated windows can push the mean below zero; clamp to the
  // documented [0, 1] range, consistent with ms_ssim's per-scale clamp
  // (zero structural similarity is the floor the pipeline reasons about).
  return s.windows
             ? std::max(s.ssim / static_cast<double>(s.windows), 0.0)
             : 1.0;
}

double ssim(const video::Frame& reference, const video::Frame& distorted) {
  return ssim(reference.y, distorted.y);
}

namespace {

/// 2x2 box downsampling (the MS-SSIM pyramid step), parallel over output
/// rows (each output pixel depends on disjoint inputs: bit-exact).
video::Plane downsample(const video::Plane& p) {
  video::Plane out(p.width / 2, p.height / 2);
  ThreadPool::shared().parallel_for(
      0, static_cast<std::size_t>(out.height), 64,
      [&](std::size_t y_begin, std::size_t y_end) {
        for (std::size_t yy = y_begin; yy < y_end; ++yy) {
          const int y = static_cast<int>(yy);
          for (int x = 0; x < out.width; ++x) {
            const int sum = p.at(2 * x, 2 * y) + p.at(2 * x + 1, 2 * y) +
                            p.at(2 * x, 2 * y + 1) + p.at(2 * x + 1, 2 * y + 1);
            out.at(x, y) = static_cast<std::uint8_t>((sum + 2) / 4);
          }
        }
      });
  return out;
}

// Standard MS-SSIM per-scale weights (Wang et al. 2003).
constexpr double kMsWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363, 0.1333};

}  // namespace

double ms_ssim(const video::Plane& reference, const video::Plane& distorted,
               int scales) {
  check_same(reference, distorted);
  if (scales < 1 || scales > 5)
    throw std::invalid_argument("ms_ssim: scales must be in 1..5");
  const int min_dim = kWindow << (scales - 1);
  if (reference.width < min_dim || reference.height < min_dim)
    throw std::invalid_argument("ms_ssim: plane too small for scale count");

  video::Plane a = reference;
  video::Plane b = distorted;
  double result = 1.0;
  for (int s = 0; s < scales; ++s) {
    const BandSums sums = plane_sums(a, b);
    const double mean_ssim =
        sums.windows ? sums.ssim / static_cast<double>(sums.windows) : 1.0;
    const double mean_cs =
        sums.windows ? sums.cs / static_cast<double>(sums.windows) : 1.0;
    // cs term at every scale; the full SSIM (with luminance) only at the
    // coarsest. Negative terms (possible in pathological windows) are
    // clamped so the weighted geometric mean stays defined.
    const double term =
        s + 1 == scales ? std::max(mean_ssim, 0.0) : std::max(mean_cs, 0.0);
    result *= std::pow(term, kMsWeights[s]);
    if (s + 1 < scales) {
      a = downsample(a);
      b = downsample(b);
    }
  }
  return result;
}

double ms_ssim(const video::Frame& reference, const video::Frame& distorted,
               int scales) {
  return ms_ssim(reference.y, distorted.y, scales);
}

double psnr(const video::Plane& reference, const video::Plane& distorted) {
  check_same(reference, distorted);
  // Fixed-size row bands with an in-order reduction, same determinism
  // argument as plane_sums.
  const std::size_t n = reference.pix.size();
  constexpr std::size_t kGrain = 1 << 16;
  const std::size_t n_bands = (n + kGrain - 1) / kGrain;
  thread_local std::vector<double> partial_tls;
  std::vector<double>& partial = partial_tls;
  partial.assign(n_bands, 0.0);
  ThreadPool::shared().parallel_for(
      0, n, kGrain, [&](std::size_t b, std::size_t e) {
        double se = 0.0;
        for (std::size_t i = b; i < e; ++i) {
          const double d =
              static_cast<double>(reference.pix[i]) - distorted.pix[i];
          se += d * d;
        }
        partial[b / kGrain] = se;
      });
  double se = 0.0;
  for (double p : partial) se += p;
  const double mse = se / static_cast<double>(n);
  if (mse <= 0.0) return 100.0;
  return std::min(100.0, 10.0 * std::log10(255.0 * 255.0 / mse));
}

double psnr(const video::Frame& reference, const video::Frame& distorted) {
  return psnr(reference.y, distorted.y);
}

ContentFeatures content_features(const video::Frame& original,
                                 const video::EncodedFrame& encoded) {
  ContentFeatures f;
  const video::Frame blank =
      video::Frame::blank(original.width(), original.height());
  f.blank = ssim(original, blank);
  for (int l = 0; l < video::kNumLayers; ++l) {
    const video::Frame rec =
        video::reconstruct(video::PartialFrame::up_to_layer(encoded, l));
    f.up_to_layer[static_cast<std::size_t>(l)] = ssim(original, rec);
  }
  return f;
}

}  // namespace w4k::quality

#include "quality/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::quality {
namespace {

constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
constexpr int kWindow = 8;
constexpr int kStride = 4;

void check_same(const video::Plane& a, const video::Plane& b) {
  if (a.width != b.width || a.height != b.height)
    throw std::invalid_argument("quality metric: plane dimension mismatch");
  if (a.width < kWindow || a.height < kWindow)
    throw std::invalid_argument("quality metric: plane smaller than window");
}

}  // namespace

double ssim(const video::Plane& reference, const video::Plane& distorted) {
  check_same(reference, distorted);
  double total = 0.0;
  long windows = 0;
  for (int wy = 0; wy + kWindow <= reference.height; wy += kStride) {
    for (int wx = 0; wx + kWindow <= reference.width; wx += kStride) {
      long sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (int y = 0; y < kWindow; ++y) {
        const std::uint8_t* ra =
            reference.pix.data() +
            static_cast<std::size_t>(wy + y) * reference.width + wx;
        const std::uint8_t* rb =
            distorted.pix.data() +
            static_cast<std::size_t>(wy + y) * distorted.width + wx;
        for (int x = 0; x < kWindow; ++x) {
          const int a = ra[x];
          const int b = rb[x];
          sa += a;
          sb += b;
          saa += a * a;
          sbb += b * b;
          sab += a * b;
        }
      }
      constexpr double n = kWindow * kWindow;
      const double ma = sa / n;
      const double mb = sb / n;
      const double va = saa / n - ma * ma;
      const double vb = sbb / n - mb * mb;
      const double cov = sab / n - ma * mb;
      const double s = ((2.0 * ma * mb + kC1) * (2.0 * cov + kC2)) /
                       ((ma * ma + mb * mb + kC1) * (va + vb + kC2));
      total += s;
      ++windows;
    }
  }
  return windows ? total / static_cast<double>(windows) : 1.0;
}

double ssim(const video::Frame& reference, const video::Frame& distorted) {
  return ssim(reference.y, distorted.y);
}

namespace {

/// One scale's mean SSIM and mean contrast-structure term.
struct ScaleStats {
  double ssim = 1.0;
  double cs = 1.0;
};

ScaleStats scale_stats(const video::Plane& a, const video::Plane& b) {
  ScaleStats out;
  double total_ssim = 0.0, total_cs = 0.0;
  long windows = 0;
  for (int wy = 0; wy + kWindow <= a.height; wy += kStride) {
    for (int wx = 0; wx + kWindow <= a.width; wx += kStride) {
      long sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (int y = 0; y < kWindow; ++y) {
        const std::uint8_t* ra =
            a.pix.data() + static_cast<std::size_t>(wy + y) * a.width + wx;
        const std::uint8_t* rb =
            b.pix.data() + static_cast<std::size_t>(wy + y) * b.width + wx;
        for (int x = 0; x < kWindow; ++x) {
          const int va = ra[x];
          const int vb = rb[x];
          sa += va;
          sb += vb;
          saa += va * va;
          sbb += vb * vb;
          sab += va * vb;
        }
      }
      constexpr double n = kWindow * kWindow;
      const double ma = sa / n;
      const double mb = sb / n;
      const double va = saa / n - ma * ma;
      const double vb = sbb / n - mb * mb;
      const double cov = sab / n - ma * mb;
      const double cs = (2.0 * cov + kC2) / (va + vb + kC2);
      const double l =
          (2.0 * ma * mb + kC1) / (ma * ma + mb * mb + kC1);
      total_cs += cs;
      total_ssim += l * cs;
      ++windows;
    }
  }
  if (windows > 0) {
    out.ssim = total_ssim / static_cast<double>(windows);
    out.cs = total_cs / static_cast<double>(windows);
  }
  return out;
}

/// 2x2 box downsampling (the MS-SSIM pyramid step).
video::Plane downsample(const video::Plane& p) {
  video::Plane out(p.width / 2, p.height / 2);
  for (int y = 0; y < out.height; ++y)
    for (int x = 0; x < out.width; ++x) {
      const int sum = p.at(2 * x, 2 * y) + p.at(2 * x + 1, 2 * y) +
                      p.at(2 * x, 2 * y + 1) + p.at(2 * x + 1, 2 * y + 1);
      out.at(x, y) = static_cast<std::uint8_t>((sum + 2) / 4);
    }
  return out;
}

// Standard MS-SSIM per-scale weights (Wang et al. 2003).
constexpr double kMsWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363, 0.1333};

}  // namespace

double ms_ssim(const video::Plane& reference, const video::Plane& distorted,
               int scales) {
  check_same(reference, distorted);
  if (scales < 1 || scales > 5)
    throw std::invalid_argument("ms_ssim: scales must be in 1..5");
  const int min_dim = kWindow << (scales - 1);
  if (reference.width < min_dim || reference.height < min_dim)
    throw std::invalid_argument("ms_ssim: plane too small for scale count");

  video::Plane a = reference;
  video::Plane b = distorted;
  double result = 1.0;
  for (int s = 0; s < scales; ++s) {
    const ScaleStats stats = scale_stats(a, b);
    // cs term at every scale; the full SSIM (with luminance) only at the
    // coarsest. Negative terms (possible in pathological windows) are
    // clamped so the weighted geometric mean stays defined.
    const double term =
        s + 1 == scales ? std::max(stats.ssim, 0.0) : std::max(stats.cs, 0.0);
    result *= std::pow(term, kMsWeights[s]);
    if (s + 1 < scales) {
      a = downsample(a);
      b = downsample(b);
    }
  }
  return result;
}

double ms_ssim(const video::Frame& reference, const video::Frame& distorted,
               int scales) {
  return ms_ssim(reference.y, distorted.y, scales);
}

double psnr(const video::Plane& reference, const video::Plane& distorted) {
  check_same(reference, distorted);
  double se = 0.0;
  for (std::size_t i = 0; i < reference.pix.size(); ++i) {
    const double d =
        static_cast<double>(reference.pix[i]) - distorted.pix[i];
    se += d * d;
  }
  const double mse = se / static_cast<double>(reference.pix.size());
  if (mse <= 0.0) return 100.0;
  return std::min(100.0, 10.0 * std::log10(255.0 * 255.0 / mse));
}

double psnr(const video::Frame& reference, const video::Frame& distorted) {
  return psnr(reference.y, distorted.y);
}

ContentFeatures content_features(const video::Frame& original,
                                 const video::EncodedFrame& encoded) {
  ContentFeatures f;
  const video::Frame blank =
      video::Frame::blank(original.width(), original.height());
  f.blank = ssim(original, blank);
  for (int l = 0; l < video::kNumLayers; ++l) {
    const video::Frame rec =
        video::reconstruct(video::PartialFrame::up_to_layer(encoded, l));
    f.up_to_layer[static_cast<std::size_t>(l)] = ssim(original, rec);
  }
  return f;
}

}  // namespace w4k::quality

#include "sched/beam_cache.h"

#include "obs/metrics.h"

namespace w4k::sched {
namespace {

bool same_channel(const linalg::CVector& a, const linalg::CVector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

}  // namespace

void BeamCache::clear() {
  beams_.clear();
  channels_.clear();
}

std::vector<GroupSpec> BeamCache::enumerate(
    const std::vector<linalg::CVector>& channels,
    const beamforming::Codebook& codebook, const GroupEnumConfig& cfg,
    ThreadPool* pool) {
  const std::size_t n = channels.size();
  const std::vector<std::uint32_t> masks =
      admissible_masks(scheme_, n, cfg);  // throws on n == 0 / n > 16

  // --- Dirty tracking --------------------------------------------------
  if (channels_.size() != n) {
    // Churn: member bitmasks now index a different user set, so every
    // cached beam is meaningless.
    if (!beams_.empty()) ++stats_.invalidations;
    beams_.clear();
  } else {
    std::uint32_t dirty = 0;
    for (std::size_t u = 0; u < n; ++u)
      if (!same_channel(channels[u], channels_[u])) dirty |= 1u << u;
    if (dirty != 0)
      std::erase_if(beams_,
                    [dirty](const auto& kv) { return kv.first & dirty; });
  }
  channels_ = channels;

  // --- Compute the misses (deterministic, parallelizable) --------------
  std::vector<std::uint32_t> miss_masks;
  for (std::uint32_t mask : masks)
    if (!beams_.contains(mask)) miss_masks.push_back(mask);

  std::vector<beamforming::GroupBeam> computed(miss_masks.size());
  const auto compute = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      computed[i] =
          subset_beam(scheme_, channels, miss_masks[i], codebook, beam_seed_);
  };
  if (pool != nullptr && pool->size() > 1 && miss_masks.size() > 1) {
    pool->parallel_for(0, miss_masks.size(), /*grain=*/8, compute);
  } else {
    compute(0, miss_masks.size());
  }
  for (std::size_t i = 0; i < miss_masks.size(); ++i)
    beams_.emplace(miss_masks[i], std::move(computed[i]));

  const std::uint64_t hits = masks.size() - miss_masks.size();
  stats_.hits += hits;
  stats_.misses += miss_masks.size();
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_hit = reg.counter("sched.beam_cache.hit");
    static obs::Counter& c_miss = reg.counter("sched.beam_cache.miss");
    c_hit.add(hits);
    c_miss.add(miss_masks.size());
  }

  // --- Emit in ascending mask order with the rate filters --------------
  std::vector<GroupSpec> out;
  for (std::uint32_t mask : masks) {
    const beamforming::GroupBeam& beam = beams_.at(mask);
    if (beam.rate.value <= 0.0) continue;  // cannot sustain any MCS
    if (beam.rate < cfg.rate_threshold) continue;
    GroupSpec g;
    for (std::size_t u = 0; u < n; ++u)
      if (mask & (1u << u)) g.members.push_back(u);
    g.beam = beam;
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace w4k::sched

#include "sched/beam_cache.h"

#include "obs/metrics.h"

namespace w4k::sched {
namespace {

bool same_channel(const linalg::CVector& a, const linalg::CVector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

}  // namespace

void BeamCache::clear() {
  beams_.clear();
  channels_.clear();
}

std::vector<GroupSpec> BeamCache::enumerate(
    const std::vector<linalg::CVector>& channels,
    const beamforming::Codebook& codebook, const GroupEnumConfig& cfg,
    ThreadPool* pool) {
  const std::size_t n = channels.size();
  const CandidatePlan plan =
      plan_candidates(scheme_, channels, cfg);  // throws on n == 0 / n > 64

  // --- Dirty tracking --------------------------------------------------
  if (channels_.size() != n) {
    // Churn: member bitmasks now index a different user set, so every
    // cached beam is meaningless.
    if (!beams_.empty()) ++stats_.invalidations;
    beams_.clear();
  } else {
    GroupMask dirty = 0;
    for (std::size_t u = 0; u < n; ++u)
      if (!same_channel(channels[u], channels_[u])) dirty |= GroupMask{1} << u;
    if (dirty != 0)
      std::erase_if(beams_,
                    [dirty](const auto& kv) { return kv.first & dirty; });
  }
  channels_ = channels;

  // --- Compute the misses (deterministic, parallelizable) --------------
  // Walking the plan's priority order keeps all mandatory (singleton)
  // misses at the front, so the deadline only ever defers merge subsets.
  std::vector<GroupMask> miss_masks;
  std::size_t miss_mandatory = 0;
  for (std::size_t j = 0; j < plan.priority.size(); ++j) {
    const GroupMask mask = plan.masks[plan.priority[j]];
    if (beams_.contains(mask)) continue;
    miss_masks.push_back(mask);
    if (j < plan.mandatory) ++miss_mandatory;
  }

  BatchResult batch =
      beamform_priority(scheme_, channels, miss_masks, miss_mandatory,
                        cfg.deadline, codebook, beam_seed_, pool);
  std::size_t computed = 0;
  for (std::size_t i = 0; i < miss_masks.size(); ++i) {
    if (!batch.done[i]) continue;
    beams_.emplace(miss_masks[i], std::move(batch.beams[i]));
    ++computed;
  }

  const std::uint64_t hits = plan.masks.size() - miss_masks.size();
  stats_.hits += hits;
  stats_.misses += computed;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_hit = reg.counter("sched.beam_cache.hit");
    static obs::Counter& c_miss = reg.counter("sched.beam_cache.miss");
    c_hit.add(hits);
    c_miss.add(computed);
  }
  note_anytime(plan, computed, batch.deferred);

  // --- Emit in ascending mask order with the rate filters --------------
  // A subset deferred past the deadline is simply absent this frame; it
  // stays a cache miss and becomes a candidate again next frame.
  std::vector<GroupSpec> out;
  for (GroupMask mask : plan.masks) {
    const auto it = beams_.find(mask);
    if (it == beams_.end()) continue;
    const beamforming::GroupBeam& beam = it->second;
    if (beam.rate.value <= 0.0) continue;  // cannot sustain any MCS
    if (beam.rate < cfg.rate_threshold) continue;
    GroupSpec g;
    for (std::size_t u = 0; u < n; ++u)
      if (mask & (GroupMask{1} << u)) g.members.push_back(u);
    g.beam = beam;
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace w4k::sched

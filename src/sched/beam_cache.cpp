#include "sched/beam_cache.h"

#include "obs/metrics.h"
#include "sched/workspace.h"

#include <algorithm>

namespace w4k::sched {
namespace {

bool same_channel(const linalg::CVector& a, const linalg::CVector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

}  // namespace

void BeamCache::clear() {
  entries_.clear();
  channels_.clear();
}

std::size_t BeamCache::size() const {
  std::size_t n = 0;
  for (const Entry& e : entries_)
    if (e.valid) ++n;
  return n;
}

BeamCache::Entry* BeamCache::find(GroupMask mask) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), mask,
      [](const Entry& e, GroupMask m) { return e.mask < m; });
  if (it == entries_.end() || it->mask != mask) return nullptr;
  return &*it;
}

std::span<const GroupSpec> BeamCache::enumerate_into(
    const std::vector<linalg::CVector>& channels,
    const beamforming::Codebook& codebook, const GroupEnumConfig& cfg,
    ThreadPool* pool, SchedWorkspace& ws) {
  const std::size_t n = channels.size();
  plan_candidates_into(scheme_, channels, cfg, ws);  // throws n == 0 / n > 64
  const CandidatePlan& plan = ws.plan;

  // --- Dirty tracking --------------------------------------------------
  if (channels_.size() != n) {
    // Churn: member bitmasks now index a different user set, so every
    // cached beam is meaningless. (Not a steady-state event — the flat
    // storage is rebuilt from scratch.)
    if (size() > 0) ++stats_.invalidations;
    entries_.clear();
  } else {
    GroupMask dirty = 0;
    for (std::size_t u = 0; u < n; ++u)
      if (!same_channel(channels[u], channels_[u])) dirty |= GroupMask{1} << u;
    if (dirty != 0)
      for (Entry& e : entries_)
        if (e.mask & dirty) e.valid = false;
  }
  channels_ = channels;  // element-wise copy-assign: capacities reused

  // --- Compute the misses (deterministic, parallelizable) --------------
  // Walking the plan's priority order keeps all mandatory (singleton)
  // misses at the front, so the deadline only ever defers merge subsets.
  ws.miss_masks.clear();
  std::size_t miss_mandatory = 0;
  for (std::size_t j = 0; j < plan.priority.size(); ++j) {
    const GroupMask mask = plan.masks[plan.priority[j]];
    const Entry* e = find(mask);
    if (e != nullptr && e->valid) continue;
    ws.miss_masks.push_back(mask);
    if (j < plan.mandatory) ++miss_mandatory;
  }

  beamform_priority_into(scheme_, channels, ws.miss_masks, miss_mandatory,
                         cfg.deadline, codebook, beam_seed_, pool, ws);
  std::size_t computed = 0;
  for (std::size_t i = 0; i < ws.miss_masks.size(); ++i) {
    if (!ws.done[i]) continue;
    Entry* e = find(ws.miss_masks[i]);
    if (e == nullptr) {
      // First sighting of this mask: grow the sorted store (warmup /
      // plan-change only). The moves behind insert never allocate.
      const auto it = std::lower_bound(
          entries_.begin(), entries_.end(), ws.miss_masks[i],
          [](const Entry& x, GroupMask m) { return x.mask < m; });
      e = &*entries_.insert(it, Entry{});
      e->mask = ws.miss_masks[i];
    }
    e->beam = ws.beams[i];  // copy-assign: slot capacity reused
    e->valid = true;
    ++computed;
  }

  const std::uint64_t hits = plan.masks.size() - ws.miss_masks.size();
  stats_.hits += hits;
  stats_.misses += computed;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& c_hit = reg.counter("sched.beam_cache.hit");
    static obs::Counter& c_miss = reg.counter("sched.beam_cache.miss");
    c_hit.add(hits);
    c_miss.add(computed);
  }
  note_anytime(plan, computed, ws.deferred);

  // --- Emit in ascending mask order with the rate filters --------------
  // A subset deferred past the deadline is simply absent this frame; it
  // stays a cache miss and becomes a candidate again next frame.
  ws.group_count = 0;
  for (GroupMask mask : plan.masks) {
    const Entry* e = find(mask);
    if (e == nullptr || !e->valid) continue;
    const beamforming::GroupBeam& beam = e->beam;
    if (beam.rate.value <= 0.0) continue;  // cannot sustain any MCS
    if (beam.rate < cfg.rate_threshold) continue;
    if (ws.group_count == ws.groups.size()) ws.groups.emplace_back();
    GroupSpec& g = ws.groups[ws.group_count++];  // pool slot: capacity reused
    g.members.clear();
    for (std::size_t u = 0; u < n; ++u)
      if (mask & (GroupMask{1} << u)) g.members.push_back(u);
    g.beam = beam;
  }
  return ws.emitted();
}

std::vector<GroupSpec> BeamCache::enumerate(
    const std::vector<linalg::CVector>& channels,
    const beamforming::Codebook& codebook, const GroupEnumConfig& cfg,
    ThreadPool* pool) {
  SchedWorkspace ws;
  const auto emitted = enumerate_into(channels, codebook, cfg, pool, ws);
  return {emitted.begin(), emitted.end()};
}

}  // namespace w4k::sched

#include "sched/unitmap.h"

#include "verify/invariants.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace w4k::sched {

std::vector<UnitSpec> frame_units(int width, int height,
                                  std::size_t symbol_size,
                                  std::size_t symbols_per_unit) {
  if (symbol_size == 0 || symbols_per_unit == 0)
    throw std::invalid_argument("frame_units: zero symbol geometry");
  const std::size_t unit_bytes = symbol_size * symbols_per_unit;
  std::vector<UnitSpec> units;
  for (int l = 0; l < video::kNumLayers; ++l) {
    std::uint16_t index_in_layer = 0;
    const std::size_t sub_bytes = video::sublayer_bytes(l, width, height);
    for (int k = 0; k < video::sublayer_count(l); ++k) {
      std::size_t offset = 0;
      while (offset < sub_bytes) {
        UnitSpec u;
        u.id.layer = static_cast<std::uint16_t>(l);
        u.id.sublayer = index_in_layer++;
        u.sublayer_k = k;
        u.offset = offset;
        u.source_bytes = std::min(unit_bytes, sub_bytes - offset);
        u.k_symbols = (u.source_bytes + symbol_size - 1) / symbol_size;
        offset += u.source_bytes;
        units.push_back(u);
      }
    }
  }
  return units;
}

UnitMapResult map_to_units(std::span<const GroupSpec> groups,
                           std::span<const LayerArray> group_layer_bytes,
                           const std::vector<UnitSpec>& units,
                           std::size_t n_users, std::size_t symbol_size) {
  UnitMapResult res;
  map_to_units_into(groups, group_layer_bytes, units, n_users, symbol_size,
                    res);
  return res;
}


void map_to_units_into(std::span<const GroupSpec> groups,
                       std::span<const LayerArray> group_layer_bytes,
                       const std::vector<UnitSpec>& units,
                       std::size_t n_users, std::size_t symbol_size,
                       UnitMapResult& res) {
  if (groups.size() != group_layer_bytes.size())
    throw std::invalid_argument("map_to_units: groups/bytes size mismatch");

  // Whole-symbol budgets per (group, layer). Thread-local scratch: the
  // greedy runs on the session's decide thread, never on the pool.
  thread_local std::vector<LayerArray> budget_tls;
  std::vector<LayerArray>& budget = budget_tls;
  budget.assign(groups.size(), LayerArray{});
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (int j = 0; j < video::kNumLayers; ++j) {
      const auto js = static_cast<std::size_t>(j);
      budget[g][js] = std::floor(group_layer_bytes[g][js] /
                                 static_cast<double>(symbol_size));
    }

  res.assignments.clear();
  res.leftover_symbols = 0;
  // Row-by-row reset (rather than assign with a freshly constructed row
  // prototype) so each reused row keeps its capacity.
  if (res.user_symbols.size() != n_users) res.user_symbols.resize(n_users);
  if (res.user_decodes.size() != n_users) res.user_decodes.resize(n_users);
  for (auto& row : res.user_symbols) row.assign(units.size(), 0);
  for (auto& row : res.user_decodes) row.assign(units.size(), false);

  // Units are already ordered layer-asc then unit-asc by construction.
  for (std::size_t i = 0; i < units.size(); ++i) {
    const UnitSpec& unit = units[i];
    const auto layer = static_cast<std::size_t>(unit.id.layer);

    // Completability pre-check (an addition over the paper's plain
    // ordering): if no receiver could reach k symbols for this unit even
    // with every involved group's entire remaining layer budget, sending
    // anything here strands symbols that a later (e.g. smaller) unit
    // could still use. Skip the unit and keep the budget.
    bool completable = false;
    for (std::size_t u = 0; u < n_users && !completable; ++u) {
      std::size_t potential = res.user_symbols[u][i];
      for (std::size_t g = 0; g < groups.size(); ++g)
        if (groups[g].contains(u))
          potential += static_cast<std::size_t>(budget[g][layer]);
      completable = potential >= unit.k_symbols;
    }
    if (!completable) continue;

    for (std::size_t g = 0; g < groups.size(); ++g) {
      auto remaining = static_cast<std::size_t>(budget[g][layer]);
      if (remaining == 0) continue;
      // Symbols needed to complete this unit for *every* member: the
      // largest member deficit (a transmitted symbol reaches all members).
      std::size_t need = 0;
      for (std::size_t u : groups[g].members) {
        const std::size_t have = res.user_symbols[u][i];
        if (have < unit.k_symbols)
          need = std::max(need, unit.k_symbols - have);
      }
      if (need == 0) continue;
      const std::size_t send = std::min(need, remaining);
      budget[g][layer] -= static_cast<double>(send);
      for (std::size_t u : groups[g].members) res.user_symbols[u][i] += send;
      res.assignments.push_back(UnitAssignment{g, i, send});
    }
    for (std::size_t u = 0; u < n_users; ++u)
      res.user_decodes[u][i] = res.user_symbols[u][i] >= unit.k_symbols;
  }

  double leftover = 0.0;
  for (const auto& b : budget)
    for (double v : b) leftover += v;
  res.leftover_symbols = static_cast<std::size_t>(leftover);

  if (verify::enabled()) {
    // Conservation: every per-user symbol tally must be exactly the sum of
    // assignments over the groups that user belongs to, and every assignment
    // must reference a valid (group, unit) cell with a positive count.
    thread_local std::vector<std::vector<std::size_t>> replay_tls;
    std::vector<std::vector<std::size_t>>& replay = replay_tls;
    if (replay.size() < n_users) replay.resize(n_users);
    for (std::size_t u = 0; u < n_users; ++u) replay[u].assign(units.size(), 0);
    for (const auto& a : res.assignments) {
      verify::check(a.group < groups.size() && a.unit_index < units.size(),
                    "sched.unitmap-bad-assignment", [&] {
                      return "group " + std::to_string(a.group) + "/unit " +
                             std::to_string(a.unit_index) + " out of range";
                    });
      verify::check(a.symbols > 0, "sched.unitmap-empty-assignment", [&] {
        return "zero-symbol assignment at group " + std::to_string(a.group) +
               " unit " + std::to_string(a.unit_index);
      });
      if (a.group >= groups.size() || a.unit_index >= units.size()) continue;
      for (std::size_t u : groups[a.group].members)
        if (u < n_users) replay[u][a.unit_index] += a.symbols;
    }
    for (std::size_t u = 0; u < n_users; ++u)
      for (std::size_t i = 0; i < units.size(); ++i) {
        verify::check(replay[u][i] == res.user_symbols[u][i],
                      "sched.unitmap-symbol-conservation", [&] {
                        return "user " + std::to_string(u) + " unit " +
                               std::to_string(i) + ": tallied " +
                               std::to_string(res.user_symbols[u][i]) +
                               " but assignments sum to " +
                               std::to_string(replay[u][i]);
                      });
        verify::check(!res.user_decodes[u][i] ||
                          res.user_symbols[u][i] >= units[i].k_symbols,
                      "sched.unitmap-decode-below-k", [&] {
                        return "user " + std::to_string(u) + " unit " +
                               std::to_string(i) + " marked decodable with " +
                               std::to_string(res.user_symbols[u][i]) + " < k=" +
                               std::to_string(units[i].k_symbols);
                      });
      }
  }
}

std::size_t decoded_bytes_objective(const UnitMapResult& result,
                                    const std::vector<UnitSpec>& units) {
  std::size_t total = 0;
  for (const auto& user : result.user_decodes)
    for (std::size_t i = 0; i < units.size() && i < user.size(); ++i)
      if (user[i]) total += units[i].source_bytes;
  return total;
}

namespace {

/// Recursive exhaustive search over sss(G, i): for each (group, unit)
/// cell in order, try every symbol count up to the remaining layer budget
/// and the unit's need, tracking per-user receptions.
struct ExactSearch {
  const std::vector<GroupSpec>& groups;
  const std::vector<UnitSpec>& units;
  std::size_t n_users;
  std::vector<std::array<std::size_t, video::kNumLayers>> budget;  // symbols
  std::vector<std::vector<std::size_t>> user_symbols;  // [user][unit]
  std::size_t best = 0;
  std::size_t states = 0;

  void run(std::size_t cell) {
    if (++states > 10'000'000)
      throw std::invalid_argument(
          "exact_unit_objective: instance too large for exhaustive search");
    const std::size_t n_cells = groups.size() * units.size();
    if (cell == n_cells) {
      std::size_t total = 0;
      for (std::size_t u = 0; u < n_users; ++u)
        for (std::size_t i = 0; i < units.size(); ++i)
          if (user_symbols[u][i] >= units[i].k_symbols)
            total += units[i].source_bytes;
      best = std::max(best, total);
      return;
    }
    const std::size_t g = cell / units.size();
    const std::size_t i = cell % units.size();
    const auto layer = static_cast<std::size_t>(units[i].id.layer);
    // A cell never usefully exceeds the unit's k (extras are pure waste
    // for every member), so cap the branch factor at k.
    const std::size_t cap =
        std::min(budget[g][layer], units[i].k_symbols);
    for (std::size_t send = 0; send <= cap; ++send) {
      budget[g][layer] -= send;
      for (std::size_t u : groups[g].members) user_symbols[u][i] += send;
      run(cell + 1);
      for (std::size_t u : groups[g].members) user_symbols[u][i] -= send;
      budget[g][layer] += send;
    }
  }
};

}  // namespace

std::size_t exact_unit_objective(
    const std::vector<GroupSpec>& groups,
    const std::vector<LayerArray>& group_layer_bytes,
    const std::vector<UnitSpec>& units, std::size_t n_users,
    std::size_t symbol_size) {
  if (groups.size() != group_layer_bytes.size())
    throw std::invalid_argument("exact_unit_objective: size mismatch");
  ExactSearch search{groups, units, n_users, {}, {}, 0, 0};
  search.budget.resize(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (int j = 0; j < video::kNumLayers; ++j)
      search.budget[g][static_cast<std::size_t>(j)] =
          static_cast<std::size_t>(
              group_layer_bytes[g][static_cast<std::size_t>(j)] /
              static_cast<double>(symbol_size));
  search.user_symbols.assign(n_users,
                             std::vector<std::size_t>(units.size(), 0));
  search.run(0);
  return search.best;
}

}  // namespace w4k::sched

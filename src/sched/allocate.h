// Time allocation across multicast groups and layers (Eq. 1, Sec. 2.4).
//
//   max_T  sum_i Q(D_i1..D_i4) - lambda * sum_ij D_ij
//   s.t.   D_ij = sum_{G : i in G} T_Gj * R_G,    sum_Gj T_Gj <= 1/FR
//
// Q is the trained DNN quality model; its analytic input gradient turns
// the problem into projected gradient ascent over the scaled simplex
// {T >= 0, sum T <= budget}. The round-robin baseline of Sec. 4.2.2 is
// provided for the Fig. 8/15 comparisons.
#pragma once

#include "model/quality_model.h"
#include "sched/groups.h"
#include "video/layered.h"

#include <array>
#include <chrono>
#include <optional>
#include <vector>

namespace w4k::sched {

using LayerArray = std::array<double, video::kNumLayers>;

/// Per-frame inputs shared by all users (multicast streams one video).
struct FrameContent {
  LayerArray layer_bytes{};     ///< encoded size of each layer
  LayerArray up_to_layer_ssim{};///< quality-model content features
  double blank_ssim = 0.0;
};

struct AllocProblem {
  std::vector<GroupSpec> groups;
  std::size_t n_users = 0;
  FrameContent content;
  Seconds time_budget = kFrameBudget;
  double lambda = 1e-8;   ///< traffic penalty per byte (tie-break only)
};

struct Allocation {
  /// time[g][j]: seconds allotted to group g for layer j.
  std::vector<LayerArray> time;
  /// bytes[g][j] = time[g][j] * R_g — what the packet scheduler consumes.
  std::vector<LayerArray> bytes;
  /// Per-user delivered bytes per layer (includes cross-group overlap).
  std::vector<LayerArray> user_bytes;
  /// Per-user quality predicted by the model at this allocation.
  std::vector<double> predicted_ssim;
  double objective = 0.0;
  int iterations = 0;
};

struct OptimizerConfig {
  int max_iterations = 300;
  double initial_step = 2e-3;  ///< seconds of reallocation per step
  double min_step = 1e-6;
  std::uint64_t seed = 5;
  /// Anytime cutoff. When set, refinement iterations stop once the clock
  /// passes it and cold starts after the first are skipped — the result
  /// is the best plan found so far, coverage-repaired so every
  /// group-served user keeps positive airtime. When unset (the default)
  /// the optimizer reads no clock at all, keeping the output a pure
  /// function of the inputs (golden/purity determinism).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Projected-gradient optimizer for Eq. 1.
///
/// `warm_start` (optional) is a flattened time vector (g-major,
/// layer-minor, matching problem.groups) — typically the previous frame's
/// allocation remapped onto the surviving group set. When provided and
/// usable (right size, finite, non-empty after projection onto the budget
/// simplex), the optimizer refines it directly and, if the refined result
/// at least matches the evaluated round-robin cold init, returns it
/// without running the multi-start — the scheduler fast path that makes
/// per-frame re-optimization real-time. Otherwise it falls back to the
/// full cold multi-start (which also keeps the warm candidate in the
/// running). Counters: sched.warm_start.{hits,fallbacks,iters_saved}.
Allocation optimize_allocation(const AllocProblem& problem,
                               model::QualityModel& quality,
                               const OptimizerConfig& cfg = {},
                               const std::vector<double>* warm_start = nullptr);

/// Round-robin baseline: 1 ms slots rotate over all candidate groups; each
/// slot's bytes go to the lowest layer that group's members still miss.
/// The final partial slot is sized to land exactly on the budget: the
/// summed time plan never exceeds `problem.time_budget` and drops at most
/// 1e-12 s of it. Throws std::invalid_argument for slot <= 0 or non-finite.
Allocation round_robin_allocation(const AllocProblem& problem,
                                  model::QualityModel& quality,
                                  Seconds slot = 1e-3);

/// Euclidean projection of `t` onto {t >= 0, sum t <= budget}; exposed for
/// tests. Operates in place. Non-finite entries are reported through the
/// W4K_CHECK_INVARIANTS policy (throw by default) and sanitized so the
/// projection cannot silently corrupt the allocation: NaN/-inf collapse to
/// 0, +inf claims the whole budget. A budget <= 0 (or non-finite) zeroes
/// the vector — the only feasible point.
void project_to_simplex(std::vector<double>& t, double budget);

}  // namespace w4k::sched

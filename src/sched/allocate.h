// Time allocation across multicast groups and layers (Eq. 1, Sec. 2.4).
//
//   max_T  sum_i Q(D_i1..D_i4) - lambda * sum_ij D_ij
//   s.t.   D_ij = sum_{G : i in G} T_Gj * R_G,    sum_Gj T_Gj <= 1/FR
//
// Q is the trained DNN quality model; its analytic input gradient turns
// the problem into projected gradient ascent over the scaled simplex
// {T >= 0, sum T <= budget}. The round-robin baseline of Sec. 4.2.2 is
// provided for the Fig. 8/15 comparisons.
#pragma once

#include "model/quality_model.h"
#include "sched/groups.h"
#include "video/layered.h"

#include <array>
#include <chrono>
#include <optional>
#include <span>
#include <vector>

namespace w4k::sched {

using LayerArray = std::array<double, video::kNumLayers>;

/// Per-frame inputs shared by all users (multicast streams one video).
struct FrameContent {
  LayerArray layer_bytes{};     ///< encoded size of each layer
  LayerArray up_to_layer_ssim{};///< content features for the quality model
  double blank_ssim = 0.0;
};

struct AllocProblem {
  /// Candidate groups. A view, not storage: typically the span a
  /// SchedWorkspace enumeration returned (a std::vector<GroupSpec>
  /// converts implicitly). Must outlive every optimizer call that reads
  /// the problem.
  std::span<const GroupSpec> groups;
  std::size_t n_users = 0;
  FrameContent content;
  Seconds time_budget = kFrameBudget;
  double lambda = 1e-8;   ///< traffic penalty per byte (tie-break only)
};

/// The optimizer's output plan. The three per-(group|user) tables —
/// time[g][j], bytes[g][j] = time * R_g, and per-user delivered bytes —
/// share one flat LayerArray store laid out [time rows | bytes rows |
/// user_bytes rows], accessed through the row methods below. reset()
/// reshapes the store in place (std::vector::assign), so a caller that
/// keeps one Allocation across frames reuses its capacity: the steady
/// state allocates nothing.
class Allocation {
 public:
  /// Reshapes for `n_groups` groups and `n_users` users, zero-filled.
  void reset(std::size_t n_groups, std::size_t n_users) {
    n_groups_ = n_groups;
    n_users_ = n_users;
    store_.assign(2 * n_groups + n_users, LayerArray{});
    predicted_ssim.clear();
    objective = 0.0;
    iterations = 0;
  }

  std::size_t group_count() const { return n_groups_; }
  std::size_t user_count() const { return n_users_; }

  /// time(g)[j]: seconds allotted to group g for layer j.
  LayerArray& time(std::size_t g) { return store_[g]; }
  const LayerArray& time(std::size_t g) const { return store_[g]; }
  /// bytes(g)[j] = time(g)[j] * R_g — what the packet scheduler consumes.
  LayerArray& bytes(std::size_t g) { return store_[n_groups_ + g]; }
  const LayerArray& bytes(std::size_t g) const {
    return store_[n_groups_ + g];
  }
  /// Per-user delivered bytes per layer (includes cross-group overlap).
  LayerArray& user_bytes(std::size_t u) {
    return store_[2 * n_groups_ + u];
  }
  const LayerArray& user_bytes(std::size_t u) const {
    return store_[2 * n_groups_ + u];
  }

  /// Whole-table views for consumers that iterate rows (unit mapping,
  /// report writers, tests).
  std::span<const LayerArray> time_rows() const {
    return {store_.data(), n_groups_};
  }
  std::span<const LayerArray> bytes_rows() const {
    return {store_.data() + n_groups_, n_groups_};
  }
  std::span<const LayerArray> user_bytes_rows() const {
    return {store_.data() + 2 * n_groups_, n_users_};
  }

  /// Per-user quality predicted by the model at this allocation.
  std::vector<double> predicted_ssim;
  double objective = 0.0;
  int iterations = 0;

 private:
  std::vector<LayerArray> store_;  ///< [time G | bytes G | user_bytes U]
  std::size_t n_groups_ = 0;
  std::size_t n_users_ = 0;
};

struct OptimizerConfig {
  int max_iterations = 300;
  double initial_step = 2e-3;  ///< seconds of reallocation per step
  double min_step = 1e-6;
  std::uint64_t seed = 5;
  /// Anytime cutoff. When set, refinement iterations stop once the clock
  /// passes it and cold starts after the first are skipped — the result
  /// is the best plan found so far, coverage-repaired so every
  /// group-served user keeps positive airtime. When unset (the default)
  /// the optimizer reads no clock at all, keeping the output a pure
  /// function of the inputs (golden/purity determinism).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Projected-gradient optimizer for Eq. 1, writing into a caller-owned
/// Allocation (its store and predicted_ssim reuse their capacity).
///
/// `warm_start` (optional) is a flattened time vector (g-major,
/// layer-minor, matching problem.groups) — typically the previous frame's
/// allocation remapped onto the surviving group set. When provided and
/// usable (right size, finite, non-empty after projection onto the budget
/// simplex), the optimizer refines it directly and, if the refined result
/// at least matches the evaluated round-robin cold init, returns it
/// without running the multi-start — the scheduler fast path that makes
/// per-frame re-optimization real-time. On that warm path all working
/// state lives in thread-local scratch: zero heap allocations in steady
/// state. Otherwise it falls back to the full cold multi-start (which
/// also keeps the warm candidate in the running).
/// Counters: sched.warm_start.{hits,fallbacks,iters_saved}.
void optimize_allocation_into(
    const AllocProblem& problem, model::QualityModel& quality,
    Allocation& out, const OptimizerConfig& cfg = {},
    const std::vector<double>* warm_start = nullptr);

/// Value-returning convenience wrapper over optimize_allocation_into.
Allocation optimize_allocation(const AllocProblem& problem,
                               model::QualityModel& quality,
                               const OptimizerConfig& cfg = {},
                               const std::vector<double>* warm_start = nullptr);

/// Round-robin baseline: 1 ms slots rotate over all candidate groups; each
/// slot's bytes go to the lowest layer that group's members still miss.
/// The final partial slot is sized to land exactly on the budget: the
/// summed time plan never exceeds `problem.time_budget` and drops at most
/// 1e-12 s of it. Throws std::invalid_argument for slot <= 0 or non-finite.
void round_robin_allocation_into(const AllocProblem& problem,
                                 model::QualityModel& quality,
                                 Allocation& out, Seconds slot = 1e-3);

/// Value-returning convenience wrapper over round_robin_allocation_into.
Allocation round_robin_allocation(const AllocProblem& problem,
                                  model::QualityModel& quality,
                                  Seconds slot = 1e-3);

/// Euclidean projection of `t` onto {t >= 0, sum t <= budget}; exposed for
/// tests. Operates in place. Non-finite entries are reported through the
/// W4K_CHECK_INVARIANTS policy (throw by default) and sanitized so the
/// projection cannot silently corrupt the allocation: NaN/-inf collapse to
/// 0, +inf claims the whole budget. A budget <= 0 (or non-finite) zeroes
/// the vector — the only feasible point.
void project_to_simplex(std::vector<double>& t, double budget);

}  // namespace w4k::sched

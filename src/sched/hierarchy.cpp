#include "sched/hierarchy.h"

#include <algorithm>
#include <cmath>

namespace w4k::sched {
namespace {

/// Members are indices into the clusterable-user list, kept ascending.
struct Cluster {
  std::vector<std::size_t> members;
  bool alive = true;
};

std::vector<std::size_t> merge_sorted(const std::vector<std::size_t>& a,
                                      const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<GroupMask> cluster_candidates(
    const std::vector<linalg::CVector>& channels,
    const std::vector<std::uint8_t>& active, const GroupEnumConfig& cfg) {
  const std::size_t n = channels.size();
  std::vector<GroupMask> out;

  // Singletons for every active user: whatever else the tree proposes,
  // each user can always be served alone (the anytime mandatory prefix).
  for (std::size_t u = 0; u < n; ++u)
    if (u >= active.size() || active[u]) out.push_back(GroupMask{1} << u);

  // Only users with a direction participate in clustering.
  std::vector<std::size_t> user_of;           // clusterable index -> user id
  std::vector<linalg::CVector> unit;
  for (std::size_t u = 0; u < n; ++u) {
    if (u < active.size() && !active[u]) continue;
    if (channels[u].norm() <= 0.0) continue;
    user_of.push_back(u);
    unit.push_back(channels[u].normalized());
  }
  const std::size_t m = user_of.size();
  if (m < 2) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // Pairwise direction correlation |<h_i/|h_i|, h_j/|h_j|>| in [0, 1].
  std::vector<double> link(m * m, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j) {
      const double c = std::abs(linalg::dot(unit[i], unit[j]));
      link[i * m + j] = c;
      link[j * m + i] = c;
    }

  // Average-linkage agglomeration with the Lance–Williams update:
  //   link(k, i u j) = (|i| link(k,i) + |j| link(k,j)) / (|i| + |j|).
  // Strictly-greater comparisons break ties toward the lowest (i, j)
  // pair, so the tree is a deterministic function of the correlations.
  const std::size_t cap =
      std::max<std::size_t>(2, std::min(cfg.max_cluster_size,
                                        cfg.max_group_size));
  std::vector<Cluster> clusters(m);
  for (std::size_t i = 0; i < m; ++i) clusters[i].members = {i};
  std::vector<std::vector<std::size_t>> merges;  // every tree-internal set
  for (;;) {
    double best = cfg.cluster_correlation;
    std::size_t bi = m, bj = m;
    for (std::size_t i = 0; i < m; ++i) {
      if (!clusters[i].alive) continue;
      for (std::size_t j = i + 1; j < m; ++j) {
        if (!clusters[j].alive) continue;
        if (clusters[i].members.size() + clusters[j].members.size() > cap)
          continue;
        const double v = link[i * m + j];
        if (v > best) {
          best = v;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == m) break;
    const double si = static_cast<double>(clusters[bi].members.size());
    const double sj = static_cast<double>(clusters[bj].members.size());
    clusters[bi].members =
        merge_sorted(clusters[bi].members, clusters[bj].members);
    clusters[bj].alive = false;
    merges.push_back(clusters[bi].members);
    for (std::size_t k = 0; k < m; ++k) {
      if (k == bi || k == bj || !clusters[k].alive) continue;
      const double v =
          (si * link[bi * m + k] + sj * link[bj * m + k]) / (si + sj);
      link[bi * m + k] = v;
      link[k * m + bi] = v;
    }
  }

  // "Gain order": strongest channel first, index as the tie-break. The
  // prefixes of a merge set in this order are its most defensible
  // sub-groups — dropping the weakest member is how a group's bottleneck
  // rate improves.
  const auto gain_order = [&](std::vector<std::size_t> list) {
    std::sort(list.begin(), list.end(),
              [&](std::size_t a, std::size_t b) {
                const double ga = channels[user_of[a]].norm_sq();
                const double gb = channels[user_of[b]].norm_sq();
                if (ga != gb) return ga > gb;
                return user_of[a] < user_of[b];
              });
    return list;
  };
  const auto emit_prefixes = [&](const std::vector<std::size_t>& set) {
    const auto ordered = gain_order(set);
    GroupMask mask = 0;
    std::size_t taken = 0;
    for (std::size_t idx : ordered) {
      mask |= GroupMask{1} << user_of[idx];
      ++taken;
      if (taken > cfg.max_group_size) break;
      if (taken >= 2) out.push_back(mask);
    }
  };

  // Intra-cluster candidates: every merge set at every tree level.
  for (const auto& set : merges) emit_prefixes(set);

  // Pairs among the strongest members of each final cluster — small
  // groups the prefix walk may have skipped over.
  constexpr std::size_t kTopPairs = 6;
  for (std::size_t i = 0; i < m; ++i) {
    if (!clusters[i].alive || clusters[i].members.size() < 2) continue;
    auto ordered = gain_order(clusters[i].members);
    if (ordered.size() > kTopPairs) ordered.resize(kTopPairs);
    for (std::size_t a = 0; a < ordered.size(); ++a)
      for (std::size_t b = a + 1; b < ordered.size(); ++b)
        out.push_back((GroupMask{1} << user_of[ordered[a]]) |
                      (GroupMask{1} << user_of[ordered[b]]));
  }

  // Cross-cluster merges: each final cluster with its most-correlated
  // peer, so near-threshold cluster boundaries still get probed.
  for (std::size_t i = 0; i < m; ++i) {
    if (!clusters[i].alive) continue;
    double best = 0.0;
    std::size_t bj = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i || !clusters[j].alive) continue;
      if (link[i * m + j] > best) {
        best = link[i * m + j];
        bj = j;
      }
    }
    if (bj == m || bj < i) continue;  // each unordered pair once
    emit_prefixes(merge_sorted(clusters[i].members, clusters[bj].members));
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace w4k::sched

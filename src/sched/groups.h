// Multicast group enumeration (Sec. 2.4).
//
// For N clients the sender enumerates every non-empty user subset, beams
// to it, maps the bottleneck RSS to a UDP rate, and drops groups whose
// rate falls below a threshold ("we omit the groups whose throughput is
// below a threshold to speed up computation"). Unicast schemes only admit
// singleton groups.
//
// Every subset's beam is a pure function of (scheme, member channels,
// codebook, beam_seed): the SVD power iteration for subset `mask` draws
// from a private Rng seeded by subset_seed(beam_seed, mask), never from a
// generator shared across subsets. Changing the filter knobs
// (rate_threshold / max_group_size / exclude) therefore cannot perturb the
// beams of unrelated surviving subsets, and per-subset caching
// (sched::BeamCache) and ThreadPool-parallel enumeration are bit-identical
// to the serial full enumeration.
#pragma once

#include "beamforming/multicast.h"
#include "common/rng.h"
#include "common/thread_pool.h"

#include <cstdint>
#include <vector>

namespace w4k::sched {

struct GroupSpec {
  std::vector<std::size_t> members;   ///< user indices, ascending
  beamforming::GroupBeam beam;        ///< precoder + per-member RSS + rate

  bool contains(std::size_t user) const;
};

struct GroupEnumConfig {
  /// Groups slower than this are pruned (0 keeps everything usable).
  Mbps rate_threshold{0.0};
  /// Upper bound on group size (paper uses all subsets; capping is an
  /// ablation knob for the pruning bench).
  std::size_t max_group_size = 8;
  /// exclude[u] != 0 drops every subset containing user u (empty = none).
  /// Member indices in the returned groups stay in the *full* user index
  /// space — excluded users simply appear in no group. The hardened
  /// session uses this to quarantine persistently blocked users and to
  /// drop departed ones without re-indexing anything downstream.
  std::vector<std::uint8_t> exclude;
};

/// Deterministic per-subset RNG seed: a splitmix64-style mix of the
/// session-level beam seed and the member bitmask. Each subset's beam
/// derives its randomness from this value alone, independent of what else
/// is enumerated in the same pass.
std::uint64_t subset_seed(std::uint64_t beam_seed, std::uint32_t mask);

/// The member bitmasks enumerate_groups would beamform for `n` users
/// under `cfg`, ascending. Exposed so sched::BeamCache consults exactly
/// the same admission filter (exclusions, size cap, unicast singletons).
/// Throws std::invalid_argument for n == 0 or n > 16.
std::vector<std::uint32_t> admissible_masks(beamforming::Scheme scheme,
                                            std::size_t n,
                                            const GroupEnumConfig& cfg);

/// The beam for one member subset (bits of `mask` index into
/// `user_channels`). Pure function of its arguments; the building block
/// shared by enumerate_groups and sched::BeamCache.
beamforming::GroupBeam subset_beam(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels, std::uint32_t mask,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed);

/// Enumerates candidate groups for the given per-user channels under
/// `scheme`. Groups are ordered by ascending bitmask of members, which is
/// the "increasing group id" order the Eq. 4 greedy relies on. When `pool`
/// is non-null the per-subset beamforming of the admissible subsets runs
/// on it; results are bit-identical for any pool size (each subset is
/// independent and individually seeded).
std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    const GroupEnumConfig& cfg = {}, ThreadPool* pool = nullptr);

/// Legacy entry point: draws a beam seed from `rng` (one next() call) and
/// delegates to the seed-based overload above, so existing callers keep
/// their shape while still getting decoupled per-subset streams.
std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, Rng& rng,
    const GroupEnumConfig& cfg = {});

}  // namespace w4k::sched

// Multicast group candidate generation (Sec. 2.4) — the anytime scheduler
// front end.
//
// For small N the sender enumerates every non-empty user subset, beams to
// it, maps the bottleneck RSS to a UDP rate, and drops groups whose rate
// falls below a threshold ("we omit the groups whose throughput is below a
// threshold to speed up computation"). Past
// GroupEnumConfig::hierarchical_threshold the exhaustive lattice is
// replaced by a cluster-tree generator (see sched/hierarchy.h): users are
// clustered by channel direction and candidates are the singletons plus
// intra- and cross-cluster merges — hundreds of subsets at N=64 instead of
// 2^64. Unicast schemes only admit singleton groups at any N.
//
// Before any SVD runs, every candidate is screened by a cheap rate upper
// bound: a unit-norm beam can deliver at most ||h_u||^2 mW to member u
// (Cauchy–Schwarz), so a group's bottleneck rate never exceeds the Table 2
// rate at min_u ||h_u||^2. The bound is monotone (supersets only shrink
// it) and *exact* with respect to the emission filter — a pruned subset
// could never have been emitted — so pruning changes nothing but the work.
//
// Every subset's beam is a pure function of (scheme, member channels,
// codebook, beam_seed): the SVD power iteration for subset `mask` draws
// from a private Rng seeded by subset_seed(beam_seed, mask), never from a
// generator shared across subsets. Changing the filter knobs
// (rate_threshold / max_group_size / exclude) therefore cannot perturb the
// beams of unrelated surviving subsets, and per-subset caching
// (sched::BeamCache), ThreadPool-parallel enumeration, and the SoA-packed
// batch path (linalg::packed_dominant_right_singular) are bit-identical
// to the serial full enumeration.
#pragma once

#include "beamforming/multicast.h"
#include "common/rng.h"
#include "common/thread_pool.h"

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace w4k::sched {

struct SchedWorkspace;  // sched/workspace.h — reusable enumeration buffers

/// Member bitmask of a candidate group. 64-bit: the hierarchical generator
/// serves up to 64 users; the exhaustive lattice keeps its historic
/// 16-user ceiling. Masks below 2^32 keep the exact subset_seed values the
/// 32-bit masks produced, so cached-beam determinism survives the widening.
using GroupMask = std::uint64_t;

struct GroupSpec {
  std::vector<std::size_t> members;   ///< user indices, ascending
  beamforming::GroupBeam beam;        ///< precoder + per-member RSS + rate

  bool contains(std::size_t user) const;
};

struct GroupEnumConfig {
  /// Groups slower than this are pruned (0 keeps everything usable).
  Mbps rate_threshold{0.0};
  /// Upper bound on group size (paper uses all subsets; capping is an
  /// ablation knob for the pruning bench).
  std::size_t max_group_size = 8;
  /// exclude[u] != 0 drops every subset containing user u (empty = none).
  /// Member indices in the returned groups stay in the *full* user index
  /// space — excluded users simply appear in no group. The hardened
  /// session uses this to quarantine persistently blocked users and to
  /// drop departed ones without re-indexing anything downstream.
  std::vector<std::uint8_t> exclude;
  /// partition[u] = the transmitter (AP) serving user u. Non-empty: every
  /// emitted group must be partition-pure — a multicast beam is formed by
  /// one physical array, so a group can never span APs. Empty = all users
  /// share one transmitter (the single-AP behaviour, bit-identical to the
  /// pre-partition enumeration). Values must be < 16.
  std::vector<std::uint8_t> partition;

  // --- Anytime candidate generation (DESIGN.md Sec. 4f) -----------------
  /// User counts above this switch from the paper's exhaustive subset
  /// lattice to the cluster-tree candidate generator. The default keeps
  /// every pre-existing small-N scenario on the exact exhaustive path
  /// while the lattice is still affordable; values above 16 are clamped
  /// (the lattice is 2^n).
  std::size_t hierarchical_threshold = 12;
  /// Minimum normalized channel correlation |<h_u/|h_u|, h_v/|h_v|>|
  /// (average linkage between clusters) for two beam clusters to merge.
  double cluster_correlation = 0.6;
  /// Agglomeration stops growing a cluster past this many members.
  std::size_t max_cluster_size = 8;
  /// Cap on hierarchical candidates per frame. Singletons are always kept
  /// (they are what guarantees coverage); the merge candidates with the
  /// best bound-rate x size score fill the remainder.
  std::size_t max_candidates = 128;
  /// Wall-clock cutoff for beamforming *optional* (multi-member)
  /// candidates: the singleton prefix always completes so every reachable
  /// user stays coverable, and later merge batches are skipped once the
  /// clock passes the deadline. nullopt = compute every candidate with no
  /// clock reads — the output is then a pure function of the inputs
  /// (the golden/purity determinism contract).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Deterministic per-subset RNG seed: a splitmix64-style mix of the
/// session-level beam seed and the member bitmask. Each subset's beam
/// derives its randomness from this value alone, independent of what else
/// is enumerated in the same pass.
std::uint64_t subset_seed(std::uint64_t beam_seed, GroupMask mask);

/// The member bitmasks of the *exhaustive* lattice for `n` users under
/// `cfg`, ascending. This is the paper's full enumeration; the anytime
/// path only consults it below the hierarchical threshold. Throws
/// std::invalid_argument for n == 0 or n > 16.
std::vector<GroupMask> admissible_masks(beamforming::Scheme scheme,
                                        std::size_t n,
                                        const GroupEnumConfig& cfg);

/// The candidate set decide() will consider this frame, bound-pruned and
/// ordered for the anytime loop.
struct CandidatePlan {
  /// Bound-surviving candidate masks, ascending (the emission order).
  std::vector<GroupMask> masks;
  /// Beamforming order: indices into `masks`. Singleton candidates come
  /// first (base coverage — the mandatory prefix), then merges by
  /// descending bound-rate x member-count (airtime-efficiency), ties by
  /// ascending mask.
  std::vector<std::size_t> priority;
  std::size_t mandatory = 0;  ///< prefix of `priority` never deadline-cut
  std::size_t generated = 0;  ///< candidates before bound pruning
  std::size_t pruned = 0;     ///< dropped by the rate upper bound
  std::size_t capped = 0;     ///< dropped by the max_candidates budget
};

/// Builds the candidate plan for `channels` under `cfg`: the exhaustive
/// lattice up to the hierarchical threshold, the cluster-tree generator
/// above it (up to 64 users; throws past that). Pure function of its
/// arguments — no clock, no RNG — so cache-on/off and any thread count see
/// the same plan.
CandidatePlan plan_candidates(beamforming::Scheme scheme,
                              const std::vector<linalg::CVector>& channels,
                              const GroupEnumConfig& cfg);

/// The beam for one member subset (bits of `mask` index into
/// `user_channels`). Pure function of its arguments; the building block
/// shared by enumerate_groups and sched::BeamCache.
beamforming::GroupBeam subset_beam(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels, GroupMask mask,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed);

/// Beamforms every mask in `masks` (optionally on `pool`). Multi-member
/// kOptimizedMulticast subsets run their Gram power iterations against one
/// SoA-packed block of pre-normalized channel rows — each user is
/// normalized once instead of once per subset, and the pack is dispatched
/// as a single ThreadPool batch. Bit-identical to subset_beam per mask
/// (asserted by the system tests). The pack, the per-user normalized rows,
/// and all index scratch live in `ws` and keep their capacity across
/// frames; results are written into `out` (out.size() >= masks.size()),
/// whose GroupBeams likewise reuse their buffers.
void beamform_subsets(beamforming::Scheme scheme,
                      const std::vector<linalg::CVector>& user_channels,
                      std::span<const GroupMask> masks,
                      const beamforming::Codebook& codebook,
                      std::uint64_t beam_seed, ThreadPool* pool,
                      SchedWorkspace& ws,
                      std::span<beamforming::GroupBeam> out);

/// Allocating forwarder kept for source compatibility; builds a private
/// workspace per call.
[[deprecated("use the SchedWorkspace overload; this forwarder allocates a "
             "fresh workspace and result vector every call")]]
std::vector<beamforming::GroupBeam> beamform_subsets(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const std::vector<GroupMask>& masks,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    ThreadPool* pool);

/// Deadline-aware batch driver shared by enumerate_groups and BeamCache:
/// beamforms `masks` front to back (they must already be in beamforming
/// priority order). The first `mandatory` entries always run; the rest run
/// in small batches with a clock check between batches once `deadline` is
/// set. done[i] == 0 marks a deferred subset.
struct BatchResult {
  std::vector<beamforming::GroupBeam> beams;
  std::vector<std::uint8_t> done;
  std::size_t deferred = 0;
};
BatchResult beamform_priority(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const std::vector<GroupMask>& masks, std::size_t mandatory,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    ThreadPool* pool);

/// Workspace form of beamform_priority: results land in ws.beams /
/// ws.done / ws.deferred (never-shrinking), and each batch is handed to
/// beamform_subsets as a subspan — no per-batch mask copies.
void beamform_priority_into(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    std::span<const GroupMask> masks, std::size_t mandatory,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    ThreadPool* pool, SchedWorkspace& ws);

/// plan_candidates into ws.plan, reusing its vectors and the workspace's
/// pruning scratch. Same values as plan_candidates for the same inputs.
void plan_candidates_into(beamforming::Scheme scheme,
                          const std::vector<linalg::CVector>& channels,
                          const GroupEnumConfig& cfg, SchedWorkspace& ws);

/// Bumps the sched.anytime.* counters for one enumeration pass (no-op with
/// telemetry disabled). Shared by the stateless path and the BeamCache.
void note_anytime(const CandidatePlan& plan, std::size_t beamformed,
                  std::size_t deferred);

/// Enumerates candidate groups for the given per-user channels under
/// `scheme`. Groups are ordered by ascending bitmask of members, which is
/// the "increasing group id" order the Eq. 4 greedy relies on. When `pool`
/// is non-null the per-subset beamforming of the admissible subsets runs
/// on it; results are bit-identical for any pool size (each subset is
/// independent and individually seeded).
///
/// The returned span points into ws.groups (a never-shrinking pool) and
/// stays valid until the next enumeration on the same workspace. In
/// steady state — stable user count and candidate plan — the whole call
/// performs zero heap allocations.
std::span<const GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    const GroupEnumConfig& cfg, ThreadPool* pool, SchedWorkspace& ws);

/// Allocating forwarder kept for source compatibility; builds a private
/// workspace per call and copies the emitted groups out.
[[deprecated("use the SchedWorkspace overload; this forwarder allocates a "
             "fresh workspace and result vector every call")]]
std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    const GroupEnumConfig& cfg = {}, ThreadPool* pool = nullptr);

/// Legacy entry point: draws a beam seed from `rng` (one next() call) and
/// delegates to the seed-based overload above, so existing callers keep
/// their shape while still getting decoupled per-subset streams.
[[deprecated("use the SchedWorkspace overload; this forwarder allocates a "
             "fresh workspace and result vector every call")]]
std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, Rng& rng,
    const GroupEnumConfig& cfg = {});

}  // namespace w4k::sched

// Multicast group enumeration (Sec. 2.4).
//
// For N clients the sender enumerates every non-empty user subset, beams
// to it, maps the bottleneck RSS to a UDP rate, and drops groups whose
// rate falls below a threshold ("we omit the groups whose throughput is
// below a threshold to speed up computation"). Unicast schemes only admit
// singleton groups.
#pragma once

#include "beamforming/multicast.h"
#include "common/rng.h"

#include <cstdint>
#include <vector>

namespace w4k::sched {

struct GroupSpec {
  std::vector<std::size_t> members;   ///< user indices, ascending
  beamforming::GroupBeam beam;        ///< precoder + per-member RSS + rate

  bool contains(std::size_t user) const;
};

struct GroupEnumConfig {
  /// Groups slower than this are pruned (0 keeps everything usable).
  Mbps rate_threshold{0.0};
  /// Upper bound on group size (paper uses all subsets; capping is an
  /// ablation knob for the pruning bench).
  std::size_t max_group_size = 8;
  /// exclude[u] != 0 drops every subset containing user u (empty = none).
  /// Member indices in the returned groups stay in the *full* user index
  /// space — excluded users simply appear in no group. The hardened
  /// session uses this to quarantine persistently blocked users and to
  /// drop departed ones without re-indexing anything downstream.
  std::vector<std::uint8_t> exclude;
};

/// Enumerates candidate groups for the given per-user channels under
/// `scheme`. Groups are ordered by ascending bitmask of members, which is
/// the "increasing group id" order the Eq. 4 greedy relies on.
std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, Rng& rng,
    const GroupEnumConfig& cfg = {});

}  // namespace w4k::sched

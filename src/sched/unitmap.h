// Mapping the per-layer byte allocation onto rateless coding units and a
// packet-level transmission plan (Sec. 2.6, Eq. 4).
//
// A video frame's layer streams are chopped into coding units of (up to)
// 20 symbols x 6000 B; symbols within a unit are interchangeable, symbols
// of different units are not. Given the optimizer's S(G, j) bytes for each
// multicast group G and layer j, the greedy below decides how many symbols
// of each unit each group transmits, maximizing the number of *complete*
// units at every user. Paper heuristic verbatim: "assign traffic to the
// coding groups in an increasing order; within the same coding group,
// assign it to the multicast groups in an increasing order of group id
// until all receivers across each group get the complete data."
#pragma once

#include "fec/coding_unit.h"
#include "sched/allocate.h"
#include "sched/groups.h"

#include <cstdint>
#include <span>
#include <vector>

namespace w4k::sched {

/// One coding unit's place in the frame's layer streams.
struct UnitSpec {
  fec::UnitId id;              ///< (layer, unit index within layer)
  int sublayer_k = 0;          ///< source video sublayer
  std::size_t offset = 0;      ///< byte offset inside that sublayer buffer
  std::size_t source_bytes = 0;
  std::size_t k_symbols = 0;   ///< symbols needed to decode this unit
};

/// Chops a frame's sublayers into coding units (ascending sublayer k, then
/// offset). Unit ids number units within their layer in that order.
std::vector<UnitSpec> frame_units(int width, int height,
                                  std::size_t symbol_size = fec::kDefaultSymbolSize,
                                  std::size_t symbols_per_unit =
                                      fec::kDefaultSymbolsPerUnit);

/// sss(G, i, j): symbols of unit `unit_index` that group `group` transmits.
struct UnitAssignment {
  std::size_t group = 0;
  std::size_t unit_index = 0;  ///< index into the frame_units() vector
  std::size_t symbols = 0;
};

struct UnitMapResult {
  /// Assignments in transmission-priority order (layer asc, unit asc,
  /// group asc) — the order the sender drains them into packets.
  std::vector<UnitAssignment> assignments;
  /// user_symbols[u][i]: symbols user u receives for unit i if nothing is
  /// lost over the air (sum over its groups' assignments).
  std::vector<std::vector<std::size_t>> user_symbols;
  /// user_decodes[u][i]: whether that is enough to decode unit i.
  std::vector<std::vector<bool>> user_decodes;
  /// Symbols of budget that could not be applied to any incomplete unit.
  std::size_t leftover_symbols = 0;
};

/// Runs the Eq. 4 greedy. `group_layer_bytes[g][j]` is the optimizer's
/// S(G, j) — typically Allocation::bytes_rows(); budgets are rounded down
/// to whole symbols. Both spans accept a std::vector implicitly.
UnitMapResult map_to_units(std::span<const GroupSpec> groups,
                           std::span<const LayerArray> group_layer_bytes,
                           const std::vector<UnitSpec>& units,
                           std::size_t n_users,
                           std::size_t symbol_size = fec::kDefaultSymbolSize);

/// Same greedy writing into a caller-owned result whose per-user rows
/// reuse their capacity across frames — the per-frame hot-loop variant
/// (zero heap allocations in steady state). Bit-identical output to
/// map_to_units().
void map_to_units_into(std::span<const GroupSpec> groups,
                       std::span<const LayerArray> group_layer_bytes,
                       const std::vector<UnitSpec>& units,
                       std::size_t n_users, std::size_t symbol_size,
                       UnitMapResult& res);

/// Reference solver for Eq. 4: exhaustively searches symbol assignments
/// and returns the maximum total decoded bytes across users (the
/// objective the greedy approximates). Exponential — usable only for the
/// tiny instances the validation tests construct; throws
/// std::invalid_argument when the search space exceeds ~10^7 states.
std::size_t exact_unit_objective(
    const std::vector<GroupSpec>& groups,
    const std::vector<LayerArray>& group_layer_bytes,
    const std::vector<UnitSpec>& units, std::size_t n_users,
    std::size_t symbol_size = fec::kDefaultSymbolSize);

/// Total decoded bytes of a UnitMapResult under the same objective.
std::size_t decoded_bytes_objective(const UnitMapResult& result,
                                    const std::vector<UnitSpec>& units);

}  // namespace w4k::sched

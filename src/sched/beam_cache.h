// Per-subset beam cache with dirty-set invalidation — the scheduler fast
// path's first stage (see DESIGN.md Sec. 4e).
//
// The paper's scheduler re-enumerates all 2^N user subsets every frame,
// but between consecutive frames most users' CSI is unchanged (static
// users, or the 3 video frames sharing one 100 ms beacon), so most
// subsets' beams are unchanged too. The cache keys each computed
// beamforming::GroupBeam by its member bitmask and, on every call,
// recomputes only the subsets that contain a *dirty* user — one whose
// channel vector differs from the cached copy. Because each subset's beam
// is a pure function of (scheme, member channels, codebook, beam_seed)
// (see sched::subset_seed), a cache hit is bit-identical to a fresh
// computation, and cache misses can be beamformed in parallel on the
// shared ThreadPool without changing a single bit of output.
//
// Filter knobs (rate_threshold / max_group_size / exclude) only gate which
// subsets are *requested* and which results are *emitted*; cached entries
// outlive filter changes, so quarantining a user or tightening the
// threshold never costs a recompute when the filter relaxes again.
//
// Storage is a flat vector of entries sorted by mask. Invalidation flips a
// valid flag instead of erasing, and recomputed beams are copy-assigned
// into their old slots, so in steady state (stable user count and
// candidate plan) the cache performs zero heap allocations per frame —
// including the mobile scenario's every-3-frames beacon recompute.
#pragma once

#include "sched/groups.h"

#include <cstdint>
#include <span>
#include <vector>

namespace w4k::sched {

class BeamCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;          ///< subsets served from cache
    std::uint64_t misses = 0;        ///< subsets beamformed this lifetime
    std::uint64_t invalidations = 0; ///< full clears (user-count change)
  };

  BeamCache(beamforming::Scheme scheme, std::uint64_t beam_seed)
      : scheme_(scheme), beam_seed_(beam_seed) {}

  /// Enumerates candidate groups exactly like
  /// enumerate_groups(scheme, channels, codebook, beam_seed, cfg) —
  /// bit-identical output, asserted by the property suite — but reuses
  /// cached beams for every subset whose members' channels are unchanged
  /// since the previous call. `pool` (optional) parallelizes the misses,
  /// which are beamformed in the candidate plan's priority order so a
  /// cfg.deadline defers only the least valuable (and already-uncached)
  /// merge subsets. Also bumps the sched.beam_cache.hit/miss and
  /// sched.anytime.* counters when telemetry is enabled.
  ///
  /// The returned span points into ws.groups and stays valid until the
  /// next enumeration on the same workspace.
  std::span<const GroupSpec> enumerate_into(
      const std::vector<linalg::CVector>& channels,
      const beamforming::Codebook& codebook, const GroupEnumConfig& cfg,
      ThreadPool* pool, SchedWorkspace& ws);

  /// Allocating forwarder kept for source compatibility; builds a private
  /// workspace per call and copies the emitted groups out.
  [[deprecated("use enumerate_into with a SchedWorkspace; this forwarder "
               "allocates a fresh workspace and result vector every call")]]
  std::vector<GroupSpec> enumerate(
      const std::vector<linalg::CVector>& channels,
      const beamforming::Codebook& codebook, const GroupEnumConfig& cfg,
      ThreadPool* pool = nullptr);

  /// Drops every cached beam and the remembered channels (session reset).
  void clear();

  const Stats& stats() const { return stats_; }

  /// Cached subsets currently held (diagnostics / tests).
  std::size_t size() const;

 private:
  /// One cached subset. Invalidated entries keep their slot (and their
  /// beam's buffer capacity) so a later recompute of the same mask is a
  /// pure copy-assign.
  struct Entry {
    GroupMask mask = 0;
    beamforming::GroupBeam beam;
    bool valid = false;
  };

  /// Returns the entry for `mask` or nullptr (entries_ is mask-sorted).
  Entry* find(GroupMask mask);

  beamforming::Scheme scheme_;
  std::uint64_t beam_seed_;
  std::vector<linalg::CVector> channels_;  ///< channels at last enumerate
  std::vector<Entry> entries_;             ///< sorted by mask
  Stats stats_;
};

}  // namespace w4k::sched

// Per-session scheduler workspace (DESIGN.md Sec. 4g).
//
// Every buffer the per-frame enumeration path touches lives here and only
// ever grows: candidate plans, the SoA channel pack fed to the batched
// Gram iteration, beam/done scratch for the deadline batcher, and the
// GroupSpec output pool that enumerate_groups_into returns a span over.
// After a few warmup frames every vector has reached its steady-state
// capacity and the whole enumerate -> beamform -> emit pipeline performs
// zero heap allocations (asserted by the W4K_COUNT_ALLOCS tier-1 gate).
//
// Ownership rule: the workspace belongs to the session (or bench/test
// driver) that owns the frame loop, one per concurrent decide() caller —
// it is NOT thread-safe and must not be shared across sessions. Spans
// returned by the _into functions point into the workspace and are
// invalidated by the next call that takes the same workspace.
#pragma once

#include "linalg/decompose.h"
#include "sched/groups.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace w4k::sched {

/// A bound-pruning survivor: candidate mask plus its rate upper bound
/// (plan_candidates_into scratch, kept here so its buffer persists).
struct ScoredCandidate {
  GroupMask mask = 0;
  double ub = 0.0;
};

struct SchedWorkspace {
  // --- plan_candidates_into ---------------------------------------------
  CandidatePlan plan;                  ///< the current frame's plan
  std::vector<GroupMask> raw;          ///< pre-pruning candidate masks
  std::vector<double> cap_mw;          ///< per-user ||h_u||^2 bound input
  std::vector<ScoredCandidate> scored; ///< bound-pruning survivors
  std::vector<std::uint8_t> active;    ///< hierarchical generator's mask

  // --- beamform_subsets_into --------------------------------------------
  linalg::PackedStacks pack;           ///< SoA rows for the Gram batch
  std::vector<std::ptrdiff_t> problem; ///< mask index -> pack problem (-1)
  std::vector<linalg::CVector> unit;   ///< per-user normalized channels;
                                       ///< never shrunk (inner capacity)
  std::vector<std::uint8_t> usable;    ///< unit[u] valid this call

  // --- beamform_priority_into -------------------------------------------
  std::vector<GroupMask> ordered;      ///< masks in beamforming order
  std::vector<beamforming::GroupBeam> beams;  ///< result pool, never shrunk
  std::vector<std::uint8_t> done;      ///< beams[i] computed this call
  std::size_t deferred = 0;            ///< masks cut by the deadline

  // --- enumerate paths ---------------------------------------------------
  std::vector<GroupMask> miss_masks;   ///< BeamCache: uncached masks
  std::vector<const beamforming::GroupBeam*> by_index;  ///< emit lookup
  std::vector<GroupSpec> groups;       ///< emitted-group pool, never shrunk
  std::size_t group_count = 0;         ///< live prefix of `groups`

  /// The groups emitted by the last enumerate_groups_into /
  /// BeamCache::enumerate_into call on this workspace.
  std::span<const GroupSpec> emitted() const {
    return {groups.data(), group_count};
  }
};

}  // namespace w4k::sched

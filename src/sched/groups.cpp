#include "sched/groups.h"

#include <algorithm>
#include <stdexcept>

namespace w4k::sched {
namespace {

/// Filters that decide whether a subset is even beamformed. Shared with
/// BeamCache so cache-on and cache-off enumerate exactly the same masks.
struct MaskFilter {
  std::uint32_t excluded_mask = 0;
  std::size_t max_group_size = 0;
  bool multicast = false;

  MaskFilter(beamforming::Scheme scheme, std::size_t n,
             const GroupEnumConfig& cfg)
      : max_group_size(cfg.max_group_size),
        multicast(beamforming::allows_multicast(scheme)) {
    for (std::size_t u = 0; u < cfg.exclude.size() && u < n; ++u)
      if (cfg.exclude[u]) excluded_mask |= 1u << u;
  }

  bool admits(std::uint32_t mask) const {
    if (mask & excluded_mask) return false;  // quarantined/departed member
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size > max_group_size) return false;
    return multicast || size == 1;
  }
};

}  // namespace

std::vector<std::uint32_t> admissible_masks(beamforming::Scheme scheme,
                                            std::size_t n,
                                            const GroupEnumConfig& cfg) {
  if (n == 0) throw std::invalid_argument("enumerate_groups: no users");
  if (n > 16)
    throw std::invalid_argument("enumerate_groups: subset enumeration "
                                "limited to 16 users");
  const MaskFilter filter(scheme, n, cfg);
  std::vector<std::uint32_t> masks;
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 1; mask < limit; ++mask)
    if (filter.admits(mask)) masks.push_back(mask);
  return masks;
}

bool GroupSpec::contains(std::size_t user) const {
  return std::find(members.begin(), members.end(), user) != members.end();
}

std::uint64_t subset_seed(std::uint64_t beam_seed, std::uint32_t mask) {
  // splitmix64 finalizer over (beam_seed, mask): neighbouring masks land in
  // statistically independent streams, and the value depends on nothing
  // else — not on enumeration order, filters, or other subsets.
  std::uint64_t z = beam_seed ^
                    (0x9e3779b97f4a7c15ULL * (mask + 0x632be59bd9b4e019ULL));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

beamforming::GroupBeam subset_beam(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels, std::uint32_t mask,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed) {
  std::vector<linalg::CVector> channels;
  channels.reserve(static_cast<std::size_t>(__builtin_popcount(mask)));
  for (std::size_t u = 0; u < user_channels.size(); ++u)
    if (mask & (1u << u)) channels.push_back(user_channels[u]);
  return beamforming::group_beam(scheme, channels, codebook,
                                 subset_seed(beam_seed, mask));
}

std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    const GroupEnumConfig& cfg, ThreadPool* pool) {
  const std::size_t n = user_channels.size();
  const std::vector<std::uint32_t> masks = admissible_masks(scheme, n, cfg);

  // Beamform every admissible subset; each is independent and individually
  // seeded, so the parallel path is bit-identical to the serial one.
  std::vector<beamforming::GroupBeam> beams(masks.size());
  const auto compute = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      beams[i] = subset_beam(scheme, user_channels, masks[i], codebook,
                             beam_seed);
  };
  if (pool != nullptr && pool->size() > 1 && masks.size() > 1) {
    pool->parallel_for(0, masks.size(), /*grain=*/8, compute);
  } else {
    compute(0, masks.size());
  }

  std::vector<GroupSpec> out;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    if (beams[i].rate.value <= 0.0) continue;  // cannot sustain any MCS
    if (beams[i].rate < cfg.rate_threshold) continue;
    GroupSpec g;
    for (std::size_t u = 0; u < n; ++u)
      if (masks[i] & (1u << u)) g.members.push_back(u);
    g.beam = std::move(beams[i]);
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, Rng& rng,
    const GroupEnumConfig& cfg) {
  return enumerate_groups(scheme, user_channels, codebook, rng.next(), cfg);
}

}  // namespace w4k::sched

#include "sched/groups.h"

#include "channel/mcs.h"
#include "linalg/decompose.h"
#include "obs/metrics.h"
#include "sched/hierarchy.h"
#include "sched/workspace.h"

#include <algorithm>
#include <stdexcept>

namespace w4k::sched {
namespace {

/// Filters that decide whether a subset is even beamformed. Shared with
/// BeamCache so cache-on and cache-off enumerate exactly the same masks.
struct MaskFilter {
  GroupMask excluded_mask = 0;
  std::size_t max_group_size = 0;
  bool multicast = false;
  bool partitioned = false;
  // Per-partition member masks + each user's partition id (fixed-size
  // arrays: this filter is rebuilt per enumeration inside the
  // zero-allocation frame path).
  GroupMask part_mask[16] = {};
  std::uint8_t part_id[64] = {};

  MaskFilter(beamforming::Scheme scheme, std::size_t n,
             const GroupEnumConfig& cfg)
      : max_group_size(cfg.max_group_size),
        multicast(beamforming::allows_multicast(scheme)) {
    for (std::size_t u = 0; u < cfg.exclude.size() && u < n; ++u)
      if (cfg.exclude[u]) excluded_mask |= GroupMask{1} << u;
    if (!cfg.partition.empty()) {
      partitioned = true;
      for (std::size_t u = 0; u < n && u < 64; ++u) {
        const std::uint8_t p =
            u < cfg.partition.size() ? cfg.partition[u] : 0;
        if (p >= 16)
          throw std::invalid_argument(
              "enumerate_groups: partition id must be < 16");
        part_id[u] = p;
        part_mask[p] |= GroupMask{1} << u;
      }
    }
  }

  bool admits(GroupMask mask) const {
    if (mask & excluded_mask) return false;  // quarantined/departed member
    const auto size = static_cast<std::size_t>(__builtin_popcountll(mask));
    if (size > max_group_size) return false;
    if (!multicast && size != 1) return false;
    if (partitioned && mask) {
      // One beam, one array: every member must share the lowest member's
      // serving AP.
      const unsigned lo = static_cast<unsigned>(__builtin_ctzll(mask));
      if (mask & ~part_mask[part_id[lo]]) return false;
    }
    return true;
  }
};

std::size_t popcount(GroupMask mask) {
  return static_cast<std::size_t>(__builtin_popcountll(mask));
}

/// The rate upper bound behind candidate pruning: a unit-norm beam can
/// deliver at most ||h_u||^2 mW to member u (Cauchy–Schwarz, and every
/// scheme's beam is unit norm), so the group's bottleneck rate never
/// exceeds the Table 2 rate at min over members of ||h_u||^2. Exact with
/// respect to the emission filter: rate_for_rss is monotone in RSS, so a
/// candidate pruned here could only ever have been emitted-filtered.
double rate_upper_bound(GroupMask mask, const std::vector<double>& cap_mw) {
  double cap = 1e300;
  for (std::size_t u = 0; u < cap_mw.size(); ++u)
    if (mask & (GroupMask{1} << u)) cap = std::min(cap, cap_mw[u]);
  if (cap <= 0.0) return 0.0;  // dead member: no MCS, avoid log(0)
  return channel::rate_for_rss(Dbm::from_milliwatts(cap)).value;
}

/// Copies the mask's member channels into a never-shrinking pool and
/// returns the live prefix as a span. Copy-assignment reuses each slot's
/// capacity, so after warmup the gather is allocation-free.
std::span<const linalg::CVector> gather_members(
    const std::vector<linalg::CVector>& user_channels, GroupMask mask,
    std::vector<linalg::CVector>& gather) {
  const std::size_t m = popcount(mask);
  if (gather.size() < m) gather.resize(m);
  std::size_t k = 0;
  for (std::size_t u = 0; u < user_channels.size(); ++u)
    if (mask & (GroupMask{1} << u)) gather[k++] = user_channels[u];
  return {gather.data(), m};
}

}  // namespace

std::vector<GroupMask> admissible_masks(beamforming::Scheme scheme,
                                        std::size_t n,
                                        const GroupEnumConfig& cfg) {
  if (n == 0) throw std::invalid_argument("enumerate_groups: no users");
  if (n > 16)
    throw std::invalid_argument("enumerate_groups: subset enumeration "
                                "limited to 16 users");
  const MaskFilter filter(scheme, n, cfg);
  std::vector<GroupMask> masks;
  const GroupMask limit = GroupMask{1} << n;
  for (GroupMask mask = 1; mask < limit; ++mask)
    if (filter.admits(mask)) masks.push_back(mask);
  return masks;
}

bool GroupSpec::contains(std::size_t user) const {
  return std::find(members.begin(), members.end(), user) != members.end();
}

std::uint64_t subset_seed(std::uint64_t beam_seed, GroupMask mask) {
  // splitmix64 finalizer over (beam_seed, mask): neighbouring masks land in
  // statistically independent streams, and the value depends on nothing
  // else — not on enumeration order, filters, or other subsets.
  std::uint64_t z = beam_seed ^
                    (0x9e3779b97f4a7c15ULL * (mask + 0x632be59bd9b4e019ULL));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void plan_candidates_into(beamforming::Scheme scheme,
                          const std::vector<linalg::CVector>& channels,
                          const GroupEnumConfig& cfg, SchedWorkspace& ws) {
  const std::size_t n = channels.size();
  if (n == 0) throw std::invalid_argument("enumerate_groups: no users");
  if (n > 64)
    throw std::invalid_argument(
        "enumerate_groups: candidate generation limited to 64 users");

  CandidatePlan& plan = ws.plan;
  plan.masks.clear();
  plan.priority.clear();
  plan.mandatory = 0;
  plan.generated = 0;
  plan.pruned = 0;
  plan.capped = 0;

  const MaskFilter filter(scheme, n, cfg);
  const std::size_t threshold =
      std::min<std::size_t>(cfg.hierarchical_threshold, 16);
  const bool hierarchical = n > threshold;

  std::vector<GroupMask>& raw = ws.raw;
  raw.clear();
  if (!hierarchical) {
    // The exhaustive lattice, filtered in place (n <= threshold <= 16).
    const GroupMask limit = GroupMask{1} << n;
    for (GroupMask mask = 1; mask < limit; ++mask)
      if (filter.admits(mask)) raw.push_back(mask);
  } else if (!filter.multicast) {
    for (std::size_t u = 0; u < n; ++u) {
      const GroupMask mask = GroupMask{1} << u;
      if (filter.admits(mask)) raw.push_back(mask);
    }
  } else {
    // The cluster-tree generator still allocates internally; it runs only
    // past the hierarchical threshold, outside the small-N zero-alloc gate.
    ws.active.assign(n, 1);
    for (std::size_t u = 0; u < cfg.exclude.size() && u < n; ++u)
      if (cfg.exclude[u]) ws.active[u] = 0;
    raw = cluster_candidates(channels, ws.active, cfg);
    std::erase_if(raw,
                  [&](GroupMask mask) { return !filter.admits(mask); });
  }
  plan.generated = raw.size();

  // Rate-bound pruning: drop candidates the emission filter could never
  // have kept, before any beamforming is spent on them.
  ws.cap_mw.assign(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) ws.cap_mw[u] = channels[u].norm_sq();
  std::vector<ScoredCandidate>& survivors = ws.scored;
  survivors.clear();
  survivors.reserve(raw.size());
  for (GroupMask mask : raw) {
    const double ub = rate_upper_bound(mask, ws.cap_mw);
    if (ub <= 0.0 || Mbps{ub} < cfg.rate_threshold) {
      ++plan.pruned;
      continue;
    }
    survivors.push_back({mask, ub});
  }

  // The hierarchical generator additionally honors the per-frame
  // candidate budget: singletons are always kept, merges compete by
  // bound-rate x size (airtime efficiency). The exhaustive path never
  // caps — its whole point is the complete lattice.
  if (hierarchical && survivors.size() > cfg.max_candidates) {
    std::stable_sort(survivors.begin(), survivors.end(),
                     [](const ScoredCandidate& a, const ScoredCandidate& b) {
                       const bool sa = popcount(a.mask) == 1;
                       const bool sb = popcount(b.mask) == 1;
                       if (sa != sb) return sa;
                       const double va =
                           a.ub * static_cast<double>(popcount(a.mask));
                       const double vb =
                           b.ub * static_cast<double>(popcount(b.mask));
                       if (va != vb) return va > vb;
                       return a.mask < b.mask;
                     });
    const std::size_t keep =
        std::max(cfg.max_candidates,
                 static_cast<std::size_t>(std::count_if(
                     survivors.begin(), survivors.end(),
                     [](const ScoredCandidate& s) {
                       return popcount(s.mask) == 1;
                     })));
    plan.capped = survivors.size() - keep;
    survivors.resize(keep);
  }

  std::sort(survivors.begin(), survivors.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              return a.mask < b.mask;
            });
  plan.masks.reserve(survivors.size());
  for (const ScoredCandidate& s : survivors) plan.masks.push_back(s.mask);

  // Beamforming priority: singletons first (the coverage floor the
  // deadline must never cut), then merges by descending bound-rate x
  // size, ties by ascending mask.
  plan.priority.resize(survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) plan.priority[i] = i;
  std::sort(plan.priority.begin(), plan.priority.end(),
            [&](std::size_t a, std::size_t b) {
              const bool sa = popcount(survivors[a].mask) == 1;
              const bool sb = popcount(survivors[b].mask) == 1;
              if (sa != sb) return sa;
              const double va = survivors[a].ub *
                                static_cast<double>(popcount(survivors[a].mask));
              const double vb = survivors[b].ub *
                                static_cast<double>(popcount(survivors[b].mask));
              if (va != vb) return va > vb;
              return survivors[a].mask < survivors[b].mask;
            });
  plan.mandatory = static_cast<std::size_t>(std::count_if(
      survivors.begin(), survivors.end(),
      [](const ScoredCandidate& s) { return popcount(s.mask) == 1; }));
}

CandidatePlan plan_candidates(beamforming::Scheme scheme,
                              const std::vector<linalg::CVector>& channels,
                              const GroupEnumConfig& cfg) {
  SchedWorkspace ws;
  plan_candidates_into(scheme, channels, cfg, ws);
  return std::move(ws.plan);
}

beamforming::GroupBeam subset_beam(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels, GroupMask mask,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed) {
  std::vector<linalg::CVector> channels;
  channels.reserve(popcount(mask));
  for (std::size_t u = 0; u < user_channels.size(); ++u)
    if (mask & (GroupMask{1} << u)) channels.push_back(user_channels[u]);
  return beamforming::group_beam(scheme, channels, codebook,
                                 subset_seed(beam_seed, mask));
}

void beamform_subsets(beamforming::Scheme scheme,
                      const std::vector<linalg::CVector>& user_channels,
                      std::span<const GroupMask> masks,
                      const beamforming::Codebook& codebook,
                      std::uint64_t beam_seed, ThreadPool* pool,
                      SchedWorkspace& ws,
                      std::span<beamforming::GroupBeam> out) {
  const std::size_t n = user_channels.size();
  if (out.size() < masks.size())
    throw std::invalid_argument("beamform_subsets: output span too small");

  // SoA pack for the multi-member kOptimizedMulticast subsets: each user's
  // channel is normalized once per call (not once per subset) and the
  // member rows land contiguously, so the Gram iterations stream through
  // one flat buffer. Everything else (singletons, dead groups, the other
  // schemes) routes through group_beam_into unchanged. All pack and index
  // buffers belong to the workspace and keep their capacity across frames.
  linalg::PackedStacks& pack = ws.pack;
  pack.rows.clear();
  pack.offsets.clear();
  pack.cols = 0;
  ws.problem.assign(masks.size(), -1);
  if (scheme == beamforming::Scheme::kOptimizedMulticast && !masks.empty()) {
    const std::size_t cols = n > 0 ? user_channels[0].size() : 0;
    if (ws.unit.size() < n) ws.unit.resize(n);  // slot pool: never shrinks
    ws.usable.assign(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      if (user_channels[u].size() != cols) continue;
      if (user_channels[u].norm() <= 0.0) continue;
      ws.usable[u] = 1;
      // normalized() without the temporary: copy-assign into the slot
      // (capacity reused), then the same element-wise divide.
      ws.unit[u] = user_channels[u];
      const double nn = user_channels[u].norm();
      for (std::size_t i = 0; i < ws.unit[u].size(); ++i) ws.unit[u][i] /= nn;
    }
    pack.cols = cols;
    pack.offsets.push_back(0);
    for (std::size_t i = 0; i < masks.size(); ++i) {
      if (popcount(masks[i]) < 2 || cols == 0) continue;
      std::size_t m_usable = 0;
      bool mixed = false;
      for (std::size_t u = 0; u < n; ++u) {
        if (!(masks[i] & (GroupMask{1} << u))) continue;
        if (user_channels[u].size() != cols &&
            user_channels[u].norm() > 0.0)
          mixed = true;
        if (ws.usable[u]) ++m_usable;
      }
      if (mixed || m_usable == 0) continue;  // scalar fallback path
      ws.problem[i] = static_cast<std::ptrdiff_t>(pack.problems());
      for (std::size_t u = 0; u < n; ++u)
        if ((masks[i] & (GroupMask{1} << u)) && ws.usable[u])
          pack.rows.insert(pack.rows.end(), ws.unit[u].raw().begin(),
                           ws.unit[u].raw().end());
      pack.offsets.push_back(pack.rows.size() / cols);
    }
  }

  const auto compute = [&](std::size_t lo, std::size_t hi) {
    // Per-worker scratch, declared *inside* the worker-executed body so
    // each pool thread owns its own instance (thread_local variables are
    // not captured by lambdas; declaring them outside and touching them
    // here would dereference the worker's empty copy).
    thread_local std::vector<linalg::CVector> gather_tls;
    thread_local linalg::DominantSVD svd_tls;
    for (std::size_t i = lo; i < hi; ++i) {
      if (ws.problem[i] >= 0) {
        Rng rng(subset_seed(beam_seed, masks[i]));
        linalg::packed_dominant_right_singular_into(
            pack, static_cast<std::size_t>(ws.problem[i]), rng, svd_tls);
        const auto members =
            gather_members(user_channels, masks[i], gather_tls);
        beamforming::evaluate_beam_into(svd_tls.right_singular, members,
                                        out[i]);
      } else {
        const auto members =
            gather_members(user_channels, masks[i], gather_tls);
        beamforming::group_beam_into(scheme, members, codebook,
                                     subset_seed(beam_seed, masks[i]),
                                     out[i]);
      }
    }
  };
  if (pool != nullptr && pool->size() > 1 && masks.size() > 1) {
    pool->parallel_for(0, masks.size(), /*grain=*/8, compute);
  } else {
    compute(0, masks.size());
  }
}

std::vector<beamforming::GroupBeam> beamform_subsets(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const std::vector<GroupMask>& masks,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    ThreadPool* pool) {
  SchedWorkspace ws;
  std::vector<beamforming::GroupBeam> beams(masks.size());
  beamform_subsets(scheme, user_channels, masks, codebook, beam_seed, pool,
                   ws, beams);
  return beams;
}

void beamform_priority_into(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    std::span<const GroupMask> masks, std::size_t mandatory,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    ThreadPool* pool, SchedWorkspace& ws) {
  if (ws.beams.size() < masks.size())
    ws.beams.resize(masks.size());  // beam pool: never shrinks
  // Slots are indexed by miss-list position, so a fault that reshuffles
  // the miss order can land a large group in a slot that last held a
  // singleton. Reserving every slot to the group-size bound (the user
  // count) up front keeps that reshuffle off the heap.
  for (auto& b : ws.beams) b.member_rss.reserve(user_channels.size());
  ws.done.assign(masks.size(), 0);
  ws.deferred = 0;

  const auto run = [&](std::size_t lo, std::size_t hi) {
    beamform_subsets(scheme, user_channels, masks.subspan(lo, hi - lo),
                     codebook, beam_seed, pool, ws,
                     std::span<beamforming::GroupBeam>(ws.beams.data() + lo,
                                                       hi - lo));
    for (std::size_t i = lo; i < hi; ++i) ws.done[i] = 1;
  };

  // The mandatory prefix (singleton coverage) always completes, deadline
  // or not — this is what keeps every reachable user servable when the
  // clock fires on the first pass.
  std::size_t pos = std::min(mandatory, masks.size());
  if (pos > 0) run(0, pos);

  if (!deadline) {
    // No deadline: one big batch, zero clock reads (the determinism
    // contract — output is a pure function of the inputs).
    if (pos < masks.size()) run(pos, masks.size());
    pos = masks.size();
  } else {
    constexpr std::size_t kBatch = 16;
    while (pos < masks.size()) {
      if (std::chrono::steady_clock::now() >= *deadline) break;
      const std::size_t hi = std::min(pos + kBatch, masks.size());
      run(pos, hi);
      pos = hi;
    }
  }
  ws.deferred = masks.size() - pos;
}

BatchResult beamform_priority(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const std::vector<GroupMask>& masks, std::size_t mandatory,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    ThreadPool* pool) {
  SchedWorkspace ws;
  beamform_priority_into(scheme, user_channels, masks, mandatory, deadline,
                         codebook, beam_seed, pool, ws);
  BatchResult res;
  res.beams.resize(masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i)
    res.beams[i] = std::move(ws.beams[i]);
  res.done.assign(ws.done.begin(), ws.done.begin() + masks.size());
  res.deferred = ws.deferred;
  return res;
}

void note_anytime(const CandidatePlan& plan, std::size_t beamformed,
                  std::size_t deferred) {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& c_generated =
      reg.counter("sched.anytime.candidates_generated");
  static obs::Counter& c_pruned = reg.counter("sched.anytime.pruned_by_bound");
  static obs::Counter& c_capped =
      reg.counter("sched.anytime.capped_by_budget");
  static obs::Counter& c_beamformed = reg.counter("sched.anytime.beamformed");
  static obs::Counter& c_deferred = reg.counter("sched.anytime.deferred");
  static obs::Counter& c_deadline = reg.counter("sched.anytime.deadline_hits");
  c_generated.add(plan.generated);
  c_pruned.add(plan.pruned);
  c_capped.add(plan.capped);
  c_beamformed.add(beamformed);
  c_deferred.add(deferred);
  if (deferred > 0) c_deadline.add(1);
}

std::span<const GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    const GroupEnumConfig& cfg, ThreadPool* pool, SchedWorkspace& ws) {
  const std::size_t n = user_channels.size();
  plan_candidates_into(scheme, user_channels, cfg, ws);
  const CandidatePlan& plan = ws.plan;

  // Beamform in priority order (so a deadline defers only the least
  // valuable merges), then emit in ascending mask order as always.
  ws.ordered.clear();
  for (std::size_t j = 0; j < plan.priority.size(); ++j)
    ws.ordered.push_back(plan.masks[plan.priority[j]]);
  beamform_priority_into(scheme, user_channels, ws.ordered, plan.mandatory,
                         cfg.deadline, codebook, beam_seed, pool, ws);
  ws.by_index.assign(plan.masks.size(), nullptr);
  for (std::size_t j = 0; j < plan.priority.size(); ++j)
    if (ws.done[j]) ws.by_index[plan.priority[j]] = &ws.beams[j];
  note_anytime(plan, ws.ordered.size() - ws.deferred, ws.deferred);

  ws.group_count = 0;
  for (std::size_t i = 0; i < plan.masks.size(); ++i) {
    const beamforming::GroupBeam* beam = ws.by_index[i];
    if (beam == nullptr) continue;              // deferred past the deadline
    if (beam->rate.value <= 0.0) continue;      // cannot sustain any MCS
    if (beam->rate < cfg.rate_threshold) continue;
    if (ws.group_count == ws.groups.size()) ws.groups.emplace_back();
    GroupSpec& g = ws.groups[ws.group_count++];  // pool slot: capacity reused
    g.members.clear();
    for (std::size_t u = 0; u < n; ++u)
      if (plan.masks[i] & (GroupMask{1} << u)) g.members.push_back(u);
    g.beam = *beam;
  }
  return ws.emitted();
}

std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, std::uint64_t beam_seed,
    const GroupEnumConfig& cfg, ThreadPool* pool) {
  SchedWorkspace ws;
  const auto emitted = enumerate_groups(scheme, user_channels, codebook,
                                        beam_seed, cfg, pool, ws);
  return {emitted.begin(), emitted.end()};
}

std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, Rng& rng,
    const GroupEnumConfig& cfg) {
  SchedWorkspace ws;
  const auto emitted = enumerate_groups(scheme, user_channels, codebook,
                                        rng.next(), cfg, nullptr, ws);
  return {emitted.begin(), emitted.end()};
}

}  // namespace w4k::sched

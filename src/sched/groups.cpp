#include "sched/groups.h"

#include <algorithm>
#include <stdexcept>

namespace w4k::sched {

bool GroupSpec::contains(std::size_t user) const {
  return std::find(members.begin(), members.end(), user) != members.end();
}

std::vector<GroupSpec> enumerate_groups(
    beamforming::Scheme scheme,
    const std::vector<linalg::CVector>& user_channels,
    const beamforming::Codebook& codebook, Rng& rng,
    const GroupEnumConfig& cfg) {
  const std::size_t n = user_channels.size();
  if (n == 0) throw std::invalid_argument("enumerate_groups: no users");
  if (n > 16)
    throw std::invalid_argument("enumerate_groups: subset enumeration "
                                "limited to 16 users");

  std::uint32_t excluded_mask = 0;
  for (std::size_t u = 0; u < cfg.exclude.size() && u < n; ++u)
    if (cfg.exclude[u]) excluded_mask |= 1u << u;

  std::vector<GroupSpec> out;
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    if (mask & excluded_mask) continue;  // contains a quarantined/gone user
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size > cfg.max_group_size) continue;
    if (!beamforming::allows_multicast(scheme) && size != 1) continue;

    GroupSpec g;
    std::vector<linalg::CVector> channels;
    for (std::size_t u = 0; u < n; ++u) {
      if (mask & (1u << u)) {
        g.members.push_back(u);
        channels.push_back(user_channels[u]);
      }
    }
    g.beam = beamforming::group_beam(scheme, channels, codebook, rng);
    if (g.beam.rate.value <= 0.0) continue;  // cannot sustain any MCS
    if (g.beam.rate < cfg.rate_threshold) continue;
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace w4k::sched

// Cluster-tree candidate generation for large user counts (DESIGN.md
// Sec. 4f).
//
// Past ~12 users the exhaustive subset lattice is unaffordable, but the
// groups worth transmitting to are far from arbitrary: a multicast beam
// only serves several users well when their channels point the same way.
// So we cluster users by normalized channel correlation (average-linkage
// agglomeration with deterministic index tie-breaks) and propose exactly
// the subsets the cluster tree suggests:
//
//   - every active user as a singleton (the coverage floor),
//   - each agglomeration merge set, plus its gain-ordered prefixes
//     (strongest members first), at every level of the tree,
//   - all pairs among the strongest few members of each final cluster,
//   - each final cluster unioned with its most-correlated peer
//     (cross-cluster merges), again as gain-ordered prefixes.
//
// The output is a deduplicated ascending mask list — a pure function of
// (channels, active, cfg); no clock, no RNG — typically a few hundred
// candidates at N=64 instead of 2^64.
#pragma once

#include "sched/groups.h"

#include <cstdint>
#include <vector>

namespace w4k::sched {

/// Candidate member bitmasks from the cluster tree, ascending and
/// deduplicated. `active[u] == 0` keeps user u out of every candidate
/// (quarantined/departed); zero-norm channels get a singleton but are
/// never clustered (they have no direction). Respects
/// cfg.max_group_size / max_cluster_size / cluster_correlation; rate
/// bounds and the max_candidates budget are applied by plan_candidates.
std::vector<GroupMask> cluster_candidates(
    const std::vector<linalg::CVector>& channels,
    const std::vector<std::uint8_t>& active, const GroupEnumConfig& cfg);

}  // namespace w4k::sched

#include "sched/allocate.h"

#include "obs/span.h"
#include "verify/invariants.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

// The optimizer runs on the session's decide() thread (never on the
// ThreadPool), so its working sets live in thread_local never-shrinking
// buffers: after a few warmup frames every evaluate/gradient/refine pass
// reuses capacity and the whole optimization performs zero heap
// allocations. Concurrent sessions on different threads each get their
// own scratch. All thread_local state here is used directly in function
// scope — none of it is referenced from ThreadPool lambdas.

namespace w4k::sched {
namespace {

struct Eval {
  double objective = 0.0;
  std::vector<LayerArray> user_bytes;
  std::vector<double> ssim;
};

/// Effective D_{i,j} for a flattened allocation t (g-major, layer-minor).
///
/// Eq. 1 writes D as the *sum* over a user's groups, but the Eq. 4 greedy
/// makes every group spend its layer budget walking the same coding-unit
/// prefix (each tops up its own deficient members), so a user belonging
/// to several groups decodes the *longest* prefix any of them paid for —
/// the max, not the sum. Using the sum would let the optimizer buy
/// quality with phantom redundant bytes; the max matches what the packet
/// scheduler actually delivers. `binding` (optional) receives, per
/// (user, layer), the group whose budget is the binding one.
using BindingGroups = std::vector<std::array<std::size_t, video::kNumLayers>>;

/// Residual worth of non-binding (overlapping) bytes: they mostly repeat
/// the binding group's prefix, but the extras do recover losses and top up
/// units, so they are not worthless. effective = (1-k)*max + k*sum.
inline constexpr double kOverlapValue = 0.25;

void user_bytes_for_into(const AllocProblem& p, const std::vector<double>& t,
                         std::vector<LayerArray>& d,
                         BindingGroups* binding = nullptr) {
  thread_local std::vector<LayerArray> max_d_tls, sum_d_tls;
  std::vector<LayerArray>& max_d = max_d_tls;
  std::vector<LayerArray>& sum_d = sum_d_tls;
  max_d.assign(p.n_users, LayerArray{});
  sum_d.assign(p.n_users, LayerArray{});
  if (binding != nullptr)
    binding->assign(p.n_users, {~std::size_t{0}, ~std::size_t{0},
                                ~std::size_t{0}, ~std::size_t{0}});
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    const double rate_bytes_per_s = p.groups[g].beam.rate.value * 1e6 / 8.0;
    for (int j = 0; j < video::kNumLayers; ++j) {
      const auto js = static_cast<std::size_t>(j);
      const double bytes = t[g * video::kNumLayers + js] * rate_bytes_per_s;
      if (bytes <= 0.0) continue;
      for (std::size_t u : p.groups[g].members) {
        sum_d[u][js] += bytes;
        if (bytes > max_d[u][js]) {
          max_d[u][js] = bytes;
          if (binding != nullptr) (*binding)[u][js] = g;
        }
      }
    }
  }
  d.assign(p.n_users, LayerArray{});
  for (std::size_t u = 0; u < p.n_users; ++u)
    for (int j = 0; j < video::kNumLayers; ++j) {
      const auto js = static_cast<std::size_t>(j);
      d[u][js] = (1.0 - kOverlapValue) * max_d[u][js] +
                 kOverlapValue * sum_d[u][js];
    }
}

model::Features features_for(const AllocProblem& p, const LayerArray& d) {
  model::Features f;
  for (int j = 0; j < video::kNumLayers; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double cap = std::max(1.0, p.content.layer_bytes[js]);
    f.fraction[js] = std::min(1.0, d[js] / cap);
  }
  f.up_to_layer = p.content.up_to_layer_ssim;
  f.blank = p.content.blank_ssim;
  return f;
}

void evaluate_into(const AllocProblem& p, model::QualityModel& q,
                   const std::vector<double>& t, Eval& e) {
  user_bytes_for_into(p, t, e.user_bytes);
  // Penalize *transmitted* traffic: with max-based effective reception,
  // penalizing received bytes would make redundant transmissions free.
  double traffic = 0.0;
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    const double rate_bytes_per_s = p.groups[g].beam.rate.value * 1e6 / 8.0;
    for (int j = 0; j < video::kNumLayers; ++j)
      traffic +=
          t[g * video::kNumLayers + static_cast<std::size_t>(j)] *
          rate_bytes_per_s;
  }
  e.ssim.clear();
  for (std::size_t u = 0; u < p.n_users; ++u)
    e.ssim.push_back(q.predict(features_for(p, e.user_bytes[u])));
  e.objective = std::accumulate(e.ssim.begin(), e.ssim.end(), 0.0) -
                p.lambda * traffic;
}

void gradient_into(const AllocProblem& p, model::QualityModel& q,
                   const std::vector<double>& t, std::vector<double>& grad) {
  thread_local BindingGroups binding_tls;
  thread_local std::vector<LayerArray> d_tls, gfrac_tls;
  BindingGroups& binding = binding_tls;
  std::vector<LayerArray>& d = d_tls;
  std::vector<LayerArray>& gfrac = gfrac_tls;
  user_bytes_for_into(p, t, d, &binding);
  // Per-user quality gradients w.r.t. reception fraction.
  gfrac.assign(p.n_users, LayerArray{});
  for (std::size_t u = 0; u < p.n_users; ++u)
    gfrac[u] = q.fraction_gradient(features_for(p, d[u]));

  grad.assign(t.size(), 0.0);
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    const double rate_bytes_per_s = p.groups[g].beam.rate.value * 1e6 / 8.0;
    for (int j = 0; j < video::kNumLayers; ++j) {
      const auto js = static_cast<std::size_t>(j);
      const double cap = std::max(1.0, p.content.layer_bytes[js]);
      double dq = -p.lambda;  // traffic penalty applies to every sent byte
      for (std::size_t u : p.groups[g].members) {
        if (d[u][js] >= cap) continue;  // saturated: extra bytes are waste
        // d_eff = (1-k) max + k sum: the binding group carries the full
        // marginal; overlapping groups keep the residual k.
        const double weight =
            binding[u][js] == g ? 1.0 : kOverlapValue;
        dq += weight * gfrac[u][js] / cap;
      }
      grad[g * video::kNumLayers + js] = dq * rate_bytes_per_s;
    }
  }
}

}  // namespace

void project_to_simplex(std::vector<double>& t, double budget) {
  // A NaN-poisoned gradient step must not flow through the sort/accumulate
  // below (NaN breaks the strict-weak ordering and poisons the pivot
  // search): report per policy, then sanitize. NaN and -inf carry no
  // usable demand (0); +inf wants everything it can get (the budget).
  for (auto& x : t) {
    if (std::isfinite(x)) continue;
    const double bad = x;
    verify::check(false, "sched.simplex-nonfinite", [&] {
      return "project_to_simplex: non-finite entry " + std::to_string(bad);
    });
    x = (bad > 0.0 && std::isfinite(budget) && budget > 0.0) ? budget : 0.0;
  }
  if (!(budget > 0.0)) {
    // {t >= 0, sum t <= budget} with budget <= 0 admits only the origin.
    verify::check(std::isfinite(budget), "sched.simplex-bad-budget", [&] {
      return "project_to_simplex: non-finite budget " +
             std::to_string(budget);
    });
    std::fill(t.begin(), t.end(), 0.0);
    return;
  }
  for (auto& x : t) x = std::max(0.0, x);
  const double sum = std::accumulate(t.begin(), t.end(), 0.0);
  if (sum <= budget) return;
  // Euclidean projection onto {x >= 0, sum x = budget} (Held et al.):
  // find tau such that sum max(0, x - tau) = budget.
  thread_local std::vector<double> sorted_tls;
  std::vector<double>& sorted = sorted_tls;
  sorted = t;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double cumulative = 0.0;
  double tau = 0.0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    cumulative += sorted[k];
    const double candidate =
        (cumulative - budget) / static_cast<double>(k + 1);
    if (k + 1 == sorted.size() || sorted[k + 1] <= candidate) {
      tau = candidate;
      break;
    }
  }
  for (auto& x : t) x = std::max(0.0, x - tau);
}

namespace {

/// Defined with round_robin_allocation below; also used as an optimizer
/// starting point.
void round_robin_times_into(const AllocProblem& p, Seconds slot,
                            const std::vector<std::size_t>* subset,
                            std::vector<double>& t);

/// Greedy set cover: repeatedly the group covering the most uncovered
/// users (ties by rate). Low-redundancy multicast-leaning start.
void set_cover_groups_into(const AllocProblem& p,
                           std::vector<std::size_t>& chosen) {
  thread_local std::vector<bool> covered_tls;
  std::vector<bool>& covered = covered_tls;
  covered.assign(p.n_users, false);
  chosen.clear();
  std::size_t n_covered = 0;
  while (n_covered < p.n_users) {
    std::size_t best_g = p.groups.size();
    std::size_t best_new = 0;
    double best_rate = -1.0;
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      std::size_t fresh = 0;
      for (std::size_t u : p.groups[g].members) fresh += covered[u] ? 0 : 1;
      if (fresh > best_new ||
          (fresh == best_new && fresh > 0 &&
           p.groups[g].beam.rate.value > best_rate)) {
        best_g = g;
        best_new = fresh;
        best_rate = p.groups[g].beam.rate.value;
      }
    }
    if (best_g == p.groups.size() || best_new == 0) break;  // uncoverable
    chosen.push_back(best_g);
    for (std::size_t u : p.groups[best_g].members) {
      if (!covered[u]) {
        covered[u] = true;
        ++n_covered;
      }
    }
  }
  if (chosen.empty()) chosen.push_back(0);
}

/// Per-user best dedicated group (fewest members, ties by rate): a
/// unicast-leaning start. Escapes the local optimum where a weak shared
/// beam looks unavoidable to the exchange steps.
void per_user_groups_into(const AllocProblem& p,
                          std::vector<std::size_t>& chosen) {
  chosen.clear();
  for (std::size_t u = 0; u < p.n_users; ++u) {
    std::size_t best_g = p.groups.size();
    std::size_t best_size = ~std::size_t{0};
    double best_rate = -1.0;
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      if (!p.groups[g].contains(u)) continue;
      const std::size_t size = p.groups[g].members.size();
      const double rate = p.groups[g].beam.rate.value;
      if (size < best_size || (size == best_size && rate > best_rate)) {
        best_g = g;
        best_size = size;
        best_rate = rate;
      }
    }
    if (best_g != p.groups.size()) chosen.push_back(best_g);
  }
  if (chosen.empty()) chosen.push_back(0);
}

/// Efficiency cover: repeatedly the group maximizing
/// rate x newly-covered-members — airtime efficiency, the quantity that
/// makes a shared beam worth it. Seeds genuine multicast pairs/triples the
/// exchange steps cannot reach from a singleton optimum (crossing the
/// valley where a shared group is loaded but not yet binding).
void efficiency_cover_groups_into(const AllocProblem& p,
                                  std::vector<std::size_t>& chosen) {
  thread_local std::vector<bool> covered_tls;
  std::vector<bool>& covered = covered_tls;
  covered.assign(p.n_users, false);
  chosen.clear();
  std::size_t n_covered = 0;
  while (n_covered < p.n_users) {
    std::size_t best_g = p.groups.size();
    double best_score = 0.0;
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      std::size_t fresh = 0;
      for (std::size_t u : p.groups[g].members) fresh += covered[u] ? 0 : 1;
      const double score =
          p.groups[g].beam.rate.value * static_cast<double>(fresh);
      if (score > best_score) {
        best_g = g;
        best_score = score;
      }
    }
    if (best_g == p.groups.size()) break;  // uncoverable remainder
    chosen.push_back(best_g);
    for (std::size_t u : p.groups[best_g].members) {
      if (!covered[u]) {
        covered[u] = true;
        ++n_covered;
      }
    }
  }
  if (chosen.empty()) chosen.push_back(0);
}

/// One local refinement pass (pairwise Frank-Wolfe style exchange): each
/// iteration moves up to `step` seconds from a drainable coordinate to a
/// high-marginal one, or claims unused budget. When `allowed` is non-null
/// only flagged coordinates may receive budget — used to converge cleanly
/// inside a start's own support before opening the full space.
struct RefineResult {
  std::vector<double> t;
  Eval eval;
  int iters = 0;
};

/// In-place refine: r.t holds the init on entry and the refined plan on
/// exit; r.eval its evaluation. Value-identical to refining a fresh copy
/// (the candidate swap below replaces the historical vector move).
void refine_inplace(const AllocProblem& p, model::QualityModel& quality,
                    const OptimizerConfig& cfg, RefineResult& r,
                    const std::vector<bool>* allowed) {
  std::vector<double>& t = r.t;
  const std::size_t dims = p.groups.size() * video::kNumLayers;
  evaluate_into(p, quality, t, r.eval);
  double step = cfg.initial_step;
  int iters = 0;
  double total = 0.0;
  for (double x : t) total += x;
  thread_local std::vector<double> grad_tls, cand_tls;
  thread_local std::vector<LayerArray> d_tls;
  thread_local Eval trial_tls;
  std::vector<double>& grad = grad_tls;
  std::vector<double>& cand = cand_tls;
  std::vector<LayerArray>& d = d_tls;
  Eval& trial = trial_tls;
  // One exchange touches two coordinates; large group sets need a
  // proportionally larger budget to redistribute across them.
  const int max_iters =
      std::max(cfg.max_iterations, static_cast<int>(2 * dims));
  for (; iters < max_iters && step >= cfg.min_step; ++iters) {
    // Anytime cutoff: r.eval always holds an evaluated feasible plan (the
    // init's evaluation before the first exchange), so breaking here at
    // any point returns best-so-far. No deadline means no clock reads.
    if (cfg.deadline &&
        std::chrono::steady_clock::now() >= *cfg.deadline)
      break;
    gradient_into(p, quality, t, grad);
    user_bytes_for_into(p, t, d);

    // Top gradient coordinates, best first. Trying several before
    // backtracking matters in large group sets: the single argmax can
    // sit on a model kink where no step size improves, and halving the
    // step on it alone would abandon genuinely good moves elsewhere.
    constexpr std::size_t kTargets = 6;
    std::array<std::size_t, kTargets> targets;
    targets.fill(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      if (allowed != nullptr && !(*allowed)[i]) continue;
      for (std::size_t k = 0; k < kTargets; ++k) {
        if (targets[k] == dims || grad[i] > grad[targets[k]]) {
          for (std::size_t m = kTargets - 1; m > k; --m)
            targets[m] = targets[m - 1];
          targets[k] = i;
          break;
        }
      }
    }

    // Drain source for a given target: prefer a coordinate with strict
    // byte *excess* — every member already holds more than the layer
    // cap, so reducing it by up to the excess costs zero quality (the
    // objective has a kink at fraction == 1; the upward gradient is not
    // the downward one there). Fall back to the worst-gradient loaded
    // coordinate.
    const auto pick_drain = [&](std::size_t imax) {
      std::pair<std::size_t, double> out{dims, 0.0};
      for (std::size_t g = 0; g < p.groups.size(); ++g) {
        const double rate_bytes_per_s =
            p.groups[g].beam.rate.value * 1e6 / 8.0;
        if (rate_bytes_per_s <= 0.0) continue;
        for (int j = 0; j < video::kNumLayers; ++j) {
          const auto js = static_cast<std::size_t>(j);
          const std::size_t i = g * video::kNumLayers + js;
          if (t[i] <= 1e-12 || i == imax) continue;
          const double cap = std::max(1.0, p.content.layer_bytes[js]);
          double excess = 1e300;
          for (std::size_t u : p.groups[g].members)
            excess = std::min(excess, d[u][js] - cap);
          if (excess <= 0.0) continue;
          const double dr = std::min(t[i], excess / rate_bytes_per_s);
          if (dr > out.second) out = {i, dr};
        }
      }
      if (out.first == dims) {
        for (std::size_t i = 0; i < dims; ++i)
          if (t[i] > 1e-12 && i != imax &&
              (out.first == dims || grad[i] < grad[out.first]))
            out.first = i;
        if (out.first != dims) out.second = t[out.first];
      }
      return out;
    };

    bool improved = false;
    const double slack = p.time_budget - total;
    for (std::size_t k = 0; k < kTargets && !improved; ++k) {
      const std::size_t imax = targets[k];
      if (imax == dims) break;
      cand = t;  // copy-assign: capacity reused
      double cand_total = total;
      if (slack > 1e-9 && grad[imax] > 0.0) {
        const double add = std::min(step, slack);
        cand[imax] += add;
        cand_total += add;
      } else {
        const auto [imin, drainable] = pick_drain(imax);
        if (imin == dims || grad[imax] <= grad[imin] || drainable <= 0.0)
          continue;
        const double move = std::min(step, drainable);
        cand[imin] -= move;
        cand[imax] += move;
      }
      evaluate_into(p, quality, cand, trial);
      if (trial.objective > r.eval.objective + 1e-12) {
        t.swap(cand);
        total = cand_total;
        r.eval = trial;  // copy-assign: capacity reused
        step *= 1.3;
        improved = true;
      }
    }
    if (!improved) step *= 0.5;  // all targets failed at this step size
  }
  r.iters = iters;
}

/// Packages a refined time vector and its evaluation into the caller's
/// Allocation (store reshaped in place, capacity reused).
void fill_allocation(const AllocProblem& p, const std::vector<double>& t,
                     const Eval& e, int iters, Allocation& out) {
  out.reset(p.groups.size(), p.n_users);
  out.iterations = iters;
  out.objective = e.objective;
  out.predicted_ssim = e.ssim;
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    const double rate_bytes_per_s = p.groups[g].beam.rate.value * 1e6 / 8.0;
    for (int j = 0; j < video::kNumLayers; ++j) {
      const auto js = static_cast<std::size_t>(j);
      out.time(g)[js] = t[g * video::kNumLayers + js];
      out.bytes(g)[js] = out.time(g)[js] * rate_bytes_per_s;
    }
  }
  for (std::size_t u = 0; u < e.user_bytes.size(); ++u)
    out.user_bytes(u) = e.user_bytes[u];
}

/// Coordinates belonging to groups the init actually loaded (all layers).
void support_mask_into(const AllocProblem& p, const std::vector<double>& init,
                       std::vector<bool>& allowed) {
  allowed.assign(init.size(), false);
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    bool loaded = false;
    for (int j = 0; j < video::kNumLayers; ++j)
      loaded |= init[g * video::kNumLayers + static_cast<std::size_t>(j)] >
                1e-12;
    if (loaded)
      for (int j = 0; j < video::kNumLayers; ++j)
        allowed[g * video::kNumLayers + static_cast<std::size_t>(j)] = true;
  }
}

}  // namespace

namespace {

/// Verify-layer invariant: whatever path produced the allocation, its time
/// plan must stay inside the frame budget with no negative entries, and
/// the byte plan must be the time plan scaled by the group rate.
void check_allocation(const AllocProblem& p, const Allocation& a,
                      const char* who) {
  if (!verify::enabled()) return;
  double total = 0.0;
  for (std::size_t g = 0; g < a.group_count(); ++g) {
    const double rate_bytes_per_s = p.groups[g].beam.rate.value * 1e6 / 8.0;
    for (int j = 0; j < video::kNumLayers; ++j) {
      const auto js = static_cast<std::size_t>(j);
      const double t = a.time(g)[js];
      verify::check(t >= 0.0, "sched.negative-time", [&] {
        return std::string(who) + ": time[" + std::to_string(g) + "][" +
               std::to_string(js) + "] = " + std::to_string(t);
      });
      verify::check(
          std::abs(a.bytes(g)[js] - t * rate_bytes_per_s) <=
              1e-6 * std::max(1.0, std::abs(a.bytes(g)[js])),
          "sched.bytes-time-mismatch", [&] {
            return std::string(who) + ": bytes[" + std::to_string(g) + "][" +
                   std::to_string(js) + "] = " +
                   std::to_string(a.bytes(g)[js]) + " but time*rate = " +
                   std::to_string(t * rate_bytes_per_s);
          });
      total += t;
    }
  }
  verify::check(total <= p.time_budget + 1e-9, "sched.budget-exceeded", [&] {
    return std::string(who) + ": allocated " + std::to_string(total) +
           " s > budget " + std::to_string(p.time_budget) + " s";
  });
}

/// Deadline-path safety net: any user who belongs to some candidate group
/// but whose groups all ended at zero airtime gets a slice — from slack
/// budget when there is any, otherwise from half of the largest allocated
/// coordinate. Deterministic (ascending users, lowest-index tie-breaks)
/// and only ever *adds* coverage, so a plan cut short by the clock still
/// serves every reachable user. Returns the number of users repaired.
std::size_t repair_coverage(const AllocProblem& p, std::vector<double>& t) {
  const auto group_time = [&](std::size_t g) {
    double tg = 0.0;
    for (std::size_t j = 0; j < video::kNumLayers; ++j)
      tg += t[g * video::kNumLayers + j];
    return tg;
  };
  std::size_t repaired = 0;
  for (std::size_t u = 0; u < p.n_users; ++u) {
    bool grouped = false, served = false;
    std::size_t best_g = p.groups.size();
    double best_rate = -1.0;
    for (std::size_t g = 0; g < p.groups.size(); ++g) {
      if (!p.groups[g].contains(u)) continue;
      grouped = true;
      if (group_time(g) > 0.0) {
        served = true;
        break;
      }
      if (p.groups[g].beam.rate.value > best_rate) {
        best_rate = p.groups[g].beam.rate.value;
        best_g = g;
      }
    }
    if (!grouped || served || best_g == p.groups.size()) continue;
    double total = 0.0;
    for (double x : t) total += x;
    const double slack = p.time_budget - total;
    double grant = 0.0;
    if (slack > 1e-9) {
      grant = std::min(slack, 0.5e-3);
    } else {
      std::size_t donor = t.size();
      for (std::size_t i = 0; i < t.size(); ++i)
        if (donor == t.size() || t[i] > t[donor]) donor = i;
      if (donor == t.size() || t[donor] <= 0.0) continue;
      grant = 0.5 * t[donor];
      t[donor] -= grant;
    }
    // Base layer first: coverage means the base prefix above anything.
    t[best_g * video::kNumLayers] += grant;
    ++repaired;
  }
  return repaired;
}

}  // namespace

void optimize_allocation_into(const AllocProblem& p,
                              model::QualityModel& quality, Allocation& out,
                              const OptimizerConfig& cfg,
                              const std::vector<double>* warm_start) {
  if (p.groups.empty())
    throw std::invalid_argument("optimize_allocation: no usable groups");
  if (p.n_users == 0)
    throw std::invalid_argument("optimize_allocation: no users");

  static obs::Stage& st = obs::stage("sched.optimize");
  obs::StageSpan span(st);

  const auto finish = [&](const Allocation& result) {
    if (obs::enabled()) {
      auto& reg = obs::MetricsRegistry::global();
      static obs::Counter& c_calls = reg.counter("sched.optimize_calls");
      static obs::Counter& c_groups = reg.counter("sched.groups_evaluated");
      static obs::Counter& c_iters = reg.counter("sched.iterations");
      static obs::Gauge& g_obj = reg.gauge("sched.objective");
      c_calls.add(1);
      c_groups.add(p.groups.size());
      c_iters.add(static_cast<std::uint64_t>(std::max(0, result.iterations)));
      g_obj.set(result.objective);
    }
    check_allocation(p, result, "optimize_allocation");
  };

  // Deadline runs get the coverage safety net before results leave; the
  // no-deadline path bypasses it entirely (bit-stable output).
  const auto finalize = [&](std::vector<double>& t, Eval& e, int iters) {
    if (cfg.deadline) {
      const std::size_t repaired = repair_coverage(p, t);
      if (repaired > 0) {
        evaluate_into(p, quality, t, e);
        if (obs::enabled()) {
          static obs::Counter& c_repaired =
              obs::MetricsRegistry::global().counter(
                  "sched.anytime.repaired_users");
          c_repaired.add(repaired);
        }
      }
    }
    fill_allocation(p, t, e, iters, out);
    finish(out);
  };

  // --- Warm path: refine the previous frame's allocation directly. ------
  // The remapped plan is already a near-feasible near-optimum when the
  // group set and channels moved only a little (the common mobile case),
  // so one full-space refine converges in a handful of step-halvings
  // instead of the multi-start's thousands of exchange iterations. The
  // evaluated round-robin init serves as the acceptance floor: a warm
  // result that cannot beat the weakest cold seed means the group set
  // changed too much, and the multi-start below runs as the fallback.
  const std::size_t dims = p.groups.size() * video::kNumLayers;
  if (warm_start != nullptr && warm_start->size() == dims) {
    thread_local RefineResult warm_tls;
    RefineResult& warm = warm_tls;
    warm.t = *warm_start;  // copy-assign: capacity reused
    bool finite = true;
    for (double x : warm.t) finite &= std::isfinite(x);
    if (finite) {
      project_to_simplex(warm.t, p.time_budget);
      // A warm start that leaves some group-served user at exactly zero
      // airtime is not a safe fast path: the quality model's gradient is
      // nearly flat at zero delivered bytes, so a lone refine can fail to
      // climb away from starving that user — exactly the shape a user
      // re-entering after quarantine/blockage produces (their groups were
      // absent from the previous frame, so the remap left them at zero).
      // The multi-start's per-user and covering seeds exist for that case.
      thread_local std::vector<std::uint8_t> grouped_tls, served_tls;
      std::vector<std::uint8_t>& grouped = grouped_tls;
      std::vector<std::uint8_t>& served = served_tls;
      grouped.assign(p.n_users, 0);
      served.assign(p.n_users, 0);
      for (std::size_t g = 0; g < p.groups.size(); ++g) {
        double tg = 0.0;
        for (std::size_t j = 0; j < video::kNumLayers; ++j)
          tg += warm.t[g * video::kNumLayers + j];
        for (std::size_t u : p.groups[g].members) {
          grouped[u] = 1;
          if (tg > 0.0) served[u] = 1;
        }
      }
      bool serves_all = true;
      for (std::size_t u = 0; u < p.n_users; ++u)
        serves_all &= grouped[u] == 0 || served[u] != 0;
      if (!serves_all && obs::enabled()) {
        static obs::Counter& c_fb_unserved =
            obs::MetricsRegistry::global().counter(
                "sched.warm_start.fallbacks");
        c_fb_unserved.add(1);
      }
      if (serves_all &&
          std::accumulate(warm.t.begin(), warm.t.end(), 0.0) > 0.0) {
        refine_inplace(p, quality, cfg, warm, nullptr);
        thread_local std::vector<double> floor_t_tls;
        thread_local Eval floor_tls;
        std::vector<double>& floor_t = floor_t_tls;
        Eval& floor = floor_tls;
        round_robin_times_into(p, 1e-3, nullptr, floor_t);
        evaluate_into(p, quality, floor_t, floor);
        const bool accept = warm.eval.objective >= floor.objective;
        if (obs::enabled()) {
          auto& reg = obs::MetricsRegistry::global();
          static obs::Counter& c_hit = reg.counter("sched.warm_start.hits");
          static obs::Counter& c_fb =
              reg.counter("sched.warm_start.fallbacks");
          static obs::Counter& c_saved =
              reg.counter("sched.warm_start.iters_saved");
          if (accept) {
            c_hit.add(1);
            // Saved vs the configured cold budget: 4 starts x 2 refine
            // phases x max_iterations (an estimate against the iteration
            // cap, not a measurement of the skipped runs).
            const int budget = 8 * cfg.max_iterations;
            c_saved.add(static_cast<std::uint64_t>(
                std::max(0, budget - warm.iters)));
          } else {
            c_fb.add(1);
          }
        }
        if (accept) {
          finalize(warm.t, warm.eval, warm.iters);
          return;
        }
      }
    }
  }

  // Multi-start local search. Each start is refined in two phases — first
  // restricted to its own support (so it converges cleanly within its
  // "strategy": multicast covering, airtime-efficient covering, per-user
  // unicast, round-robin) and then over the full space. Keeping the best
  // result makes the optimizer dominate the round-robin baseline by
  // construction and prevents a greedy path from wandering off a strong
  // simple solution toward a weak overlapping one.
  thread_local std::vector<std::size_t> cover_tls, efficient_tls,
      dedicated_tls;
  std::vector<std::size_t>& cover = cover_tls;
  std::vector<std::size_t>& efficient = efficient_tls;
  std::vector<std::size_t>& dedicated = dedicated_tls;
  set_cover_groups_into(p, cover);
  efficiency_cover_groups_into(p, efficient);
  per_user_groups_into(p, dedicated);
  thread_local std::array<std::vector<double>, 4> inits_tls;
  std::array<std::vector<double>, 4>& inits = inits_tls;
  round_robin_times_into(p, 1e-3, &cover, inits[0]);
  round_robin_times_into(p, 1e-3, &efficient, inits[1]);
  round_robin_times_into(p, 1e-3, &dedicated, inits[2]);
  round_robin_times_into(p, 1e-3, nullptr, inits[3]);

  thread_local std::vector<double> best_t_tls;
  thread_local Eval best_eval_tls;
  thread_local RefineResult phase_tls;
  thread_local std::vector<bool> allowed_tls;
  std::vector<double>& best_t = best_t_tls;
  Eval& best_eval = best_eval_tls;
  RefineResult& phase = phase_tls;
  std::vector<bool>& allowed = allowed_tls;
  int total_iters = 0;
  bool have_result = false;
  for (std::size_t s = 0; s < inits.size(); ++s) {
    // The first start always completes (it is what guarantees a feasible,
    // evaluated plan exists); the deadline only skips the later ones.
    if (s > 0 && cfg.deadline &&
        std::chrono::steady_clock::now() >= *cfg.deadline)
      break;
    support_mask_into(p, inits[s], allowed);
    phase.t = inits[s];  // copy-assign: capacity reused
    refine_inplace(p, quality, cfg, phase, &allowed);
    const int phase1_iters = phase.iters;
#ifdef W4K_OPT_DEBUG
    const double phase1_obj = phase.eval.objective;
#endif
    refine_inplace(p, quality, cfg, phase, nullptr);
#ifdef W4K_OPT_DEBUG
    std::fprintf(stderr, "start: phase1 obj=%.5f iters=%d phase2 obj=%.5f iters=%d\n",
                 phase1_obj, phase1_iters, phase.eval.objective, phase.iters);
#endif
    total_iters += phase1_iters + phase.iters;
    if (!have_result || phase.eval.objective > best_eval.objective) {
      if (have_result && obs::enabled()) {
        static obs::Counter& c_improved =
            obs::MetricsRegistry::global().counter(
                "sched.anytime.best_plan_improvements");
        c_improved.add(1);
      }
      best_t = phase.t;        // copy-assign: capacity reused
      best_eval = phase.eval;  // copy-assign: capacity reused
      have_result = true;
    }
  }

  finalize(best_t, best_eval, total_iters);
}

Allocation optimize_allocation(const AllocProblem& p,
                               model::QualityModel& quality,
                               const OptimizerConfig& cfg,
                               const std::vector<double>* warm_start) {
  Allocation out;
  optimize_allocation_into(p, quality, out, cfg, warm_start);
  return out;
}

namespace {

/// Round-robin time vector: 1 ms slots rotate over the groups (all of
/// them, or an explicit subset); each slot goes to the lowest layer that
/// group's members still miss.
void round_robin_times_into(const AllocProblem& p, Seconds slot,
                            const std::vector<std::size_t>* subset,
                            std::vector<double>& t) {
  t.assign(p.groups.size() * video::kNumLayers, 0.0);
  thread_local std::vector<std::size_t> order_tls;
  thread_local std::vector<LayerArray> delivered_tls;
  std::vector<std::size_t>& order = order_tls;
  std::vector<LayerArray>& delivered = delivered_tls;
  if (subset != nullptr && !subset->empty()) {
    order = *subset;  // copy-assign: capacity reused
  } else {
    order.resize(p.groups.size());
    std::iota(order.begin(), order.end(), 0);
  }
  delivered.assign(p.n_users, LayerArray{});
  // Remaining-budget accounting (rather than summing `used` upward): the
  // final partial slot is exactly the residue, so the slots sum to the
  // budget minus at most the 1e-12 termination threshold and can never
  // overrun it — even for budgets that are not a multiple of `slot`.
  Seconds remaining = p.time_budget;
  std::size_t idx = 0;
  while (remaining > 1e-12) {
    const Seconds this_slot = std::min(slot, remaining);
    const std::size_t g = order[idx];
    const auto& group = p.groups[g];
    const double rate_bytes_per_s = group.beam.rate.value * 1e6 / 8.0;
    const double bytes = this_slot * rate_bytes_per_s;

    // Lowest layer some member of this group still misses.
    int target = video::kNumLayers - 1;
    for (int j = 0; j < video::kNumLayers; ++j) {
      const auto js = static_cast<std::size_t>(j);
      bool all_have = true;
      for (std::size_t u : group.members)
        all_have &= delivered[u][js] >= p.content.layer_bytes[js];
      if (!all_have) {
        target = j;
        break;
      }
    }
    const auto ts = static_cast<std::size_t>(target);
    t[g * video::kNumLayers + ts] += this_slot;
    for (std::size_t u : group.members) delivered[u][ts] += bytes;

    remaining -= this_slot;
    idx = (idx + 1) % order.size();
  }
}

}  // namespace

void round_robin_allocation_into(const AllocProblem& p,
                                 model::QualityModel& quality,
                                 Allocation& out, Seconds slot) {
  if (p.groups.empty())
    throw std::invalid_argument("round_robin_allocation: no usable groups");
  if (!(slot > 0.0) || !std::isfinite(slot))
    throw std::invalid_argument("round_robin_allocation: slot must be a "
                                "positive finite duration");
  thread_local std::vector<double> t_tls;
  thread_local Eval e_tls;
  std::vector<double>& t = t_tls;
  Eval& e = e_tls;
  round_robin_times_into(p, slot, nullptr, t);
  evaluate_into(p, quality, t, e);
  fill_allocation(p, t, e, 0, out);
  check_allocation(p, out, "round_robin_allocation");
}

Allocation round_robin_allocation(const AllocProblem& p,
                                  model::QualityModel& quality,
                                  Seconds slot) {
  Allocation out;
  round_robin_allocation_into(p, quality, out, slot);
  return out;
}

}  // namespace w4k::sched

// Deterministic fault injection for chaos testing the streaming stack.
//
// A FaultPlan is a declarative, seeded schedule of the hostile events a
// 60 GHz deployment actually sees (Sec. 2.6/3.2 motivate every one of
// them): per-frame per-user feedback-report loss or bounded delay, missed
// or corrupted CSI beacons, burst blockage layered on top of whatever the
// channel model already does, transmit-budget collapse (NIC stall /
// leaky-bucket starvation), and mid-session user churn. The plan is plain
// data — it can be parsed from a text file (`w4k_sim --fault-plan`),
// generated randomly from a seed (FaultPlan::random), or built by hand in
// a test — and the FaultInjector resolves it into one FrameFaults record
// per frame, so identical plans replay bit-identically.
#pragma once

#include "common/rng.h"
#include "common/units.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace w4k::fault {

/// One receiver's report for one frame never reaches the sender
/// (delay_frames < 0) or arrives delay_frames beacons late — too late for
/// makeup, but early enough to prove the user is alive.
struct FeedbackFault {
  std::uint32_t frame = 0;
  std::size_t user = 0;
  /// < 0: lost outright. > 0: arrives that many frames later.
  int delay_frames = -1;
};

/// A missed (stale) or corrupted CSI beacon: the session must fall back to
/// its last known beamweights instead of acting on garbage.
struct CsiFault {
  std::uint32_t frame = 0;
  bool corrupt = false;  ///< false = beacon missed (stale), true = garbage
};

/// Extra attenuation on one user's true channel for a run of frames (a
/// person stepping into the LoS path), invisible to the beacon-time CSI
/// until the next beacon. In multi-AP runs a blocker near the user shadows
/// every AP's ray by default (`ap` < 0); `ap` >= 0 pins the burst to a
/// single AP-user ray (blocker near that AP), which is what makes handoff
/// a recovery path.
struct BlockageBurst {
  std::uint32_t start_frame = 0;
  std::uint32_t n_frames = 1;
  std::size_t user = 0;
  double extra_loss_db = 18.0;  ///< human torso at 60 GHz
  int ap = -1;                  ///< -1: every AP's ray; >= 0: only that AP
};

/// One access point goes dark for a run of frames — totally (power or
/// backhaul loss) or over one azimuth sector (a sector-level PA failure):
/// only users whose AP-local azimuth falls inside the sector lose the ray.
struct ApOutage {
  std::uint32_t start_frame = 0;
  std::uint32_t n_frames = 1;
  std::size_t ap = 0;
  bool total = true;
  double sector_center_deg = 0.0;  ///< AP-local azimuth, used when !total
  double sector_width_deg = 90.0;  ///< used when !total, in (0, 360]
};

/// The cross-AP assist beacon for one frame never arrives: the session
/// must not evaluate alternate APs (probe or hand off) on that frame.
struct HandoffBeaconLoss {
  std::uint32_t frame = 0;
};

/// One user is unavailable as a relay for a run of frames (D2D link down,
/// battery saver, app backgrounded) while still receiving normally.
struct RelayChurn {
  std::uint32_t start_frame = 0;
  std::uint32_t n_frames = 1;
  std::size_t user = 0;
};

/// The transmit budget collapses to `budget_scale` of the frame interval
/// for a run of frames (driver stall, scan dwell, starved leaky bucket).
struct BudgetCollapse {
  std::uint32_t start_frame = 0;
  std::uint32_t n_frames = 1;
  double budget_scale = 0.1;  ///< in (0, 1]
};

/// A user leaves (stops rendering and reporting) or rejoins mid-session.
struct ChurnEvent {
  std::uint32_t frame = 0;
  std::size_t user = 0;
  bool join = false;  ///< false = leave
};

/// Knobs for FaultPlan::random — event counts and intensity ranges. The
/// defaults produce a plan where every fault class occurs at least once in
/// a few dozen frames.
struct RandomPlanConfig {
  int feedback_events = 6;
  int csi_events = 3;
  int blockage_bursts = 2;
  int budget_collapses = 1;
  int churn_events = 2;
  std::uint32_t max_burst_frames = 8;
  double min_blockage_db = 8.0;
  double max_blockage_db = 25.0;
  double min_budget_scale = 0.05;
  // Multi-AP / relay fault classes. All default to 0 events so plans drawn
  // with a default config are bit-identical to what pre-multi-AP builds
  // produced from the same seed (the `faulted` golden pins one).
  int ap_outages = 0;
  int handoff_beacon_losses = 0;
  int relay_churns = 0;
  std::size_t n_aps = 1;  ///< AP index range for generated outages
};

struct FaultPlan {
  std::vector<FeedbackFault> feedback;
  std::vector<CsiFault> csi;
  std::vector<BlockageBurst> blockage;
  std::vector<BudgetCollapse> budget;
  std::vector<ChurnEvent> churn;
  std::vector<ApOutage> ap_outage;
  std::vector<HandoffBeaconLoss> handoff_beacon;
  std::vector<RelayChurn> relay_churn;

  bool empty() const {
    return feedback.empty() && csi.empty() && blockage.empty() &&
           budget.empty() && churn.empty() && ap_outage.empty() &&
           handoff_beacon.empty() && relay_churn.empty();
  }

  /// Throws std::invalid_argument naming the offending event
  /// ("FaultPlan.blockage[2].extra_loss_db: ...") on out-of-range users,
  /// non-finite attenuations, zero-length bursts, or budget scales outside
  /// (0, 1]. `n_users` may be 0 to skip the user-range checks; `n_aps` may
  /// be 0 to skip the AP-range checks (single-AP callers never pass it).
  void validate(std::size_t n_users = 0, std::size_t n_aps = 0) const;

  /// Seeded random plan over `n_frames` x `n_users`: same seed, same plan,
  /// forever. Never churns out every user at once.
  static FaultPlan random(std::uint64_t seed, std::uint32_t n_frames,
                          std::size_t n_users,
                          const RandomPlanConfig& cfg = {});
};

/// Parses the text fault-plan format (one event per line, '#' comments):
///
///   feedback <frame> <user> lost
///   feedback <frame> <user> delay <frames>
///   csi <frame> stale|corrupt
///   blockage <start_frame> <n_frames> <user> <extra_db> [ap <ap>]
///   budget <start_frame> <n_frames> <scale>
///   churn <frame> <user> join|leave
///   ap_outage <start_frame> <n_frames> <ap> total
///   ap_outage <start_frame> <n_frames> <ap> sector <center_deg> <width_deg>
///   handoff_beacon <frame>
///   relay_churn <start_frame> <n_frames> <user>
///
/// Throws std::runtime_error naming the offending line
/// ("fault-plan:7: budget scale must be in (0, 1]").
FaultPlan parse_fault_plan(std::istream& is);

/// File variant; error messages carry the path and line number.
FaultPlan load_fault_plan(const std::string& path);

/// Serializes a plan to the text format parse_fault_plan accepts, one
/// event per line. Doubles are printed with %.17g, so
/// parse_fault_plan(to_text(plan)) reproduces `plan` exactly — the
/// property suite round-trips random plans through this pair.
std::string to_text(const FaultPlan& plan);

}  // namespace w4k::fault

#include "fault/injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace w4k::fault {

bool FrameFaults::any() const {
  if (csi_stale || csi_corrupt || budget_scale < 1.0) return true;
  if (handoff_beacon_lost) return true;
  for (auto v : feedback_lost)
    if (v) return true;
  for (double db : blockage_db)
    if (db > 0.0) return true;
  for (auto v : user_active)
    if (!v) return true;
  for (auto v : ap_down)
    if (v) return true;
  for (auto v : relay_down)
    if (v) return true;
  return false;
}

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n_users,
                             std::size_t n_aps)
    : plan_(std::move(plan)), n_users_(n_users), n_aps_(n_aps) {
  plan_.validate(n_users_, n_aps_);
  // Churn replays by scanning the list in order, so put it in frame order
  // here (stable: same-frame events keep file order, later entry wins).
  std::stable_sort(plan_.churn.begin(), plan_.churn.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.frame < b.frame;
                   });
}

double FaultInjector::blockage_at(std::uint32_t frame,
                                  std::size_t user) const {
  // Overlapping bursts on the same user stack additively (two people in
  // the ray block more than one).
  double db = 0.0;
  for (const auto& b : plan_.blockage) {
    if (b.user != user) continue;
    if (b.ap > 0) continue;  // pinned to a non-primary AP's ray
    if (frame >= b.start_frame && frame < b.start_frame + b.n_frames)
      db += b.extra_loss_db;
  }
  return db;
}

double FaultInjector::ray_loss_at(
    std::uint32_t frame, std::size_t ap, std::size_t user,
    const std::vector<std::vector<double>>& azimuth, bool* silenced) const {
  *silenced = false;
  double db = 0.0;
  for (const auto& b : plan_.blockage) {
    if (b.user != user) continue;
    if (b.ap >= 0 && static_cast<std::size_t>(b.ap) != ap) continue;
    if (frame >= b.start_frame && frame < b.start_frame + b.n_frames)
      db += b.extra_loss_db;
  }
  for (const auto& o : plan_.ap_outage) {
    if (o.ap != ap) continue;
    if (frame < o.start_frame || frame >= o.start_frame + o.n_frames)
      continue;
    if (o.total) {
      *silenced = true;
      continue;
    }
    // Sector outage: silenced iff the user's AP-local azimuth falls in the
    // failed sector. No azimuth table -> conservative total fallback.
    if (ap >= azimuth.size() || user >= azimuth[ap].size()) {
      *silenced = true;
      continue;
    }
    constexpr double kDeg = 180.0 / 3.14159265358979323846;
    double delta = azimuth[ap][user] * kDeg - o.sector_center_deg;
    delta = std::fmod(delta, 360.0);
    if (delta > 180.0) delta -= 360.0;
    if (delta < -180.0) delta += 360.0;
    if (std::abs(delta) <= o.sector_width_deg / 2.0) *silenced = true;
  }
  return db;
}

FrameFaults FaultInjector::at(std::uint32_t frame) const {
  FrameFaults f;
  f.frame = frame;
  f.feedback_lost.assign(n_users_, 0);
  f.feedback_delayed.assign(n_users_, 0);
  f.blockage_db.assign(n_users_, 0.0);
  f.user_active.assign(n_users_, 1);

  for (const auto& fb : plan_.feedback) {
    if (fb.frame != frame || fb.user >= n_users_) continue;
    f.feedback_lost[fb.user] = 1;
    if (fb.delay_frames > 0) f.feedback_delayed[fb.user] = 1;
  }
  for (const auto& c : plan_.csi) {
    if (c.frame != frame) continue;
    if (c.corrupt) f.csi_corrupt = true;
    else f.csi_stale = true;
  }
  for (std::size_t u = 0; u < n_users_; ++u)
    f.blockage_db[u] = blockage_at(frame, u);
  for (const auto& b : plan_.budget) {
    if (frame >= b.start_frame && frame < b.start_frame + b.n_frames)
      f.budget_scale = std::min(f.budget_scale, b.budget_scale);
  }
  // Churn: replay events in frame order (ties: later entry in the plan
  // wins, matching file order).
  for (const auto& c : plan_.churn) {
    if (c.frame <= frame && c.user < n_users_)
      f.user_active[c.user] = c.join ? 1 : 0;
  }
  for (const auto& h : plan_.handoff_beacon)
    if (h.frame == frame) f.handoff_beacon_lost = true;
  if (!plan_.ap_outage.empty() || n_aps_ > 1) {
    f.ap_down.assign(n_aps_, 0);
    for (const auto& o : plan_.ap_outage) {
      if (!o.total || o.ap >= n_aps_) continue;
      if (frame >= o.start_frame && frame < o.start_frame + o.n_frames)
        f.ap_down[o.ap] = 1;
    }
  }
  if (!plan_.relay_churn.empty()) {
    f.relay_down.assign(n_users_, 0);
    for (const auto& r : plan_.relay_churn) {
      if (r.user >= n_users_) continue;
      if (frame >= r.start_frame && frame < r.start_frame + r.n_frames)
        f.relay_down[r.user] = 1;
    }
  }
  return f;
}

void FaultInjector::apply(std::uint32_t frame,
                          std::vector<linalg::CVector>& decision,
                          std::vector<linalg::CVector>& truth) const {
  const auto attenuate = [](linalg::CVector& h, double db) {
    if (db <= 0.0) return;
    const double amp = std::pow(10.0, -db / 20.0);
    for (std::size_t n = 0; n < h.size(); ++n) h[n] *= amp;
  };
  for (std::size_t u = 0; u < truth.size() && u < n_users_; ++u)
    attenuate(truth[u], blockage_at(frame, u));
  // The sender's CSI is one beacon old: it sees the bursts that were
  // already active on the previous frame, not one that just started.
  const std::uint32_t prev = frame > 0 ? frame - 1 : frame;
  for (std::size_t u = 0; u < decision.size() && u < n_users_; ++u)
    attenuate(decision[u], frame > 0 ? blockage_at(prev, u) : 0.0);

  bool corrupt = false;
  for (const auto& c : plan_.csi)
    if (c.frame == frame && c.corrupt) corrupt = true;
  if (corrupt) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (auto& h : decision)
      for (std::size_t n = 0; n < h.size(); ++n)
        h[n] = linalg::Complex(nan, nan);
  }
}

void FaultInjector::apply_aps(
    std::uint32_t frame, std::vector<std::vector<linalg::CVector>>& decision,
    std::vector<std::vector<linalg::CVector>>& truth,
    const std::vector<std::vector<double>>& ap_user_azimuth) const {
  const auto fault_ray = [&](linalg::CVector& h, std::uint32_t at_frame,
                             std::size_t ap, std::size_t user) {
    bool silenced = false;
    const double db = ray_loss_at(at_frame, ap, user, ap_user_azimuth,
                                  &silenced);
    if (silenced) {
      for (std::size_t n = 0; n < h.size(); ++n) h[n] = linalg::Complex(0, 0);
      return;
    }
    if (db <= 0.0) return;
    const double amp = std::pow(10.0, -db / 20.0);
    for (std::size_t n = 0; n < h.size(); ++n) h[n] *= amp;
  };
  for (std::size_t a = 0; a < truth.size() && a < n_aps_; ++a)
    for (std::size_t u = 0; u < truth[a].size() && u < n_users_; ++u)
      fault_ray(truth[a][u], frame, a, u);
  // Same staleness convention as apply(): the sender acts on last beacon's
  // picture, so the decision stacks see the previous frame's faults.
  const std::uint32_t prev = frame > 0 ? frame - 1 : frame;
  if (frame > 0)
    for (std::size_t a = 0; a < decision.size() && a < n_aps_; ++a)
      for (std::size_t u = 0; u < decision[a].size() && u < n_users_; ++u)
        fault_ray(decision[a][u], prev, a, u);

  bool corrupt = false;
  for (const auto& c : plan_.csi)
    if (c.frame == frame && c.corrupt) corrupt = true;
  if (corrupt) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (auto& stack : decision)
      for (auto& h : stack)
        for (std::size_t n = 0; n < h.size(); ++n)
          h[n] = linalg::Complex(nan, nan);
  }
}

}  // namespace w4k::fault

#include "fault/injector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace w4k::fault {

bool FrameFaults::any() const {
  if (csi_stale || csi_corrupt || budget_scale < 1.0) return true;
  for (auto v : feedback_lost)
    if (v) return true;
  for (double db : blockage_db)
    if (db > 0.0) return true;
  for (auto v : user_active)
    if (!v) return true;
  return false;
}

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n_users)
    : plan_(std::move(plan)), n_users_(n_users) {
  plan_.validate(n_users_);
  // Churn replays by scanning the list in order, so put it in frame order
  // here (stable: same-frame events keep file order, later entry wins).
  std::stable_sort(plan_.churn.begin(), plan_.churn.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.frame < b.frame;
                   });
}

double FaultInjector::blockage_at(std::uint32_t frame,
                                  std::size_t user) const {
  // Overlapping bursts on the same user stack additively (two people in
  // the ray block more than one).
  double db = 0.0;
  for (const auto& b : plan_.blockage) {
    if (b.user != user) continue;
    if (frame >= b.start_frame && frame < b.start_frame + b.n_frames)
      db += b.extra_loss_db;
  }
  return db;
}

FrameFaults FaultInjector::at(std::uint32_t frame) const {
  FrameFaults f;
  f.frame = frame;
  f.feedback_lost.assign(n_users_, 0);
  f.feedback_delayed.assign(n_users_, 0);
  f.blockage_db.assign(n_users_, 0.0);
  f.user_active.assign(n_users_, 1);

  for (const auto& fb : plan_.feedback) {
    if (fb.frame != frame || fb.user >= n_users_) continue;
    f.feedback_lost[fb.user] = 1;
    if (fb.delay_frames > 0) f.feedback_delayed[fb.user] = 1;
  }
  for (const auto& c : plan_.csi) {
    if (c.frame != frame) continue;
    if (c.corrupt) f.csi_corrupt = true;
    else f.csi_stale = true;
  }
  for (std::size_t u = 0; u < n_users_; ++u)
    f.blockage_db[u] = blockage_at(frame, u);
  for (const auto& b : plan_.budget) {
    if (frame >= b.start_frame && frame < b.start_frame + b.n_frames)
      f.budget_scale = std::min(f.budget_scale, b.budget_scale);
  }
  // Churn: replay events in frame order (ties: later entry in the plan
  // wins, matching file order).
  for (const auto& c : plan_.churn) {
    if (c.frame <= frame && c.user < n_users_)
      f.user_active[c.user] = c.join ? 1 : 0;
  }
  return f;
}

void FaultInjector::apply(std::uint32_t frame,
                          std::vector<linalg::CVector>& decision,
                          std::vector<linalg::CVector>& truth) const {
  const auto attenuate = [](linalg::CVector& h, double db) {
    if (db <= 0.0) return;
    const double amp = std::pow(10.0, -db / 20.0);
    for (std::size_t n = 0; n < h.size(); ++n) h[n] *= amp;
  };
  for (std::size_t u = 0; u < truth.size() && u < n_users_; ++u)
    attenuate(truth[u], blockage_at(frame, u));
  // The sender's CSI is one beacon old: it sees the bursts that were
  // already active on the previous frame, not one that just started.
  const std::uint32_t prev = frame > 0 ? frame - 1 : frame;
  for (std::size_t u = 0; u < decision.size() && u < n_users_; ++u)
    attenuate(decision[u], frame > 0 ? blockage_at(prev, u) : 0.0);

  bool corrupt = false;
  for (const auto& c : plan_.csi)
    if (c.frame == frame && c.corrupt) corrupt = true;
  if (corrupt) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (auto& h : decision)
      for (std::size_t n = 0; n < h.size(); ++n)
        h[n] = linalg::Complex(nan, nan);
  }
}

}  // namespace w4k::fault

// Resolves a FaultPlan into per-frame fault state and applies the
// physical-layer part (blockage attenuation, beacon corruption) to channel
// vectors. Purely functional over (plan, frame): identical plans replay
// bit-identically, which the chaos suite's determinism invariant relies on.
#pragma once

#include "fault/plan.h"
#include "linalg/matrix.h"

#include <cstdint>
#include <vector>

namespace w4k::fault {

/// Everything the control loop must survive on one frame. Vectors are
/// sized n_users; `user_active` reflects churn (empty plans yield all-true).
struct FrameFaults {
  std::uint32_t frame = 0;
  bool csi_stale = false;    ///< beacon missed: reuse last beamweights
  bool csi_corrupt = false;  ///< beacon garbage: apply() poisons decision CSI
  double budget_scale = 1.0; ///< < 1: NIC stall / bucket starvation
  std::vector<std::uint8_t> feedback_lost;     ///< report never arrives
  std::vector<std::uint8_t> feedback_delayed;  ///< arrives next beacon(s)
  std::vector<double> blockage_db;             ///< extra true-channel loss
  std::vector<std::uint8_t> user_active;       ///< churn state
  /// Cross-AP assist beacon lost: the session must not probe alternates or
  /// commit a handoff on this frame.
  bool handoff_beacon_lost = false;
  /// Per-AP *total*-outage flags, sized n_aps (empty when n_aps == 1 and
  /// the plan has no outages). Sector outages are geometric — they only
  /// manifest through apply_aps(), which knows each user's azimuth.
  std::vector<std::uint8_t> ap_down;
  /// Per-user relay-unavailability flags (relay churn), sized n_users.
  std::vector<std::uint8_t> relay_down;

  bool any() const;
};

class FaultInjector {
 public:
  /// Validates the plan against `n_users` x `n_aps` (throws
  /// std::invalid_argument). Single-AP callers omit `n_aps`.
  FaultInjector(FaultPlan plan, std::size_t n_users, std::size_t n_aps = 1);

  const FaultPlan& plan() const { return plan_; }
  std::size_t n_users() const { return n_users_; }
  std::size_t n_aps() const { return n_aps_; }

  /// The resolved fault state for `frame`.
  FrameFaults at(std::uint32_t frame) const;

  /// Applies the physical faults of `frame` in place: blockage bursts
  /// attenuate `truth` with the bursts active *now* and `decision` with the
  /// bursts active at the previous beacon (the sender's knowledge is one
  /// beacon stale); a corrupt beacon overwrites `decision` with NaN so the
  /// session's CSI sanity check must catch it.
  void apply(std::uint32_t frame, std::vector<linalg::CVector>& decision,
             std::vector<linalg::CVector>& truth) const;

  /// Multi-AP variant of apply(): `decision`/`truth` are per-AP channel
  /// stacks indexed [ap][user]. Blockage bursts attenuate the rays they
  /// name (every AP's ray when the burst has no `ap`), AP outages silence
  /// the affected rays outright — totally, or only for users whose AP-local
  /// azimuth (radians, from `ap_user_azimuth[ap][user]`) falls inside the
  /// failed sector. Without an azimuth table a sector outage degrades to a
  /// total one (conservative). The same one-beacon staleness convention as
  /// apply() holds: `truth` sees faults active now, `decision` sees the
  /// previous frame's, and a corrupt beacon NaN-poisons every decision ray.
  void apply_aps(
      std::uint32_t frame, std::vector<std::vector<linalg::CVector>>& decision,
      std::vector<std::vector<linalg::CVector>>& truth,
      const std::vector<std::vector<double>>& ap_user_azimuth = {}) const;

 private:
  double blockage_at(std::uint32_t frame, std::size_t user) const;
  double ray_loss_at(std::uint32_t frame, std::size_t ap, std::size_t user,
                     const std::vector<std::vector<double>>& azimuth,
                     bool* silenced) const;

  FaultPlan plan_;
  std::size_t n_users_;
  std::size_t n_aps_;
};

}  // namespace w4k::fault

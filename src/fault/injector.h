// Resolves a FaultPlan into per-frame fault state and applies the
// physical-layer part (blockage attenuation, beacon corruption) to channel
// vectors. Purely functional over (plan, frame): identical plans replay
// bit-identically, which the chaos suite's determinism invariant relies on.
#pragma once

#include "fault/plan.h"
#include "linalg/matrix.h"

#include <cstdint>
#include <vector>

namespace w4k::fault {

/// Everything the control loop must survive on one frame. Vectors are
/// sized n_users; `user_active` reflects churn (empty plans yield all-true).
struct FrameFaults {
  std::uint32_t frame = 0;
  bool csi_stale = false;    ///< beacon missed: reuse last beamweights
  bool csi_corrupt = false;  ///< beacon garbage: apply() poisons decision CSI
  double budget_scale = 1.0; ///< < 1: NIC stall / bucket starvation
  std::vector<std::uint8_t> feedback_lost;     ///< report never arrives
  std::vector<std::uint8_t> feedback_delayed;  ///< arrives next beacon(s)
  std::vector<double> blockage_db;             ///< extra true-channel loss
  std::vector<std::uint8_t> user_active;       ///< churn state

  bool any() const;
};

class FaultInjector {
 public:
  /// Validates the plan against `n_users` (throws std::invalid_argument).
  FaultInjector(FaultPlan plan, std::size_t n_users);

  const FaultPlan& plan() const { return plan_; }
  std::size_t n_users() const { return n_users_; }

  /// The resolved fault state for `frame`.
  FrameFaults at(std::uint32_t frame) const;

  /// Applies the physical faults of `frame` in place: blockage bursts
  /// attenuate `truth` with the bursts active *now* and `decision` with the
  /// bursts active at the previous beacon (the sender's knowledge is one
  /// beacon stale); a corrupt beacon overwrites `decision` with NaN so the
  /// session's CSI sanity check must catch it.
  void apply(std::uint32_t frame, std::vector<linalg::CVector>& decision,
             std::vector<linalg::CVector>& truth) const;

 private:
  double blockage_at(std::uint32_t frame, std::size_t user) const;

  FaultPlan plan_;
  std::size_t n_users_;
};

}  // namespace w4k::fault

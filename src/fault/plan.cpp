#include "fault/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace w4k::fault {
namespace {

[[noreturn]] void bad(const std::string& field, const std::string& msg) {
  throw std::invalid_argument("FaultPlan." + field + ": " + msg);
}

std::string idx(const char* name, std::size_t i) {
  return std::string(name) + "[" + std::to_string(i) + "]";
}

}  // namespace

void FaultPlan::validate(std::size_t n_users, std::size_t n_aps) const {
  const auto check_user = [&](const std::string& field, std::size_t user) {
    if (n_users > 0 && user >= n_users)
      bad(field + ".user",
          "user " + std::to_string(user) + " out of range (" +
              std::to_string(n_users) + " users)");
  };
  const auto check_ap = [&](const std::string& field, std::size_t ap) {
    if (n_aps > 0 && ap >= n_aps)
      bad(field + ".ap", "ap " + std::to_string(ap) + " out of range (" +
                             std::to_string(n_aps) + " aps)");
  };
  for (std::size_t i = 0; i < feedback.size(); ++i) {
    check_user(idx("feedback", i), feedback[i].user);
    if (feedback[i].delay_frames == 0)
      bad(idx("feedback", i) + ".delay_frames",
          "must be < 0 (lost) or > 0 (delayed), not 0");
  }
  for (std::size_t i = 0; i < blockage.size(); ++i) {
    check_user(idx("blockage", i), blockage[i].user);
    if (blockage[i].n_frames == 0)
      bad(idx("blockage", i) + ".n_frames", "must be > 0");
    if (!std::isfinite(blockage[i].extra_loss_db) ||
        blockage[i].extra_loss_db < 0.0)
      bad(idx("blockage", i) + ".extra_loss_db",
          "must be finite and >= 0 dB (got " +
              std::to_string(blockage[i].extra_loss_db) + ")");
    if (blockage[i].ap >= 0)
      check_ap(idx("blockage", i),
               static_cast<std::size_t>(blockage[i].ap));
  }
  for (std::size_t i = 0; i < budget.size(); ++i) {
    if (budget[i].n_frames == 0)
      bad(idx("budget", i) + ".n_frames", "must be > 0");
    if (!(budget[i].budget_scale > 0.0 && budget[i].budget_scale <= 1.0))
      bad(idx("budget", i) + ".budget_scale",
          "must be in (0, 1] (got " +
              std::to_string(budget[i].budget_scale) + ")");
  }
  for (std::size_t i = 0; i < churn.size(); ++i)
    check_user(idx("churn", i), churn[i].user);
  for (std::size_t i = 0; i < ap_outage.size(); ++i) {
    check_ap(idx("ap_outage", i), ap_outage[i].ap);
    if (ap_outage[i].n_frames == 0)
      bad(idx("ap_outage", i) + ".n_frames", "must be > 0");
    if (!ap_outage[i].total) {
      if (!std::isfinite(ap_outage[i].sector_center_deg))
        bad(idx("ap_outage", i) + ".sector_center_deg", "must be finite");
      if (!std::isfinite(ap_outage[i].sector_width_deg) ||
          !(ap_outage[i].sector_width_deg > 0.0 &&
            ap_outage[i].sector_width_deg <= 360.0))
        bad(idx("ap_outage", i) + ".sector_width_deg",
            "must be in (0, 360] degrees (got " +
                std::to_string(ap_outage[i].sector_width_deg) + ")");
    }
  }
  for (std::size_t i = 0; i < relay_churn.size(); ++i) {
    check_user(idx("relay_churn", i), relay_churn[i].user);
    if (relay_churn[i].n_frames == 0)
      bad(idx("relay_churn", i) + ".n_frames", "must be > 0");
  }
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint32_t n_frames,
                            std::size_t n_users,
                            const RandomPlanConfig& cfg) {
  if (n_frames == 0)
    throw std::invalid_argument("FaultPlan::random: n_frames == 0");
  if (n_users == 0)
    throw std::invalid_argument("FaultPlan::random: n_users == 0");
  Rng rng(seed);
  FaultPlan plan;
  const auto frame = [&] {
    return static_cast<std::uint32_t>(rng.below(n_frames));
  };
  const auto user = [&] { return static_cast<std::size_t>(rng.below(n_users)); };
  const auto burst_len = [&] {
    return 1 + static_cast<std::uint32_t>(
                   rng.below(std::max<std::uint32_t>(1, cfg.max_burst_frames)));
  };

  for (int i = 0; i < cfg.feedback_events; ++i) {
    FeedbackFault f;
    f.frame = frame();
    f.user = user();
    f.delay_frames = rng.chance(0.3) ? 1 + static_cast<int>(rng.below(3)) : -1;
    plan.feedback.push_back(f);
  }
  for (int i = 0; i < cfg.csi_events; ++i)
    plan.csi.push_back(CsiFault{frame(), rng.chance(0.4)});
  for (int i = 0; i < cfg.blockage_bursts; ++i) {
    BlockageBurst b;
    b.start_frame = frame();
    b.n_frames = burst_len();
    b.user = user();
    b.extra_loss_db = rng.uniform(cfg.min_blockage_db, cfg.max_blockage_db);
    plan.blockage.push_back(b);
  }
  for (int i = 0; i < cfg.budget_collapses; ++i) {
    BudgetCollapse b;
    b.start_frame = frame();
    b.n_frames = burst_len();
    b.budget_scale = rng.uniform(cfg.min_budget_scale, 1.0);
    plan.budget.push_back(b);
  }
  // Churn in leave/rejoin pairs so the plan never drains the session of
  // every user: user 0 is exempt, and each leave schedules a rejoin.
  for (int i = 0; i < cfg.churn_events && n_users > 1; ++i) {
    const std::size_t u = 1 + static_cast<std::size_t>(rng.below(n_users - 1));
    const std::uint32_t leave = frame();
    const std::uint32_t back =
        std::min<std::uint32_t>(n_frames, leave + burst_len());
    plan.churn.push_back(ChurnEvent{leave, u, /*join=*/false});
    if (back < n_frames) plan.churn.push_back(ChurnEvent{back, u, /*join=*/true});
  }
  // The multi-AP fault classes are drawn strictly after everything above
  // and default to 0 events, so a default-config call consumes exactly the
  // same RNG stream it always did (the `faulted` golden depends on that).
  for (int i = 0; i < cfg.ap_outages && cfg.n_aps > 0; ++i) {
    ApOutage o;
    o.start_frame = frame();
    o.n_frames = burst_len();
    o.ap = static_cast<std::size_t>(rng.below(cfg.n_aps));
    o.total = !rng.chance(0.35);
    if (!o.total) {
      o.sector_center_deg = rng.uniform(-90.0, 90.0);
      o.sector_width_deg = rng.uniform(30.0, 120.0);
    }
    plan.ap_outage.push_back(o);
  }
  for (int i = 0; i < cfg.handoff_beacon_losses; ++i)
    plan.handoff_beacon.push_back(HandoffBeaconLoss{frame()});
  for (int i = 0; i < cfg.relay_churns; ++i) {
    RelayChurn r;
    r.start_frame = frame();
    r.n_frames = burst_len();
    r.user = user();
    plan.relay_churn.push_back(r);
  }
  plan.validate(n_users, cfg.n_aps);
  return plan;
}

namespace {

[[noreturn]] void line_err(int line, const std::string& msg) {
  throw std::runtime_error("fault-plan:" + std::to_string(line) + ": " + msg);
}

}  // namespace

FaultPlan parse_fault_plan(std::istream& is) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank / comment-only line

    const auto want = [&](auto& v, const char* what) {
      if (!(ls >> v)) line_err(lineno, std::string("expected ") + what);
    };
    if (kind == "feedback") {
      FeedbackFault f;
      std::string mode;
      want(f.frame, "<frame>");
      want(f.user, "<user>");
      want(mode, "lost|delay");
      if (mode == "lost") {
        f.delay_frames = -1;
      } else if (mode == "delay") {
        want(f.delay_frames, "<frames> after 'delay'");
        if (f.delay_frames <= 0)
          line_err(lineno, "feedback delay must be > 0 frames");
      } else {
        line_err(lineno, "feedback mode must be 'lost' or 'delay'");
      }
      plan.feedback.push_back(f);
    } else if (kind == "csi") {
      CsiFault c;
      std::string mode;
      want(c.frame, "<frame>");
      want(mode, "stale|corrupt");
      if (mode == "corrupt") c.corrupt = true;
      else if (mode != "stale")
        line_err(lineno, "csi mode must be 'stale' or 'corrupt'");
      plan.csi.push_back(c);
    } else if (kind == "blockage") {
      BlockageBurst b;
      want(b.start_frame, "<start_frame>");
      want(b.n_frames, "<n_frames>");
      want(b.user, "<user>");
      want(b.extra_loss_db, "<extra_db>");
      if (b.n_frames == 0) line_err(lineno, "blockage n_frames must be > 0");
      if (!std::isfinite(b.extra_loss_db) || b.extra_loss_db < 0.0)
        line_err(lineno, "blockage extra_db must be finite and >= 0");
      std::string ap_kw;
      if (ls >> ap_kw) {
        if (ap_kw != "ap")
          line_err(lineno, "expected 'ap <ap>' after extra_db, got '" +
                               ap_kw + "'");
        want(b.ap, "<ap> after 'ap'");
        if (b.ap < 0) line_err(lineno, "blockage ap must be >= 0");
      }
      plan.blockage.push_back(b);
    } else if (kind == "ap_outage") {
      ApOutage o;
      std::string mode;
      want(o.start_frame, "<start_frame>");
      want(o.n_frames, "<n_frames>");
      want(o.ap, "<ap>");
      want(mode, "total|sector");
      if (o.n_frames == 0) line_err(lineno, "ap_outage n_frames must be > 0");
      if (mode == "sector") {
        o.total = false;
        want(o.sector_center_deg, "<center_deg> after 'sector'");
        want(o.sector_width_deg, "<width_deg> after 'sector'");
        if (!std::isfinite(o.sector_center_deg))
          line_err(lineno, "ap_outage sector center must be finite");
        if (!std::isfinite(o.sector_width_deg) ||
            !(o.sector_width_deg > 0.0 && o.sector_width_deg <= 360.0))
          line_err(lineno, "ap_outage sector width must be in (0, 360]");
      } else if (mode != "total") {
        line_err(lineno, "ap_outage mode must be 'total' or 'sector'");
      }
      plan.ap_outage.push_back(o);
    } else if (kind == "handoff_beacon") {
      HandoffBeaconLoss h;
      want(h.frame, "<frame>");
      plan.handoff_beacon.push_back(h);
    } else if (kind == "relay_churn") {
      RelayChurn r;
      want(r.start_frame, "<start_frame>");
      want(r.n_frames, "<n_frames>");
      want(r.user, "<user>");
      if (r.n_frames == 0) line_err(lineno, "relay_churn n_frames must be > 0");
      plan.relay_churn.push_back(r);
    } else if (kind == "budget") {
      BudgetCollapse b;
      want(b.start_frame, "<start_frame>");
      want(b.n_frames, "<n_frames>");
      want(b.budget_scale, "<scale>");
      if (b.n_frames == 0) line_err(lineno, "budget n_frames must be > 0");
      if (!(b.budget_scale > 0.0 && b.budget_scale <= 1.0))
        line_err(lineno, "budget scale must be in (0, 1]");
      plan.budget.push_back(b);
    } else if (kind == "churn") {
      ChurnEvent c;
      std::string mode;
      want(c.frame, "<frame>");
      want(c.user, "<user>");
      want(mode, "join|leave");
      if (mode == "join") c.join = true;
      else if (mode != "leave")
        line_err(lineno, "churn mode must be 'join' or 'leave'");
      plan.churn.push_back(c);
    } else {
      line_err(lineno, "unknown event kind '" + kind + "'");
    }
    std::string extra;
    if (ls >> extra)
      line_err(lineno, "trailing tokens starting at '" + extra + "'");
  }
  return plan;
}

std::string to_text(const FaultPlan& plan) {
  std::ostringstream os;
  const auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (const auto& f : plan.feedback) {
    os << "feedback " << f.frame << ' ' << f.user;
    if (f.delay_frames < 0) os << " lost\n";
    else os << " delay " << f.delay_frames << '\n';
  }
  for (const auto& c : plan.csi)
    os << "csi " << c.frame << ' ' << (c.corrupt ? "corrupt" : "stale")
       << '\n';
  for (const auto& b : plan.blockage) {
    os << "blockage " << b.start_frame << ' ' << b.n_frames << ' ' << b.user
       << ' ' << num(b.extra_loss_db);
    if (b.ap >= 0) os << " ap " << b.ap;
    os << '\n';
  }
  for (const auto& b : plan.budget)
    os << "budget " << b.start_frame << ' ' << b.n_frames << ' '
       << num(b.budget_scale) << '\n';
  for (const auto& c : plan.churn)
    os << "churn " << c.frame << ' ' << c.user << ' '
       << (c.join ? "join" : "leave") << '\n';
  for (const auto& o : plan.ap_outage) {
    os << "ap_outage " << o.start_frame << ' ' << o.n_frames << ' ' << o.ap;
    if (o.total)
      os << " total\n";
    else
      os << " sector " << num(o.sector_center_deg) << ' '
         << num(o.sector_width_deg) << '\n';
  }
  for (const auto& h : plan.handoff_beacon)
    os << "handoff_beacon " << h.frame << '\n';
  for (const auto& r : plan.relay_churn)
    os << "relay_churn " << r.start_frame << ' ' << r.n_frames << ' '
       << r.user << '\n';
  return os.str();
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::runtime_error("load_fault_plan: cannot open " + path);
  try {
    return parse_fault_plan(is);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace w4k::fault

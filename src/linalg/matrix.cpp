#include "linalg/matrix.h"

#include <cmath>
#include <stdexcept>

namespace w4k::linalg {

double CVector::norm() const { return std::sqrt(norm_sq()); }

double CVector::norm_sq() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return s;
}

CVector CVector::normalized() const {
  const double n = norm();
  if (n == 0.0) throw std::domain_error("cannot normalize zero vector");
  CVector out = *this;
  for (auto& x : out.data_) x /= n;
  return out;
}

CVector CVector::conj() const {
  CVector out = *this;
  for (auto& x : out.data_) x = std::conj(x);
  return out;
}

CVector& CVector::operator+=(const CVector& other) {
  if (size() != other.size())
    throw std::invalid_argument("vector size mismatch in +=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

CVector& CVector::operator-=(const CVector& other) {
  if (size() != other.size())
    throw std::invalid_argument("vector size mismatch in -=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

CVector& CVector::operator*=(Complex s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Complex dot(const CVector& a, const CVector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("vector size mismatch in dot");
  Complex s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += std::conj(a[i]) * b[i];
  return s;
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out(c, r) = std::conj((*this)(r, c));
  return out;
}

CVector CMatrix::operator*(const CVector& x) const {
  if (cols_ != x.size())
    throw std::invalid_argument("matrix-vector size mismatch");
  CVector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * x[c];
    y[r] = s;
  }
  return y;
}

void CMatrix::multiply_into(const CVector& x, CVector& y) const {
  if (cols_ != x.size())
    throw std::invalid_argument("matrix-vector size mismatch");
  y.resize_zero(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * x[c];
    y[r] = s;
  }
}

CMatrix CMatrix::operator*(const CMatrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("matrix-matrix size mismatch");
  CMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex a = (*this)(r, k);
      if (a == Complex{}) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out(r, c) += a * other(k, c);
    }
  }
  return out;
}

CMatrix& CMatrix::operator+=(const CMatrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("matrix size mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

CMatrix& CMatrix::operator*=(Complex s) {
  for (auto& x : data_) x *= s;
  return *this;
}

CVector CMatrix::row(std::size_t r) const {
  assert(r < rows_);
  CVector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

CVector CMatrix::col(std::size_t c) const {
  assert(c < cols_);
  CVector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void CMatrix::set_row(std::size_t r, const CVector& v) {
  if (v.size() != cols_)
    throw std::invalid_argument("row size mismatch in set_row");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

CMatrix CMatrix::from_rows(const std::vector<CVector>& rows) {
  if (rows.empty()) return {};
  CMatrix out(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) out.set_row(r, rows[r]);
  return out;
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

double CMatrix::frobenius_norm() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

}  // namespace w4k::linalg

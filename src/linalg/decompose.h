// Matrix decompositions needed by multicast beamforming.
//
// The paper's max-sum RSS heuristic (Sec. 2.5) needs only the *dominant*
// right singular vector of the stacked channel matrix H, which we obtain by
// power iteration on the smaller of the two Hermitian PSD Gram matrices
// (H H^H for the short-wide stacks the scheduler builds).
// For unit tests and ablations we also expose a full Hermitian
// eigendecomposition via the complex Jacobi method.
#pragma once

#include "common/rng.h"
#include "linalg/matrix.h"

#include <vector>

namespace w4k::linalg {

/// Result of the dominant-singular-vector computation.
struct DominantSVD {
  CVector right_singular;  ///< v1: first right singular vector (unit norm)
  double singular_value = 0.0;  ///< sigma1 >= 0
  int iterations = 0;           ///< power iterations actually used
};

/// Computes the dominant right singular vector of A (rows x cols) by power
/// iteration on the smaller of the two Gram matrices (A^H A or A A^H; for
/// short-wide channel stacks the row-side Gram is far cheaper, and v1 is
/// recovered as A^H u1 / sigma1). Deterministic: the starting vector is
/// derived from `rng`. Converges to |lambda2/lambda1|^k; `tol` bounds the
/// relative change of the Rayleigh quotient between iterations.
DominantSVD dominant_right_singular(const CMatrix& a, Rng& rng,
                                    int max_iters = 500, double tol = 1e-12);

/// A batch of stacked-channel SVD problems packed row-major into one
/// contiguous buffer. Problem p owns rows [offsets[p], offsets[p+1]) —
/// each row is `cols` complex entries — so a batch driver (the
/// scheduler's group beamformer) can run many small Gram iterations over
/// pre-normalized channel rows without per-problem matrix allocations or
/// re-normalization.
struct PackedStacks {
  std::vector<Complex> rows;         ///< concatenated rows, row-major
  std::vector<std::size_t> offsets;  ///< P+1 row-index prefix sums
  std::size_t cols = 0;              ///< entries (antennas) per row

  std::size_t problems() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t rows_of(std::size_t p) const {
    return offsets[p + 1] - offsets[p];
  }
};

/// dominant_right_singular for problem `p` of a packed batch,
/// bit-identical to calling the CMatrix overload on the same rows: the
/// row-side Gram is accumulated in the exact order CMatrix::operator*
/// uses (ascending k, zero-skip on a(r,k)), the power iteration is the
/// same code, and the recovery matvec matches CMatrix::operator*(CVector)
/// term for term. Stacks with rows >= cols fall back to the CMatrix path.
DominantSVD packed_dominant_right_singular(const PackedStacks& pack,
                                           std::size_t p, Rng& rng,
                                           int max_iters = 500,
                                           double tol = 1e-12);

/// Allocation-free variant for the short-wide (rows < cols) case: the Gram
/// matrix, iterates, and recovery vector live in thread-local scratch and
/// `out.right_singular` reuses its capacity, so the per-frame beamforming
/// path performs zero heap allocations in steady state. The rows >= cols
/// fallback still delegates to the (allocating) CMatrix path. Values are
/// bit-identical to packed_dominant_right_singular.
void packed_dominant_right_singular_into(const PackedStacks& pack,
                                         std::size_t p, Rng& rng,
                                         DominantSVD& out,
                                         int max_iters = 500,
                                         double tol = 1e-12);

/// One eigenpair of a Hermitian matrix.
struct EigenPair {
  double value = 0.0;
  CVector vector;
};

/// Full eigendecomposition of a Hermitian matrix by the cyclic complex
/// Jacobi method. Eigenpairs are returned sorted descending by eigenvalue.
/// Throws std::invalid_argument if the matrix is not square.
std::vector<EigenPair> hermitian_eigen(const CMatrix& h, int sweeps = 64,
                                       double tol = 1e-13);

/// Solves the least-squares problem min ||A x - b||_2 via normal equations
/// with Tikhonov damping `ridge` (used by ACO-style CSI estimation where A
/// holds per-beam measurement weights). Throws on dimension mismatch.
CVector solve_least_squares(const CMatrix& a, const CVector& b,
                            double ridge = 1e-9);

}  // namespace w4k::linalg

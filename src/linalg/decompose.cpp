#include "linalg/decompose.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace w4k::linalg {

DominantSVD dominant_right_singular(const CMatrix& a, Rng& rng,
                                    int max_iters, double tol) {
  DominantSVD out;
  if (a.rows() == 0 || a.cols() == 0) return out;

  // Power-iterate on the *smaller* of the two Gram matrices. A^H A
  // (cols x cols) and A A^H (rows x rows) share their nonzero spectrum,
  // and the dominant right singular vector is recoverable from the
  // dominant left one as v1 = A^H u1 / sigma1. The scheduler's stacked
  // channel matrices are short and wide (<= max_group_size member rows,
  // one column per antenna), so iterating on the row-side Gram drops the
  // per-step cost from cols^2 to rows^2.
  const bool row_side = a.rows() < a.cols();
  const CMatrix ah = a.hermitian();
  const CMatrix g = row_side ? a * ah : ah * a;

  CVector v(g.rows());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = Complex(rng.gaussian(), rng.gaussian());
  if (v.norm() == 0.0) v[0] = 1.0;
  v = v.normalized();

  double prev_lambda = 0.0;
  bool zero_matrix = false;
  for (int it = 0; it < max_iters; ++it) {
    // One Gram matvec per iteration: w = G v feeds both the Rayleigh
    // quotient of the current iterate and the next power step.
    const CVector w = g * v;
    const double lambda = std::real(dot(v, w));
    const double wn = w.norm();
    out.iterations = it + 1;
    if (wn == 0.0) {
      // A is (numerically) zero: sigma = 0, any unit vector is a valid v1.
      zero_matrix = true;
      prev_lambda = 0.0;
      break;
    }
    v = w * Complex(1.0 / wn, 0.0);
    if (it > 0 && std::abs(lambda - prev_lambda) <=
                      tol * std::max(1.0, std::abs(lambda))) {
      prev_lambda = lambda;
      break;
    }
    prev_lambda = lambda;
  }
  if (!row_side) {
    out.right_singular = v;
  } else {
    // Map the left singular vector back: A^H u1 has norm sigma1; if that
    // is zero (zero matrix) fall back to an arbitrary unit vector.
    const CVector rv = ah * v;
    const double rn = rv.norm();
    if (rn > 0.0 && !zero_matrix) {
      out.right_singular = rv * Complex(1.0 / rn, 0.0);
    } else {
      CVector e(a.cols());
      e[0] = 1.0;
      out.right_singular = e;
    }
  }
  out.singular_value = std::sqrt(std::max(0.0, prev_lambda));
  return out;
}

DominantSVD packed_dominant_right_singular(const PackedStacks& pack,
                                           std::size_t p, Rng& rng,
                                           int max_iters, double tol) {
  DominantSVD out;
  packed_dominant_right_singular_into(pack, p, rng, out, max_iters, tol);
  return out;
}

void packed_dominant_right_singular_into(const PackedStacks& pack,
                                         std::size_t p, Rng& rng,
                                         DominantSVD& out,
                                         int max_iters, double tol) {
  out.singular_value = 0.0;
  out.iterations = 0;
  const std::size_t m = pack.rows_of(p);
  const std::size_t cols = pack.cols;
  if (m == 0 || cols == 0) {
    out.right_singular.resize_zero(0);
    return;
  }
  const Complex* base = pack.rows.data() + pack.offsets[p] * cols;

  if (m >= cols) {
    // Tall/square stack: the column-side Gram is the cheaper one and the
    // CMatrix path already handles it; rebuild and delegate. (Allocating,
    // but the scheduler's stacks are short-wide: group size < antennas.)
    CMatrix a(m, cols);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < cols; ++c) a(r, c) = base[r * cols + c];
    out = dominant_right_singular(a, rng, max_iters, tol);
    return;
  }

  // Row-side Gram G = A A^H, accumulated exactly as CMatrix::operator*
  // does for (a * a.hermitian()): r outer, k ascending with the zero-skip
  // on a(r, k), c inner — so every G entry sums its terms in the same
  // floating-point order as the unpacked path.
  thread_local CMatrix g;
  thread_local CVector v, w;
  g.reshape_zero(m, m);
  for (std::size_t r = 0; r < m; ++r) {
    const Complex* row_r = base + r * cols;
    for (std::size_t k = 0; k < cols; ++k) {
      const Complex a = row_r[k];
      if (a == Complex{}) continue;
      for (std::size_t c = 0; c < m; ++c)
        g(r, c) += a * std::conj(base[c * cols + k]);
    }
  }

  v.resize_zero(m);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = Complex(rng.gaussian(), rng.gaussian());
  if (v.norm() == 0.0) v[0] = 1.0;
  {
    // In-place normalized(): the same element-wise x /= n as the copy
    // version, so the iterate is bit-identical.
    const double n0 = v.norm();
    for (std::size_t i = 0; i < v.size(); ++i) v[i] /= n0;
  }

  double prev_lambda = 0.0;
  bool zero_matrix = false;
  for (int it = 0; it < max_iters; ++it) {
    g.multiply_into(v, w);
    const double lambda = std::real(dot(v, w));
    const double wn = w.norm();
    out.iterations = it + 1;
    if (wn == 0.0) {
      zero_matrix = true;
      prev_lambda = 0.0;
      break;
    }
    // v = w * Complex(1/wn, 0): same complex multiply as operator*=.
    const Complex s(1.0 / wn, 0.0);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = w[i] * s;
    if (it > 0 && std::abs(lambda - prev_lambda) <=
                      tol * std::max(1.0, std::abs(lambda))) {
      prev_lambda = lambda;
      break;
    }
    prev_lambda = lambda;
  }

  // Recovery rv = A^H u1: rv[k] = sum_c conj(a(c, k)) v[c], c ascending —
  // the same term order as (a.hermitian() * v). Accumulated straight into
  // the output vector (capacity reused) and scaled in place.
  out.right_singular.resize_zero(cols);
  for (std::size_t k = 0; k < cols; ++k) {
    Complex s = 0.0;
    for (std::size_t c = 0; c < m; ++c)
      s += std::conj(base[c * cols + k]) * v[c];
    out.right_singular[k] = s;
  }
  const double rn = out.right_singular.norm();
  if (rn > 0.0 && !zero_matrix) {
    out.right_singular *= Complex(1.0 / rn, 0.0);
  } else {
    out.right_singular.resize_zero(cols);
    out.right_singular[0] = 1.0;
  }
  out.singular_value = std::sqrt(std::max(0.0, prev_lambda));
}

std::vector<EigenPair> hermitian_eigen(const CMatrix& h, int sweeps,
                                       double tol) {
  if (h.rows() != h.cols())
    throw std::invalid_argument("hermitian_eigen: matrix must be square");
  const std::size_t n = h.rows();
  CMatrix a = h;
  CMatrix v = CMatrix::identity(n);

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += std::norm(a(p, q));
    if (std::sqrt(off) <= tol * std::max(1.0, a.frobenius_norm())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const Complex apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        // Complex Jacobi rotation zeroing a(p, q).
        const double app = std::real(a(p, p));
        const double aqq = std::real(a(q, q));
        const double absapq = std::abs(apq);
        const Complex phase = apq / absapq;
        const double tau = (aqq - app) / (2.0 * absapq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const Complex s = phase * Complex(t * c, 0.0);

        // Apply rotation R(p,q,c,s) on both sides: A <- R^H A R, V <- V R.
        for (std::size_t k = 0; k < n; ++k) {
          const Complex akp = a(k, p);
          const Complex akq = a(k, q);
          a(k, p) = c * akp - std::conj(s) * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const Complex apk = a(p, k);
          const Complex aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = std::conj(s) * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const Complex vkp = v(k, p);
          const Complex vkq = v(k, q);
          v(k, p) = c * vkp - std::conj(s) * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<EigenPair> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i].value = std::real(a(i, i));
    pairs[i].vector = v.col(i);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const EigenPair& x, const EigenPair& y) {
              return x.value > y.value;
            });
  return pairs;
}

CVector solve_least_squares(const CMatrix& a, const CVector& b,
                            double ridge) {
  if (a.rows() != b.size())
    throw std::invalid_argument("solve_least_squares: dimension mismatch");
  const std::size_t n = a.cols();
  const CMatrix ah = a.hermitian();
  CMatrix g = ah * a;                 // n x n
  for (std::size_t i = 0; i < n; ++i) g(i, i) += ridge;
  CVector rhs = ah * b;

  // Gaussian elimination with partial pivoting on the (small) normal system.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    double best = std::abs(g(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(g(r, col));
      if (mag > best) {
        best = mag;
        piv = r;
      }
    }
    if (best == 0.0)
      throw std::domain_error("solve_least_squares: singular system");
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(g(piv, c), g(col, c));
      std::swap(rhs[piv], rhs[col]);
    }
    const Complex d = g(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const Complex f = g(r, col) / d;
      if (f == Complex{}) continue;
      for (std::size_t c = col; c < n; ++c) g(r, c) -= f * g(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  CVector x(n);
  for (std::size_t i = n; i-- > 0;) {
    Complex s = rhs[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= g(i, c) * x[c];
    x[i] = s / g(i, i);
  }
  return x;
}

}  // namespace w4k::linalg

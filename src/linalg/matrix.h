// Dense complex vectors and matrices sized for phased-array beamforming.
//
// The dimensions in this system are small (antenna counts <= 64, user
// counts <= 8), so a straightforward row-major dense representation is both
// simple and fast. All operations are bounds-checked in debug builds via
// assert and validated by explicit dimension checks that throw in all
// builds, because a silently mis-shaped channel matrix produces subtly
// wrong beams rather than a crash.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace w4k::linalg {

using Complex = std::complex<double>;

class CMatrix;  // fwd

/// Dense complex column vector.
class CVector {
 public:
  CVector() = default;
  explicit CVector(std::size_t n) : data_(n) {}
  CVector(std::initializer_list<Complex> init) : data_(init) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  Complex& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  const Complex& operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  const std::vector<Complex>& raw() const { return data_; }

  /// Re-sizes to n elements, all zero. Capacity is reused (never shrinks),
  /// so hot-loop callers can cycle a scratch vector through many sizes
  /// without reallocating.
  void resize_zero(std::size_t n) { data_.assign(n, Complex{}); }

  /// Euclidean norm.
  double norm() const;
  /// Sum of |x_i|^2 (norm squared).
  double norm_sq() const;
  /// Returns this / ||this||; throws std::domain_error on the zero vector.
  CVector normalized() const;
  /// Element-wise conjugate.
  CVector conj() const;

  CVector& operator+=(const CVector& other);
  CVector& operator-=(const CVector& other);
  CVector& operator*=(Complex s);

  friend CVector operator+(CVector a, const CVector& b) { return a += b; }
  friend CVector operator-(CVector a, const CVector& b) { return a -= b; }
  friend CVector operator*(CVector a, Complex s) { return a *= s; }
  friend CVector operator*(Complex s, CVector a) { return a *= s; }

 private:
  std::vector<Complex> data_;
};

/// Inner product <a, b> = sum conj(a_i) * b_i.
Complex dot(const CVector& a, const CVector& b);

/// Dense row-major complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  Complex& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Conjugate transpose.
  CMatrix hermitian() const;

  /// Re-shapes to rows x cols with every entry zero. Capacity is reused
  /// (never shrinks) — the scratch-matrix analogue of CVector::resize_zero.
  void reshape_zero(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, Complex{});
  }

  /// Matrix-vector product. Throws std::invalid_argument on size mismatch.
  CVector operator*(const CVector& x) const;
  /// Matrix-vector product into a caller-provided vector (resized in
  /// place, capacity reused). Bit-identical to operator*.
  void multiply_into(const CVector& x, CVector& y) const;
  /// Matrix-matrix product. Throws std::invalid_argument on size mismatch.
  CMatrix operator*(const CMatrix& other) const;

  CMatrix& operator+=(const CMatrix& other);
  CMatrix& operator*=(Complex s);

  /// Extracts row r as a vector.
  CVector row(std::size_t r) const;
  /// Extracts column c as a vector.
  CVector col(std::size_t c) const;
  /// Overwrites row r.
  void set_row(std::size_t r, const CVector& v);

  /// Builds a matrix by stacking the given rows. All rows must agree in size.
  static CMatrix from_rows(const std::vector<CVector>& rows);

  /// Identity matrix.
  static CMatrix identity(std::size_t n);

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

}  // namespace w4k::linalg

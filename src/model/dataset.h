// Quality-model dataset construction (Sec. 2.3).
//
// For every sampled frame of every clip we encode the layer hierarchy,
// compute the content features (per-layer cumulative SSIM + blank-frame
// SSIM), then sweep random per-layer reception fractions, reconstruct the
// frame from exactly those bytes, and record the measured SSIM as label.
// The fraction of received bytes per layer stands in for the paper's
// "number of packets received at each layer" (it is the same quantity
// normalized by the layer size, which makes the model resolution-
// independent).
#pragma once

#include "common/rng.h"
#include "model/nn.h"
#include "quality/metrics.h"
#include "video/layered.h"
#include "video/synthetic.h"

#include <array>
#include <vector>

namespace w4k::model {

/// Input features of the quality model, in physical terms.
struct Features {
  std::array<double, video::kNumLayers> fraction{};   ///< received/total per layer
  std::array<double, video::kNumLayers> up_to_layer{};///< SSIM with layers 0..i full
  double blank = 0.0;                                 ///< SSIM of mid-gray frame

  /// Flattens to the 9-element network input.
  Vec to_input() const;

  /// Allocation-free variant: writes into `x` (resized to kFeatureCount,
  /// capacity reused). to_input() wraps this.
  void to_input_into(Vec& x) const;
};

inline constexpr std::size_t kFeatureCount = 9;

/// Builds a PartialFrame containing the first `fraction[l] * layer_bytes`
/// bytes of each layer (sublayers filled in ascending k order, mirroring
/// the sender's in-order coding-unit schedule).
video::PartialFrame partial_from_fractions(
    const video::EncodedFrame& enc,
    const std::array<double, video::kNumLayers>& fraction);

/// Which quality metric the model learns. The paper trains on SSIM and
/// notes the methodology generalizes to PSNR; PSNR targets and anchor
/// features are normalized by kPsnrScale so they live in the same [0, 1]
/// range the sigmoid network likes.
enum class TargetMetric { kSsim, kPsnr };

/// Normalization for PSNR-valued features/targets (50 dB ~ visually
/// lossless on 8-bit content).
inline constexpr double kPsnrScale = 50.0;

/// Dataset generation knobs.
struct DatasetConfig {
  int frames_per_video = 4;       ///< frames sampled uniformly per clip
  int fractions_per_frame = 24;   ///< random reception vectors per frame
  TargetMetric metric = TargetMetric::kSsim;
  std::uint64_t seed = 1234;
  double train_split = 0.7;       ///< paper: 7:3 random split
};

/// A labelled dataset split.
struct Dataset {
  std::vector<Example> train;
  std::vector<Example> test;
};

/// Generates the dataset from the given clips.
Dataset build_dataset(const std::vector<video::VideoSpec>& specs,
                      const DatasetConfig& cfg);

}  // namespace w4k::model

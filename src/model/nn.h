// Minimal feed-forward neural network with backpropagation and Adam.
//
// Sized for the paper's quality model (Sec. 2.3): five 9->9 fully
// connected layers with sigmoid activations plus a final 9->1 linear
// layer. Besides weight gradients the net exposes *input* gradients,
// which the transmission-strategy optimizer (Sec. 2.4) uses to ascend the
// quality surface analytically instead of via finite differences.
#pragma once

#include "common/rng.h"

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace w4k::model {

using Vec = std::vector<double>;

/// Fully connected layer with optional sigmoid activation.
class Dense {
 public:
  /// Xavier/Glorot-uniform initialization from `rng`.
  Dense(std::size_t in, std::size_t out, bool sigmoid, Rng& rng);

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  bool has_sigmoid() const { return sigmoid_; }

  /// Forward pass; caches input and pre-activation for backward().
  Vec forward(const Vec& x);

  /// Allocation-free forward: computes into an internal activation buffer
  /// (reused across calls) and returns a reference to it. The reference is
  /// valid until the next forward on this layer. forward() wraps this.
  const Vec& forward_cached(const Vec& x);

  /// Backward pass for the most recent forward(). Accumulates weight/bias
  /// gradients internally and returns dL/dx.
  Vec backward(const Vec& grad_out);

  /// Allocation-free backward: dL/dx lands in an internal buffer (reused
  /// across calls, valid until the next backward on this layer).
  const Vec& backward_cached(const Vec& grad_out);

  /// Zeroes accumulated gradients.
  void zero_grad();

  /// Adam update with the accumulated gradients divided by `batch`.
  void adam_step(double lr, double beta1, double beta2, double eps,
                 long step, std::size_t batch);

  /// Serialization of parameters (plain text, locale-independent).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::size_t in_, out_;
  bool sigmoid_;
  Vec w_;   // out_ x in_, row-major
  Vec b_;   // out_
  Vec gw_, gb_;
  // Adam moments.
  Vec mw_, vw_, mb_, vb_;
  // Cached forward state.
  Vec last_x_, last_act_;
  // Reused backward scratch (dz and dL/dx).
  Vec dz_, dx_;
};

/// A stack of Dense layers.
class Network {
 public:
  /// Builds the paper's quality-model topology for `in` input features:
  /// `hidden_layers` sigmoid layers of width `in`, then a linear in->1 head.
  static Network quality_topology(std::size_t in, std::size_t hidden_layers,
                                  std::uint64_t seed);

  /// Empty network; add layers manually.
  Network() = default;
  void add_layer(Dense layer) { layers_.push_back(std::move(layer)); }
  std::size_t layer_count() const { return layers_.size(); }

  Vec forward(const Vec& x);
  /// Backward from dL/d(output); returns dL/d(input).
  Vec backward(const Vec& grad_out);

  /// d(output[0]) / d(input): forward + backward with unit seed gradient.
  /// Only valid for single-output networks.
  Vec input_gradient(const Vec& x);

  /// Allocation-free variants for the per-frame optimizer hot loop: the
  /// returned reference points into the last layer's (respectively first
  /// layer's) internal buffer and is valid until the next call. Same
  /// arithmetic, bit-identical results.
  const Vec& forward_cached(const Vec& x);
  const Vec& input_gradient_cached(const Vec& x);

  void zero_grad();
  void adam_step(double lr, long step, std::size_t batch,
                 double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<Dense> layers_;
};

/// One labelled example.
struct Example {
  Vec x;
  double y = 0.0;
};

/// Training configuration (paper defaults: Adam, MSE, 500 epochs, batch 128).
struct TrainConfig {
  int epochs = 500;
  std::size_t batch_size = 128;
  double lr = 1e-2;
  /// Inverse-time decay: lr_epoch = lr / (1 + epoch / decay_tau).
  /// Unlike step decay this keeps making (ever smaller) progress on very
  /// long runs instead of freezing. 0 = constant lr.
  double decay_tau = 300.0;
  std::uint64_t shuffle_seed = 7;
  /// Optional early-stop: stop if train MSE drops below this (0 disables).
  double target_mse = 0.0;
};

/// Trains with MSE loss; returns final epoch's mean training MSE.
double train_mse(Network& net, const std::vector<Example>& data,
                 const TrainConfig& cfg);

/// Mean squared error of the network on `data`.
double evaluate_mse(Network& net, const std::vector<Example>& data);

}  // namespace w4k::model

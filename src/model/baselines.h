// The two weaker quality-model baselines of Table 1: linear regression
// (closed-form ridge) and a linear support vector regressor trained with
// subgradient descent on the epsilon-insensitive loss. The paper reports
// MSE of 0.0231 (LinReg) and 0.0524 (SVM) versus 2.4e-5 for the DNN; the
// point of these implementations is reproducing that ordering.
#pragma once

#include "model/nn.h"

#include <vector>

namespace w4k::model {

/// Ordinary least squares with a small ridge term for conditioning.
class LinearRegression {
 public:
  /// Fits on `data`; returns training MSE. Throws on an empty dataset.
  double fit(const std::vector<Example>& data, double ridge = 1e-8);
  double predict(const Vec& x) const;
  double evaluate(const std::vector<Example>& data) const;

 private:
  Vec weights_;  // one per feature + bias at the end
};

/// Linear epsilon-SVR via averaged subgradient descent.
struct SvrConfig {
  /// Insensitivity tube half-width. 0.1 is the scikit-learn default the
  /// paper's SVM baseline would have used; it is also what makes the SVM
  /// land a clear last place in Table 1 — residuals inside the tube are
  /// free, so the fit never gets tighter than ~epsilon.
  double epsilon = 0.1;
  double c = 1.0;          ///< slack weight
  int epochs = 200;
  double lr = 0.01;
  std::uint64_t seed = 99;
};

class LinearSvr {
 public:
  /// Fits on `data`; returns training MSE.
  double fit(const std::vector<Example>& data, const SvrConfig& cfg = {});
  double predict(const Vec& x) const;
  double evaluate(const std::vector<Example>& data) const;

 private:
  Vec weights_;
};

}  // namespace w4k::model

#include "model/baselines.h"

#include "common/rng.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace w4k::model {
namespace {

double dot_with_bias(const Vec& w, const Vec& x) {
  double s = w.back();  // bias
  for (std::size_t i = 0; i < x.size(); ++i) s += w[i] * x[i];
  return s;
}

double dataset_mse(const Vec& w, const std::vector<Example>& data) {
  if (data.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& ex : data) {
    const double err = dot_with_bias(w, ex.x) - ex.y;
    sum += err * err;
  }
  return sum / static_cast<double>(data.size());
}

}  // namespace

double LinearRegression::fit(const std::vector<Example>& data, double ridge) {
  if (data.empty())
    throw std::invalid_argument("LinearRegression: empty dataset");
  const std::size_t d = data.front().x.size() + 1;  // + bias
  // Normal equations (X^T X + ridge I) w = X^T y on the augmented design.
  std::vector<double> a(d * d, 0.0);
  std::vector<double> b(d, 0.0);
  for (const auto& ex : data) {
    Vec xa = ex.x;
    xa.push_back(1.0);
    for (std::size_t i = 0; i < d; ++i) {
      b[i] += xa[i] * ex.y;
      for (std::size_t j = 0; j < d; ++j) a[i * d + j] += xa[i] * xa[j];
    }
  }
  for (std::size_t i = 0; i < d; ++i) a[i * d + i] += ridge;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < d; ++r)
      if (std::abs(a[r * d + col]) > std::abs(a[piv * d + col])) piv = r;
    if (a[piv * d + col] == 0.0)
      throw std::domain_error("LinearRegression: singular design matrix");
    if (piv != col) {
      for (std::size_t c = 0; c < d; ++c)
        std::swap(a[piv * d + c], a[col * d + c]);
      std::swap(b[piv], b[col]);
    }
    for (std::size_t r = col + 1; r < d; ++r) {
      const double f = a[r * d + col] / a[col * d + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < d; ++c) a[r * d + c] -= f * a[col * d + c];
      b[r] -= f * b[col];
    }
  }
  weights_.assign(d, 0.0);
  for (std::size_t i = d; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < d; ++c) s -= a[i * d + c] * weights_[c];
    weights_[i] = s / a[i * d + i];
  }
  return dataset_mse(weights_, data);
}

double LinearRegression::predict(const Vec& x) const {
  return dot_with_bias(weights_, x);
}

double LinearRegression::evaluate(const std::vector<Example>& data) const {
  return dataset_mse(weights_, data);
}

double LinearSvr::fit(const std::vector<Example>& data, const SvrConfig& cfg) {
  if (data.empty()) throw std::invalid_argument("LinearSvr: empty dataset");
  const std::size_t d = data.front().x.size() + 1;
  weights_.assign(d, 0.0);
  Vec averaged(d, 0.0);
  long steps = 0;

  Rng rng(cfg.seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    // 1/t learning-rate decay keeps the averaged iterate convergent.
    for (std::size_t idx : order) {
      const Example& ex = data[idx];
      const double lr = cfg.lr / (1.0 + 1e-4 * static_cast<double>(steps));
      const double pred = dot_with_bias(weights_, ex.x);
      const double err = pred - ex.y;
      // Subgradient of C * max(0, |err| - eps) + 0.5 ||w||^2 (bias
      // unregularized).
      double sign = 0.0;
      if (err > cfg.epsilon) sign = 1.0;
      else if (err < -cfg.epsilon) sign = -1.0;
      for (std::size_t j = 0; j + 1 < d; ++j) {
        const double grad = cfg.c * sign * ex.x[j] + 1e-4 * weights_[j];
        weights_[j] -= lr * grad;
      }
      weights_[d - 1] -= lr * cfg.c * sign;
      ++steps;
      for (std::size_t j = 0; j < d; ++j)
        averaged[j] += (weights_[j] - averaged[j]) / static_cast<double>(steps);
    }
  }
  weights_ = averaged;
  return dataset_mse(weights_, data);
}

double LinearSvr::predict(const Vec& x) const {
  return dot_with_bias(weights_, x);
}

double LinearSvr::evaluate(const std::vector<Example>& data) const {
  return dataset_mse(weights_, data);
}

}  // namespace w4k::model

#include "model/dataset.h"

#include <algorithm>
#include <cmath>

namespace w4k::model {

void Features::to_input_into(Vec& x) const {
  x.clear();
  x.reserve(kFeatureCount);
  for (double f : fraction) x.push_back(f);
  for (double s : up_to_layer) x.push_back(s);
  x.push_back(blank);
}

Vec Features::to_input() const {
  Vec x;
  to_input_into(x);
  return x;
}

video::PartialFrame partial_from_fractions(
    const video::EncodedFrame& enc,
    const std::array<double, video::kNumLayers>& fraction) {
  video::PartialFrame p = video::PartialFrame::empty(enc.width, enc.height);
  for (int l = 0; l < video::kNumLayers; ++l) {
    const std::size_t per_sub =
        video::sublayer_bytes(l, enc.width, enc.height);
    const double frac = std::clamp(fraction[static_cast<std::size_t>(l)], 0.0, 1.0);
    std::size_t remaining = static_cast<std::size_t>(
        frac * static_cast<double>(video::layer_bytes(l, enc.width, enc.height)));
    for (int k = 0; k < video::sublayer_count(l) && remaining > 0; ++k) {
      const std::size_t take = std::min(remaining, per_sub);
      const auto& src = enc.layers[l][static_cast<std::size_t>(k)];
      video::Segment seg;
      seg.offset = 0;
      seg.bytes.assign(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(take));
      p.layers[l][static_cast<std::size_t>(k)].segments.push_back(std::move(seg));
      remaining -= take;
    }
  }
  return p;
}

Dataset build_dataset(const std::vector<video::VideoSpec>& specs,
                      const DatasetConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Example> all;

  // Measures the configured metric, normalized to ~[0, 1].
  const auto measure = [&cfg](const video::Frame& ref,
                              const video::Frame& dist) {
    return cfg.metric == TargetMetric::kSsim
               ? quality::ssim(ref, dist)
               : std::min(1.0, quality::psnr(ref, dist) / kPsnrScale);
  };

  for (const auto& spec : specs) {
    const video::SyntheticVideo clip(spec);
    for (int s = 0; s < cfg.frames_per_video; ++s) {
      const int t = spec.frames <= 1
                        ? 0
                        : s * (spec.frames - 1) / std::max(1, cfg.frames_per_video - 1);
      const video::Frame original = clip.frame(t);
      const video::EncodedFrame enc = video::encode(original);
      quality::ContentFeatures content =
          quality::content_features(original, enc);
      if (cfg.metric == TargetMetric::kPsnr) {
        // PSNR-valued anchor features, per the paper's generalization.
        content.blank = measure(
            original, video::Frame::blank(enc.width, enc.height));
        for (int l = 0; l < video::kNumLayers; ++l)
          content.up_to_layer[static_cast<std::size_t>(l)] = measure(
              original, video::reconstruct(
                            video::PartialFrame::up_to_layer(enc, l)));
      }

      for (int i = 0; i < cfg.fractions_per_frame; ++i) {
        Features f;
        f.up_to_layer = content.up_to_layer;
        f.blank = content.blank;
        // Bias toward "lower layers mostly complete" which is where the
        // system actually operates (the scheduler fills lower layers
        // first), plus uniform coverage of the rest of the cube.
        for (int l = 0; l < video::kNumLayers; ++l) {
          double frac = rng.uniform();
          if (i % 2 == 0) {
            // Prefix-style sample: lower layers complete, upper truncated.
            frac = l < static_cast<int>(rng.below(video::kNumLayers + 1))
                       ? 1.0
                       : rng.uniform();
          }
          f.fraction[static_cast<std::size_t>(l)] = frac;
        }
        const video::Frame rec =
            video::reconstruct(partial_from_fractions(enc, f.fraction));
        Example ex;
        ex.x = f.to_input();
        ex.y = measure(original, rec);
        all.push_back(std::move(ex));
      }
    }
  }

  // 7:3 random split with no overlap.
  for (std::size_t i = all.size(); i > 1; --i)
    std::swap(all[i - 1], all[rng.below(i)]);
  const auto cut = static_cast<std::size_t>(
      cfg.train_split * static_cast<double>(all.size()));
  Dataset ds;
  ds.train.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(cut));
  ds.test.assign(all.begin() + static_cast<std::ptrdiff_t>(cut), all.end());
  return ds;
}

}  // namespace w4k::model

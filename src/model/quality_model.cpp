#include "model/quality_model.h"

#include <algorithm>
#include <fstream>

namespace w4k::model {

QualityModel::QualityModel(std::uint64_t seed)
    : net_(Network::quality_topology(kFeatureCount, 5, seed)) {}

double QualityModel::train(const std::vector<Example>& data,
                           const TrainConfig& cfg) {
  return train_mse(net_, data, cfg);
}

double QualityModel::evaluate(const std::vector<Example>& data) {
  return evaluate_mse(net_, data);
}

double QualityModel::predict(const Features& f) {
  f.to_input_into(input_);
  const Vec& out = net_.forward_cached(input_);
  return std::clamp(out[0], 0.0, 1.0);
}

std::array<double, video::kNumLayers> QualityModel::fraction_gradient(
    const Features& f) {
  f.to_input_into(input_);
  const Vec& g = net_.input_gradient_cached(input_);
  // The first kNumLayers inputs are the reception fractions (see
  // Features::to_input); the rest are content features, constant during
  // schedule optimization.
  std::array<double, video::kNumLayers> out{};
  for (std::size_t l = 0; l < out.size(); ++l) out[l] = g[l];
  return out;
}

bool QualityModel::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return false;
  // Load into a scratch copy: a truncated/corrupt cache throws partway
  // through Network::load, and the half-loaded weights must not leak into
  // the live model (which may already be trained).
  Network candidate = net_;
  try {
    candidate.load(is);
  } catch (const std::exception&) {
    return false;
  }
  net_ = std::move(candidate);
  return true;
}

void QualityModel::save_file(const std::string& path) const {
  std::ofstream os(path);
  net_.save(os);
}

}  // namespace w4k::model

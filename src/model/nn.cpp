#include "model/nn.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace w4k::model {
namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Dense::Dense(std::size_t in, std::size_t out, bool sig, Rng& rng)
    : in_(in),
      out_(out),
      sigmoid_(sig),
      w_(in * out),
      b_(out, 0.0),
      gw_(in * out, 0.0),
      gb_(out, 0.0),
      mw_(in * out, 0.0),
      vw_(in * out, 0.0),
      mb_(out, 0.0),
      vb_(out, 0.0) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (auto& w : w_) w = rng.uniform(-limit, limit);
}

const Vec& Dense::forward_cached(const Vec& x) {
  if (x.size() != in_) throw std::invalid_argument("Dense: input size mismatch");
  last_x_ = x;  // copy-assign reuses capacity
  last_act_.resize(out_);
  for (std::size_t o = 0; o < out_; ++o) {
    double z = b_[o];
    const double* row = w_.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) z += row[i] * last_x_[i];
    last_act_[o] = sigmoid_ ? sigmoid(z) : z;
  }
  return last_act_;
}

Vec Dense::forward(const Vec& x) { return forward_cached(x); }

const Vec& Dense::backward_cached(const Vec& grad_out) {
  if (grad_out.size() != out_)
    throw std::invalid_argument("Dense: gradient size mismatch");
  dz_.resize(out_);
  for (std::size_t o = 0; o < out_; ++o) {
    // d sigmoid(z) / dz = s * (1 - s) where s is the cached activation.
    dz_[o] = sigmoid_ ? grad_out[o] * last_act_[o] * (1.0 - last_act_[o])
                      : grad_out[o];
  }
  dx_.assign(in_, 0.0);
  for (std::size_t o = 0; o < out_; ++o) {
    double* grow = gw_.data() + o * in_;
    const double* wrow = w_.data() + o * in_;
    const double d = dz_[o];
    gb_[o] += d;
    for (std::size_t i = 0; i < in_; ++i) {
      grow[i] += d * last_x_[i];
      dx_[i] += wrow[i] * d;
    }
  }
  return dx_;
}

Vec Dense::backward(const Vec& grad_out) { return backward_cached(grad_out); }

void Dense::zero_grad() {
  std::fill(gw_.begin(), gw_.end(), 0.0);
  std::fill(gb_.begin(), gb_.end(), 0.0);
}

void Dense::adam_step(double lr, double beta1, double beta2, double eps,
                      long step, std::size_t batch) {
  const double inv_batch = 1.0 / static_cast<double>(std::max<std::size_t>(1, batch));
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
  auto update = [&](Vec& p, Vec& g, Vec& m, Vec& v) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double grad = g[i] * inv_batch;
      m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
      v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  };
  update(w_, gw_, mw_, vw_);
  update(b_, gb_, mb_, vb_);
}

void Dense::save(std::ostream& os) const {
  os << in_ << ' ' << out_ << ' ' << (sigmoid_ ? 1 : 0) << '\n';
  os.precision(17);
  for (double w : w_) os << w << ' ';
  os << '\n';
  for (double b : b_) os << b << ' ';
  os << '\n';
}

void Dense::load(std::istream& is) {
  std::size_t in = 0, out = 0;
  int sig = 0;
  if (!(is >> in >> out >> sig) || in != in_ || out != out_)
    throw std::runtime_error("Dense::load: topology mismatch");
  sigmoid_ = sig != 0;
  for (auto& w : w_)
    if (!(is >> w)) throw std::runtime_error("Dense::load: truncated weights");
  for (auto& b : b_)
    if (!(is >> b)) throw std::runtime_error("Dense::load: truncated biases");
  // A bit-flipped cache can still parse (e.g. "nan", "1e308"): a non-finite
  // weight would silently poison every later prediction, so reject it here.
  for (double w : w_)
    if (!std::isfinite(w))
      throw std::runtime_error("Dense::load: non-finite weight");
  for (double b : b_)
    if (!std::isfinite(b))
      throw std::runtime_error("Dense::load: non-finite bias");
}

Network Network::quality_topology(std::size_t in, std::size_t hidden_layers,
                                  std::uint64_t seed) {
  Network net;
  Rng rng(seed);
  for (std::size_t i = 0; i < hidden_layers; ++i)
    net.add_layer(Dense(in, in, /*sigmoid=*/true, rng));
  net.add_layer(Dense(in, 1, /*sigmoid=*/false, rng));
  return net;
}

const Vec& Network::forward_cached(const Vec& x) {
  if (layers_.empty())
    throw std::logic_error("Network::forward_cached: no layers");
  const Vec* h = &x;
  for (auto& layer : layers_) h = &layer.forward_cached(*h);
  return *h;
}

Vec Network::forward(const Vec& x) { return forward_cached(x); }

Vec Network::backward(const Vec& grad_out) {
  const Vec* g = &grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = &it->backward_cached(*g);
  return *g;
}

const Vec& Network::input_gradient_cached(const Vec& x) {
  const Vec& out = forward_cached(x);
  if (out.size() != 1)
    throw std::logic_error("input_gradient: network must have one output");
  // Seed gradient of 1 on the single output; weight-gradient accumulation
  // is unwanted here, so clear it afterwards. The seed lives in reusable
  // per-thread scratch so the gradient path stays allocation-free.
  thread_local Vec seed;
  seed.assign(1, 1.0);
  const Vec* g = &seed;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = &it->backward_cached(*g);
  zero_grad();
  return *g;
}

Vec Network::input_gradient(const Vec& x) { return input_gradient_cached(x); }

void Network::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

void Network::adam_step(double lr, long step, std::size_t batch, double beta1,
                        double beta2, double eps) {
  for (auto& layer : layers_)
    layer.adam_step(lr, beta1, beta2, eps, step, batch);
}

void Network::save(std::ostream& os) const {
  os << layers_.size() << '\n';
  for (const auto& layer : layers_) layer.save(os);
}

void Network::load(std::istream& is) {
  std::size_t n = 0;
  if (!(is >> n) || n != layers_.size())
    throw std::runtime_error("Network::load: layer count mismatch");
  for (auto& layer : layers_) layer.load(is);
}

double train_mse(Network& net, const std::vector<Example>& data,
                 const TrainConfig& cfg) {
  if (data.empty()) throw std::invalid_argument("train_mse: empty dataset");
  Rng rng(cfg.shuffle_seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  long adam_step_count = 0;
  double epoch_mse = 0.0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const double lr =
        cfg.decay_tau > 0.0 ? cfg.lr / (1.0 + epoch / cfg.decay_tau) : cfg.lr;
    // Fisher-Yates with our deterministic RNG (std::shuffle is not
    // platform-stable).
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    double sum_se = 0.0;
    std::size_t done = 0;
    while (done < order.size()) {
      const std::size_t batch =
          std::min(cfg.batch_size, order.size() - done);
      net.zero_grad();
      for (std::size_t b = 0; b < batch; ++b) {
        const Example& ex = data[order[done + b]];
        const Vec out = net.forward(ex.x);
        const double err = out[0] - ex.y;
        sum_se += err * err;
        // d(MSE)/d(out) for one sample = 2 * err (batch mean applied in
        // adam_step via the batch divisor).
        net.backward(Vec{2.0 * err});
      }
      ++adam_step_count;
      net.adam_step(lr, adam_step_count, batch);
      done += batch;
    }
    epoch_mse = sum_se / static_cast<double>(order.size());
    if (cfg.target_mse > 0.0 && epoch_mse < cfg.target_mse) break;
  }
  return epoch_mse;
}

double evaluate_mse(Network& net, const std::vector<Example>& data) {
  if (data.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& ex : data) {
    const double err = net.forward(ex.x)[0] - ex.y;
    sum += err * err;
  }
  return sum / static_cast<double>(data.size());
}

}  // namespace w4k::model

// The DNN video quality model Q(.) of Sec. 2.3.
//
// Maps the per-layer reception state of one frame to its SSIM. The exact
// paper topology: five fully connected 9->9 layers, each followed by a
// sigmoid, then a linear 9->1 head; Adam + MSE, 500 epochs, batch 128.
// Besides prediction, the model exposes the analytic gradient of predicted
// SSIM w.r.t. the per-layer reception fractions, which drives the
// projected-gradient time-allocation optimizer of Sec. 2.4.
#pragma once

#include "model/dataset.h"
#include "model/nn.h"

#include <array>
#include <iosfwd>
#include <string>

namespace w4k::model {

class QualityModel {
 public:
  /// Freshly initialized (untrained) model with the paper topology.
  explicit QualityModel(std::uint64_t seed = 42);

  /// Trains on the given examples; returns final training MSE.
  double train(const std::vector<Example>& data, const TrainConfig& cfg = {});

  /// Test-set MSE.
  double evaluate(const std::vector<Example>& data);

  /// Predicted SSIM for a feature vector, clamped to [0, 1].
  double predict(const Features& f);

  /// d(predicted SSIM) / d(fraction[l]) for each layer l.
  std::array<double, video::kNumLayers> fraction_gradient(const Features& f);

  void save(std::ostream& os) const { net_.save(os); }
  void load(std::istream& is) { net_.load(is); }

  /// Convenience file round-trip; returns false if the file is absent or
  /// malformed (caller then retrains).
  bool load_file(const std::string& path);
  void save_file(const std::string& path) const;

 private:
  Network net_;
  Vec input_;  ///< reused feature-flattening scratch (predict/gradient)
};

}  // namespace w4k::model

// Golden-report generator: runs three pinned end-to-end scenarios and
// emits each SessionReport as canonical JSON (SessionReport::write_json).
// scripts/golden.sh diffs the output against the blessed files in
// tests/golden/data/ across W4K_THREADS and W4K_FORCE_SCALAR combinations
// — any byte difference means the streaming pipeline's numbers moved, by
// a real change or by lost determinism, and either way a human must look.
//
// Usage: golden_report <static4|faulted|mobile|multiap|relay> [--out FILE]
//                      [--model-cache PATH]
#include "channel/mobility.h"
#include "channel/multi_ap.h"
#include "core/experiment.h"
#include "core/frame_context.h"
#include "core/pretrained.h"
#include "core/report.h"
#include "core/runner.h"
#include "core/session.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "video/synthetic.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

constexpr int kW = 256;
constexpr int kH = 144;

using namespace w4k;

std::vector<core::FrameContext> contexts() {
  video::VideoSpec spec;
  spec.width = kW;
  spec.height = kH;
  spec.frames = 4;
  spec.richness = video::Richness::kHigh;
  spec.seed = 11;
  return core::make_contexts(video::SyntheticVideo(spec), 3,
                             core::scaled_symbol_size(kW, kH));
}

core::MulticastSession session(model::QualityModel& quality) {
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  return core::MulticastSession(cfg, quality, beamforming::Codebook{});
}

std::vector<linalg::CVector> static_channels(std::size_t n) {
  Rng rng(5);
  channel::PropagationConfig prop;
  return core::channels_for(prop,
                            core::place_users_fixed(n, 3.0, 1.047, rng));
}

core::SessionReport run_static4(model::QualityModel& quality) {
  auto s = session(quality);
  const auto ctx = contexts();
  return core::run_static(s, static_channels(4), ctx, 12);
}

core::SessionReport run_faulted(model::QualityModel& quality) {
  constexpr std::size_t kUsers = 3;
  constexpr int kFrames = 16;
  auto s = session(quality);
  const auto ctx = contexts();
  const fault::FaultInjector injector(
      fault::FaultPlan::random(/*seed=*/20240801, kFrames, kUsers), kUsers);
  return core::run_static(s, static_channels(kUsers), ctx, kFrames,
                          injector);
}

// Two APs on opposite walls, four users, a pinned AP-outage + handoff-
// beacon-loss plan: exercises attachment, partition-pure grouping, sector
// faults, and mid-session handoff. Pinned like everything else — any byte
// change means the multi-AP numbers moved.
core::SessionReport run_multiap(model::QualityModel& quality) {
  constexpr std::size_t kUsers = 4;
  constexpr int kFrames = 16;
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.handoff.n_aps = 2;
  cfg.handoff.enabled = true;
  cfg.handoff.min_dwell_frames = 4;
  core::MulticastSession s(cfg, quality, beamforming::Codebook{});
  const auto ctx = contexts();
  Rng rng(5);
  channel::PropagationConfig prop;
  const auto users = core::place_users_fixed(kUsers, 3.0, 1.047, rng);
  channel::MultiApGeometry geo;
  geo.prop = prop;
  geo.aps = channel::default_ap_layout(2, prop.room);
  fault::RandomPlanConfig rcfg;
  rcfg.n_aps = 2;
  rcfg.handoff_beacon_losses = 1;
  fault::FaultPlan plan =
      fault::FaultPlan::random(/*seed=*/20250801, kFrames, kUsers, rcfg);
  // On top of the pinned random draws, one long total outage of AP 0 —
  // long enough to walk every attached user through degraded → probing →
  // handing-off → attached-to-AP-1, so the golden pins a committed switch.
  // (Random ap_outages stay 0 here: a random outage of the alternate AP
  // would abort every probe, which is chaos-test material, not a golden.)
  fault::ApOutage outage;
  outage.start_frame = 4;
  outage.n_frames = 8;
  outage.ap = 0;
  outage.total = true;
  plan.ap_outage.push_back(outage);
  const fault::FaultInjector injector(plan, kUsers, 2);
  return core::run_static_multi_ap(s, channel::ap_channel_stacks(geo, users),
                                   ctx, kFrames, injector,
                                   channel::ap_user_azimuths(geo, users));
}

// Single AP, persistent blockage drives one user into quarantine, then the
// LoS peers relay base-layer symbols to it: pins the relay airtime
// accounting and the relayed-symbol decode path.
core::SessionReport run_relay(model::QualityModel& quality) {
  constexpr std::size_t kUsers = 4;
  constexpr int kFrames = 20;
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  cfg.relay.enabled = true;
  cfg.quarantine_after = 3;
  cfg.quarantine_reprobe_period = 4;
  core::MulticastSession s(cfg, quality, beamforming::Codebook{});
  const auto ctx = contexts();
  fault::FaultPlan plan;
  fault::BlockageBurst burst;
  burst.start_frame = 2;
  burst.n_frames = 18;
  burst.user = 3;
  burst.extra_loss_db = 30.0;
  plan.blockage.push_back(burst);
  // Miss every beacon during the burst: decisions run on pre-burst held
  // CSI, so the blocked user keeps being scheduled at full MCS and decodes
  // nothing — the streak that drives quarantine, and from there the peers
  // start relaying base-layer symbols to it.
  for (std::uint32_t f = 2; f < 20; ++f)
    plan.csi.push_back({f, /*corrupt=*/false});
  const fault::FaultInjector injector(plan, kUsers);
  return core::run_static(s, static_channels(kUsers), ctx, kFrames, injector);
}

core::SessionReport run_mobile(model::QualityModel& quality) {
  auto s = session(quality);
  const auto ctx = contexts();
  channel::MovingReceiverConfig mc;
  mc.n_users = 2;
  mc.duration = 0.5;  // 5 beacons x 3 frames each
  mc.seed = 9;
  return core::run_trace(s, channel::moving_receiver_trace(mc), ctx);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::string out_path;
  std::string cache = "golden_model.cache";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "golden_report: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") out_path = next();
    else if (a == "--model-cache") cache = next();
    else if (scenario.empty()) scenario = a;
    else {
      std::fprintf(stderr, "golden_report: unexpected argument %s\n",
                   a.c_str());
      return 2;
    }
  }
  if (scenario.empty()) {
    std::fprintf(stderr,
                 "usage: golden_report <static4|faulted|mobile|multiap|relay> "
                 "[--out FILE] [--model-cache PATH]\n");
    return 2;
  }

  model::QualityModel quality(42);
  core::PretrainedOptions opts;
  opts.cache_path = cache;
  core::ensure_trained(quality, opts);

  core::SessionReport report;
  if (scenario == "static4") report = run_static4(quality);
  else if (scenario == "faulted") report = run_faulted(quality);
  else if (scenario == "mobile") report = run_mobile(quality);
  else if (scenario == "multiap") report = run_multiap(quality);
  else if (scenario == "relay") report = run_relay(quality);
  else {
    std::fprintf(stderr, "golden_report: unknown scenario '%s'\n",
                 scenario.c_str());
    return 2;
  }

  if (out_path.empty()) {
    report.write_json(std::cout);
  } else {
    report.write_json_file(out_path);
  }
  return 0;
}

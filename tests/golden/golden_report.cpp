// Golden-report generator: runs three pinned end-to-end scenarios and
// emits each SessionReport as canonical JSON (SessionReport::write_json).
// scripts/golden.sh diffs the output against the blessed files in
// tests/golden/data/ across W4K_THREADS and W4K_FORCE_SCALAR combinations
// — any byte difference means the streaming pipeline's numbers moved, by
// a real change or by lost determinism, and either way a human must look.
//
// Usage: golden_report <static4|faulted|mobile> [--out FILE]
//                      [--model-cache PATH]
#include "channel/mobility.h"
#include "core/experiment.h"
#include "core/frame_context.h"
#include "core/pretrained.h"
#include "core/report.h"
#include "core/runner.h"
#include "core/session.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "video/synthetic.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

constexpr int kW = 256;
constexpr int kH = 144;

using namespace w4k;

std::vector<core::FrameContext> contexts() {
  video::VideoSpec spec;
  spec.width = kW;
  spec.height = kH;
  spec.frames = 4;
  spec.richness = video::Richness::kHigh;
  spec.seed = 11;
  return core::make_contexts(video::SyntheticVideo(spec), 3,
                             core::scaled_symbol_size(kW, kH));
}

core::MulticastSession session(model::QualityModel& quality) {
  core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
  return core::MulticastSession(cfg, quality, beamforming::Codebook{});
}

std::vector<linalg::CVector> static_channels(std::size_t n) {
  Rng rng(5);
  channel::PropagationConfig prop;
  return core::channels_for(prop,
                            core::place_users_fixed(n, 3.0, 1.047, rng));
}

core::SessionReport run_static4(model::QualityModel& quality) {
  auto s = session(quality);
  const auto ctx = contexts();
  return core::run_static(s, static_channels(4), ctx, 12);
}

core::SessionReport run_faulted(model::QualityModel& quality) {
  constexpr std::size_t kUsers = 3;
  constexpr int kFrames = 16;
  auto s = session(quality);
  const auto ctx = contexts();
  const fault::FaultInjector injector(
      fault::FaultPlan::random(/*seed=*/20240801, kFrames, kUsers), kUsers);
  return core::run_static(s, static_channels(kUsers), ctx, kFrames,
                          injector);
}

core::SessionReport run_mobile(model::QualityModel& quality) {
  auto s = session(quality);
  const auto ctx = contexts();
  channel::MovingReceiverConfig mc;
  mc.n_users = 2;
  mc.duration = 0.5;  // 5 beacons x 3 frames each
  mc.seed = 9;
  return core::run_trace(s, channel::moving_receiver_trace(mc), ctx);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario;
  std::string out_path;
  std::string cache = "golden_model.cache";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "golden_report: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--out") out_path = next();
    else if (a == "--model-cache") cache = next();
    else if (scenario.empty()) scenario = a;
    else {
      std::fprintf(stderr, "golden_report: unexpected argument %s\n",
                   a.c_str());
      return 2;
    }
  }
  if (scenario.empty()) {
    std::fprintf(stderr,
                 "usage: golden_report <static4|faulted|mobile> "
                 "[--out FILE] [--model-cache PATH]\n");
    return 2;
  }

  model::QualityModel quality(42);
  core::PretrainedOptions opts;
  opts.cache_path = cache;
  core::ensure_trained(quality, opts);

  core::SessionReport report;
  if (scenario == "static4") report = run_static4(quality);
  else if (scenario == "faulted") report = run_faulted(quality);
  else if (scenario == "mobile") report = run_mobile(quality);
  else {
    std::fprintf(stderr, "golden_report: unknown scenario '%s'\n",
                 scenario.c_str());
    return 2;
  }

  if (out_path.empty()) {
    report.write_json(std::cout);
  } else {
    report.write_json_file(out_path);
  }
  return 0;
}

// BufferPool refcounting and the publisher/worker FrameRing: the two
// lock-free pieces the zero-copy fan-out stands on.
#include "serve/buffer_pool.h"
#include "serve/source.h"
#include "serve/wire.h"
#include "serve/worker.h"
#include "verify/invariants.h"

#include <gtest/gtest.h>

#include <cstring>

namespace w4k::serve {
namespace {

TEST(ServePool, AcquireReleaseCycles) {
  BufferPool pool(128, 4);
  EXPECT_EQ(pool.free_slots(), 4u);
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  ASSERT_NE(a, BufferPool::kNoSlot);
  ASSERT_NE(b, BufferPool::kNoSlot);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.free_slots(), 2u);
  EXPECT_EQ(pool.refs(a), 1u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.free_slots(), 4u);
}

TEST(ServePool, LastReferenceFrees) {
  BufferPool pool(128, 2);
  const auto s = pool.acquire();
  pool.add_refs(s, 2);  // two workers
  EXPECT_EQ(pool.refs(s), 3u);
  pool.release(s);  // publisher
  pool.release(s);  // worker 1
  EXPECT_EQ(pool.free_slots(), 1u);
  pool.release(s);  // worker 2: last
  EXPECT_EQ(pool.free_slots(), 2u);
}

TEST(ServePool, ExhaustionReturnsNoSlot) {
  BufferPool pool(64, 1);
  const auto s = pool.acquire();
  ASSERT_NE(s, BufferPool::kNoSlot);
  EXPECT_EQ(pool.acquire(), BufferPool::kNoSlot);
  pool.release(s);
  EXPECT_NE(pool.acquire(), BufferPool::kNoSlot);
}

TEST(ServePool, DoubleReleaseTripsInvariant) {
  verify::set_mode(verify::Mode::kThrow);
  BufferPool pool(64, 2);
  const auto s = pool.acquire();
  pool.release(s);
  EXPECT_THROW(pool.release(s), verify::InvariantViolation);
  verify::reset_violations();
}

TEST(ServePool, SlotSpansAreDisjoint) {
  BufferPool pool(32, 3);
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  auto sa = pool.slot(a);
  auto sb = pool.slot(b);
  ASSERT_EQ(sa.size(), 32u);
  EXPECT_TRUE(sa.data() + 32 <= sb.data() || sb.data() + 32 <= sa.data());
}

TEST(ServeFrameRing, PushPopOrderAndCapacity) {
  FrameRing ring;
  FrameDesc descs[FrameRing::kCap + 1];
  EXPECT_EQ(ring.front(), nullptr);
  for (std::uint32_t i = 0; i < FrameRing::kCap; ++i)
    EXPECT_TRUE(ring.push(&descs[i]));
  EXPECT_FALSE(ring.push(&descs[FrameRing::kCap]));  // full
  EXPECT_EQ(ring.size(), FrameRing::kCap);
  for (std::uint32_t i = 0; i < FrameRing::kCap; ++i) {
    ASSERT_EQ(ring.front(), &descs[i]);  // FIFO
    ring.pop();
  }
  EXPECT_EQ(ring.front(), nullptr);
  // Wrapped reuse after a full cycle.
  EXPECT_TRUE(ring.push(&descs[0]));
  EXPECT_EQ(ring.front(), &descs[0]);
}

TEST(ServeSource, EmitsFreshEsisAcrossFrames) {
  SourceConfig cfg;
  cfg.symbol_bytes = 64;
  cfg.layers = {{0, 0, 4, 2}, {1, 0, 2, 1}};
  FountainSource src(cfg);
  EXPECT_EQ(src.symbols_per_frame(), 3u);
  BufferPool pool(src.record_bytes(), 16);

  FrameDesc f0, f1;
  ASSERT_TRUE(src.next_frame(pool, f0));
  ASSERT_TRUE(src.next_frame(pool, f1));
  EXPECT_EQ(f0.frame_id, 0u);
  EXPECT_EQ(f1.frame_id, 1u);
  ASSERT_EQ(f0.n_symbols, 3u);

  // Parse the records back: layer/sublayer as configured, ESIs advancing
  // across frames (never repeated), headers self-consistent.
  auto header_of = [&](const FrameDesc& f, std::uint32_t i) {
    wire::SymbolHeader h;
    const auto s = pool.slot(f.slots[i]);
    std::uint8_t pkt[512];
    wire::serialize_prefix(1, pkt);
    std::memcpy(pkt + wire::kPrefixBytes, s.data(), f.bytes[i]);
    const auto parsed =
        wire::parse_data(pkt, wire::kPrefixBytes + f.bytes[i]);
    EXPECT_TRUE(parsed.has_value());
    return parsed ? parsed->header : h;
  };
  const auto h00 = header_of(f0, 0);
  const auto h01 = header_of(f0, 1);
  const auto h02 = header_of(f0, 2);
  const auto h10 = header_of(f1, 0);
  EXPECT_EQ(h00.layer, 0);
  EXPECT_EQ(h02.layer, 1);
  EXPECT_EQ(h00.esi, 0u);
  EXPECT_EQ(h01.esi, 1u);
  EXPECT_EQ(h10.esi, 2u);  // continues after frame 0's base-layer pair
  EXPECT_EQ(h00.n_frame_symbols, 3);
  EXPECT_EQ(h00.k, 4);

  for (std::uint32_t i = 0; i < f0.n_symbols; ++i) pool.release(f0.slots[i]);
  for (std::uint32_t i = 0; i < f1.n_symbols; ++i) pool.release(f1.slots[i]);
  EXPECT_EQ(pool.free_slots(), 16u);
}

TEST(ServeSource, PoolExhaustionRollsBackCleanly) {
  SourceConfig cfg;
  cfg.symbol_bytes = 64;
  cfg.layers = {{0, 0, 4, 4}};
  FountainSource src(cfg);
  BufferPool pool(src.record_bytes(), 6);  // 1.5 frames worth

  FrameDesc a, b;
  ASSERT_TRUE(src.next_frame(pool, a));
  EXPECT_FALSE(src.next_frame(pool, b));  // only 2 slots left
  // The failed frame must have released everything it grabbed and not
  // consumed the frame id.
  EXPECT_EQ(pool.free_slots(), 2u);
  EXPECT_EQ(src.next_frame_id(), 1u);
  for (std::uint32_t i = 0; i < a.n_symbols; ++i) pool.release(a.slots[i]);
  ASSERT_TRUE(src.next_frame(pool, b));
  EXPECT_EQ(b.frame_id, 1u);
}

}  // namespace
}  // namespace w4k::serve

// Wire-format round trips and strict-parse rejections for the w4kd
// protocol. The parser guards the daemon's control socket (any process
// can write to a loopback UDP port) and the loadgen's data path, so
// every length/magic/version disagreement must reject cleanly.
#include "serve/wire.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

namespace w4k::serve::wire {
namespace {

TEST(ServeWire, CtrlRoundTrip) {
  std::array<std::uint8_t, kCtrlBytes> buf{};
  CtrlMsg m;
  m.type = CtrlType::kHeartbeat;
  m.sub_id = 0xdeadbeefcafe0123ull;
  serialize_ctrl(m, buf);
  const auto back = parse_ctrl(buf.data(), buf.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, CtrlType::kHeartbeat);
  EXPECT_EQ(back->sub_id, m.sub_id);
}

TEST(ServeWire, CtrlRejectsMalformed) {
  std::array<std::uint8_t, kCtrlBytes> buf{};
  serialize_ctrl(CtrlMsg{CtrlType::kSubscribe, 7}, buf);
  EXPECT_FALSE(parse_ctrl(buf.data(), buf.size() - 1));  // short
  auto bad = buf;
  bad[0] ^= 0xff;  // magic
  EXPECT_FALSE(parse_ctrl(bad.data(), bad.size()));
  bad = buf;
  bad[4] = 99;  // version
  EXPECT_FALSE(parse_ctrl(bad.data(), bad.size()));
  bad = buf;
  bad[5] = 17;  // unknown type
  EXPECT_FALSE(parse_ctrl(bad.data(), bad.size()));
}

std::array<std::uint8_t, 256> make_data_packet(std::size_t payload,
                                               std::size_t* total) {
  std::array<std::uint8_t, 256> buf{};
  serialize_prefix(42, buf);
  SymbolHeader h;
  h.frame_id = 0xfffffffe;  // near the wrap on purpose
  h.layer = 1;
  h.sublayer = 2;
  h.esi = 777;
  h.k = 8;
  h.n_frame_symbols = 3;
  h.symbol_bytes = static_cast<std::uint32_t>(payload);
  h.block_seed = 0x1122334455667788ull;
  serialize_symbol_header(h, {buf.data() + kPrefixBytes,
                              buf.size() - kPrefixBytes});
  for (std::size_t i = 0; i < payload; ++i)
    buf[kPrefixBytes + kSymbolHeaderBytes + i] =
        static_cast<std::uint8_t>(i);
  *total = kPrefixBytes + kSymbolHeaderBytes + payload;
  return buf;
}

TEST(ServeWire, DataRoundTrip) {
  std::size_t total = 0;
  const auto buf = make_data_packet(64, &total);
  const auto pkt = parse_data(buf.data(), total);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->sub_id, 42u);
  EXPECT_EQ(pkt->header.frame_id, 0xfffffffeu);
  EXPECT_EQ(pkt->header.layer, 1);
  EXPECT_EQ(pkt->header.sublayer, 2);
  EXPECT_EQ(pkt->header.esi, 777u);
  EXPECT_EQ(pkt->header.k, 8);
  EXPECT_EQ(pkt->header.n_frame_symbols, 3);
  EXPECT_EQ(pkt->header.block_seed, 0x1122334455667788ull);
  ASSERT_EQ(pkt->payload_size, 64u);
  EXPECT_EQ(pkt->payload[63], 63);
}

TEST(ServeWire, DataRejectsLengthDisagreement) {
  std::size_t total = 0;
  const auto buf = make_data_packet(64, &total);
  EXPECT_TRUE(parse_data(buf.data(), total));
  // A truncated datagram must not yield a short symbol.
  EXPECT_FALSE(parse_data(buf.data(), total - 1));
  // Extra trailing bytes are equally a framing error.
  EXPECT_FALSE(parse_data(buf.data(), total + 1));
  // Shorter than any header at all.
  EXPECT_FALSE(parse_data(buf.data(), kPrefixBytes));
}

TEST(ServeWire, DataRejectsBadMagicAndDegenerateFields) {
  std::size_t total = 0;
  auto buf = make_data_packet(16, &total);
  buf[1] ^= 0x40;
  EXPECT_FALSE(parse_data(buf.data(), total));

  // k == 0 and symbol_bytes == 0 are both meaningless on the wire.
  buf = make_data_packet(16, &total);
  buf[kPrefixBytes + 12] = 0;  // k (little-endian u16)
  buf[kPrefixBytes + 13] = 0;
  EXPECT_FALSE(parse_data(buf.data(), total));
}

TEST(ServeWire, CtrlAndDataMagicsDiffer) {
  // The worker demultiplexes control from stray traffic by magic alone.
  EXPECT_NE(kCtrlMagic, kDataMagic);
}

}  // namespace
}  // namespace w4k::serve::wire

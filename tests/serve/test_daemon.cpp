// Daemon-level tests: synchronous worker lifecycle (subscribe /
// heartbeat / unsubscribe / expiry driven through run_once), the
// ISSUE-mandated kill-half system test over real threads and loopback
// UDP, and the /status HTTP endpoint parsed with the repo's own JSON
// parser.
#include "obs/jsonlite.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "verify/invariants.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace w4k::serve {
namespace {

void sleep_s(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

DaemonConfig quiet_config() {
  DaemonConfig cfg;
  cfg.status = false;
  cfg.workers = 1;
  cfg.pool_slots = 64;
  cfg.source.symbol_bytes = 256;
  cfg.source.layers = {{0, 0, 4, 2}, {1, 0, 4, 1}};  // 3 symbols/frame
  return cfg;
}

// The whole subscriber lifecycle, single-stepped: no daemon threads, the
// test is the event loop. Deterministic by construction.
TEST(ServeWorker, LifecycleSingleStepped) {
  obs::set_enabled(true);
  auto cfg = quiet_config();
  // Generous relative to the test's ~0.1 s sleeps plus run_once's own
  // (up to 50 ms) epoll_wait block, so heartbeats always land in time.
  cfg.worker.heartbeat_timeout_s = 0.3;
  Daemon d(cfg);
  Worker& w = d.worker(0);

  Client::Options o;
  o.port = d.port();
  o.n_subs = 5;
  o.first_sub_id = 100;
  Client c(o);

  c.subscribe_all();
  w.run_once(50);
  EXPECT_EQ(w.subscribers(), 5u);

  // Re-subscribing is an idempotent refresh, not a duplicate entry.
  c.subscribe_all();
  w.run_once(50);
  EXPECT_EQ(w.subscribers(), 5u);

  const std::uint64_t sent_before = w.packets_sent();
  ASSERT_TRUE(d.publish_one());
  w.run_once(50);
  EXPECT_EQ(w.packets_sent() - sent_before, 5u * 3u);
  EXPECT_EQ(w.backlog(), 0u);  // frame finished, references released

  sleep_s(0.1);
  c.heartbeat_all();  // keeps all five alive across the timeout boundary
  w.run_once(50);
  sleep_s(0.1);
  w.run_once(50);
  EXPECT_EQ(w.subscribers(), 5u);

  // Two unsubscribe; the rest go silent and expire.
  Client::Options o2 = o;
  o2.n_subs = 2;
  // Reuse the same ids through a fresh socket: unsubscribe is by id.
  Client c2(o2);
  c2.unsubscribe_all();
  w.run_once(50);
  EXPECT_EQ(w.subscribers(), 3u);

  sleep_s(0.4);  // >> heartbeat_timeout_s with no heartbeats
  w.run_once(50);
  EXPECT_EQ(w.subscribers(), 0u);

  const std::size_t got = c.drain();
  EXPECT_EQ(got, 15u);
  EXPECT_EQ(c.parse_errors(), 0u);
}

// With nobody subscribed, published frames must still cycle the pool
// (references released promptly) instead of leaking slots.
TEST(ServeWorker, NoSubscribersRecyclesSlots) {
  auto cfg = quiet_config();
  Daemon d(cfg);
  const std::size_t free0 = d.pool().free_slots();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(d.publish_one());
    d.worker(0).run_once(10);
  }
  EXPECT_EQ(d.pool().free_slots(), free0);
}

// ISSUE satellite: start w4kd on loopback, 64 clients, kill half
// mid-stream. Remaining clients keep a healthy delivered fraction, the
// daemon's accounting holds (received <= sent; leaky-bucket invariants
// checked in-line by verify::check), and the dead half is reaped by
// heartbeat expiry.
TEST(ServeSystem, KillHalfMidStream) {
  obs::set_enabled(true);
  verify::reset_violations();
  const std::uint64_t v0 = verify::violation_count();

  DaemonConfig cfg;
  cfg.status = false;
  cfg.workers = 2;
  cfg.fps = 120.0;
  cfg.pool_slots = 128;
  cfg.source.symbol_bytes = 512;
  cfg.source.layers = {{0, 0, 8, 2}, {1, 0, 4, 1}};
  cfg.worker.heartbeat_timeout_s = 0.4;
  cfg.worker.pace_mbps = 200.0;  // pacing on => bucket invariants exercised
  cfg.worker.bucket_bytes = 64 * 1024;
  Daemon d(cfg);
  d.start();
  d.start_source();

  // 64 subscribers over 8 sockets (8 each); the REUSEPORT hash spreads
  // the sockets over both workers.
  constexpr int kSockets = 8;
  constexpr std::size_t kSubsPer = 8;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kSockets; ++i) {
    Client::Options o;
    o.port = d.port();
    o.n_subs = kSubsPer;
    o.first_sub_id = 1 + static_cast<std::uint64_t>(i) * kSubsPer;
    clients.push_back(std::make_unique<Client>(o));
    clients.back()->subscribe_all();
  }

  auto pump = [&](double seconds) {
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (std::chrono::steady_clock::now() < until) {
      pollfd fds[kSockets];
      nfds_t nf = 0;
      for (auto& c : clients)
        if (c->alive()) fds[nf++] = pollfd{c->fd(), POLLIN, 0};
      poll(fds, nf, 20);
      for (auto& c : clients)
        if (c->alive()) {
          c->drain();
          c->heartbeat_all();
        }
    }
  };

  pump(0.5);
  for (int i = 0; i < kSockets / 2; ++i) clients[i]->kill();  // crash, no bye

  // Survivors keep streaming; the killed half must expire. Poll rather
  // than sleep a fixed time: expiry needs a couple of sweep periods.
  double waited = 0.0;
  while (d.subscribers() > kSockets / 2 * kSubsPer && waited < 5.0) {
    pump(0.1);
    waited += 0.1;
  }
  EXPECT_EQ(d.subscribers(), kSockets / 2 * kSubsPer);

  pump(0.3);
  d.stop();
  for (auto& c : clients)
    if (c->alive()) c->drain();

  // Conservation: what the clients received can never exceed what the
  // workers report having sent (drops are allowed, invention is not).
  std::uint64_t received = 0;
  for (const auto& c : clients)
    if (c->alive()) received += c->total_packets();
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < d.n_workers(); ++i)
    sent += d.worker(i).packets_sent();
  EXPECT_GT(sent, 0u);
  EXPECT_LE(received, sent);

  // Every surviving subscriber saw traffic, and the spread between the
  // best- and mean-served survivor stays sane (loopback, no real loss).
  std::uint64_t best = 0, total = 0, n_subs = 0;
  for (const auto& c : clients) {
    if (!c->alive()) continue;
    EXPECT_EQ(c->parse_errors(), 0u);
    for (const auto& s : c->stats()) {
      EXPECT_GT(s.packets, 0u);
      best = std::max(best, s.packets);
      total += s.packets;
      ++n_subs;
    }
  }
  ASSERT_EQ(n_subs, kSockets / 2 * kSubsPer);
  const double mean =
      static_cast<double>(total) / static_cast<double>(n_subs);
  EXPECT_GE(mean / static_cast<double>(best), 0.5);

  // No invariant (bucket level, pool refcount, progress bound, ...)
  // tripped anywhere in the run.
  EXPECT_EQ(verify::violation_count(), v0);
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &a.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&a), sizeof(a)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0)
    resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return resp;
}

TEST(ServeStatus, EndpointServesParsableJson) {
  obs::set_enabled(true);
  auto cfg = quiet_config();
  cfg.status = true;
  Daemon d(cfg);
  d.start();
  ASSERT_NE(d.status_port(), 0);

  Client::Options o;
  o.port = d.port();
  o.n_subs = 3;
  o.first_sub_id = 900;
  Client c(o);
  c.subscribe_all();
  sleep_s(0.05);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(d.publish_one());
  sleep_s(0.05);

  const std::string health = http_get(d.status_port(), "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);

  const std::string resp = http_get(d.status_port(), "/status");
  ASSERT_NE(resp.find(" 200 OK"), std::string::npos);
  const auto split = resp.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  const std::string body = resp.substr(split + 4);

  std::string err;
  const auto doc = obs::json::parse(body, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->is_object());
  const auto* daemon = doc->find("daemon");
  ASSERT_NE(daemon, nullptr);
  EXPECT_EQ(daemon->str, "w4kd");
  const auto* workers = doc->find("workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->number, 1.0);
  const auto* frames = doc->find("frames_published");
  ASSERT_NE(frames, nullptr);
  EXPECT_GE(frames->number, 4.0);  // global counter: >= this daemon's 4
  const auto* subs = doc->find("subscribers");
  ASSERT_NE(subs, nullptr);
  EXPECT_EQ(subs->number, 3.0);
  const auto* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->is_object());

  const std::string missing = http_get(d.status_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  d.stop();
}

}  // namespace
}  // namespace w4k::serve

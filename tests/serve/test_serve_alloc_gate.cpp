// ISSUE acceptance gate: after warmup, one full daemon cycle — encode a
// frame into pool slots, publish to the worker, fan it out to every
// subscriber, drain it client-side — performs zero heap allocations.
// Only meaningful under -DW4K_COUNT_ALLOCS=ON (operator new/delete
// overridden); otherwise the test skips rather than vacuously passing.
#include "common/alloc_count.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"

#include <gtest/gtest.h>

namespace w4k::serve {
namespace {

TEST(ServeAllocGate, SteadyStateFramePathIsAllocationFree) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";

  obs::set_enabled(true);
  DaemonConfig cfg;
  cfg.status = false;  // the HTTP responder builds strings; keep it out
  cfg.workers = 1;
  cfg.pool_slots = 64;
  cfg.source.symbol_bytes = 1200;
  cfg.source.layers = {{0, 0, 8, 4}, {1, 0, 4, 2}};  // 6 symbols/frame
  // Pacing on, at a rate the 32-subscriber fan-out never saturates: the
  // bucket arithmetic runs on every packet but never defers a send, so
  // the gate covers the pacing path too.
  cfg.worker.pace_mbps = 50000.0;
  cfg.worker.bucket_bytes = 1 << 20;
  Daemon d(cfg);
  Worker& w = d.worker(0);

  Client::Options o;
  o.port = d.port();
  o.n_subs = 32;
  o.first_sub_id = 1;
  Client c(o);
  c.subscribe_all();
  w.run_once(50);
  ASSERT_EQ(w.subscribers(), 32u);

  // Warmup: first frames populate encoder scratch, batch arrays, and the
  // kernel-side socket state.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(d.publish_one());
    w.run_once(10);
    c.drain();
  }

  const std::uint64_t sent0 = w.packets_sent();
  alloc_count::Scope scope;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(d.publish_one());
    w.run_once(10);
    c.drain();
  }
  EXPECT_EQ(scope.taken(), 0u)
      << "steady-state frame path allocated on the heap";
  EXPECT_EQ(w.packets_sent() - sent0, 5u * 6u * 32u);
  EXPECT_EQ(c.parse_errors(), 0u);
}

// Sanity: the gate would actually trip if the path allocated.
TEST(ServeAllocGate, GateTripsOnDeliberateAllocation) {
  if (!alloc_count::counting_available())
    GTEST_SKIP() << "W4K_COUNT_ALLOCS is off in this build";
  alloc_count::Scope scope;
  auto* p = new int(7);
  EXPECT_GE(scope.taken(), 1u);
  delete p;
}

}  // namespace
}  // namespace w4k::serve

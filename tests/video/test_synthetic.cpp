#include "video/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace w4k::video {
namespace {

TEST(Synthetic, Deterministic) {
  VideoSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.frames = 3;
  spec.seed = 42;
  const SyntheticVideo a(spec), b(spec);
  EXPECT_EQ(a.frame(2).y.pix, b.frame(2).y.pix);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  VideoSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.frames = 1;
  spec.seed = 1;
  const Frame f1 = SyntheticVideo(spec).frame(0);
  spec.seed = 2;
  const Frame f2 = SyntheticVideo(spec).frame(0);
  EXPECT_NE(f1.y.pix, f2.y.pix);
}

TEST(Synthetic, HighRichnessHasHigherVariance) {
  VideoSpec hr, lr;
  hr.width = lr.width = 256;
  hr.height = lr.height = 144;
  hr.frames = lr.frames = 1;
  hr.richness = Richness::kHigh;
  lr.richness = Richness::kLow;
  hr.seed = lr.seed = 5;
  const double vh = luma_variance(SyntheticVideo(hr).frame(0));
  const double vl = luma_variance(SyntheticVideo(lr).frame(0));
  EXPECT_GT(vh, 2.0 * vl);  // the paper's HR/LR split is by Y variance
}

TEST(Synthetic, MotionMovesContent) {
  VideoSpec spec;
  spec.width = 128;
  spec.height = 128;
  spec.frames = 10;
  spec.motion = 4.0;
  spec.seed = 6;
  const SyntheticVideo clip(spec);
  const Frame f0 = clip.frame(0);
  const Frame f5 = clip.frame(5);
  double diff = 0.0;
  for (std::size_t i = 0; i < f0.y.pix.size(); ++i)
    diff += std::abs(static_cast<int>(f0.y.pix[i]) - f5.y.pix[i]);
  EXPECT_GT(diff / static_cast<double>(f0.y.pix.size()), 1.0);
}

TEST(Synthetic, ConsecutiveFramesAreCoherent) {
  VideoSpec spec;
  spec.width = 128;
  spec.height = 128;
  spec.frames = 3;
  spec.motion = 2.0;
  spec.seed = 7;
  const SyntheticVideo clip(spec);
  const Frame f0 = clip.frame(0);
  const Frame f1 = clip.frame(1);
  double mad01 = 0.0;
  for (std::size_t i = 0; i < f0.y.pix.size(); ++i)
    mad01 += std::abs(static_cast<int>(f0.y.pix[i]) - f1.y.pix[i]);
  mad01 /= static_cast<double>(f0.y.pix.size());
  // Adjacent frames differ, but far less than the dynamic range: video,
  // not noise.
  EXPECT_GT(mad01, 0.05);
  EXPECT_LT(mad01, 25.0);
}

TEST(Synthetic, FrameIndexOutOfRangeThrows) {
  VideoSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.frames = 2;
  const SyntheticVideo clip(spec);
  EXPECT_THROW(clip.frame(2), std::out_of_range);
  EXPECT_THROW(clip.frame(-1), std::out_of_range);
}

TEST(Synthetic, RejectsBadDimensions) {
  VideoSpec spec;
  spec.width = 63;
  spec.height = 64;
  EXPECT_THROW(SyntheticVideo{spec}, std::invalid_argument);
}

TEST(StandardVideos, SixClipsThreeHrThreeLr) {
  const auto specs = standard_videos(256, 144, 10);
  ASSERT_EQ(specs.size(), 6u);
  int hr = 0, lr = 0;
  for (const auto& s : specs) {
    (s.richness == Richness::kHigh ? hr : lr)++;
    EXPECT_EQ(s.width, 256);
    EXPECT_EQ(s.height, 144);
    EXPECT_EQ(s.frames, 10);
  }
  EXPECT_EQ(hr, 3);
  EXPECT_EQ(lr, 3);
}

TEST(StandardVideos, RichnessSplitHoldsEmpirically) {
  double hr_min = 1e18, lr_max = 0.0;
  for (const auto& spec : standard_videos(256, 144, 1)) {
    const double var = luma_variance(SyntheticVideo(spec).frame(0));
    if (spec.richness == Richness::kHigh)
      hr_min = std::min(hr_min, var);
    else
      lr_max = std::max(lr_max, var);
  }
  // Every HR clip must be richer than every LR clip — the paper's split.
  EXPECT_GT(hr_min, lr_max);
}

TEST(Synthetic, PixelValuesInRange) {
  VideoSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.frames = 1;
  spec.richness = Richness::kHigh;
  const Frame f = SyntheticVideo(spec).frame(0);
  // All bytes valid by type; check the content isn't saturated garbage.
  int extremes = 0;
  for (auto p : f.y.pix) extremes += (p == 0 || p == 255) ? 1 : 0;
  EXPECT_LT(extremes, static_cast<int>(f.y.pix.size() / 10));
}

}  // namespace
}  // namespace w4k::video

#include "quality/metrics.h"
#include "video/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace w4k::quality {
namespace {

using video::Frame;
using video::Plane;

Frame noise_frame(int w, int h, std::uint64_t seed) {
  video::VideoSpec spec;
  spec.width = w;
  spec.height = h;
  spec.frames = 1;
  spec.richness = video::Richness::kHigh;
  spec.seed = seed;
  return video::SyntheticVideo(spec).frame(0);
}

TEST(Ssim, IdenticalFramesScoreOne) {
  const Frame f = noise_frame(64, 64, 1);
  EXPECT_DOUBLE_EQ(ssim(f, f), 1.0);
}

TEST(Ssim, SymmetricInArguments) {
  const Frame a = noise_frame(64, 64, 2);
  const Frame b = noise_frame(64, 64, 3);
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
}

TEST(Ssim, BoundedAboveByOne) {
  const Frame a = noise_frame(128, 64, 4);
  const Frame b = noise_frame(128, 64, 5);
  EXPECT_LE(ssim(a, b), 1.0);
}

TEST(Ssim, UnrelatedContentScoresLow) {
  const Frame a = noise_frame(128, 128, 6);
  const Frame b = noise_frame(128, 128, 7);
  EXPECT_LT(ssim(a, b), 0.7);
}

TEST(Ssim, SmallDistortionScoresHigh) {
  const Frame a = noise_frame(128, 128, 8);
  Frame b = a;
  for (auto& p : b.y.pix)
    p = static_cast<std::uint8_t>(std::min(255, p + 2));
  EXPECT_GT(ssim(a, b), 0.97);
}

TEST(Ssim, MonotoneInDistortionStrength) {
  const Frame a = noise_frame(128, 128, 9);
  double prev = 1.0;
  for (int amp : {1, 4, 16, 64}) {
    Frame b = a;
    std::uint64_t s = 12345;
    for (auto& p : b.y.pix) {
      s = s * 6364136223846793005ULL + 1;
      const int n = static_cast<int>((s >> 33) % (2 * amp + 1)) - amp;
      p = static_cast<std::uint8_t>(std::clamp(static_cast<int>(p) + n, 0, 255));
    }
    const double v = ssim(a, b);
    EXPECT_LT(v, prev) << "amp=" << amp;
    prev = v;
  }
}

TEST(Ssim, ConstantVsConstantSameValue) {
  Plane a(64, 64, 100), b(64, 64, 100);
  EXPECT_DOUBLE_EQ(ssim(a, b), 1.0);
}

TEST(Ssim, ConstantVsConstantDifferentValue) {
  Plane a(64, 64, 50), b(64, 64, 200);
  // Pure luminance shift: SSIM = (2*50*200 + C1)/(50^2 + 200^2 + C1).
  const double c1 = (0.01 * 255) * (0.01 * 255);
  EXPECT_NEAR(ssim(a, b), (2.0 * 50 * 200 + c1) / (50.0 * 50 + 200.0 * 200 + c1),
              1e-9);
}

TEST(Ssim, DimensionMismatchThrows) {
  Plane a(64, 64), b(32, 64);
  EXPECT_THROW(ssim(a, b), std::invalid_argument);
}

TEST(Ssim, TooSmallPlaneThrows) {
  Plane a(4, 4), b(4, 4);
  EXPECT_THROW(ssim(a, b), std::invalid_argument);
}

TEST(Psnr, IdenticalIsCappedAt100) {
  const Frame f = noise_frame(64, 64, 10);
  EXPECT_DOUBLE_EQ(psnr(f, f), 100.0);
}

TEST(Psnr, KnownMse) {
  Plane a(64, 64, 100), b(64, 64, 110);
  // MSE = 100 -> PSNR = 10 log10(255^2/100) = 28.13 dB.
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
}

TEST(Psnr, MonotoneInError) {
  Plane a(64, 64, 100);
  Plane b1(64, 64, 105), b2(64, 64, 120);
  EXPECT_GT(psnr(a, b1), psnr(a, b2));
}

TEST(Psnr, DimensionMismatchThrows) {
  Plane a(64, 64), b(64, 32);
  EXPECT_THROW(psnr(a, b), std::invalid_argument);
}

TEST(ContentFeatures, MonotoneAcrossLayers) {
  const Frame f = noise_frame(128, 128, 11);
  const auto enc = video::encode(f);
  const ContentFeatures cf = content_features(f, enc);
  EXPECT_LT(cf.blank, cf.up_to_layer[0]);
  for (int l = 1; l < video::kNumLayers; ++l)
    EXPECT_GT(cf.up_to_layer[l], cf.up_to_layer[l - 1]);
  EXPECT_GT(cf.up_to_layer[3], 0.99);  // full reception ~ lossless
}

TEST(ContentFeatures, BlankMatchesDirectComputation) {
  const Frame f = noise_frame(64, 64, 12);
  const auto enc = video::encode(f);
  const ContentFeatures cf = content_features(f, enc);
  EXPECT_NEAR(cf.blank, ssim(f, Frame::blank(64, 64)), 1e-12);
}

}  // namespace
}  // namespace w4k::quality

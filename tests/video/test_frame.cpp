#include "video/frame.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace w4k::video {
namespace {

TEST(Frame, AllocatesCorrectPlaneDimensions) {
  const Frame f(256, 144);
  EXPECT_EQ(f.y.width, 256);
  EXPECT_EQ(f.y.height, 144);
  EXPECT_EQ(f.u.width, 128);
  EXPECT_EQ(f.u.height, 72);
  EXPECT_EQ(f.v.width, 128);
  EXPECT_EQ(f.v.height, 72);
}

TEST(Frame, TotalBytesIsYuv420) {
  const Frame f(256, 144);
  // YUV420: 1.5 bytes per luma pixel.
  EXPECT_EQ(f.total_bytes(), 256u * 144u * 3u / 2u);
}

TEST(Frame, RejectsNonMultipleOf16) {
  EXPECT_THROW(Frame(100, 144), std::invalid_argument);
  EXPECT_THROW(Frame(256, 100), std::invalid_argument);
  EXPECT_THROW(Frame(0, 0), std::invalid_argument);
  EXPECT_THROW(Frame(-16, 16), std::invalid_argument);
}

TEST(Frame, Accepts4K) {
  const Frame f(k4kWidth, k4kHeight);
  EXPECT_EQ(f.width(), 4096);
  EXPECT_EQ(f.height(), 2160);
  EXPECT_EQ(f.y.size(), 4096u * 2160u);
}

TEST(Frame, BlankIsMidGray) {
  const Frame f = Frame::blank(64, 64);
  EXPECT_EQ(f.y.at(0, 0), 128);
  EXPECT_EQ(f.y.at(63, 63), 128);
  EXPECT_EQ(f.u.at(10, 10), 128);
  EXPECT_EQ(f.v.at(20, 20), 128);
}

TEST(Plane, AtIndexing) {
  Plane p(8, 4);
  p.at(7, 3) = 200;
  EXPECT_EQ(p.pix[3 * 8 + 7], 200);
  EXPECT_EQ(p.at(7, 3), 200);
}

TEST(Plane, FillConstructor) {
  const Plane p(4, 4, 77);
  for (auto v : p.pix) EXPECT_EQ(v, 77);
}

}  // namespace
}  // namespace w4k::video

#include "video/io.h"

#include "video/layered.h"
#include "video/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

namespace w4k::video {
namespace {

Frame test_frame(int w = 64, int h = 64, std::uint64_t seed = 5) {
  VideoSpec spec;
  spec.width = w;
  spec.height = h;
  spec.frames = 1;
  spec.seed = seed;
  return SyntheticVideo(spec).frame(0);
}

/// Temp file that cleans up after itself.
struct TempPath {
  std::string path;
  explicit TempPath(const char* name) : path(std::string("w4k_io_test_") + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(Y4m, WriteReadRoundTrip) {
  TempPath tmp("roundtrip.y4m");
  const Frame f0 = test_frame(64, 64, 1);
  const Frame f1 = test_frame(64, 64, 2);
  {
    Y4mWriter writer(tmp.path, 64, 64, 30, 1);
    writer.write(f0);
    writer.write(f1);
    EXPECT_EQ(writer.frames_written(), 2u);
  }
  Y4mReader reader(tmp.path);
  EXPECT_EQ(reader.header().width, 64);
  EXPECT_EQ(reader.header().height, 64);
  EXPECT_EQ(reader.header().fps_num, 30);
  EXPECT_EQ(reader.header().fps_den, 1);
  const auto r0 = reader.next();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->y.pix, f0.y.pix);
  EXPECT_EQ(r0->u.pix, f0.u.pix);
  EXPECT_EQ(r0->v.pix, f0.v.pix);
  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->y.pix, f1.y.pix);
  EXPECT_FALSE(reader.next().has_value());  // clean EOF
}

TEST(Y4m, ReaderRejectsMissingFile) {
  EXPECT_THROW(Y4mReader("/nonexistent/clip.y4m"), std::runtime_error);
}

TEST(Y4m, ReaderRejectsGarbage) {
  TempPath tmp("garbage.y4m");
  std::ofstream(tmp.path) << "NOT A Y4M FILE\n";
  EXPECT_THROW(Y4mReader{tmp.path}, std::runtime_error);
}

TEST(Y4m, ReaderRejectsUnsupportedColorspace) {
  TempPath tmp("c444.y4m");
  std::ofstream(tmp.path) << "YUV4MPEG2 W64 H64 F30:1 C444\n";
  EXPECT_THROW(Y4mReader{tmp.path}, std::runtime_error);
}

TEST(Y4m, ReaderRejectsNonCodecDimensions) {
  TempPath tmp("odd.y4m");
  std::ofstream(tmp.path) << "YUV4MPEG2 W100 H64 F30:1 C420\n";
  EXPECT_THROW(Y4mReader{tmp.path}, std::runtime_error);
}

TEST(Y4m, ReaderDetectsTruncatedFrame) {
  TempPath tmp("short.y4m");
  {
    std::ofstream os(tmp.path, std::ios::binary);
    os << "YUV4MPEG2 W64 H64 F30:1 C420\nFRAME\n";
    os << "short payload";
  }
  Y4mReader reader(tmp.path);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(Y4m, AcceptsC420VariantTags) {
  TempPath tmp("mpeg2.y4m");
  const Frame f = test_frame();
  {
    std::ofstream os(tmp.path, std::ios::binary);
    os << "YUV4MPEG2 W64 H64 F25:1 Ip A1:1 C420mpeg2\nFRAME\n";
    os.write(reinterpret_cast<const char*>(f.y.pix.data()),
             static_cast<std::streamsize>(f.y.pix.size()));
    os.write(reinterpret_cast<const char*>(f.u.pix.data()),
             static_cast<std::streamsize>(f.u.pix.size()));
    os.write(reinterpret_cast<const char*>(f.v.pix.data()),
             static_cast<std::streamsize>(f.v.pix.size()));
  }
  Y4mReader reader(tmp.path);
  EXPECT_EQ(reader.header().colorspace, "420mpeg2");
  EXPECT_EQ(reader.header().fps_num, 25);
  const auto r = reader.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->y.pix, f.y.pix);
}

TEST(Y4m, WriterRejectsMismatchedFrame) {
  TempPath tmp("mismatch.y4m");
  Y4mWriter writer(tmp.path, 64, 64);
  EXPECT_THROW(writer.write(test_frame(128, 64)), std::invalid_argument);
}

TEST(Y4m, WriterRejectsBadDimensions) {
  TempPath tmp("bad.y4m");
  EXPECT_THROW(Y4mWriter(tmp.path, 100, 64), std::runtime_error);
}

TEST(RawYuv, AppendReadRoundTrip) {
  TempPath tmp("raw.yuv");
  const Frame f0 = test_frame(64, 64, 3);
  const Frame f1 = test_frame(64, 64, 4);
  append_raw_yuv420(tmp.path, f0);
  append_raw_yuv420(tmp.path, f1);
  EXPECT_EQ(raw_yuv420_frame_count(tmp.path, 64, 64), 2u);
  const Frame r1 = read_raw_yuv420(tmp.path, 64, 64, 1);
  EXPECT_EQ(r1.y.pix, f1.y.pix);
  EXPECT_EQ(r1.v.pix, f1.v.pix);
}

TEST(RawYuv, ReadPastEndThrows) {
  TempPath tmp("raw_short.yuv");
  append_raw_yuv420(tmp.path, test_frame());
  EXPECT_THROW(read_raw_yuv420(tmp.path, 64, 64, 1), std::runtime_error);
}

TEST(RawYuv, MissingFileThrows) {
  EXPECT_THROW(read_raw_yuv420("/nonexistent.yuv", 64, 64),
               std::runtime_error);
  EXPECT_THROW(raw_yuv420_frame_count("/nonexistent.yuv", 64, 64),
               std::runtime_error);
}

TEST(RawYuv, PipelineOnFileFrames) {
  // A file-sourced frame goes through the layered codec like any other.
  TempPath tmp("pipeline.yuv");
  const Frame f = test_frame(64, 64, 9);
  append_raw_yuv420(tmp.path, f);
  const Frame loaded = read_raw_yuv420(tmp.path, 64, 64);
  const Frame rec = reconstruct_full(encode(loaded));
  int max_err = 0;
  for (std::size_t i = 0; i < f.y.pix.size(); ++i)
    max_err = std::max(max_err,
                       std::abs(static_cast<int>(f.y.pix[i]) - rec.y.pix[i]));
  EXPECT_LE(max_err, 2);
}

}  // namespace
}  // namespace w4k::video

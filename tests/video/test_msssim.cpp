#include "quality/metrics.h"
#include "video/layered.h"
#include "video/synthetic.h"

#include <gtest/gtest.h>

namespace w4k::quality {
namespace {

video::Frame test_frame(int w = 256, int h = 144, std::uint64_t seed = 1) {
  video::VideoSpec spec;
  spec.width = w;
  spec.height = h;
  spec.frames = 1;
  spec.richness = video::Richness::kHigh;
  spec.seed = seed;
  return video::SyntheticVideo(spec).frame(0);
}

TEST(MsSsim, IdenticalFramesScoreOne) {
  const auto f = test_frame();
  EXPECT_NEAR(ms_ssim(f, f), 1.0, 1e-12);
}

TEST(MsSsim, BoundedAndSymmetric) {
  const auto a = test_frame(256, 144, 2);
  const auto b = test_frame(256, 144, 3);
  const double ab = ms_ssim(a, b);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_NEAR(ab, ms_ssim(b, a), 1e-12);
}

TEST(MsSsim, MonotoneAcrossLayerReceptions) {
  const auto f = test_frame();
  const auto enc = video::encode(f);
  double prev = -1.0;
  for (int l = 0; l < video::kNumLayers; ++l) {
    const auto rec =
        video::reconstruct(video::PartialFrame::up_to_layer(enc, l));
    const double v = ms_ssim(f, rec);
    EXPECT_GT(v, prev) << "layer " << l;
    prev = v;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(MsSsim, MoreForgivingOfFineDetailLossThanSsim) {
  // Losing only layer 3 (pixel-level detail) hurts single-scale SSIM more
  // than MS-SSIM, which re-weights toward coarser scales where the
  // reconstruction is intact.
  const auto f = test_frame();
  const auto enc = video::encode(f);
  const auto rec =
      video::reconstruct(video::PartialFrame::up_to_layer(enc, 2));
  EXPECT_GT(ms_ssim(f, rec), ssim(f, rec));
}

TEST(MsSsim, ScaleCountValidation) {
  const auto f = test_frame();
  EXPECT_THROW(ms_ssim(f.y, f.y, 0), std::invalid_argument);
  EXPECT_THROW(ms_ssim(f.y, f.y, 6), std::invalid_argument);
  // 144 rows cannot support 5 dyadic scales of an 8-pixel window (needs
  // 128)... it just can: 8 * 2^4 = 128 <= 144. One more scale would not.
  EXPECT_NO_THROW(ms_ssim(f.y, f.y, 5));
  video::Plane small(64, 64);
  EXPECT_THROW(ms_ssim(small, small, 5), std::invalid_argument);
  EXPECT_NO_THROW(ms_ssim(small, small, 3));
}

TEST(MsSsim, DimensionMismatchThrows) {
  video::Plane a(128, 128), b(128, 64);
  EXPECT_THROW(ms_ssim(a, b), std::invalid_argument);
}

TEST(MsSsim, SingleScaleReducesToSsimWeighting) {
  // With scales = 1 the metric is plain SSIM raised to the first weight's
  // power over the same windows — so it must rank distortions identically.
  const auto f = test_frame();
  const auto enc = video::encode(f);
  const auto rec1 =
      video::reconstruct(video::PartialFrame::up_to_layer(enc, 1));
  const auto rec2 =
      video::reconstruct(video::PartialFrame::up_to_layer(enc, 2));
  EXPECT_GT(ms_ssim(f, rec2, 1), ms_ssim(f, rec1, 1));
}

}  // namespace
}  // namespace w4k::quality

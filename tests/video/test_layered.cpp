#include "video/layered.h"
#include "video/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace w4k::video {
namespace {

Frame test_frame(int w = 64, int h = 64, std::uint64_t seed = 1) {
  VideoSpec spec;
  spec.width = w;
  spec.height = h;
  spec.frames = 1;
  spec.richness = Richness::kHigh;
  spec.seed = seed;
  return SyntheticVideo(spec).frame(0);
}

TEST(LayeredSizes, SublayerBytesMatchHierarchy) {
  // 4K: layer 0 = 512x270 luma + 2 x 256x135 chroma.
  EXPECT_EQ(sublayer_bytes(0, 4096, 2160), 512u * 270u + 2u * 256u * 135u);
  // Layer 1 sublayer: one diff per 8x8 block (same count as layer 0).
  EXPECT_EQ(sublayer_bytes(1, 4096, 2160), sublayer_bytes(0, 4096, 2160));
  // Layer 2 sublayer: one diff per 4x4 block = 4x layer 1's.
  EXPECT_EQ(sublayer_bytes(2, 4096, 2160), 4u * sublayer_bytes(1, 4096, 2160));
  EXPECT_EQ(sublayer_bytes(3, 4096, 2160), 4u * sublayer_bytes(2, 4096, 2160));
}

TEST(LayeredSizes, LayerBytesSumsSublayers) {
  EXPECT_EQ(layer_bytes(0, 256, 144), sublayer_bytes(0, 256, 144));
  EXPECT_EQ(layer_bytes(2, 256, 144), 4u * sublayer_bytes(2, 256, 144));
}

TEST(LayeredSizes, SublayerCounts) {
  EXPECT_EQ(sublayer_count(0), 1);
  EXPECT_EQ(sublayer_count(1), 4);
  EXPECT_EQ(sublayer_count(2), 4);
  EXPECT_EQ(sublayer_count(3), 4);
}

TEST(LayeredSizes, TotalExpansionVsRaw) {
  // The pixel-domain hierarchy carries 1 + 1/4... per level: total encoded
  // size = raw * (1/64 + 4/64 + 16/64 + 1) per plane group. Just check
  // the encoded frame is raw size + ~33%.
  const Frame f = test_frame(128, 128);
  const EncodedFrame enc = encode(f);
  const double ratio = static_cast<double>(enc.total_bytes()) /
                       static_cast<double>(f.total_bytes());
  EXPECT_NEAR(ratio, 1.328, 0.01);
}

TEST(Layered, FullRoundTripIsNearLossless) {
  const Frame f = test_frame(128, 64);
  const Frame rec = reconstruct_full(encode(f));
  // Chained quantization keeps every pixel within 1 LSB except rare
  // saturation; demand max error <= 2.
  int max_err = 0;
  for (std::size_t i = 0; i < f.y.pix.size(); ++i)
    max_err = std::max(max_err, std::abs(static_cast<int>(f.y.pix[i]) -
                                         rec.y.pix[i]));
  EXPECT_LE(max_err, 2);
}

TEST(Layered, ChromaRoundTrips) {
  const Frame f = test_frame(128, 64, 9);
  const Frame rec = reconstruct_full(encode(f));
  int max_err = 0;
  for (std::size_t i = 0; i < f.u.pix.size(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<int>(f.u.pix[i]) -
                                         rec.u.pix[i]));
    max_err = std::max(max_err, std::abs(static_cast<int>(f.v.pix[i]) -
                                         rec.v.pix[i]));
  }
  EXPECT_LE(max_err, 2);
}

TEST(Layered, UniformFrameRoundTripsExactly) {
  Frame f(64, 64);
  for (auto& p : f.y.pix) p = 77;
  for (auto& p : f.u.pix) p = 90;
  for (auto& p : f.v.pix) p = 200;
  const Frame rec = reconstruct_full(encode(f));
  EXPECT_EQ(rec.y.pix, f.y.pix);
  EXPECT_EQ(rec.u.pix, f.u.pix);
  EXPECT_EQ(rec.v.pix, f.v.pix);
}

TEST(Layered, BaseLayerOnlyGivesBlockMeans) {
  Frame f(64, 64);
  // Left half black, right half white.
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) f.y.at(x, y) = x < 32 ? 0 : 255;
  const EncodedFrame enc = encode(f);
  const Frame rec = reconstruct(PartialFrame::up_to_layer(enc, 0));
  // Inside a uniform 8x8 block the reconstruction equals the block mean.
  EXPECT_EQ(rec.y.at(4, 4), 0);
  EXPECT_EQ(rec.y.at(60, 4), 255);
}

TEST(Layered, QualityIncreasesWithLayers) {
  const Frame f = test_frame(128, 128, 5);
  const EncodedFrame enc = encode(f);
  double prev_mse = 1e18;
  for (int l = 0; l < kNumLayers; ++l) {
    const Frame rec = reconstruct(PartialFrame::up_to_layer(enc, l));
    double mse = 0.0;
    for (std::size_t i = 0; i < f.y.pix.size(); ++i) {
      const double d = static_cast<double>(f.y.pix[i]) - rec.y.pix[i];
      mse += d * d;
    }
    mse /= static_cast<double>(f.y.pix.size());
    EXPECT_LT(mse, prev_mse) << "layer " << l;
    prev_mse = mse;
  }
  EXPECT_LT(prev_mse, 1.1);  // all layers: near-lossless
}

TEST(Layered, EmptyPartialReconstructsBlank) {
  const Frame rec = reconstruct(PartialFrame::empty(64, 64));
  for (auto p : rec.y.pix) EXPECT_EQ(p, 128);
}

TEST(Layered, MissingSublayerFallsBackGracefully) {
  const Frame f = test_frame(64, 64, 6);
  const EncodedFrame enc = encode(f);
  // Full frame minus one layer-3 sublayer: still close to lossless.
  PartialFrame partial = PartialFrame::full(enc);
  partial.layers[3][2].segments.clear();
  const Frame rec = reconstruct(partial);
  double mse = 0.0;
  for (std::size_t i = 0; i < f.y.pix.size(); ++i) {
    const double d = static_cast<double>(f.y.pix[i]) - rec.y.pix[i];
    mse += d * d;
  }
  mse /= static_cast<double>(f.y.pix.size());
  EXPECT_GT(mse, 0.1);   // strictly worse than full
  EXPECT_LT(mse, 200.0); // but far from blank
}

TEST(Layered, SegmentOffsetsApply) {
  const Frame f = test_frame(64, 64, 7);
  const EncodedFrame enc = encode(f);
  // Deliver layer 0 as two segments split mid-buffer.
  PartialFrame partial = PartialFrame::empty(64, 64);
  const auto& buf = enc.layers[0][0];
  const std::size_t half = buf.size() / 2;
  partial.layers[0][0].segments.push_back(
      Segment{0, {buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(half)}});
  partial.layers[0][0].segments.push_back(
      Segment{half, {buf.begin() + static_cast<std::ptrdiff_t>(half), buf.end()}});
  const Frame rec = reconstruct(partial);
  const Frame rec_whole = reconstruct(PartialFrame::up_to_layer(enc, 0));
  EXPECT_EQ(rec.y.pix, rec_whole.y.pix);
}

TEST(Layered, MalformedSegmentIgnored) {
  PartialFrame partial = PartialFrame::empty(64, 64);
  partial.layers[1][0].segments.push_back(
      Segment{1u << 30, std::vector<std::uint8_t>(10, 0)});
  EXPECT_NO_THROW(reconstruct(partial));
}

TEST(Layered, OversizedSegmentClamped) {
  const Frame f = test_frame(64, 64, 8);
  const EncodedFrame enc = encode(f);
  PartialFrame partial = PartialFrame::empty(64, 64);
  auto big = enc.layers[0][0];
  big.resize(big.size() + 100, 0);  // overruns the sublayer
  partial.layers[0][0].segments.push_back(Segment{0, big});
  EXPECT_NO_THROW(reconstruct(partial));
}

TEST(Layered, PartialLayerReceivedAccounting) {
  const Frame f = test_frame(64, 64, 9);
  const EncodedFrame enc = encode(f);
  const PartialFrame full = PartialFrame::full(enc);
  for (int l = 0; l < kNumLayers; ++l)
    EXPECT_EQ(full.layer_received(l), layer_bytes(l, 64, 64));
  const PartialFrame upto1 = PartialFrame::up_to_layer(enc, 1);
  EXPECT_EQ(upto1.layer_received(2), 0u);
}

TEST(Layered, EncodeRejectsBadDimensions) {
  Frame f;
  f.y = Plane(100, 100);
  EXPECT_THROW(encode(f), std::invalid_argument);
}

class LayeredResolutionTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LayeredResolutionTest, RoundTripAtResolution) {
  const auto [w, h] = GetParam();
  const Frame f = test_frame(w, h, 11);
  const Frame rec = reconstruct_full(encode(f));
  int max_err = 0;
  for (std::size_t i = 0; i < f.y.pix.size(); ++i)
    max_err = std::max(max_err, std::abs(static_cast<int>(f.y.pix[i]) -
                                         rec.y.pix[i]));
  EXPECT_LE(max_err, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Resolutions, LayeredResolutionTest,
    ::testing::Values(std::pair<int, int>{16, 16}, std::pair<int, int>{64, 32},
                      std::pair<int, int>{256, 144},
                      std::pair<int, int>{512, 288}));

}  // namespace
}  // namespace w4k::video

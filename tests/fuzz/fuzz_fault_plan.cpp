// Fuzz target: the fault-plan text parser (fault/plan.h). Operators hand
// this parser hand-written chaos scripts (`w4k_sim --fault-plan`), so it
// must reject malformed input with an exception, never crash — and any
// plan it does accept must survive validation and round-trip through the
// canonical text serializer.
#include "fault/plan.h"

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream is(text);
  try {
    const auto plan = w4k::fault::parse_fault_plan(is);
    // Accepted plans obey the documented event constraints (user-range
    // checks off: the parser has no user count)...
    plan.validate(0);
    // ...and the text codec is a lossless pair.
    std::istringstream round(w4k::fault::to_text(plan));
    const auto again = w4k::fault::parse_fault_plan(round);
    if (again.feedback.size() != plan.feedback.size() ||
        again.csi.size() != plan.csi.size() ||
        again.blockage.size() != plan.blockage.size() ||
        again.budget.size() != plan.budget.size() ||
        again.churn.size() != plan.churn.size() ||
        again.ap_outage.size() != plan.ap_outage.size() ||
        again.handoff_beacon.size() != plan.handoff_beacon.size() ||
        again.relay_churn.size() != plan.relay_churn.size())
      __builtin_trap();
  } catch (const std::runtime_error&) {
    // Malformed line: the documented rejection path.
  } catch (const std::invalid_argument&) {
    // validate() rejected an accepted-but-inconsistent plan; also fine.
  }
  return 0;
}

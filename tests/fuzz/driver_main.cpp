// Standalone fuzz driver: runs a LLVMFuzzerTestOneInput target without
// libFuzzer, so the fuzz smoke tests work in every build (the toolchain
// image has no clang fuzzer runtime baked in). Configure with
// -DW4K_FUZZ_LIBFUZZER=ON to link the real libFuzzer instead and drop
// this main.
//
// Usage: fuzz_target [--corpus DIR]... [--iters N] [--seed S]
//                    [--max-len BYTES] [FILE]...
//
// Every corpus file (and explicit FILE) is executed verbatim first —
// regression mode. Then N random inputs are executed: a seeded mutation
// of a random corpus entry (byte flips, splices, truncations, duplications)
// or, when no corpus was given, raw random bytes. Deterministic in --seed.
#include "common/rng.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes read_file(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(is),
               std::istreambuf_iterator<char>());
}

Bytes mutate(const Bytes& seed, w4k::Rng& rng, std::size_t max_len) {
  Bytes out = seed;
  const int n_mutations = 1 + static_cast<int>(rng.below(8));
  for (int m = 0; m < n_mutations; ++m) {
    switch (rng.below(6)) {
      case 0:  // flip random byte
        if (!out.empty())
          out[rng.below(out.size())] ^=
              static_cast<std::uint8_t>(1 + rng.below(255));
        break;
      case 1:  // insert random byte
        if (out.size() < max_len)
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                       rng.below(out.size() + 1)),
                     static_cast<std::uint8_t>(rng.below(256)));
        break;
      case 2:  // delete random byte
        if (!out.empty())
          out.erase(out.begin() +
                    static_cast<std::ptrdiff_t>(rng.below(out.size())));
        break;
      case 3:  // truncate
        if (!out.empty()) out.resize(rng.below(out.size() + 1));
        break;
      case 4: {  // duplicate a chunk
        if (out.empty() || out.size() >= max_len) break;
        const std::size_t start = rng.below(out.size());
        const std::size_t len =
            std::min(out.size() - start, 1 + rng.below(32));
        Bytes chunk(out.begin() + static_cast<std::ptrdiff_t>(start),
                    out.begin() + static_cast<std::ptrdiff_t>(start + len));
        const std::size_t at = rng.below(out.size() + 1);
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                   chunk.begin(), chunk.end());
        break;
      }
      default:  // overwrite with interesting values
        if (!out.empty()) {
          static constexpr std::uint8_t kInteresting[] = {
              0x00, 0xff, 0x7f, 0x80, 0x0a, 0x20, '#', '-', '.', '9'};
          out[rng.below(out.size())] =
              kInteresting[rng.below(sizeof(kInteresting))];
        }
        break;
    }
  }
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 10'000;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 16;
  std::vector<Bytes> corpus;

  const auto load_dir = [&](const std::string& dir) {
    std::error_code ec;
    for (const auto& e :
         std::filesystem::directory_iterator(dir, ec))
      if (e.is_regular_file()) corpus.push_back(read_file(e.path()));
    if (ec) {
      std::fprintf(stderr, "fuzz driver: cannot read corpus %s: %s\n",
                   dir.c_str(), ec.message().c_str());
      return false;
    }
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz driver: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--iters") iters = std::strtoull(next(), nullptr, 0);
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 0);
    else if (a == "--max-len") max_len = std::strtoull(next(), nullptr, 0);
    else if (a == "--corpus") {
      if (!load_dir(next())) return 2;
    } else {
      corpus.push_back(read_file(a));
    }
  }

  // Regression pass: every corpus entry verbatim.
  for (const auto& entry : corpus)
    LLVMFuzzerTestOneInput(entry.data(), entry.size());

  // Mutation pass.
  w4k::Rng rng(seed);
  Bytes scratch;
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (!corpus.empty() && rng.chance(0.9)) {
      scratch = mutate(corpus[rng.below(corpus.size())], rng, max_len);
    } else {
      scratch.resize(rng.below(512));
      for (auto& b : scratch) b = static_cast<std::uint8_t>(rng.below(256));
    }
    LLVMFuzzerTestOneInput(scratch.data(), scratch.size());
  }
  std::printf("fuzz driver: %llu corpus entries + %llu mutated inputs, ok\n",
              static_cast<unsigned long long>(corpus.size()),
              static_cast<unsigned long long>(iters));
  return 0;
}

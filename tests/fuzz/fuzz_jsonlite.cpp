// Fuzz target: the jsonlite parser (obs/jsonlite.h). The parser backs the
// telemetry-manifest validation path, so it sees attacker-shaped input
// whenever someone points the tools at a corrupt file. Must never crash,
// hang, or overflow — only return nullopt with an error message.
#include "obs/jsonlite.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::string err;
  const auto v = w4k::obs::json::parse(text, &err);
  if (v) {
    // Exercise the DOM accessors on whatever parsed; find() must be safe
    // on every value type.
    (void)v->find("key");
    if (v->is_object() && !v->obj.empty()) (void)v->find(v->obj[0].first);
    if (v->is_array() && !v->arr.empty()) (void)v->arr[0].is_number();
  } else if (err.empty() && !text.empty()) {
    // A rejection must explain itself (offset-bearing message).
    __builtin_trap();
  }
  return 0;
}

// Fuzz target: the binary CSI-trace loader (channel/trace_io.h), V1 and
// V2 framing. Recorded traces travel between machines and builds; a
// corrupt or truncated file must throw std::runtime_error naming the bad
// record — never crash or allocate absurdly (the loader's header
// plausibility caps are part of the contract).
#include "channel/trace_io.h"

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const auto trace = w4k::channel::load_trace(is, "<fuzz>");
    // Anything the loader accepts must be a well-formed, finite trace.
    if (trace.steps() == 0 || trace.users() == 0) __builtin_trap();
    if (!std::isfinite(trace.interval) || trace.interval <= 0.0)
      __builtin_trap();
    for (const auto& step : trace.snapshots) {
      if (step.size() != trace.users()) __builtin_trap();
      for (const auto& h : step)
        for (std::size_t n = 0; n < h.size(); ++n)
          if (!std::isfinite(h[n].real()) || !std::isfinite(h[n].imag()))
            __builtin_trap();
    }
  } catch (const std::runtime_error&) {
    // The documented rejection path.
  }
  return 0;
}

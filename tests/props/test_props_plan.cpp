// Property suite: fault-plan generation, validation, and text round-trip.
#include "fault/plan.h"
#include "support/generators.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <sstream>

namespace w4k::fault {
namespace {

using proptest::prop_assert;

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  if (a.feedback.size() != b.feedback.size() || a.csi.size() != b.csi.size() ||
      a.blockage.size() != b.blockage.size() ||
      a.budget.size() != b.budget.size() || a.churn.size() != b.churn.size())
    return false;
  for (std::size_t i = 0; i < a.feedback.size(); ++i)
    if (a.feedback[i].frame != b.feedback[i].frame ||
        a.feedback[i].user != b.feedback[i].user ||
        a.feedback[i].delay_frames != b.feedback[i].delay_frames)
      return false;
  for (std::size_t i = 0; i < a.csi.size(); ++i)
    if (a.csi[i].frame != b.csi[i].frame ||
        a.csi[i].corrupt != b.csi[i].corrupt)
      return false;
  for (std::size_t i = 0; i < a.blockage.size(); ++i)
    if (a.blockage[i].start_frame != b.blockage[i].start_frame ||
        a.blockage[i].n_frames != b.blockage[i].n_frames ||
        a.blockage[i].user != b.blockage[i].user ||
        a.blockage[i].extra_loss_db != b.blockage[i].extra_loss_db)
      return false;
  for (std::size_t i = 0; i < a.budget.size(); ++i)
    if (a.budget[i].start_frame != b.budget[i].start_frame ||
        a.budget[i].n_frames != b.budget[i].n_frames ||
        a.budget[i].budget_scale != b.budget[i].budget_scale)
      return false;
  for (std::size_t i = 0; i < a.churn.size(); ++i)
    if (a.churn[i].frame != b.churn[i].frame ||
        a.churn[i].user != b.churn[i].user ||
        a.churn[i].join != b.churn[i].join)
      return false;
  return true;
}

TEST(PropsFaultPlan, RandomPlansAlwaysValidate) {
  W4K_PROP("plan.random-validates", [](Rng& rng) {
    const std::uint32_t n_frames = 1 + rng.below(120);
    const std::size_t n_users = 1 + rng.below(8);
    const auto plan = testgen::fault_plan(rng, n_frames, n_users);
    plan.validate(n_users);  // throws on violation
    // Every event must target the declared frame/user ranges.
    for (const auto& f : plan.feedback)
      prop_assert(f.frame < n_frames && f.user < n_users,
                  "feedback event out of range");
    for (const auto& c : plan.churn)
      prop_assert(c.frame <= n_frames && c.user > 0 && c.user < n_users,
                  "churn event out of range (or churns user 0)");
  });
}

TEST(PropsFaultPlan, RandomIsDeterministicInSeed) {
  W4K_PROP("plan.random-deterministic", [](Rng& rng) {
    const std::uint64_t seed = rng.next();
    const std::uint32_t n_frames = 1 + rng.below(60);
    const std::size_t n_users = 1 + rng.below(6);
    const auto a = FaultPlan::random(seed, n_frames, n_users);
    const auto b = FaultPlan::random(seed, n_frames, n_users);
    prop_assert(plans_equal(a, b), "same seed produced different plans");
  });
}

TEST(PropsFaultPlan, TextRoundTripIsExact) {
  W4K_PROP("plan.text-round-trip", [](Rng& rng) {
    const auto plan =
        testgen::fault_plan(rng, 1 + rng.below(100), 1 + rng.below(8));
    std::istringstream is(to_text(plan));
    const auto reparsed = parse_fault_plan(is);
    prop_assert(plans_equal(plan, reparsed),
                "parse(to_text(plan)) != plan");
  });
}

}  // namespace
}  // namespace w4k::fault

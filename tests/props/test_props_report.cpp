// Property suite: SessionReport aggregates equal per-frame sums.
#include "core/report.h"
#include "support/proptest.h"
#include "verify/invariants.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

namespace w4k::core {
namespace {

using proptest::prop_assert;
using proptest::prop_assert_near;

FrameOutcome random_outcome(Rng& rng, std::size_t n_users,
                            std::uint32_t frame_id) {
  FrameOutcome f;
  f.frame_id = frame_id;
  f.ssim.resize(n_users);
  f.psnr.resize(n_users);
  f.decoded_fraction.resize(n_users);
  for (std::size_t u = 0; u < n_users; ++u) {
    f.ssim[u] = rng.uniform();
    f.psnr[u] = rng.uniform(0.0, 100.0);
    f.decoded_fraction[u] = rng.uniform();
  }
  f.stats.packets_sent = rng.below(1000);
  f.stats.packets_dropped_queue = rng.below(100);
  f.stats.packets_offered =
      f.stats.packets_sent + f.stats.packets_dropped_queue + rng.below(50);
  f.stats.makeup_packets = rng.below(40);
  f.stats.airtime = rng.uniform(0.0, 0.033);
  f.shed_symbols = rng.below(200);
  f.csi_held = rng.chance(0.2);
  if (rng.chance(0.3)) {
    f.user_present.assign(n_users, true);
    for (std::size_t u = 0; u < n_users; ++u)
      if (rng.chance(0.2)) f.user_present[u] = false;
  }
  return f;
}

TEST(PropsReport, TotalsEqualPerFrameSums) {
  W4K_PROP("report.totals-equal-sums", [](Rng& rng) {
    const std::size_t n_users = 1 + rng.below(6);
    const std::size_t n_frames = rng.below(40);
    SessionReport r;
    SessionReport::Totals expect;
    for (std::uint32_t i = 0; i < n_frames; ++i) {
      const auto f = random_outcome(rng, n_users, i);
      expect.packets_offered += f.stats.packets_offered;
      expect.packets_sent += f.stats.packets_sent;
      expect.packets_dropped_queue += f.stats.packets_dropped_queue;
      expect.makeup_packets += f.stats.makeup_packets;
      expect.airtime += f.stats.airtime;
      expect.csi_held_frames += f.csi_held ? 1 : 0;
      expect.shed_symbols += f.shed_symbols;
      r.add(f);
    }
    const auto t = r.totals();
    prop_assert(t.packets_offered == expect.packets_offered &&
                    t.packets_sent == expect.packets_sent &&
                    t.packets_dropped_queue == expect.packets_dropped_queue &&
                    t.makeup_packets == expect.makeup_packets &&
                    t.csi_held_frames == expect.csi_held_frames &&
                    t.shed_symbols == expect.shed_symbols,
                "integer totals diverge from per-frame sums");
    prop_assert_near(t.airtime, expect.airtime, 1e-9, "airtime total");
  });
}

TEST(PropsReport, MeanSsimEqualsFlattenedSampleMean) {
  W4K_PROP("report.mean-equals-samples", [](Rng& rng) {
    const std::size_t n_users = 1 + rng.below(5);
    const std::size_t n_frames = 1 + rng.below(30);
    SessionReport r;
    double sum = 0.0;
    std::size_t count = 0;
    for (std::uint32_t i = 0; i < n_frames; ++i) {
      const auto f = random_outcome(rng, n_users, i);
      for (std::size_t u = 0; u < n_users; ++u)
        if (f.user_present.empty() || f.user_present[u]) {
          sum += f.ssim[u];
          ++count;
        }
      r.add(f);
    }
    const auto all = r.all_ssim();
    prop_assert(all.size() == count, "all_ssim drops/adds samples");
    if (count > 0)
      prop_assert_near(r.ssim_summary().mean,
                       sum / static_cast<double>(count), 1e-9,
                       "summary mean vs sample mean");
  });
}

TEST(PropsReport, JsonIsByteStableForEqualReports) {
  W4K_PROP("report.json-deterministic", [](Rng& rng) {
    const std::uint64_t seed = rng.next();
    const auto build = [&] {
      Rng r2(seed);
      SessionReport r;
      const std::size_t n = 1 + r2.below(10);
      for (std::uint32_t i = 0; i < n; ++i)
        r.add(random_outcome(r2, 3, i));
      return r;
    };
    std::ostringstream a, b;
    build().write_json(a);
    build().write_json(b);
    prop_assert(a.str() == b.str(), "same inputs, different JSON bytes");
  });
}

// The report-side invariant checker rejects malformed outcomes (the
// conservation laws the pipeline promises).
TEST(PropsReport, InvariantCheckerRejectsCorruptOutcomes) {
  W4K_PROP("report.rejects-corrupt", [](Rng& rng) {
    if (!verify::enabled() || verify::mode() != verify::Mode::kThrow)
      return;  // only meaningful in throwing builds
    SessionReport r;
    auto f = random_outcome(rng, 1 + rng.below(4), 0);
    switch (rng.below(3)) {
      case 0: f.ssim[rng.below(f.ssim.size())] = 1.5; break;
      case 1: f.psnr[rng.below(f.psnr.size())] = -3.0; break;
      default:
        f.stats.packets_sent = f.stats.packets_offered + 1;
        break;
    }
    bool threw = false;
    try {
      r.add(f);
    } catch (const verify::InvariantViolation&) {
      threw = true;
    }
    verify::reset_violations();
    prop_assert(threw, "corrupt outcome accepted");
  });
}

}  // namespace
}  // namespace w4k::core

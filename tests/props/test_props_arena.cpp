// Property suite: the zero-allocation frame path is an implementation
// detail, not a behavior change.
//
// The workspace-reusing surface (step_into / decide_into, one FrameOutcome
// and one set of session workspaces reused across every frame) must produce
// a byte-identical SessionReport to the allocating wrappers (step / decide
// constructing fresh objects per call), for any placement, across
// W4K_THREADS 1 and 4, and with the decide deadline off (single-batch
// enumeration, zero clock reads) and on (batched enumeration with clock
// checks between batches; the bound is generous so no candidate is ever
// cut and the output stays deterministic).
#include "common/thread_pool.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;

class ArenaEquivalenceTest : public ::testing::Test {
 protected:
  static constexpr int kW = 256;
  static constexpr int kH = 144;

  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    core::ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<core::FrameContext>(core::make_contexts(
        video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<core::FrameContext>* contexts_;
};

model::QualityModel* ArenaEquivalenceTest::quality_ = nullptr;
std::vector<core::FrameContext>* ArenaEquivalenceTest::contexts_ = nullptr;

constexpr int kFrames = 4;

core::SessionConfig make_config(std::uint64_t seed, double deadline_ms) {
  core::SessionConfig cfg = core::SessionConfig::scaled(256, 144);
  cfg.seed = seed;
  cfg.decide_deadline_ms = deadline_ms;
  return cfg;
}

// Reuse path: run_static drives step_into with one hoisted FrameOutcome,
// so every session workspace and scratch buffer is recycled across frames.
std::string run_reused(model::QualityModel& quality,
                       const std::vector<core::FrameContext>& contexts,
                       const std::vector<linalg::CVector>& channels,
                       const core::SessionConfig& cfg) {
  core::MulticastSession session(cfg, quality, beamforming::Codebook{});
  const core::SessionReport report =
      core::run_static(session, channels, contexts, kFrames);
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

// Allocating path: the compat wrappers construct a fresh FrameOutcome (and
// a fresh Decision inside decide()) on every call.
std::string run_fresh(model::QualityModel& quality,
                      const std::vector<core::FrameContext>& contexts,
                      const std::vector<linalg::CVector>& channels,
                      const core::SessionConfig& cfg) {
  core::MulticastSession session(cfg, quality, beamforming::Codebook{});
  core::SessionReport report;
  for (int f = 0; f < kFrames; ++f) {
    const core::FrameContext& ctx =
        contexts[static_cast<std::size_t>(f) % contexts.size()];
    const core::FrameOutcome out = session.step(channels, channels, ctx);
    report.add(out);
  }
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

TEST_F(ArenaEquivalenceTest, ReusedAndFreshPathsByteIdentical) {
  // Each iteration runs eight full sessions (2 deadlines x 2 thread counts
  // x 2 API styles), so scale the iteration count down by 10x from the
  // W4K_PROP_ITERS baseline — the env knob still raises it proportionally.
  proptest::Options opts = proptest::options_from_env();
  if (!opts.has_replay_seed)
    opts.iterations = std::max(3, opts.iterations / 10);
  const auto res = proptest::check_property(
      "core.arena.report-equivalence",
      [](Rng& rng) {
        const std::size_t n = 2 + rng.below(4);  // 2..5 users
        const std::uint64_t seed = rng.next();
        channel::PropagationConfig prop;
        const auto channels = core::channels_for(
            prop,
            core::place_users_fixed(n, rng.uniform(2.5, 5.0), 1.047, rng));
        // 0 = deadline off; 10 s = deadline machinery on but never
        // cutting, which keeps the batched path deterministic.
        for (double deadline_ms : {0.0, 10'000.0}) {
          const core::SessionConfig cfg = make_config(seed, deadline_ms);
          ThreadPool::reset_shared(1);
          const std::string reused_1t =
              run_reused(*quality_, *contexts_, channels, cfg);
          const std::string fresh_1t =
              run_fresh(*quality_, *contexts_, channels, cfg);
          ThreadPool::reset_shared(4);
          const std::string reused_4t =
              run_reused(*quality_, *contexts_, channels, cfg);
          const std::string fresh_4t =
              run_fresh(*quality_, *contexts_, channels, cfg);
          ThreadPool::reset_shared(0);
          const std::string what =
              deadline_ms > 0.0 ? " (deadline on)" : " (deadline off)";
          prop_assert(reused_1t == fresh_1t,
                      "workspace path diverged from the allocating "
                      "wrappers at 1 thread" + what);
          prop_assert(reused_4t == fresh_4t,
                      "workspace path diverged from the allocating "
                      "wrappers at 4 threads" + what);
          prop_assert(reused_1t == reused_4t,
                      "thread count changed the workspace-path report" +
                          what);
        }
      },
      opts);
  if (!res.passed) ADD_FAILURE() << res.message;
}

}  // namespace
}  // namespace w4k

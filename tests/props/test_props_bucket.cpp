// Property suite: leaky-bucket credit arithmetic (src/transport).
//
// The contract under test is the one the transmission engine and the
// w4kd serving workers both rely on: a sender that waits exactly
// time_until(bytes) may then send — advance(time_until(b)) must always
// land enough credit for can_send(b), despite the seconds<->bytes
// round-trip's floating-point rounding (the kCreditEps slack the file
// header of leaky_bucket.cpp warns about). Run at 10k iterations by
// default (W4K_PROP_ITERS raises it further, never lowers it below 10k)
// per the serve-daemon acceptance gate.
#include "transport/leaky_bucket.h"

#include "support/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace w4k::transport {
namespace {

using proptest::prop_assert;

proptest::Options bucket_options() {
  proptest::Options o = proptest::options_from_env();
  if (!o.has_replay_seed) o.iterations = std::max(o.iterations, 10'000);
  return o;
}

#define W4K_BUCKET_PROP(name, ...)                                       \
  do {                                                                   \
    const auto res_ = ::w4k::proptest::check_property((name), (__VA_ARGS__), \
                                                      bucket_options()); \
    if (!res_.passed) ADD_FAILURE() << res_.message;                     \
  } while (0)

TEST(PropsLeakyBucket, WaitThenSendAlwaysAllowed) {
  W4K_BUCKET_PROP("bucket.wait-then-send", [](Rng& rng) {
    // Rates from trickle to multi-gigabit, caps from one packet to deep.
    const Mbps rate{rng.uniform(0.05, 4000.0)};
    const std::size_t wire = 64 + rng.below(8961);  // 64 B .. ~9 KB
    const std::size_t cap = wire * (1 + rng.below(20));
    LeakyBucket bucket(rate, cap);

    const int sends = 1 + static_cast<int>(rng.below(24));
    for (int s = 0; s < sends; ++s) {
      // Occasionally jitter time forward (partial refills between sends).
      if (rng.below(3) == 0) bucket.advance(rng.uniform(0.0, 1e-3));
      const std::size_t bytes = std::min(cap, wire);
      const Seconds wait = bucket.time_until(bytes);
      prop_assert(wait >= 0.0, "time_until must be non-negative");
      if (wait > 0.0) bucket.advance(wait);
      prop_assert(bucket.can_send(bytes),
                  "advance(time_until(b)) must satisfy can_send(b): wait=" +
                      std::to_string(wait) +
                      " credit=" + std::to_string(bucket.credit_bytes()) +
                      " bytes=" + std::to_string(bytes));
      bucket.on_send(bytes);
      prop_assert(bucket.credit_bytes() >= 0.0,
                  "credit must never go negative");
      prop_assert(bucket.credit_bytes() <= static_cast<double>(cap),
                  "credit must never exceed the cap");
    }
  });
}

TEST(PropsLeakyBucket, TimeUntilZeroImpliesSendable) {
  W4K_BUCKET_PROP("bucket.zero-wait-sendable", [](Rng& rng) {
    const Mbps rate{rng.uniform(0.05, 4000.0)};
    const std::size_t wire = 64 + rng.below(8961);
    const std::size_t cap = wire * (1 + rng.below(20));
    LeakyBucket bucket(rate, cap);
    // Random walk of advances and sends; at every point time_until == 0
    // must agree with can_send.
    for (int step = 0; step < 16; ++step) {
      bucket.advance(rng.uniform(0.0, 2e-4));
      const std::size_t bytes = std::min(cap, wire);
      if (bucket.time_until(bytes) == 0.0) {
        prop_assert(bucket.can_send(bytes),
                    "time_until()==0 but can_send() false");
        if (rng.below(2) == 0) bucket.on_send(bytes);
      }
    }
  });
}

}  // namespace
}  // namespace w4k::transport

// Property suite: fountain encode -> erase -> decode round-trips.
#include "fec/fountain.h"
#include "support/generators.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;

// Any loss pattern that still leaves k + h symbols (h >= 2) decodes and
// reproduces the source block exactly. h >= 2 keeps the dense-GF(256)
// residual failure probability (~1/256^(h+1)) below ~6e-8 per iteration,
// so the property is deterministic-for-all-practical-seeds while the
// erasure pattern itself is arbitrary.
TEST(PropsFountain, RoundTripsUnderArbitraryLossBelowOverhead) {
  W4K_PROP("fountain.round-trip", [](Rng& rng) {
    const std::size_t symbol_size = 1 + rng.below(96);
    const std::size_t data_len = 1 + rng.below(40 * symbol_size);
    const auto data = testgen::payload(rng, data_len);

    fec::FountainEncoder enc(data, symbol_size, rng.next());
    const std::size_t k = enc.k();
    const std::size_t overhead = 2 + rng.below(8);
    const std::size_t n_sent = k + overhead;

    // Erase an arbitrary subset, keeping at least k + 2 symbols.
    std::vector<fec::Symbol> sent;
    sent.reserve(n_sent);
    for (std::size_t esi = 0; esi < n_sent; ++esi)
      sent.push_back(enc.encode(static_cast<fec::Esi>(esi)));
    std::vector<std::size_t> order(n_sent);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n_sent; i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    const std::size_t n_keep = k + 2 + rng.below(overhead - 1);

    fec::FountainDecoder dec(k, symbol_size, data.size(), enc.block_seed());
    for (std::size_t i = 0; i < n_keep && !dec.can_decode(); ++i)
      dec.add_symbol(sent[order[i]]);

    prop_assert(dec.can_decode(),
                "rank " + std::to_string(dec.rank()) + " after " +
                    std::to_string(n_keep) + " of " + std::to_string(n_sent) +
                    " symbols, k=" + std::to_string(k));
    const auto decoded = dec.decode();
    prop_assert(decoded.has_value(), "decode() failed with full rank");
    prop_assert(*decoded == data, "decoded bytes differ from source");
  });
}

// Below k symbols the decoder must never claim decodability — the
// conservation side of the property above.
TEST(PropsFountain, NeverDecodesBelowK) {
  W4K_PROP("fountain.no-decode-below-k", [](Rng& rng) {
    const std::size_t symbol_size = 1 + rng.below(64);
    const std::size_t data_len = 1 + rng.below(20 * symbol_size);
    const auto data = testgen::payload(rng, data_len);
    fec::FountainEncoder enc(data, symbol_size, rng.next());
    const std::size_t k = enc.k();
    if (k < 2) return;  // k == 1: any symbol decodes, nothing to check

    fec::FountainDecoder dec(k, symbol_size, data.size(), enc.block_seed());
    const std::size_t n_feed = rng.below(k);  // strictly fewer than k
    for (std::size_t esi = 0; esi < n_feed; ++esi)
      dec.add_symbol(enc.encode(static_cast<fec::Esi>(esi)));
    prop_assert(!dec.can_decode(), "decodable with rank < k");
    prop_assert(dec.rank() <= n_feed, "rank exceeds symbols fed");
    prop_assert(!dec.decode().has_value(), "decode() succeeded below k");
  });
}

// Redundant symbols never decrease rank, and duplicates are never counted
// as innovative.
TEST(PropsFountain, DuplicateSymbolsAreRedundant) {
  W4K_PROP("fountain.duplicates-redundant", [](Rng& rng) {
    const std::size_t symbol_size = 1 + rng.below(48);
    const auto data = testgen::payload(rng, 1 + rng.below(10 * symbol_size));
    fec::FountainEncoder enc(data, symbol_size, rng.next());
    fec::FountainDecoder dec(enc.k(), symbol_size, data.size(),
                             enc.block_seed());
    const auto esi = static_cast<fec::Esi>(rng.below(enc.k() + 8));
    const auto sym = enc.encode(esi);
    const bool first = dec.add_symbol(sym);
    const std::size_t rank_after = dec.rank();
    prop_assert(first == (rank_after == 1), "first add vs rank");
    prop_assert(!dec.add_symbol(sym), "duplicate counted as innovative");
    prop_assert(dec.rank() == rank_after, "rank changed on duplicate");
  });
}

}  // namespace
}  // namespace w4k

// Property suite: SSIM/PSNR metric axioms on random frames.
#include "quality/metrics.h"
#include "support/generators.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <cmath>

namespace w4k {
namespace {

using proptest::prop_assert;
using proptest::prop_assert_near;

TEST(PropsQuality, SsimIsBoundedAndSymmetric) {
  W4K_PROP("quality.ssim-bounded-symmetric", [](Rng& rng) {
    const auto a = testgen::frame(rng, 4);
    // Same dimensions, independent content or a mild perturbation.
    video::Frame b;
    if (rng.chance(0.5)) {
      b = testgen::perturbed(a, rng);
    } else {
      Rng other(rng.next());
      b = video::Frame(a.width(), a.height());
      for (auto& p : b.y.pix)
        p = static_cast<std::uint8_t>(other.below(256));
      for (auto& p : b.u.pix)
        p = static_cast<std::uint8_t>(other.below(256));
      for (auto& p : b.v.pix)
        p = static_cast<std::uint8_t>(other.below(256));
    }
    const double ab = quality::ssim(a, b);
    const double ba = quality::ssim(b, a);
    prop_assert(ab >= 0.0 && ab <= 1.0,
                "ssim out of [0,1]: " + std::to_string(ab));
    prop_assert_near(ab, ba, 1e-12, "ssim symmetry");
  });
}

TEST(PropsQuality, SsimIdentityIsOne) {
  W4K_PROP("quality.ssim-identity", [](Rng& rng) {
    const auto a = testgen::frame(rng, 4);
    prop_assert_near(quality::ssim(a, a), 1.0, 1e-9, "ssim(a, a)");
  });
}

TEST(PropsQuality, PsnrIsNonNegativeFiniteAndCapped) {
  W4K_PROP("quality.psnr-range", [](Rng& rng) {
    const auto a = testgen::frame(rng, 4);
    const auto b = rng.chance(0.3) ? a : testgen::perturbed(a, rng, 32);
    const double p = quality::psnr(a, b);
    prop_assert(std::isfinite(p), "psnr not finite");
    prop_assert(p >= 0.0 && p <= 100.0,
                "psnr out of [0, 100]: " + std::to_string(p));
    prop_assert_near(p, quality::psnr(b, a), 1e-12, "psnr symmetry");
  });
}

TEST(PropsQuality, PerturbationNeverBeatsIdentity) {
  W4K_PROP("quality.perturbation-ordering", [](Rng& rng) {
    const auto a = testgen::frame(rng, 4);
    const auto b = testgen::perturbed(a, rng, 24);
    prop_assert(quality::ssim(a, b) <= quality::ssim(a, a) + 1e-12,
                "perturbed ssim above identity");
    prop_assert(quality::psnr(a, b) <= quality::psnr(a, a) + 1e-12,
                "perturbed psnr above identity");
  });
}

}  // namespace
}  // namespace w4k

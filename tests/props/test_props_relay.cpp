// Property suite for D2D peer relay.
//
// Two laws relaying must obey under ANY blockage / churn pattern:
//
//   1. The relay slot is not free airtime: relayed base-layer symbols are
//      charged against the same Eq. 1 frame budget as the AP's own
//      transmissions. Per frame, relay_airtime is a share of airtime and
//      total airtime never exceeds the frame budget (the engine's
//      emu.airtime-budget invariant also asserts this in kThrow mode —
//      the direct checks here pin the accounting shape, not just the
//      bound). Delivered symbols never exceed transmitted relay packets.
//   2. Relay removal is safe mid-stream: a relay_churn window silencing
//      the current relayer (or every candidate) at any frame must never
//      crash, violate an invariant, or change the report across thread
//      counts — the scheduler just picks another relayer or skips the
//      slot for the window.
#include "common/thread_pool.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;

class RelayPropertyTest : public ::testing::Test {
 protected:
  static constexpr int kW = 256;
  static constexpr int kH = 144;

  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    core::ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<core::FrameContext>(core::make_contexts(
        video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static model::QualityModel* quality_;
  static std::vector<core::FrameContext>* contexts_;
};

model::QualityModel* RelayPropertyTest::quality_ = nullptr;
std::vector<core::FrameContext>* RelayPropertyTest::contexts_ = nullptr;

constexpr int kFrames = 16;

core::SessionConfig relay_config(std::uint64_t seed) {
  core::SessionConfig cfg = core::SessionConfig::scaled(256, 144);
  cfg.seed = seed;
  cfg.relay.enabled = true;
  cfg.quarantine_after = 2;
  cfg.quarantine_reprobe_period = 4;
  return cfg;
}

/// Persistent unseen blockage of one user — the pattern that drives
/// quarantine (scheduled at full MCS off held CSI, decodes nothing) and
/// thereby makes the user a relay target — plus random relay churn.
fault::FaultPlan relay_plan(Rng& rng, std::size_t n_users,
                            std::size_t churn_events) {
  fault::FaultPlan plan;
  fault::BlockageBurst burst;
  burst.start_frame = 1 + static_cast<std::uint32_t>(rng.below(2));
  burst.n_frames = static_cast<std::uint32_t>(kFrames);  // never lifts
  burst.user = rng.below(n_users);
  burst.extra_loss_db = rng.uniform(32.0, 45.0);
  plan.blockage.push_back(burst);
  for (std::uint32_t f = burst.start_frame; f < kFrames; ++f)
    plan.csi.push_back({f, /*corrupt=*/false});
  for (std::size_t i = 0; i < churn_events; ++i) {
    fault::RelayChurn churn;
    churn.start_frame = static_cast<std::uint32_t>(rng.below(kFrames));
    churn.n_frames = 1 + static_cast<std::uint32_t>(rng.below(6));
    churn.user = rng.below(n_users);
    plan.relay_churn.push_back(churn);
  }
  return plan;
}

core::SessionReport run_report(model::QualityModel& quality,
                               const std::vector<core::FrameContext>& contexts,
                               const std::vector<linalg::CVector>& channels,
                               const core::SessionConfig& cfg,
                               const fault::FaultPlan& plan,
                               std::size_t n_users) {
  core::MulticastSession session(cfg, quality, beamforming::Codebook{});
  const fault::FaultInjector injector(plan, n_users);
  return core::run_static(session, channels, contexts, kFrames, injector);
}

std::string to_json(const core::SessionReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

TEST_F(RelayPropertyTest, RelayedSymbolsRespectAirtimeBudget) {
  proptest::Options opts = proptest::options_from_env();
  if (!opts.has_replay_seed)
    opts.iterations = std::max(3, opts.iterations / 10);
  std::size_t total_relayed = 0;
  const auto res = proptest::check_property(
      "core.relay.airtime-budget",
      [&total_relayed](Rng& rng) {
        const std::size_t n = 3 + rng.below(3);  // 3..5 users
        const core::SessionConfig cfg = relay_config(rng.next());
        channel::PropagationConfig prop;
        const auto channels = core::channels_for(
            prop,
            core::place_users_fixed(n, rng.uniform(2.5, 4.0), 1.047, rng));
        const fault::FaultPlan plan = relay_plan(rng, n, /*churn_events=*/0);
        const core::SessionReport report =
            run_report(*quality_, *contexts_, channels, cfg, plan, n);
        for (std::size_t f = 0; f < report.frames(); ++f) {
          const auto& st = report.frame(f).stats;
          prop_assert(st.relay_airtime >= 0.0,
                      "negative relay airtime");
          prop_assert(st.relay_airtime <= st.airtime + 1e-12,
                      "relay airtime exceeds total charged airtime");
          prop_assert(st.airtime <= cfg.engine.frame_budget + 1e-12,
                      "airtime (incl. relay slots) exceeds frame budget");
          prop_assert(
              report.frame(f).relayed_symbols <= st.relay_packets,
              "more symbols delivered via relay than relay packets sent");
          total_relayed += report.frame(f).relayed_symbols;
        }
      },
      opts);
  if (!res.passed) ADD_FAILURE() << res.message;
  // Non-vacuity, in aggregate: relaying may legitimately be squeezed out
  // of an individual draw (a fully-packed schedule leaves no budget slack
  // for relay slots), but across the sweep it must have happened — else
  // every bound above was checked against zeros. Skipped on single-seed
  // replay, where one budget-packed draw is expected.
  if (!opts.has_replay_seed)
    EXPECT_GT(total_relayed, 0u)
        << "no iteration of the sweep ever relayed a symbol";
}

TEST_F(RelayPropertyTest, RelayChurnNeverCrashesAndStaysDeterministic) {
  proptest::Options opts = proptest::options_from_env();
  if (!opts.has_replay_seed)
    opts.iterations = std::max(3, opts.iterations / 10);
  const auto res = proptest::check_property(
      "core.relay.churn-safe",
      [](Rng& rng) {
        const std::size_t n = 3 + rng.below(3);
        const core::SessionConfig cfg = relay_config(rng.next());
        channel::PropagationConfig prop;
        const auto channels = core::channels_for(
            prop,
            core::place_users_fixed(n, rng.uniform(2.5, 4.0), 1.047, rng));
        // 1..4 churn windows, any of which may silence the active relayer
        // mid-stream (kThrow invariants catch any bookkeeping damage).
        const fault::FaultPlan plan =
            relay_plan(rng, n, 1 + rng.below(4));
        ThreadPool::reset_shared(1);
        const std::string got_1t = to_json(
            run_report(*quality_, *contexts_, channels, cfg, plan, n));
        ThreadPool::reset_shared(4);
        const std::string got_4t = to_json(
            run_report(*quality_, *contexts_, channels, cfg, plan, n));
        ThreadPool::reset_shared(0);
        prop_assert(got_1t == got_4t,
                    "thread count changed a relay-churn report");
      },
      opts);
  if (!res.passed) ADD_FAILURE() << res.message;
}

}  // namespace
}  // namespace w4k

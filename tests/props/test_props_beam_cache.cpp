// Property suite: per-subset beam determinism — the PR 5 contract.
//
// (a) Every subset's beam derives its RNG from (session seed, member
//     bitmask), so surviving groups' beams are bit-identical under ANY
//     rate_threshold / max_group_size / exclude combination, and the
//     BeamCache (with any dirty pattern, serial or pooled) reproduces the
//     stateless enumeration exactly.
// (b) At the session level, beam_cache on/off and W4K_THREADS 1/4 produce
//     byte-identical SessionReport JSON on a mobility trace.
//
// The suite deliberately drives the deprecated allocating overloads (and
// BeamCache::enumerate): they are the compat surface whose bit-identity to
// the SchedWorkspace path these properties pin down.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
#include "channel/mobility.h"
#include "core/pretrained.h"
#include "core/runner.h"
#include "sched/beam_cache.h"
#include "support/proptest.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace w4k {
namespace {

using proptest::prop_assert;

std::vector<linalg::CVector> random_channels(Rng& rng, std::size_t n) {
  channel::PropagationConfig prop;
  std::vector<linalg::CVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(channel::make_channel(
        prop, channel::Position::from_polar(rng.uniform(2.5, 10.0),
                                            rng.uniform(-0.8, 0.8))));
  return out;
}

sched::GroupEnumConfig random_filter(Rng& rng, std::size_t n) {
  sched::GroupEnumConfig cfg;
  if (rng.chance(0.5))
    cfg.rate_threshold = Mbps{rng.uniform(0.0, 1500.0)};
  if (rng.chance(0.5))
    cfg.max_group_size = 1 + rng.below(n);
  if (rng.chance(0.5)) {
    cfg.exclude.assign(n, 0);
    for (auto& e : cfg.exclude) e = rng.chance(0.3) ? 1 : 0;
  }
  return cfg;
}

bool same_beam(const beamforming::GroupBeam& a,
               const beamforming::GroupBeam& b) {
  if (a.beam.size() != b.beam.size() || a.rate.value != b.rate.value ||
      a.min_rss.value != b.min_rss.value)
    return false;
  for (std::size_t i = 0; i < a.beam.size(); ++i)
    if (a.beam[i] != b.beam[i]) return false;
  return true;
}

void expect_same_groups(const std::vector<sched::GroupSpec>& a,
                        const std::vector<sched::GroupSpec>& b,
                        const std::string& what) {
  prop_assert(a.size() == b.size(),
              what + ": group count " + std::to_string(a.size()) + " vs " +
                  std::to_string(b.size()));
  for (std::size_t i = 0; i < a.size(); ++i) {
    prop_assert(a[i].members == b[i].members, what + ": member mismatch");
    prop_assert(same_beam(a[i].beam, b[i].beam),
                what + ": beam bits differ at group " + std::to_string(i));
  }
}

// (a) Filter knobs only gate which subsets are emitted; they must never
// perturb the beam of any subset that survives the filter.
TEST(PropsBeamCache, FilterKnobsNeverPerturbSurvivingBeams) {
  W4K_PROP("sched.filter-decoupling", [](Rng& rng) {
    const std::size_t n = 2 + rng.below(4);  // 2..5 users
    const auto channels = random_channels(rng, n);
    const std::uint64_t seed = rng.next();
    const auto scheme = beamforming::Scheme::kOptimizedMulticast;
    const auto full = sched::enumerate_groups(scheme, channels,
                                              beamforming::Codebook{}, seed);
    const auto cfg = random_filter(rng, n);
    const auto filtered = sched::enumerate_groups(
        scheme, channels, beamforming::Codebook{}, seed, cfg);
    for (const auto& g : filtered) {
      const sched::GroupSpec* match = nullptr;
      for (const auto& f : full)
        if (f.members == g.members) match = &f;
      prop_assert(match != nullptr, "filtered group missing from full set");
      prop_assert(same_beam(g.beam, match->beam),
                  "filter combination perturbed a surviving beam");
    }
  });
}

// (a) The cache, fed any history of channel perturbations and filter
// changes (serial or on a 3-thread pool), reproduces the stateless
// enumeration bit-for-bit on every call.
TEST(PropsBeamCache, CacheBitIdenticalToStatelessUnderChurn) {
  W4K_PROP("sched.beam-cache-identity", [](Rng& rng) {
    const std::size_t n = 2 + rng.below(4);
    const std::uint64_t seed = rng.next();
    const auto scheme = beamforming::Scheme::kOptimizedMulticast;
    sched::BeamCache cache(scheme, seed);
    ThreadPool pool(3);
    auto channels = random_channels(rng, n);
    for (int step = 0; step < 4; ++step) {
      // Perturb a random subset of users (possibly none: the all-hit case).
      for (std::size_t u = 0; u < n; ++u)
        if (rng.chance(0.4)) {
          channel::PropagationConfig prop;
          channels[u] = channel::make_channel(
              prop, channel::Position::from_polar(rng.uniform(2.5, 10.0),
                                                  rng.uniform(-0.8, 0.8)));
        }
      const auto cfg = random_filter(rng, n);
      ThreadPool* p = rng.chance(0.5) ? &pool : nullptr;
      const auto cached =
          cache.enumerate(channels, beamforming::Codebook{}, cfg, p);
      const auto fresh = sched::enumerate_groups(
          scheme, channels, beamforming::Codebook{}, seed, cfg);
      expect_same_groups(cached, fresh,
                         "step " + std::to_string(step));
    }
    prop_assert(cache.stats().hits + cache.stats().misses > 0,
                "cache recorded no traffic");
  });
}

// --- (b) Session-level bit-identity on a mobility trace ------------------

class BeamCacheSessionTest : public ::testing::Test {
 protected:
  static constexpr int kW = 256;
  static constexpr int kH = 144;

  static void SetUpTestSuite() {
    quality_ = new model::QualityModel(42);
    core::PretrainedOptions opts;
    opts.cache_path = "session_test_model.cache";
    core::ensure_trained(*quality_, opts);
    video::VideoSpec spec;
    spec.width = kW;
    spec.height = kH;
    spec.frames = 3;
    spec.seed = 11;
    contexts_ = new std::vector<core::FrameContext>(core::make_contexts(
        video::SyntheticVideo(spec), 2, core::scaled_symbol_size(kW, kH)));
  }
  static void TearDownTestSuite() {
    delete quality_;
    delete contexts_;
    quality_ = nullptr;
    contexts_ = nullptr;
  }

  static std::string run_json(bool beam_cache, std::size_t threads) {
    channel::MovingReceiverConfig mc;
    mc.n_users = 3;
    mc.moving = {true, true, false};  // two walkers, one static receiver
    mc.duration = 0.5;                // 5 beacons -> 15 frames
    mc.seed = 9;
    const channel::CsiTrace trace = channel::moving_receiver_trace(mc);

    core::SessionConfig cfg = core::SessionConfig::scaled(kW, kH);
    cfg.seed = 17;
    cfg.mcs_margin_db = 1.0;
    cfg.beam_cache = beam_cache;
    ThreadPool::reset_shared(threads);
    core::MulticastSession session(cfg, *quality_, beamforming::Codebook{});
    const core::SessionReport report =
        core::run_trace(session, trace, *contexts_);
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  }

  static model::QualityModel* quality_;
  static std::vector<core::FrameContext>* contexts_;
};

model::QualityModel* BeamCacheSessionTest::quality_ = nullptr;
std::vector<core::FrameContext>* BeamCacheSessionTest::contexts_ = nullptr;

TEST_F(BeamCacheSessionTest, CacheAndThreadsNeverChangeTheReport) {
  const std::string reference = run_json(/*beam_cache=*/false, /*threads=*/1);
  EXPECT_EQ(run_json(true, 1), reference) << "beam cache changed the report";
  EXPECT_EQ(run_json(false, 4), reference) << "threads changed the report";
  EXPECT_EQ(run_json(true, 4), reference)
      << "beam cache + threads changed the report";
  ThreadPool::reset_shared(0);  // restore the W4K_THREADS/default pool
}

}  // namespace
}  // namespace w4k
